/**
 * @file
 * Trace tooling example: generate any registry workload, save its
 * trace to disk in the binary format, reload it, print Table 2-style
 * statistics for both the CPU-level and LLC-level streams, and show
 * the Belady-optimal hit rate — the full data path a replacement
 * study needs, end to end.
 *
 * Usage: ./build/examples/trace_tools [workload] [accesses] [file]
 */

#include <cstdio>
#include <cstdlib>

#include "opt/belady.hh"
#include "opt/llc_stream.hh"
#include "traces/trace_stats.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace glider;

    std::string workload = argc > 1 ? argv[1] : "mcf";
    std::uint64_t accesses =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500'000;
    std::string path =
        argc > 3 ? argv[3] : "/tmp/glider_" + workload + ".trace";

    traces::Trace trace(workload);
    workloads::makeWorkload(workload, accesses)->run(trace);

    if (!trace.save(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    traces::Trace loaded;
    if (!traces::Trace::load(path, loaded) ||
        loaded.size() != trace.size()) {
        std::fprintf(stderr, "round-trip failed\n");
        return 1;
    }
    std::printf("saved + reloaded %zu accesses via %s\n\n",
                loaded.size(), path.c_str());

    std::printf("%-14s %10s %8s %10s %10s %10s\n", "stream",
                "#Accesses", "#PCs", "#Addrs", "Acc/PC", "Acc/Addr");
    auto cpu_stats = traces::computeStats(loaded);
    cpu_stats.name = "cpu";
    std::printf("%s\n", traces::formatStatsRow(cpu_stats).c_str());

    sim::HierarchyConfig cfg;
    auto llc = opt::extractLlcStream(loaded, cfg);
    auto llc_stats = traces::computeStats(llc);
    llc_stats.name = "llc";
    std::printf("%s\n", traces::formatStatsRow(llc_stats).c_str());

    auto min = opt::simulateBelady(llc, cfg.llc.sets(), cfg.llc.ways);
    std::printf("\nBelady MIN LLC hit rate: %.3f "
                "(%llu hits / %zu accesses)\n",
                min.hitRate(),
                static_cast<unsigned long long>(min.hit_count),
                llc.size());
    std::size_t friendly = 0;
    for (auto l : min.labels)
        friendly += l;
    std::printf("oracle labels: %.1f%% cache-friendly\n",
                100.0 * static_cast<double>(friendly)
                    / static_cast<double>(llc.size()));
    return 0;
}
