/**
 * @file
 * Policy shootout: compare every replacement policy in the library
 * (including the Belady MIN upper bound) on a workload of your
 * choice.
 *
 * Usage: ./build/examples/policy_shootout [workload] [accesses]
 *   workload  any registry name (default "sphinx3"); see
 *             workloads::allWorkloads()
 */

#include <cstdio>
#include <cstdlib>

#include "cachesim/simulator.hh"
#include "core/policy_factory.hh"
#include "opt/belady.hh"
#include "opt/llc_stream.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace glider;

    std::string workload = argc > 1 ? argv[1] : "sphinx3";
    std::uint64_t accesses =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1'000'000;

    traces::Trace trace(workload);
    workloads::makeWorkload(workload, accesses)->run(trace);
    std::printf("%s: %zu accesses\n\n", workload.c_str(), trace.size());

    sim::SimOptions opts;
    std::printf("%-10s %10s %10s %8s\n", "policy", "LLC miss%", "MPKI",
                "IPC");
    for (const auto &name : core::policyNames()) {
        auto res =
            sim::runSingleCore(trace, core::makePolicy(name), opts);
        std::printf("%-10s %9.1f%% %10.2f %8.3f\n", name.c_str(),
                    100.0 * res.llcMissRate(), res.mpki(), res.ipc);
    }

    // The MIN upper bound replays exact Belady decisions over the
    // (policy-independent) LLC access stream.
    auto llc_stream = opt::extractLlcStream(trace, opts.hierarchy);
    auto min = sim::runSingleCore(
        trace, std::make_unique<opt::BeladyPolicy>(llc_stream), opts);
    std::printf("%-10s %9.1f%% %10.2f %8.3f\n", "MIN",
                100.0 * min.llcMissRate(), min.mpki(), min.ipc);
    return 0;
}
