/**
 * @file
 * Offline analysis walkthrough (the paper's §4 pipeline in ~60
 * lines): label a trace with Belady's decisions, train the four
 * offline models, inspect the attention-LSTM's attention weights,
 * and run the shuffle experiment.
 *
 * Usage: ./build/examples/offline_analysis [workload]
 */

#include <cstdio>

#include "offline/dataset.hh"
#include "offline/lstm_model.hh"
#include "offline/simple_models.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace glider;

    std::string workload = argc > 1 ? argv[1] : "omnetpp";
    traces::Trace trace(workload);
    workloads::makeWorkload(workload, 800'000)->run(trace);

    // LLC stream + oracle labels + 75/25 split, as in §5.1.
    auto ds = offline::buildDataset(trace);
    std::printf("%s: %zu labelled LLC accesses, %zu PCs, MIN hit rate "
                "%.3f, majority baseline %.3f\n",
                workload.c_str(), ds.accesses.size(), ds.vocab(),
                ds.opt_hit_rate, offline::majorityBaseline(ds));

    offline::OfflineHawkeye hawkeye(ds.vocab());
    offline::OfflinePerceptron perceptron(ds.vocab(), 3, 0.05f);
    offline::OfflineIsvm isvm(ds.vocab(), 5, 0.1f);

    offline::LstmConfig cfg;
    cfg.embedding = 32;
    cfg.hidden = 32;
    cfg.seq_n = 15;
    cfg.attention_scale = 3.0f;
    offline::AttentionLstmModel lstm(ds.vocab(), cfg);

    for (int epoch = 0; epoch < 5; ++epoch) {
        hawkeye.trainEpoch(ds);
        perceptron.trainEpoch(ds);
        isvm.trainEpoch(ds);
        lstm.trainEpoch(ds);
        std::printf("epoch %d: hawkeye %.3f  perceptron %.3f  "
                    "isvm %.3f  lstm %.3f\n",
                    epoch + 1, hawkeye.evaluate(ds),
                    perceptron.evaluate(ds), isvm.evaluate(ds),
                    lstm.evaluate(ds));
    }

    // Observation 3: shuffling the history barely hurts.
    std::printf("lstm shuffled-history accuracy: %.3f\n",
                lstm.evaluateShuffled(ds));

    // Peek at the attention weights of the first few predictions.
    auto records = lstm.captureAttention(ds, 3);
    for (const auto &rec : records) {
        std::printf("target pc-id %u attends to:", rec.target_pc);
        for (std::size_t s = 0; s < rec.weights.size(); ++s) {
            if (rec.weights[s] > 0.15f)
                std::printf(" [pc-id %u w=%.2f]", rec.source_pcs[s],
                            static_cast<double>(rec.weights[s]));
        }
        std::printf("\n");
    }
    return 0;
}
