/**
 * @file
 * Quickstart: generate a workload, run it through the simulated
 * memory hierarchy under LRU and under Glider, and compare.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "cachesim/simulator.hh"
#include "core/glider_policy.hh"
#include "policies/lru.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace glider;

    // 1. Generate a memory-access trace by executing an instrumented
    //    workload kernel (here: the omnetpp-like event scheduler).
    traces::Trace trace("omnetpp");
    workloads::makeWorkload("omnetpp", 1'000'000)->run(trace);
    std::printf("generated %zu accesses\n", trace.size());

    // 2. Run it through the Table 1 hierarchy under LRU...
    sim::SimOptions opts; // defaults: 32KB L1, 256KB L2, 2MB LLC
    auto lru = sim::runSingleCore(
        trace, std::make_unique<policies::LruPolicy>(), opts);

    // 3. ...and under Glider (ISVM predictor over an unordered PC
    //    history, trained online from OPTgen's labels).
    auto glider = sim::runSingleCore(
        trace, std::make_unique<core::GliderPolicy>(), opts);

    std::printf("LRU:    LLC miss rate %.3f, IPC %.3f\n",
                lru.llcMissRate(), lru.ipc);
    std::printf("Glider: LLC miss rate %.3f, IPC %.3f\n",
                glider.llcMissRate(), glider.ipc);
    std::printf("miss reduction over LRU: %.1f%%\n",
                100.0
                    * (static_cast<double>(lru.llc.misses)
                       - static_cast<double>(glider.llc.misses))
                    / static_cast<double>(lru.llc.misses));
    return 0;
}
