/**
 * @file
 * Multi-core example: run a 4-workload mix on a shared 8MB LLC and
 * report the weighted speedup of Glider over LRU, using the paper's
 * §5.1 methodology.
 *
 * Usage: ./build/examples/multicore_mix [w0 w1 w2 w3]
 */

#include <cstdio>

#include "cachesim/simulator.hh"
#include "core/policy_factory.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace glider;

    std::vector<std::string> mix{"mcf", "omnetpp", "lbm", "bfs"};
    for (int i = 1; i < argc && i <= 4; ++i)
        mix[i - 1] = argv[i];

    sim::SimOptions opts;
    opts.hierarchy = sim::HierarchyConfig::forCores(4);
    opts.warmup_fraction = 0.1;
    const std::uint64_t quota = 250'000; // accesses per core

    std::vector<const traces::Trace *> traces;
    for (const auto &name : mix) {
        traces.push_back(&workloads::cachedTrace(name, 500'000));
        std::printf("core %zu: %s\n", traces.size() - 1, name.c_str());
    }

    // IPC of each workload alone on the same (8MB) hierarchy.
    std::vector<double> single;
    for (auto *t : traces) {
        auto r = sim::runMultiCore({t}, core::makePolicy("LRU"), quota,
                                   opts);
        single.push_back(r.ipc_shared[0]);
    }

    auto weighted = [&](const char *policy) {
        auto res = sim::runMultiCore(traces, core::makePolicy(policy),
                                     quota, opts);
        double ws = 0.0;
        for (std::size_t c = 0; c < traces.size(); ++c) {
            std::printf("  core %zu IPC %.3f (alone %.3f)\n", c,
                        res.ipc_shared[c], single[c]);
            ws += res.ipc_shared[c] / single[c];
        }
        return ws;
    };

    std::printf("LRU shared run:\n");
    double ws_lru = weighted("LRU");
    std::printf("Glider shared run:\n");
    double ws_glider = weighted("Glider");
    std::printf("weighted speedup over LRU: %+.1f%%\n",
                100.0 * (ws_glider / ws_lru - 1.0));
    return 0;
}
