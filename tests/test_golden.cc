/**
 * @file
 * Golden-trace regression tests: exact LLC counter values for LRU,
 * Hawkeye, and Glider on two committed fixed-seed traces.
 *
 * Unlike the property tests, these pin *specific numbers*, so any
 * behavioural drift in the simulator, the protocol, or a policy's
 * decision sequence shows up as a diff against the table below —
 * even when it leaves qualitative orderings intact.
 *
 * The traces live in tests/data and are regenerated only on purpose
 * with golden_tracegen (see its header). On mismatch the assertion
 * message prints the full actual row so the table can be refreshed
 * after an *intentional* behaviour change.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <span>
#include <sstream>
#include <string>

#include "cachesim/simulator.hh"
#include "core/policy_factory.hh"
#include "traces/trace.hh"

#ifndef GLIDER_TEST_DATA_DIR
#define GLIDER_TEST_DATA_DIR "tests/data"
#endif

namespace glider {
namespace {

/** One pinned result row: measured-phase LLC counters. */
struct GoldenRow
{
    const char *policy;
    std::uint64_t accesses;
    std::uint64_t hits;
    std::uint64_t misses;
    std::uint64_t evictions;
    std::uint64_t bypasses;
};

/**
 * Small hierarchy (Table 1 shrunk 32x) so the 24K-access traces
 * produce real LLC pressure: 4KB/8 L1, 16KB/8 L2, 64KB/16 LLC.
 */
sim::SimOptions
goldenOpts()
{
    sim::SimOptions opts;
    opts.hierarchy.l1.size_bytes = 4 * 1024;
    opts.hierarchy.l2.size_bytes = 16 * 1024;
    opts.hierarchy.llc.size_bytes = 64 * 1024;
    opts.warmup_fraction = 0.2;
    return opts;
}

const traces::Trace &
goldenTrace(const std::string &name)
{
    static std::map<std::string, traces::Trace> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        traces::Trace t;
        std::string path = std::string(GLIDER_TEST_DATA_DIR) + "/"
            + name + ".trace";
        if (!traces::Trace::load(path, t))
            ADD_FAILURE() << "cannot load golden trace " << path;
        it = cache.emplace(name, std::move(t)).first;
    }
    return it->second;
}

std::string
formatRow(const std::string &policy, const sim::CacheStats &llc)
{
    std::ostringstream os;
    // glider-lint: allow(json-outside-obs) C++ initializer row for
    // pasting into the golden table, not machine-readable output
    os << "{\"" << policy << "\", " << llc.accesses << ", " << llc.hits
       << ", " << llc.misses << ", " << llc.evictions << ", "
       << llc.bypasses << "},";
    return os.str();
}

void
checkGolden(const std::string &trace_name, const GoldenRow &row)
{
    const auto &trace = goldenTrace(trace_name);
    ASSERT_FALSE(trace.empty());
    auto res = sim::runSingleCore(trace, core::makePolicy(row.policy),
                                  goldenOpts());
    EXPECT_TRUE(res.llc.accesses == row.accesses
                && res.llc.hits == row.hits
                && res.llc.misses == row.misses
                && res.llc.evictions == row.evictions
                && res.llc.bypasses == row.bypasses)
        << trace_name << " actual: " << formatRow(row.policy, res.llc);
    // Internal coherence regardless of the pinned numbers.
    EXPECT_EQ(res.llc.hits + res.llc.misses, res.llc.accesses);
    EXPECT_LE(res.llc.bypasses, res.llc.misses);
}

// clang-format off
const GoldenRow kGoldenMix[] = {
    {"LRU", 13073, 916, 12157, 12157, 0},
    {"Hawkeye", 13073, 4252, 8821, 8821, 0},
    {"Glider", 13073, 3260, 9813, 9813, 0},
    {"FRD", 13073, 3686, 9387, 9387, 0},
    {"MUSTACHE", 13073, 914, 12159, 12159, 0},
    {"COALESCE", 13073, 5112, 7961, 1369, 6592},
    {"EntropyAge", 13073, 1052, 12021, 12021, 0},
    {"DecayCount", 13073, 1997, 11076, 11076, 0},
};
const GoldenRow kGoldenScan[] = {
    {"LRU", 18275, 1346, 16929, 16929, 0},
    {"Hawkeye", 18275, 6211, 12064, 12064, 0},
    {"Glider", 18275, 6428, 11847, 11847, 0},
    {"FRD", 18275, 5593, 12682, 12682, 0},
    {"MUSTACHE", 18275, 1346, 16929, 16929, 0},
    {"COALESCE", 18275, 2372, 15903, 12147, 3756},
    {"EntropyAge", 18275, 1535, 16740, 16740, 0},
    {"DecayCount", 18275, 1889, 16386, 16386, 0},
};
// clang-format on

class GoldenMix : public ::testing::TestWithParam<GoldenRow>
{
};

TEST_P(GoldenMix, ExactLlcCounters)
{
    checkGolden("golden_mix", GetParam());
}

INSTANTIATE_TEST_SUITE_P(GoldenTraces, GoldenMix,
                         ::testing::ValuesIn(kGoldenMix),
                         [](const auto &row) {
                             return std::string(row.param.policy);
                         });

class GoldenScan : public ::testing::TestWithParam<GoldenRow>
{
};

TEST_P(GoldenScan, ExactLlcCounters)
{
    checkGolden("golden_scan", GetParam());
}

INSTANTIATE_TEST_SUITE_P(GoldenTraces, GoldenScan,
                         ::testing::ValuesIn(kGoldenScan),
                         [](const auto &row) {
                             return std::string(row.param.policy);
                         });

TEST(GoldenTraces, LlcStreamIsPolicyIndependent)
{
    // All pinned rows for one trace must agree on `accesses`: the
    // LLC sees the same stream under any LLC policy. (Bypassed
    // fills still count as LLC accesses, so COALESCE agrees too.)
    for (const auto &table : {std::span<const GoldenRow>(kGoldenMix),
                              std::span<const GoldenRow>(kGoldenScan)}) {
        for (const auto &row : table)
            EXPECT_EQ(row.accesses, table.front().accesses)
                << row.policy;
    }
}

TEST(GoldenTraces, CommittedTracesMatchGenerator)
{
    // Guard against silent regeneration drift: sizes and a cheap
    // checksum over the committed files.
    const auto &mix = goldenTrace("golden_mix");
    const auto &scan = goldenTrace("golden_scan");
    EXPECT_EQ(mix.size(), 24000u);
    EXPECT_EQ(scan.size(), 24000u);
    std::uint64_t sum = 0;
    for (const auto &r : mix)
        sum += r.address + r.pc;
    std::uint64_t sum2 = 0;
    for (const auto &r : scan)
        sum2 += r.address + r.pc;
    EXPECT_EQ(sum, 631442058068u);
    EXPECT_EQ(sum2, 129825709316u);
}

} // namespace
} // namespace glider
