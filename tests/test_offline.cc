/**
 * @file
 * Tests for the offline pipeline: dataset construction, the three
 * simple models, and the attention-LSTM (training, evaluation,
 * attention capture, shuffle protocol).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "offline/dataset.hh"
#include "offline/lstm_model.hh"
#include "offline/simple_models.hh"
#include "workloads/registry.hh"

namespace glider {
namespace offline {
namespace {

/**
 * Synthetic dataset with a per-PC signal: PC ids below the pivot are
 * always cache-friendly, the rest never.
 */
OfflineDataset
pcPureDataset(std::size_t n, std::size_t vocab, std::size_t pivot,
              std::uint64_t seed)
{
    OfflineDataset ds;
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        auto pc = static_cast<std::uint32_t>(rng.below(vocab));
        ds.accesses.push_back(LabeledAccess{
            pc, static_cast<std::uint8_t>(pc < pivot ? 1 : 0)});
    }
    ds.train_end = 3 * n / 4;
    for (std::size_t i = 0; i < vocab; ++i)
        ds.id_to_pc.push_back(0x400000 + i * 4);
    return ds;
}

/**
 * Synthetic dataset with a *context* signal: a shared target PC is
 * friendly iff the preceding caller PC was the "hot" one. Filler PCs
 * push stale callers out of short histories.
 */
OfflineDataset
contextDataset(std::size_t events, std::uint64_t seed)
{
    // Vocabulary: 0 = hot caller, 1 = cold caller, 2 = shared target,
    // 3..6 = fillers.
    OfflineDataset ds;
    Rng rng(seed);
    for (std::size_t e = 0; e < events; ++e) {
        bool hot = rng.chance(0.5);
        ds.accesses.push_back(
            LabeledAccess{static_cast<std::uint32_t>(hot ? 0 : 1), 0});
        ds.accesses.push_back(LabeledAccess{
            2, static_cast<std::uint8_t>(hot ? 1 : 0)});
        for (std::uint32_t f = 3; f <= 6; ++f)
            ds.accesses.push_back(LabeledAccess{f, 0});
    }
    ds.train_end = 3 * ds.accesses.size() / 4;
    for (std::uint32_t i = 0; i < 7; ++i)
        ds.id_to_pc.push_back(0x400000 + i * 4);
    return ds;
}

/**
 * Synthetic dataset with an *order* signal: the target's label is
 * decided by which of two PCs appeared more recently — presence
 * alone cannot resolve it. Separates the LSTM from the k-sparse
 * models.
 */
OfflineDataset
orderDataset(std::size_t events, std::uint64_t seed)
{
    OfflineDataset ds;
    Rng rng(seed);
    for (std::size_t e = 0; e < events; ++e) {
        bool ab = rng.chance(0.5);
        // Both orderings contain the same PCs {0, 1}.
        ds.accesses.push_back(
            LabeledAccess{static_cast<std::uint32_t>(ab ? 0 : 1), 0});
        ds.accesses.push_back(
            LabeledAccess{static_cast<std::uint32_t>(ab ? 1 : 0), 0});
        ds.accesses.push_back(LabeledAccess{
            2, static_cast<std::uint8_t>(ab ? 1 : 0)});
    }
    ds.train_end = 3 * ds.accesses.size() / 4;
    for (std::uint32_t i = 0; i < 3; ++i)
        ds.id_to_pc.push_back(0x400000 + i * 4);
    return ds;
}

TEST(Dataset, BuildsFromWorkloadTrace)
{
    const auto &trace = workloads::cachedTrace("libquantum", 120'000);
    auto ds = buildDataset(trace);
    EXPECT_GT(ds.accesses.size(), 1000u);
    EXPECT_GT(ds.vocab(), 0u);
    EXPECT_EQ(ds.train_end, 3 * ds.accesses.size() / 4);
    for (const auto &a : ds.accesses)
        EXPECT_LT(a.pc_id, ds.vocab());
}

TEST(Dataset, OptHitRateWithinBounds)
{
    const auto &trace = workloads::cachedTrace("libquantum", 120'000);
    auto ds = buildDataset(trace);
    EXPECT_GE(ds.opt_hit_rate, 0.0);
    EXPECT_LE(ds.opt_hit_rate, 1.0);
}

TEST(Dataset, MajorityBaselineAtLeastHalf)
{
    auto ds = pcPureDataset(4000, 10, 5, 1);
    EXPECT_GE(majorityBaseline(ds), 0.5);
    EXPECT_LE(majorityBaseline(ds), 1.0);
}

TEST(OfflineHawkeyeModel, LearnsPcPureSignal)
{
    auto ds = pcPureDataset(20000, 16, 8, 2);
    OfflineHawkeye model(ds.vocab());
    model.trainEpoch(ds);
    EXPECT_GT(model.evaluate(ds), 0.95);
}

TEST(OfflineHawkeyeModel, BlindToContextSignal)
{
    auto ds = contextDataset(4000, 3);
    OfflineHawkeye model(ds.vocab());
    for (int e = 0; e < 3; ++e)
        model.trainEpoch(ds);
    // The shared target PC is a coin flip for a per-PC counter; with
    // 2/6 of accesses on the target, overall accuracy caps well
    // below the context-aware models.
    EXPECT_LT(model.evaluate(ds), 0.95);
}

TEST(OfflineIsvmModel, LearnsContextSignal)
{
    auto ds = contextDataset(4000, 3);
    OfflineIsvm model(ds.vocab(), 5, 0.1f);
    for (int e = 0; e < 4; ++e)
        model.trainEpoch(ds);
    EXPECT_GT(model.evaluate(ds), 0.97);
}

TEST(OfflineIsvmModel, BeatsHawkeyeOnContext)
{
    auto ds = contextDataset(4000, 4);
    OfflineIsvm isvm(ds.vocab(), 5, 0.1f);
    OfflineHawkeye hawkeye(ds.vocab());
    for (int e = 0; e < 4; ++e) {
        isvm.trainEpoch(ds);
        hawkeye.trainEpoch(ds);
    }
    EXPECT_GT(isvm.evaluate(ds), hawkeye.evaluate(ds) + 0.05);
}

TEST(OfflinePerceptronModel, LearnsContextWithOrderedHistory)
{
    auto ds = contextDataset(4000, 5);
    OfflinePerceptron model(ds.vocab(), 6, 0.05f);
    for (int e = 0; e < 6; ++e)
        model.trainEpoch(ds);
    EXPECT_GT(model.evaluate(ds), 0.9);
}

TEST(OfflinePerceptronModel, ShortHistoryMissesLongContext)
{
    // With history 1 the caller marker is invisible behind the
    // fillers... here the caller is directly before the target, so
    // use the order dataset's first position instead: history 1 sees
    // only the immediately preceding PC.
    auto ds = contextDataset(4000, 6);
    OfflinePerceptron h1(ds.vocab(), 1, 0.05f);
    OfflinePerceptron h6(ds.vocab(), 6, 0.05f);
    for (int e = 0; e < 6; ++e) {
        h1.trainEpoch(ds);
        h6.trainEpoch(ds);
    }
    EXPECT_GE(h6.evaluate(ds) + 1e-9, h1.evaluate(ds));
}

LstmConfig
tinyLstm(std::size_t n = 6)
{
    LstmConfig cfg;
    cfg.embedding = 16;
    cfg.hidden = 16;
    cfg.seq_n = n;
    cfg.max_train_slices = 1500;
    cfg.max_test_slices = 400;
    return cfg;
}

TEST(AttentionLstm, LearnsContextSignal)
{
    auto ds = contextDataset(2500, 7);
    AttentionLstmModel model(ds.vocab(), tinyLstm());
    for (int e = 0; e < 6; ++e)
        model.trainEpoch(ds);
    EXPECT_GT(model.evaluate(ds), 0.9);
}

TEST(AttentionLstm, LearnsOrderSignalThatKSparseCannot)
{
    auto ds = orderDataset(4000, 8);
    AttentionLstmModel lstm(ds.vocab(), tinyLstm());
    for (int e = 0; e < 8; ++e)
        lstm.trainEpoch(ds);
    OfflineIsvm isvm(ds.vocab(), 2, 0.1f);
    for (int e = 0; e < 8; ++e)
        isvm.trainEpoch(ds);
    // Presence of {0,1} is identical in both contexts, so the
    // k-sparse model is capped at the majority rate (5/6 ~ 0.83 of
    // positions are trivial); the LSTM resolves the order.
    double lstm_acc = lstm.evaluate(ds);
    double isvm_acc = isvm.evaluate(ds);
    EXPECT_GT(lstm_acc, 0.9);
    EXPECT_LT(isvm_acc, 0.87);
    EXPECT_GT(lstm_acc, isvm_acc + 0.05);
}

TEST(AttentionLstm, CaptureProducesDistributions)
{
    auto ds = contextDataset(1200, 9);
    AttentionLstmModel model(ds.vocab(), tinyLstm());
    model.trainEpoch(ds);
    auto records = model.captureAttention(ds, 64);
    ASSERT_FALSE(records.empty());
    for (const auto &rec : records) {
        ASSERT_EQ(rec.weights.size(), rec.source_pcs.size());
        float sum = 0;
        for (auto w : rec.weights) {
            EXPECT_GE(w, 0.0f);
            sum += w;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-4f);
    }
}

TEST(AttentionLstm, ShuffleBarelyHurtsContextTask)
{
    // Observation 3: on a presence-decidable task, shuffling the
    // history should not destroy accuracy.
    auto ds = contextDataset(2500, 10);
    AttentionLstmModel model(ds.vocab(), tinyLstm());
    for (int e = 0; e < 6; ++e)
        model.trainEpoch(ds);
    double ordered = model.evaluate(ds);
    double shuffled = model.evaluateShuffled(ds);
    EXPECT_GT(shuffled, ordered - 0.2);
}

TEST(AttentionLstm, ParameterCountMatchesFormula)
{
    LstmConfig cfg = tinyLstm();
    AttentionLstmModel model(7, cfg);
    std::size_t e = 7 * cfg.embedding;
    std::size_t lstm = 4 * cfg.hidden * cfg.embedding
        + 4 * cfg.hidden * cfg.hidden + 4 * cfg.hidden;
    std::size_t out = 2 * cfg.hidden + 1;
    EXPECT_EQ(model.parameterCount(), e + lstm + out);
}

TEST(AttentionLstm, PerTargetReportFindsAnchor)
{
    auto ds = contextDataset(2500, 11);
    AttentionLstmModel model(ds.vocab(), tinyLstm());
    for (int e = 0; e < 6; ++e)
        model.trainEpoch(ds);
    auto reports = model.perTargetPcReport(ds, {2});
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_GT(reports[0].samples, 10u);
    EXPECT_LT(reports[0].anchor_pc, ds.vocab());
    // The model must actually solve the context task for the report
    // to be meaningful.
    EXPECT_GT(reports[0].accuracy, 0.85);
}

} // namespace
} // namespace offline
} // namespace glider
