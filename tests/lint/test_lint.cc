/**
 * @file
 * Self-test for tools/glider_lint: each bad fixture must trigger its
 * rule exactly once, the clean fixture must pass every rule, the
 * escape hatches must silence findings, and the mechanical --fix
 * must converge (fixed files re-lint clean).
 *
 * The binary under test and the fixture directory arrive via compile
 * definitions (GLIDER_LINT_BIN / GLIDER_LINT_FIXTURES) so the test
 * works from any build directory.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct LintRun
{
    int exit_code = -1;
    std::string output;

    /** Number of findings for @p rule (lines containing "[rule]"). */
    int
    count(const std::string &rule) const
    {
        std::string needle = "[" + rule + "]";
        int n = 0;
        std::size_t at = 0;
        while ((at = output.find(needle, at)) != std::string::npos) {
            ++n;
            at += needle.size();
        }
        return n;
    }
};

LintRun
runLint(const std::string &args)
{
    // Built with += : GCC 12's -Wrestrict misfires on chained
    // std::string operator+ here.
    std::string cmd = GLIDER_LINT_BIN;
    cmd += ' ';
    cmd += args;
    cmd += " 2>&1";
    LintRun run;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe)
        return run;
    std::array<char, 4096> buf;
    std::size_t n;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        run.output.append(buf.data(), n);
    int status = pclose(pipe);
    run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return run;
}

std::string
fixture(const std::string &name)
{
    return std::string(GLIDER_LINT_FIXTURES) + "/" + name;
}

/** One bad fixture: (file, rule it must trigger, treat-as path). */
struct BadCase
{
    const char *file;
    const char *rule;
    const char *treat_as;
};

const BadCase kBadCases[] = {
    {"bad_hotpath_alloc.cc", "hotpath-alloc",
     "src/cachesim/bad_hotpath_alloc.cc"},
    {"bad_json.cc", "json-outside-obs", nullptr},
    {"bad_bench_report.cc", "bench-report",
     "bench/bad_bench_report.cc"},
    {"bad_rng.cc", "unseeded-rng", nullptr},
    {"bad_header_guard.hh", "header-guard",
     "src/cachesim/bad_header_guard.hh"},
    {"bad_include.cc", "include-hygiene", nullptr},
    {"bad_whitespace.cc", "whitespace", nullptr},
    {"bad_hotpath_transitive.cc", "hotpath-transitive",
     "src/cachesim/bad_hotpath_transitive.cc"},
    {"bad_atomic_contract.cc", "atomic-order",
     "src/serve/bad_atomic_contract.cc"},
    {"bad_atomic_mismatch.cc", "atomic-order",
     "src/serve/bad_atomic_mismatch.cc"},
    {"bad_atomic_implicit.cc", "atomic-order",
     "src/serve/bad_atomic_implicit.cc"},
    {"bad_env_getenv.cc", "env-registry",
     "src/serve/bad_env_getenv.cc"},
    {"bad_bare_allow.cc", "allow-reason",
     "src/cachesim/bad_bare_allow.cc"},
};

class BadFixture : public ::testing::TestWithParam<BadCase>
{
};

TEST_P(BadFixture, TriggersItsRuleExactlyOnce)
{
    const BadCase &c = GetParam();
    std::string args = "--rule ";
    args += c.rule;
    if (c.treat_as) {
        args += " --treat-as ";
        args += c.treat_as;
    }
    args += ' ';
    args += fixture(c.file);
    LintRun run = runLint(args);
    EXPECT_EQ(run.exit_code, 1) << run.output;
    EXPECT_EQ(run.count(c.rule), 1) << run.output;
}

INSTANTIATE_TEST_SUITE_P(GliderLint, BadFixture,
                         ::testing::ValuesIn(kBadCases),
                         [](const auto &row) {
                             std::string n = row.param.file;
                             n = n.substr(0, n.rfind('.'));
                             for (auto &ch : n) {
                                 if (ch == '-' || ch == '.')
                                     ch = '_';
                             }
                             return n;
                         });

TEST(GliderLint, CleanFixturePassesAllRules)
{
    LintRun run = runLint("--treat-as src/cachesim/clean.cc "
                          + fixture("clean.cc"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(GliderLint, EscapeHatchesSilenceEveryFinding)
{
    LintRun run = runLint("--treat-as src/cachesim/allowed.cc "
                          + fixture("allowed.cc"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
    EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(GliderLint, ListRulesOutputIsPinned)
{
    LintRun run = runLint("--list-rules");
    EXPECT_EQ(run.exit_code, 0);
    EXPECT_EQ(run.output, "hotpath-alloc\n"
                          "hotpath-transitive\n"
                          "atomic-order\n"
                          "env-registry\n"
                          "allow-reason\n"
                          "json-outside-obs\n"
                          "bench-report\n"
                          "unseeded-rng\n"
                          "header-guard\n"
                          "include-hygiene\n"
                          "whitespace\n");
}

TEST(GliderLint, ReadmeDriftFiresOneSummaryFinding)
{
    // The drifted fixture README both misses every registered knob
    // and lists an unknown one; the cross-check folds that into a
    // single summary finding.
    LintRun run = runLint("--rule env-registry --readme "
                          + fixture("bad_env_readme.md")
                          + " --treat-as src/cachesim/clean.cc "
                          + fixture("clean.cc"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    EXPECT_EQ(run.count("env-registry"), 1) << run.output;
    EXPECT_NE(run.output.find("drifted"), std::string::npos)
        << run.output;
    // glider-lint: allow(env-registry) asserting on the fixture's
    // deliberately-unregistered knob name, not reading it.
    EXPECT_NE(run.output.find("GLIDER_NOT_A_KNOB"), std::string::npos)
        << run.output;
}

TEST(GliderLint, UnknownRuleIsAUsageError)
{
    LintRun run = runLint("--rule no-such-rule");
    EXPECT_EQ(run.exit_code, 2) << run.output;
}

TEST(GliderLint, DiffShowsTheMechanicalFix)
{
    LintRun run = runLint("--diff --rule whitespace "
                          + fixture("bad_whitespace.cc"));
    // --diff prints the patch; findings on the unfixed file remain.
    EXPECT_NE(run.output.find("+++"), std::string::npos) << run.output;
    EXPECT_NE(run.output.find("-int fixture_ws = 1; "),
              std::string::npos)
        << run.output;
}

TEST(GliderLint, FixConvergesAndRelintsClean)
{
    // Copy the fixtures into a scratch dir so --fix can write.
    std::string dir = ::testing::TempDir() + "glider_lint_fix";
    std::string ws = dir + "/bad_whitespace.cc";
    std::string guard = dir + "/bad_header_guard.hh";
    ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
    for (const char *name :
         {"bad_whitespace.cc", "bad_header_guard.hh"}) {
        std::ifstream in(fixture(name), std::ios::binary);
        std::ofstream out(dir + "/" + name, std::ios::binary);
        out << in.rdbuf();
        ASSERT_TRUE(out.good());
    }

    LintRun fix_ws = runLint("--fix --rule whitespace " + ws);
    EXPECT_EQ(fix_ws.exit_code, 0) << fix_ws.output;
    LintRun relint_ws = runLint("--rule whitespace " + ws);
    EXPECT_EQ(relint_ws.exit_code, 0) << relint_ws.output;

    // The guard fixture must be re-linted under the same treat-as
    // path it was fixed under, where the rewritten guard is canonical.
    std::string treat = "--treat-as src/cachesim/bad_header_guard.hh ";
    LintRun fix_g = runLint("--fix --rule header-guard " + treat
                            + guard);
    EXPECT_EQ(fix_g.exit_code, 0) << fix_g.output;
    LintRun relint_g = runLint("--rule header-guard " + treat + guard);
    EXPECT_EQ(relint_g.exit_code, 0) << relint_g.output;
    std::ifstream fixed(guard);
    std::stringstream buf;
    buf << fixed.rdbuf();
    EXPECT_NE(
        buf.str().find("#ifndef GLIDER_CACHESIM_BAD_HEADER_GUARD_HH"),
        std::string::npos)
        << buf.str();
}

} // namespace
