// Fixture: linted as src/cachesim/bad_bare_allow.cc. The escape
// hatch below names a rule but gives no reason — allow-reason must
// fire exactly once (and cannot itself be hatched away).
#include <cstdint>

namespace fixture {

inline std::uint64_t
identity(std::uint64_t x)
{
    return x; // glider-lint: allow(whitespace)
}

} // namespace fixture
