// Fixture: linted as src/serve/bad_atomic_contract.cc. The atomic
// member below carries no `// glider-mo: <role>` contract comment,
// so atomic-order must fire exactly once (on the member).
#include <atomic>
#include <cstdint>

namespace fixture {

class ContractFree
{
  public:
    std::uint64_t
    peek() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> hits_{0};
};

} // namespace fixture
