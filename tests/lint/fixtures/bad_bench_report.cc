// Fixture: linted as bench/bad_bench_report.cc. Defines main() but
// never builds a BenchReport: exactly one bench-report finding.
#include <cstdio>

int
main()
{
    std::printf("throughput: 42\n");
    return 0;
}
