// Fixture: linted as src/cachesim/bad_hotpath_transitive.cc. The
// allocation hides behind a call the per-line hotpath-alloc scan
// cannot see: std::to_string builds a heap-backed string, and only
// the call graph knows that. Must fire hotpath-transitive exactly
// once (on the hot root below).
#include <string>

namespace fixture {

unsigned
hotLookup(unsigned way)
{
    return static_cast<unsigned>(std::to_string(way).size());
}

} // namespace fixture
