// Fixture: linted as src/cachesim/allowed.cc. Every violation below
// carries an escape hatch, so the file must produce zero findings.
// glider-lint: allow-file(json-outside-obs) fixture exercises the
// file-wide hatch
#include <cstdint>
#include <cstdio>
#include <random>
#include <vector>

namespace fixture {

class AllowedPolicy
{
  public:
    std::uint32_t
    victimWay(std::uint64_t set)
    {
        // glider-lint: allow(hotpath-alloc) line-above hatch
        history_.push_back(set);
        seen_.push_back(set); // glider-lint: allow(hotpath-alloc) same-line hatch
        return 0;
    }

    void
    debugDump() const
    {
        std::printf("{\"entries\": %zu}\n", history_.size());
    }

    int
    jitter()
    {
        std::mt19937 gen; // glider-lint: allow(unseeded-rng) fixture
        // glider-lint: allow(hotpath-transitive) local functor call,
        // not a free function the call graph could resolve
        return static_cast<int>(gen() & 3);
    }

  private:
    std::vector<std::uint64_t> history_;
    std::vector<std::uint64_t> seen_;
};

} // namespace fixture
