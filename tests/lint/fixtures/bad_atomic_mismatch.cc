// Fixture: linted as src/serve/bad_atomic_mismatch.cc. The member is
// contracted counter-relaxed (never synchronizes-with), but the load
// below asks for acquire — atomic-order must flag the order/contract
// mismatch exactly once.
#include <atomic>
#include <cstdint>

namespace fixture {

class MismatchedCounter
{
  public:
    std::uint64_t
    peek() const
    {
        return hits_.load(std::memory_order_acquire);
    }

  private:
    // glider-mo: counter-relaxed
    std::atomic<std::uint64_t> hits_{0};
};

} // namespace fixture
