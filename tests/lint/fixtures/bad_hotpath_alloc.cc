// Fixture: linted as src/cachesim/bad_hotpath_alloc.cc (hot path).
// Exactly one hotpath-alloc finding: the push_back in victimWay.
// The identical call in reset() is cold and must NOT be flagged.
#include <cstdint>
#include <vector>

namespace fixture {

class Policy
{
  public:
    void
    reset()
    {
        history_.push_back(0); // cold: setup path
    }

    std::uint32_t
    victimWay(std::uint64_t set)
    {
        history_.push_back(set); // hot: must be flagged
        return 0;
    }

  private:
    std::vector<std::uint64_t> history_;
};

} // namespace fixture
