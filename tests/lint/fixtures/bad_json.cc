// Fixture: exactly one json-outside-obs finding (the escaped-quote
// literal). The plain string below it carries no quotes and is fine.
#include <cstdio>

void
emit(double value)
{
    std::printf("{\"value\": %f}\n", value); // must be flagged
    std::printf("value: %f\n", value);       // fine
}
