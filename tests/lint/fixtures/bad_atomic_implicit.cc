// Fixture: linted as src/serve/bad_atomic_implicit.cc. The member
// carries a valid contract but the store below passes no
// std::memory_order (implicit seq_cst) — atomic-order must fire
// exactly once on the operation.
#include <atomic>

namespace fixture {

class ImplicitStop
{
  public:
    void
    stop()
    {
        stop_.store(true);
    }

  private:
    std::atomic<bool> stop_{false}; // glider-mo: gate-seqcst
};

} // namespace fixture
