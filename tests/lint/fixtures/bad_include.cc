// Fixture: exactly one include-hygiene finding (parent-relative
// include). The repo-root-relative include below is the fixed form.
#include "../cachesim/cache.hh"
#include "cachesim/cache_config.hh"

int
fixture()
{
    return 1;
}
