// Fixture: linted as src/cachesim/bad_header_guard.hh; the guard
// below does not match the canonical name derived from that path
// (GLIDER_CACHESIM_BAD_HEADER_GUARD_HH): one header-guard finding.
#ifndef WRONG_GUARD_NAME_HH
#define WRONG_GUARD_NAME_HH

namespace fixture {
inline int
answer()
{
    return 42;
}
} // namespace fixture

#endif // WRONG_GUARD_NAME_HH
