// Fixture: linted as src/serve/bad_env_getenv.cc. Reading a GLIDER_*
// variable through raw getenv bypasses the env-knob registry —
// env-registry must fire exactly once (the bypass consumes the
// literal, so the unregistered name is not double-reported).
#include <cstdlib>

namespace fixture {

const char *
sneakyKnob()
{
    return std::getenv("GLIDER_BOGUS_KNOB");
}

} // namespace fixture
