// Fixture: linted as src/cachesim/clean.cc — a hot-path file that
// follows every rule. Must produce zero findings.
//
// The comment mentions rand() and push_back to prove the tokenizer
// strips comments before matching.
#include <cstdint>
#include <vector>

namespace fixture {

class CleanPolicy
{
  public:
    CleanPolicy()
    {
        // Constructors are cold: allocation is fine here.
        stamps_.resize(64);
    }

    void
    reset()
    {
        stamps_.assign(64, 0); // cold by name
    }

    std::uint32_t
    victimWay(std::uint64_t set) noexcept
    {
        // Hot path: reads and arithmetic only. reserve() is not
        // growth and would be fine too.
        std::uint64_t best = stamps_[set % stamps_.size()];
        return static_cast<std::uint32_t>(best & 0xF);
    }

  private:
    std::vector<std::uint64_t> stamps_;
};

} // namespace fixture
