// Fixture: exactly one whitespace finding (the trailing space two
// lines down) and a mechanical --fix that removes it.
int fixture_ws = 1; 
int fixture_ok = 2;
