// Fixture: exactly one unseeded-rng finding (mt19937). The word
// "random" in this comment and the identifier below are fine.
#include <random>

int
roll()
{
    std::mt19937 gen; // must be flagged: default-seeded engine
    int not_random_at_all = 4;
    return static_cast<int>(gen() % 6) + not_random_at_all;
}
