/**
 * @file
 * The PR-1 zero-allocation claim as a failing test: with the counting
 * operator new compiled in (-DGLIDER_ALLOCGUARD=ON), drive the warmed
 * simulator hot path and assert the heap was never touched. Without
 * the guard the tests skip — they prove nothing in that build, and
 * skipping keeps the default suite green.
 */

#include <gtest/gtest.h>

#include <span>

#include "cachesim/cache.hh"
#include "cachesim/core_model.hh"
#include "cachesim/hierarchy.hh"
#include "common/alloc_guard.hh"
#include "core/glider_predictor.hh"
#include "core/policy_factory.hh"
#include "traces/trace.hh"
#include "workloads/registry.hh"

namespace {

using glider::ScopedAllocCheck;
using glider::allocGuardEnabled;

constexpr std::size_t kWarmup = 20'000;
constexpr std::size_t kMeasured = 50'000;

/**
 * Warm @p cache over the first part of @p trace, then count heap
 * allocations over the next kMeasured accesses.
 */
std::uint64_t
measuredAllocations(glider::sim::Cache &cache,
                    const glider::traces::Trace &trace)
{
    std::size_t i = 0;
    for (; i < kWarmup; ++i) {
        const auto &rec = trace[i % trace.size()];
        cache.access(rec.core, rec.pc,
                     glider::traces::blockAddr(rec.address),
                     rec.is_write);
    }
    ScopedAllocCheck guard;
    for (; i < kWarmup + kMeasured; ++i) {
        const auto &rec = trace[i % trace.size()];
        cache.access(rec.core, rec.pc,
                     glider::traces::blockAddr(rec.address),
                     rec.is_write);
    }
    return guard.allocations();
}

class AllocGuardPolicy : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AllocGuardPolicy, WarmedCacheAccessPathIsAllocationFree)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "build with -DGLIDER_ALLOCGUARD=ON";
    const auto &trace =
        glider::workloads::cachedTrace("libquantum", 100'000);
    glider::sim::CacheConfig cfg;
    cfg.size_bytes = 2 * 1024 * 1024; // 2048 sets at 16 ways
    cfg.ways = 16;
    glider::sim::Cache cache(cfg, glider::core::makePolicy(GetParam()));
    EXPECT_EQ(measuredAllocations(cache, trace), 0u)
        << GetParam() << " allocated on the warmed access path";
}

// Hawkeye/Glider are deliberately absent: their sampled-OPTgen
// bookkeeping keys on PC, so a trace whose PC working set is still
// growing legitimately allocates map nodes long past warmup. The
// zero-allocation contract covers the per-access fast path, which
// the remaining policies — including the whole policy zoo, whose
// tables are preallocated in reset() — exercise without sampler
// machinery.
INSTANTIATE_TEST_SUITE_P(Policies, AllocGuardPolicy,
                         ::testing::Values("LRU", "Random", "SRRIP",
                                           "BRRIP", "DRRIP", "SHiP",
                                           "SHiP++", "MPPPB", "FRD",
                                           "MUSTACHE", "COALESCE",
                                           "EntropyAge", "DecayCount"),
                         [](const auto &row) {
                             std::string n = row.param;
                             for (auto &c : n) {
                                 if (c == '+')
                                     c = 'p';
                             }
                             return n;
                         });

TEST(AllocGuard, HierarchyAccessPathIsAllocationFree)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "build with -DGLIDER_ALLOCGUARD=ON";
    const auto &trace =
        glider::workloads::cachedTrace("libquantum", 100'000);
    glider::sim::HierarchyConfig cfg;
    glider::sim::Hierarchy hier(cfg, 1,
                                glider::core::makePolicy("SRRIP"));
    std::size_t i = 0;
    for (; i < kWarmup; ++i) {
        const auto &rec = trace[i % trace.size()];
        hier.access(0, rec.pc, rec.address, rec.is_write);
    }
    ScopedAllocCheck guard;
    for (; i < kWarmup + kMeasured; ++i) {
        const auto &rec = trace[i % trace.size()];
        hier.access(0, rec.pc, rec.address, rec.is_write);
    }
    EXPECT_EQ(guard.allocations(), 0u)
        << "Hierarchy::access allocated on the warmed path";
}

TEST(AllocGuard, CoreModelStepIsAllocationFree)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "build with -DGLIDER_ALLOCGUARD=ON";
    glider::sim::CoreModel core;
    // Mixed-depth steps roll the MSHR ring through every state:
    // retire, MSHR-full stall, and ROB stall.
    ScopedAllocCheck guard;
    for (std::uint32_t i = 0; i < 200'000; ++i) {
        auto depth = static_cast<glider::sim::AccessDepth>(i % 4);
        core.step(depth, 20 + (i % 180));
    }
    core.finish();
    EXPECT_EQ(guard.allocations(), 0u)
        << "CoreModel::step allocated (MSHR window must be a fixed "
           "ring)";
}

TEST(AllocGuard, GliderSnapshotPathIsAllocationFree)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "build with -DGLIDER_ALLOCGUARD=ON";
    glider::core::GliderPredictor pred;
    // Warm with a fixed PC working set so the PCHR reaches its
    // k-entry capacity; the ISVM table is fixed-size (hash-indexed)
    // and never allocates per access.
    const std::uint64_t pcs[8] = {0x10, 0x24, 0x38, 0x4c,
                                  0x60, 0x74, 0x88, 0x9c};
    for (int i = 0; i < 4096; ++i)
        pred.observe(pcs[i % 8]);
    ScopedAllocCheck guard;
    for (int i = 0; i < 100'000; ++i) {
        // The per-access predictor sequence: snapshot the PCHR,
        // predict against it, then absorb the new PC.
        const auto &snap = pred.history();
        pred.predictWith(pcs[i % 8], snap);
        pred.observe(pcs[(i * 3) % 8]);
    }
    EXPECT_EQ(guard.allocations(), 0u)
        << "PCHR snapshot path allocated (snapshot must return by "
           "reference, not by value)";
}

TEST(AllocGuard, PredictManyBatchedReplayIsAllocationFree)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "build with -DGLIDER_ALLOCGUARD=ON";
    // The batched prediction path end to end — PCHR feature
    // maintenance, request assembly against live counts, and the
    // SIMD gather/sum — over a 50k-access warmed replay. The spans-in
    // spans-out API contract is zero per-call heap allocation.
    glider::core::GliderPredictor pred;
    const auto &trace =
        glider::workloads::cachedTrace("libquantum", 100'000);
    for (std::size_t i = 0; i < kWarmup; ++i)
        pred.observe(trace[i % trace.size()].pc);
    constexpr std::size_t kBatch = 64;
    glider::core::PredictRequest requests[kBatch];
    glider::core::Prediction predictions[kBatch];
    ScopedAllocCheck guard;
    std::size_t filled = 0;
    for (std::size_t i = kWarmup; i < kWarmup + kMeasured; ++i) {
        const auto &rec = trace[i % trace.size()];
        requests[filled].pc = rec.pc;
        requests[filled].counts = &pred.historyCounts();
        if (++filled == kBatch) {
            pred.predictMany(
                std::span<const glider::core::PredictRequest>(
                    requests, kBatch),
                std::span<glider::core::Prediction>(predictions,
                                                    kBatch));
            filled = 0;
        }
        pred.observe(rec.pc);
    }
    EXPECT_EQ(guard.allocations(), 0u)
        << "predictMany allocated on the warmed batched replay";
}

TEST(AllocGuard, CountersActuallyCount)
{
    if (!allocGuardEnabled())
        GTEST_SKIP() << "build with -DGLIDER_ALLOCGUARD=ON";
    ScopedAllocCheck guard;
    // A new-expression may legally be elided at -O3; calling the
    // allocation function directly may not.
    void *p = ::operator new(32 * sizeof(std::uint64_t));
    EXPECT_GE(guard.allocations(), 1u);
    EXPECT_GE(guard.bytes(), 32 * sizeof(std::uint64_t));
    ::operator delete(p);
}

} // namespace
