/**
 * @file
 * Tests for the verification layer itself: the CheckedPolicy shadow
 * model must accept every well-behaved policy unchanged and reject
 * deliberately broken ones on the exact access that violates the
 * protocol, and CheckedHierarchy's cross-level sweep must hold on
 * real runs including warmup resets.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cachesim/cache.hh"
#include "common/rng.hh"
#include "traces/trace.hh"
#include "core/policy_factory.hh"
#include "policies/lru.hh"
#include "verify/checked_hierarchy.hh"
#include "verify/checked_policy.hh"
#include "verify/invariants.hh"

namespace glider {
namespace verify {
namespace {

sim::CacheConfig
tinyCache()
{
    sim::CacheConfig c;
    c.size_bytes = 8 * 4 * 64; // 8 sets x 4 ways
    c.ways = 4;
    return c;
}

/** A short mixed trace with reuse, thrash, and a cold stream. */
traces::Trace
mixedTrace(std::uint64_t seed, int accesses = 4000)
{
    Rng rng(seed);
    traces::Trace t("verify-mix");
    std::uint64_t cold = 1 << 16;
    for (int i = 0; i < accesses; ++i) {
        std::uint64_t block;
        if (rng.chance(0.5))
            block = rng.below(24);
        else if (rng.chance(0.5))
            block = static_cast<std::uint64_t>(i) % 300;
        else
            block = cold++;
        t.push(0x400000 + (block % 8) * 4, block * 64,
               rng.chance(0.2), 0);
    }
    return t;
}

/** Returns an out-of-range way on every miss. */
class OutOfRangePolicy : public policies::LruPolicy
{
  public:
    std::string name() const override { return "OutOfRange"; }
    std::uint32_t
    victimWay(const sim::ReplacementAccess &, sim::SetView lines)
        noexcept override
    {
        return lines.ways + 3; // beyond even the bypass sentinel
    }
};

/** Claims to be LRU but always victimises way 0. */
class StuckAtZeroPolicy : public policies::LruPolicy
{
  public:
    std::uint32_t
    victimWay(const sim::ReplacementAccess &, sim::SetView)
        noexcept override
    {
        return 0;
    }
};

TEST(CheckedPolicy, RejectsOutOfRangeVictim)
{
    sim::Cache cache(tinyCache(),
                     checkedPolicy(std::make_unique<OutOfRangePolicy>()));
    EXPECT_THROW(cache.access(0, 0x400000, 1, false),
                 InvariantViolation);
}

TEST(CheckedPolicy, LruReferenceCatchesNonLruVictims)
{
    // Way 0 is also what true LRU picks while the set is empty, so
    // the stuck-at-zero policy survives exactly one miss per set;
    // the second miss in any set must prefer the invalid way 1 and
    // trips the reference model.
    CheckedPolicy::Options opts;
    opts.verify_lru = true;
    sim::Cache cache(tinyCache(),
                     checkedPolicy(std::make_unique<StuckAtZeroPolicy>(),
                                   opts));
    EXPECT_NO_THROW(cache.access(0, 0x400000, 0, false));
    EXPECT_THROW(cache.access(0, 0x400000, 8, false),
                 InvariantViolation);
}

TEST(CheckedPolicy, TrueLruPassesReferenceModel)
{
    CheckedPolicy::Options opts;
    opts.verify_lru = true;
    sim::Cache cache(tinyCache(),
                     checkedPolicy(std::make_unique<policies::LruPolicy>(),
                                   opts));
    for (const auto &rec : mixedTrace(0xBEEF))
        EXPECT_NO_THROW(cache.access(rec.core, rec.pc,
                                     traces::blockAddr(rec.address),
                                     rec.is_write));
}

/** Direct protocol-order drives against a standalone checker. */
class CheckedPolicyProtocol : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        checker_ = std::make_unique<CheckedPolicy>(
            std::make_unique<policies::LruPolicy>());
        checker_->reset(sim::CacheGeometry{8, 4, 1});
        lines_.assign(4, sim::LineView{});
    }

    sim::SetView
    view() const
    {
        return sim::SetView{lines_.data(),
                            static_cast<std::uint32_t>(lines_.size())};
    }

    static sim::ReplacementAccess
    access(std::uint64_t set, std::uint64_t block)
    {
        sim::ReplacementAccess a;
        a.set = set;
        a.block_addr = block;
        a.pc = 0x400000;
        return a;
    }

    std::unique_ptr<CheckedPolicy> checker_;
    std::vector<sim::LineView> lines_;
};

TEST_F(CheckedPolicyProtocol, SecondVictimWayWithoutInsertThrows)
{
    checker_->victimWay(access(1, 100), view());
    EXPECT_THROW(checker_->victimWay(access(1, 200), view()),
                 InvariantViolation);
}

TEST_F(CheckedPolicyProtocol, InsertWithoutOpenMissThrows)
{
    EXPECT_THROW(checker_->onInsert(access(1, 100), 0),
                 InvariantViolation);
}

TEST_F(CheckedPolicyProtocol, HitOnNonResidentBlockThrows)
{
    EXPECT_THROW(checker_->onHit(access(1, 100), 0),
                 InvariantViolation);
}

TEST_F(CheckedPolicyProtocol, EvictOfInvalidVictimThrows)
{
    // The set is empty, so the chosen victim way holds no valid
    // line and no onEvict may be reported for it.
    auto way = checker_->victimWay(access(1, 100), view());
    EXPECT_THROW(checker_->onEvict(access(1, 100), way,
                                   sim::LineView{true, 50}),
                 InvariantViolation);
}

TEST_F(CheckedPolicyProtocol, TagArrayMismatchThrows)
{
    // Complete one legal miss so the shadow believes block 100 sits
    // in set 1, then present a tag array that disagrees.
    auto way = checker_->victimWay(access(1, 100), view());
    checker_->onInsert(access(1, 100), way);
    lines_[way] = sim::LineView{true, 999}; // cache claims 999
    EXPECT_THROW(checker_->victimWay(access(1, 200), view()),
                 InvariantViolation);
}

TEST_F(CheckedPolicyProtocol, WellFormedMissSequencePasses)
{
    std::uint32_t way_of_two = 0;
    for (std::uint64_t b = 0; b < 4; ++b) {
        auto way = checker_->victimWay(access(2, b), view());
        ASSERT_LT(way, 4u);
        EXPECT_NO_THROW(checker_->onInsert(access(2, b), way));
        lines_[way] = sim::LineView{true, b};
        if (b == 2)
            way_of_two = way;
    }
    EXPECT_NO_THROW(checker_->onHit(access(2, 2), way_of_two));
}

TEST(CheckedPolicy, NameAndCountersForward)
{
    auto owner =
        std::make_unique<CheckedPolicy>(std::make_unique<policies::LruPolicy>());
    auto *checker = owner.get();
    EXPECT_EQ(checker->name(), "LRU");
    sim::Cache cache(tinyCache(), std::move(owner));
    for (const auto &rec : mixedTrace(0xCAFE))
        cache.access(rec.core, rec.pc, traces::blockAddr(rec.address),
                     rec.is_write);
    // Protocol-derived event counts reconcile with the cache's own
    // stats (no warmup reset in this run).
    EXPECT_EQ(checker->hits(), cache.stats().hits);
    EXPECT_EQ(checker->misses(), cache.stats().misses);
    EXPECT_EQ(checker->evictions(), cache.stats().evictions);
    EXPECT_EQ(checker->bypasses(), cache.stats().bypasses);
    EXPECT_GT(checker->evictions(), 0u);
}

TEST(CheckedHierarchy, EveryRegisteredPolicyPassesChecked)
{
    auto trace = mixedTrace(0xD00D, 6000);
    for (const auto &name : core::policyNames()) {
        sim::HierarchyConfig cfg;
        cfg.l1.size_bytes = 2 * 1024;
        cfg.l2.size_bytes = 8 * 1024;
        cfg.llc.size_bytes = 32 * 1024;
        CheckedPolicy::Options opts;
        opts.verify_lru = name == "LRU";
        CheckedHierarchy hier(cfg, 1, core::makePolicy(name), opts);
        std::size_t i = 0;
        for (const auto &rec : trace) {
            if (i++ == trace.size() / 3)
                hier.clearStatsCounters(); // warmup accounting path
            ASSERT_NO_THROW(hier.access(rec.core, rec.pc, rec.address,
                                        rec.is_write))
                << name << " at access " << i;
        }
        EXPECT_NO_THROW(hier.check()) << name;
    }
}

TEST(CheckedHierarchy, FlowConservationOnMultiCore)
{
    Rng rng(7);
    sim::HierarchyConfig cfg;
    cfg.l1.size_bytes = 2 * 1024;
    cfg.l2.size_bytes = 8 * 1024;
    cfg.llc.size_bytes = 32 * 1024;
    CheckedHierarchy hier(cfg, 4, core::makePolicy("Glider"));
    for (int i = 0; i < 8000; ++i) {
        auto core = static_cast<std::uint8_t>(rng.below(4));
        std::uint64_t block =
            rng.chance(0.6) ? rng.below(64) : 4096 + rng.below(2048);
        ASSERT_NO_THROW(hier.access(core, 0x400000 + core * 4,
                                    block * 64, false));
    }
    EXPECT_NO_THROW(hier.check());
}

} // namespace
} // namespace verify
} // namespace glider
