/**
 * @file
 * Unit tests for src/common: RNG, hashing, LRU tracker, saturating
 * counters, and statistics helpers.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/hash.hh"
#include "common/lru_tracker.hh"
#include "common/rng.hh"
#include "common/saturating_counter.hh"
#include "common/stats_util.hh"
#include "common/zipf.hh"

namespace glider {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(11);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Hash, Mix64IsInjectiveOnSmallDomain)
{
    std::unordered_set<std::uint64_t> out;
    for (std::uint64_t i = 0; i < 10000; ++i)
        out.insert(mix64(i));
    EXPECT_EQ(out.size(), 10000u);
}

TEST(Hash, HashBitsWithinWidth)
{
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_LT(hashBits(i, 4), 16u);
}

TEST(Hash, HashIntoWithinSize)
{
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_LT(hashInto(i, 2048), 2048u);
}

TEST(Hash, HashBitsSpreadsOverAllSlots)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 4096; ++i)
        seen.insert(hashBits(i * 4 + 0x400000, 4));
    EXPECT_EQ(seen.size(), 16u);
}

TEST(Hash, CombineOrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(LruTracker, InsertsUpToCapacity)
{
    LruTracker<int> t(3);
    EXPECT_TRUE(t.touch(1));
    EXPECT_TRUE(t.touch(2));
    EXPECT_TRUE(t.touch(3));
    EXPECT_EQ(t.size(), 3u);
    EXPECT_TRUE(t.contains(1));
    EXPECT_TRUE(t.contains(2));
    EXPECT_TRUE(t.contains(3));
}

TEST(LruTracker, EvictsLeastRecentlyUsed)
{
    LruTracker<int> t(3);
    t.touch(1);
    t.touch(2);
    t.touch(3);
    t.touch(4); // evicts 1
    EXPECT_FALSE(t.contains(1));
    EXPECT_TRUE(t.contains(4));
}

TEST(LruTracker, TouchRefreshesRecency)
{
    LruTracker<int> t(3);
    t.touch(1);
    t.touch(2);
    t.touch(3);
    EXPECT_FALSE(t.touch(1)); // refresh, not insert
    t.touch(4);               // evicts 2, not 1
    EXPECT_TRUE(t.contains(1));
    EXPECT_FALSE(t.contains(2));
}

TEST(LruTracker, EntriesInLruToMruOrder)
{
    LruTracker<int> t(3);
    t.touch(1);
    t.touch(2);
    t.touch(3);
    t.touch(2);
    std::vector<int> expect{1, 3, 2};
    EXPECT_EQ(t.entries(), expect);
}

TEST(LruTracker, DuplicatesNeverStored)
{
    LruTracker<int> t(5);
    for (int i = 0; i < 20; ++i)
        t.touch(i % 2);
    EXPECT_EQ(t.size(), 2u);
}

TEST(LruTracker, ClearEmpties)
{
    LruTracker<int> t(2);
    t.touch(1);
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_FALSE(t.contains(1));
}

TEST(SaturatingCounter, SaturatesHigh)
{
    SaturatingCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturatedHigh());
}

TEST(SaturatingCounter, SaturatesLow)
{
    SaturatingCounter c(3, 5);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_TRUE(c.saturatedLow());
}

TEST(SaturatingCounter, MsbSplitsRangeInHalf)
{
    SaturatingCounter c(3, 0); // max 7
    EXPECT_FALSE(c.msb());
    c.set(3);
    EXPECT_FALSE(c.msb());
    c.set(4);
    EXPECT_TRUE(c.msb());
}

TEST(SaturatingCounter, InitialValueClamped)
{
    SaturatingCounter c(2, 100);
    EXPECT_EQ(c.value(), 3u);
}

TEST(Summary, MeanMinMax)
{
    Summary s;
    for (double x : {3.0, 1.0, 2.0})
        s.add(x);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Summary, VarianceMatchesClosedForm)
{
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
}

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, CountsAndClamping)
{
    Histogram h(0.0, 1.0, 10);
    h.add(0.05);
    h.add(0.95);
    h.add(-5.0); // clamps to first bin
    h.add(5.0);  // clamps to last bin
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.counts().front(), 2u);
    EXPECT_EQ(h.counts().back(), 2u);
}

TEST(Histogram, CdfReachesOne)
{
    Histogram h(0.0, 1.0, 4);
    for (double x : {0.1, 0.3, 0.6, 0.9})
        h.add(x);
    auto cdf = h.cdf();
    EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
    for (std::size_t i = 1; i < cdf.size(); ++i)
        EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(StatsUtil, GeomeanOfPowers)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(ZipfPicker, ProbabilitiesNormalisedAndMonotone)
{
    ZipfPicker picker(1000, 0.9);
    ASSERT_EQ(picker.size(), 1000u);
    double total = 0.0;
    for (std::size_t r = 0; r < picker.size(); ++r) {
        total += picker.probability(r);
        if (r > 0) {
            // Rank probabilities decay monotonically: 1/(r+1)^s.
            EXPECT_LE(picker.probability(r), picker.probability(r - 1))
                << r;
        }
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_EQ(picker.probability(1000), 0.0);
}

TEST(ZipfPicker, HeadMassMatchesAnalyticCdf)
{
    // The exact sampler's empirical head mass must track the analytic
    // CDF — the property the cheap zipfDraw approximation lacks.
    ZipfPicker picker(1000, 0.9);
    double head_p = 0.0;
    for (std::size_t r = 0; r < 100; ++r)
        head_p += picker.probability(r);
    Rng rng(21);
    const int n = 50'000;
    int head = 0;
    for (int i = 0; i < n; ++i)
        head += picker.pick(rng) < 100;
    EXPECT_NEAR(static_cast<double>(head) / n, head_p, 0.02);
}

TEST(ZipfPicker, DeterministicAndInRange)
{
    ZipfPicker picker(37, 1.1);
    Rng a(5), b(5);
    for (int i = 0; i < 5'000; ++i) {
        std::size_t ra = picker.pick(a);
        EXPECT_EQ(ra, picker.pick(b));
        EXPECT_LT(ra, 37u);
    }
}

TEST(ZipfPicker, EmptyDomainReturnsZero)
{
    ZipfPicker picker(0, 0.9);
    Rng rng(6);
    EXPECT_EQ(picker.size(), 0u);
    EXPECT_EQ(picker.pick(rng), 0u);
}

TEST(StatsUtil, ArithmeticMean)
{
    EXPECT_DOUBLE_EQ(amean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_EQ(amean({}), 0.0);
}

} // namespace
} // namespace glider
