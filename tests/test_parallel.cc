/**
 * @file
 * Tests for the parallel experiment infrastructure: the worker pool
 * (completion, exception propagation, shutdown), the process-wide
 * trace cache, and serial-vs-parallel determinism of the bench
 * SweepRunner.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "common/thread_pool.hh"
#include "traces/trace_cache.hh"

namespace glider {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, CompletesAllTasks)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    int sum = 0;
    for (auto &f : futures)
        sum += f.get();
    int expect = 0;
    for (int i = 0; i < 100; ++i)
        expect += i * i;
    EXPECT_EQ(sum, expect);
}

TEST(ThreadPool, TasksRunConcurrentlySafe)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&count] {
            count.fetch_add(1, std::memory_order_relaxed);
        }));
    }
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    ThreadPool pool(1);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 16; ++i) {
        futures.push_back(pool.submit([i] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            return i;
        }));
    }
    pool.shutdown(); // must run everything still queued, then join
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(futures[i].get(), i);
}

TEST(ThreadPool, SubmitAfterShutdownThrows)
{
    ThreadPool pool(2);
    pool.shutdown();
    EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
    pool.shutdown(); // idempotent
}

TEST(ThreadPool, ZeroThreadsClampedToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

// --------------------------------------------------------- trace cache

TEST(TraceCache, BuilderRunsOncePerKey)
{
    std::atomic<int> builds{0};
    traces::TraceCache cache([&builds](const std::string &name,
                                       std::uint64_t accesses,
                                       traces::Trace &out) {
        ++builds;
        out.setName(name);
        for (std::uint64_t i = 0; i < accesses; ++i)
            out.push(0x400000, i * 64);
    });

    const auto &a = cache.get("w", 100);
    const auto &b = cache.get("w", 100);
    EXPECT_EQ(&a, &b); // the same trace object, not a rebuild
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(a.size(), 100u);

    const auto &c = cache.get("w", 200); // different length: new key
    EXPECT_NE(&a, &c);
    EXPECT_EQ(builds.load(), 2);
    EXPECT_EQ(cache.size(), 2u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    cache.get("w", 100);
    EXPECT_EQ(builds.load(), 3);
}

TEST(TraceCache, ConcurrentRequestsBuildOnce)
{
    std::atomic<int> builds{0};
    traces::TraceCache cache([&builds](const std::string &,
                                       std::uint64_t accesses,
                                       traces::Trace &out) {
        ++builds;
        // Widen the race window: every thread should arrive while the
        // first build is still in flight.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        for (std::uint64_t i = 0; i < accesses; ++i)
            out.push(0x400000, i * 64);
    });

    ThreadPool pool(4);
    std::vector<std::future<const traces::Trace *>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(
            pool.submit([&cache] { return &cache.get("shared", 50); }));
    std::vector<const traces::Trace *> seen;
    for (auto &f : futures)
        seen.push_back(f.get());
    for (const auto *t : seen)
        EXPECT_EQ(t, seen.front());
    const traces::Trace *first = seen.front();
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(first->size(), 50u);
}

TEST(TraceCache, CachedWorkloadTraceMatchesFreshBuild)
{
    const std::uint64_t n = 20'000;
    const auto &cached = workloads::cachedTrace("astar", n);

    traces::Trace fresh("astar");
    workloads::makeWorkload("astar", n)->run(fresh);

    ASSERT_EQ(cached.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(cached[i].pc, fresh[i].pc);
        EXPECT_EQ(cached[i].address, fresh[i].address);
        EXPECT_EQ(cached[i].is_write, fresh[i].is_write);
        EXPECT_EQ(cached[i].core, fresh[i].core);
    }
}

/** Field-exact equality: parallel runs must be bit-identical. */
void
expectSameResult(const sim::SingleCoreResult &a,
                 const sim::SingleCoreResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.llc.accesses, b.llc.accesses);
    EXPECT_EQ(a.llc.hits, b.llc.hits);
    EXPECT_EQ(a.llc.misses, b.llc.misses);
    EXPECT_EQ(a.llc.bypasses, b.llc.bypasses);
}

TEST(TraceCache, PerPolicyResultsUnchangedVsFreshTrace)
{
    const std::uint64_t n = 20'000;
    traces::Trace fresh("astar");
    workloads::makeWorkload("astar", n)->run(fresh);

    for (const char *policy : {"LRU", "DRRIP", "SHiP++"}) {
        auto from_cache =
            bench::runPolicy(workloads::cachedTrace("astar", n), policy);
        auto from_fresh = bench::runPolicy(fresh, policy);
        expectSameResult(from_cache, from_fresh);
    }
}

// --------------------------------------------------------- sweep runner

/** Queue the test grid on @p sweep via explicit short traces. */
void
queueGrid(bench::SweepRunner &sweep,
          const std::vector<std::string> &names,
          const std::vector<std::string> &policies, std::uint64_t n)
{
    for (const auto &name : names) {
        for (const auto &policy : policies) {
            sweep.addCell([name, policy, n] {
                return bench::runPolicy(workloads::cachedTrace(name, n),
                                        policy);
            });
        }
    }
}

TEST(SweepRunner, SerialAndParallelTablesIdentical)
{
    const std::uint64_t n = 20'000;
    const std::vector<std::string> names = {"astar", "sphinx3"};
    const std::vector<std::string> policies = {"LRU", "DRRIP", "SHiP++"};

    bench::SweepRunner serial(1);
    queueGrid(serial, names, policies, n);
    auto serial_rows = serial.run();

    bench::SweepRunner parallel(4);
    EXPECT_EQ(parallel.threads(), 4u);
    queueGrid(parallel, names, policies, n);
    EXPECT_EQ(parallel.pending(), names.size() * policies.size());
    auto parallel_rows = parallel.run();
    EXPECT_EQ(parallel.pending(), 0u);

    ASSERT_EQ(serial_rows.size(), parallel_rows.size());
    for (std::size_t i = 0; i < serial_rows.size(); ++i)
        expectSameResult(serial_rows[i], parallel_rows[i]);

    // Rows come back in insertion order regardless of completion
    // order: row i is (names[i / P], policies[i % P]).
    for (std::size_t i = 0; i < parallel_rows.size(); ++i) {
        EXPECT_EQ(parallel_rows[i].workload, names[i / policies.size()]);
        EXPECT_EQ(parallel_rows[i].policy, policies[i % policies.size()]);
    }
}

TEST(SweepRunner, MatchesDirectSerialHarness)
{
    const std::uint64_t n = 20'000;
    bench::SweepRunner sweep(3);
    sweep.addCell([n] {
        return bench::runPolicy(workloads::cachedTrace("astar", n),
                                "LRU");
    });
    sweep.addCell([n] {
        return bench::runPolicy(workloads::cachedTrace("astar", n),
                                "SHiP++");
    });
    auto rows = sweep.run();
    ASSERT_EQ(rows.size(), 2u);

    expectSameResult(
        rows[0],
        bench::runPolicy(workloads::cachedTrace("astar", n), "LRU"));
    expectSameResult(
        rows[1],
        bench::runPolicy(workloads::cachedTrace("astar", n), "SHiP++"));
}

TEST(SweepRunner, RethrowsCellExceptions)
{
    bench::SweepRunner sweep(2);
    sweep.addCell([]() -> sim::SingleCoreResult {
        throw std::runtime_error("cell failed");
    });
    EXPECT_THROW(sweep.run(), std::runtime_error);
}

TEST(SweepRunner, ParallelMapPreservesItemOrder)
{
    std::vector<int> items(50);
    for (int i = 0; i < 50; ++i)
        items[i] = i;
    auto out = bench::parallelMap(
        items,
        [](int x) {
            if (x % 7 == 0) // stagger completion order
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            return x * 3;
        },
        4);
    ASSERT_EQ(out.size(), items.size());
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(out[i], i * 3);
}

} // namespace
} // namespace glider
