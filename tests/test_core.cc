/**
 * @file
 * Tests for the Glider core library: PCHR semantics, ISVM mechanics,
 * the adaptive threshold, the predictor, and the full policy —
 * including the paper's headline claim that history disambiguates
 * contexts a single-PC counter (Hawkeye) cannot.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "cachesim/cache.hh"
#include "common/rng.hh"
#include "core/glider_policy.hh"
#include "core/glider_predictor.hh"
#include "core/isvm.hh"
#include "core/pc_history_register.hh"
#include "core/policy_factory.hh"
#include "policies/hawkeye.hh"
#include "policies/lru.hh"

namespace glider {
namespace core {
namespace {

TEST(Pchr, KeepsLastKUniquePcs)
{
    PcHistoryRegister pchr(3);
    pchr.observe(1);
    pchr.observe(2);
    pchr.observe(1); // duplicate: refresh, not insert
    pchr.observe(3);
    pchr.observe(4); // evicts 2 (LRU among unique)
    EXPECT_EQ(pchr.size(), 3u);
    EXPECT_TRUE(pchr.contains(1));
    EXPECT_FALSE(pchr.contains(2));
    EXPECT_TRUE(pchr.contains(3));
    EXPECT_TRUE(pchr.contains(4));
}

TEST(Pchr, KSparseRepresentationIsOrderInsensitive)
{
    // The Figure 7 property: two orderings of the same unique PCs
    // produce the same feature set.
    PcHistoryRegister a(4), b(4);
    for (auto pc : {10, 11, 13})
        a.observe(pc);
    for (auto pc : {13, 11, 10})
        b.observe(pc);
    auto sa = a.snapshot();
    auto sb = b.snapshot();
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    EXPECT_EQ(sa, sb);
}

TEST(Isvm, SlotHashWithinSixteen)
{
    for (std::uint64_t pc = 0; pc < 1000; ++pc)
        EXPECT_LT(Isvm::slotOf(pc * 4 + 0x400000), 16u);
}

// Regression tests for the one-hash contract (a pre-existing bug
// hashed every history PC twice per train: once for the threshold
// check, once for the update). The thread-local invocation counter
// in isvmSlotOf makes the contract directly observable.

TEST(Isvm, TrainHashesEachHistoryPcExactlyOnce)
{
    Isvm isvm;
    opt::PcHistory h{100, 200, 300, 400, 500};
    std::uint64_t before = isvmSlotHashCount();
    isvm.train(h, true, 1000);
    EXPECT_EQ(isvmSlotHashCount() - before, h.size())
        << "train must hash each history PC exactly once "
           "(double-hash regression)";

    // A threshold-skipped train still costs exactly one hash per PC:
    // the same feature serves the check and the (skipped) update.
    for (int i = 0; i < 50; ++i)
        isvm.train(h, true, 10);
    ASSERT_GT(isvm.predict(h), 10); // next positive train skips
    before = isvmSlotHashCount();
    isvm.train(h, true, 10);
    EXPECT_EQ(isvmSlotHashCount() - before, h.size());
}

TEST(Isvm, TrainMatchesHandHashedExpectation)
{
    // Pin the update against slots computed from the published hash
    // (the top 4 bits of the splitmix/murmur finalizer), written out
    // by hand so a change to isvmSlotOf's hashing cannot hide.
    auto hand_slot = [](std::uint64_t pc) {
        std::uint64_t x = pc;
        x ^= x >> 33;
        x *= 0xFF51AFD7ED558CCDull;
        x ^= x >> 33;
        x *= 0xC4CEB9FE1A85EC53ull;
        x ^= x >> 33;
        return static_cast<std::size_t>(x >> 60);
    };
    opt::PcHistory h{0xA0, 0xB4, 0xC8, 0xDC, 0xF0};
    Isvm isvm;
    isvm.train(h, true, 0); // sum 0 is not above threshold: applies
    int want[16] = {};
    for (std::uint64_t pc : h)
        ++want[hand_slot(pc)];
    auto weights = isvm.weights();
    for (std::size_t j = 0; j < Isvm::kWeights; ++j)
        EXPECT_EQ(static_cast<int>(weights[j]), want[j])
            << "slot " << j;
}

TEST(GliderPredictor, TrainHashesEachHistoryPcExactlyOnce)
{
    GliderPredictor pred;
    opt::PcHistory h{0x10, 0x20, 0x30, 0x40, 0x50};
    std::uint64_t before = isvmSlotHashCount();
    pred.train(0x99, 0, h, true);
    EXPECT_EQ(isvmSlotHashCount() - before, h.size());
}

TEST(GliderPredictor, PerAccessPredictionIsHashFree)
{
    // The PCHR maintains the slot-count feature incrementally, so a
    // prediction against the live history costs zero slot hashes.
    GliderPredictor pred;
    for (std::uint64_t pc = 1; pc <= 5; ++pc)
        pred.observe(pc * 64, 0);
    std::uint64_t before = isvmSlotHashCount();
    pred.decisionSum(0x1234, 0);
    EXPECT_EQ(isvmSlotHashCount() - before, 0u);

    // The batched path with a pre-resolved feature is hash-free too.
    SlotCounts counts = pred.historyCounts(0);
    PredictRequest req;
    req.pc = 0x1234;
    req.counts = &counts;
    Prediction out;
    before = isvmSlotHashCount();
    pred.predictMany(std::span<const PredictRequest>(&req, 1),
                     std::span<Prediction>(&out, 1));
    EXPECT_EQ(isvmSlotHashCount() - before, 0u);
}

TEST(Pchr, ObserveHashesIncrementally)
{
    PcHistoryRegister pchr(3);
    std::uint64_t before = isvmSlotHashCount();
    pchr.observe(100); // new PC: one hash to add its slot
    EXPECT_EQ(isvmSlotHashCount() - before, 1u);
    before = isvmSlotHashCount();
    pchr.observe(100); // refresh: no hashing at all
    EXPECT_EQ(isvmSlotHashCount() - before, 0u);
    pchr.observe(200);
    pchr.observe(300);
    before = isvmSlotHashCount();
    pchr.observe(400); // insert + evict LRU: two hashes
    EXPECT_EQ(isvmSlotHashCount() - before, 2u);
}

TEST(Isvm, TrainingMovesPrediction)
{
    Isvm isvm;
    opt::PcHistory h{100, 200, 300};
    EXPECT_EQ(isvm.predict(h), 0);
    for (int i = 0; i < 10; ++i)
        isvm.train(h, true, 1000);
    EXPECT_GT(isvm.predict(h), 0);
    for (int i = 0; i < 30; ++i)
        isvm.train(h, false, 1000);
    EXPECT_LT(isvm.predict(h), 0);
}

TEST(Isvm, ThresholdStopsUpdates)
{
    Isvm isvm;
    opt::PcHistory h{100, 200, 300};
    for (int i = 0; i < 100; ++i)
        isvm.train(h, true, /*threshold=*/6);
    // Updates stop once the sum exceeds the threshold. One final
    // update can overshoot by at most k^2 (k history elements, each
    // contributing to a slot that up to k elements share).
    EXPECT_LE(isvm.predict(h), 6 + 9);
}

TEST(Isvm, WeightsSaturateAtEightBit)
{
    Isvm isvm;
    opt::PcHistory h{100};
    for (int i = 0; i < 500; ++i)
        isvm.train(h, true, 100000);
    EXPECT_LE(isvm.predict(h), Isvm::kWeightMax);
}

TEST(Isvm, StorageIsSixteenSignedBytes)
{
    // The Table 3 budget is real, not bookkeeping: one ISVM costs
    // exactly its 16 8-bit weights.
    EXPECT_EQ(sizeof(Isvm), 16u);
    EXPECT_EQ(Isvm::kWeightMax, 127);
    EXPECT_EQ(Isvm::kWeightMin, -128);
}

TEST(Isvm, SaturationBoundaryIsExact)
{
    // Drive one slot to each rail and pin the boundary arithmetic:
    // the weight parks exactly at +127 / -128, further same-sign
    // updates are no-ops, and one opposite update steps off the rail
    // by exactly the multiplicity.
    Isvm isvm;
    opt::PcHistory h{100};
    auto slot = Isvm::slotOf(100);
    for (int i = 0; i < 500; ++i)
        isvm.train(h, true, 100000);
    EXPECT_EQ(isvm.weights()[slot], Isvm::kWeightMax);
    EXPECT_EQ(isvm.predict(h), Isvm::kWeightMax);
    isvm.train(h, true, 100000); // saturated: must not wrap
    EXPECT_EQ(isvm.weights()[slot], Isvm::kWeightMax);
    isvm.train(h, false, 100000);
    EXPECT_EQ(isvm.weights()[slot], Isvm::kWeightMax - 1);
    for (int i = 0; i < 600; ++i)
        isvm.train(h, false, 100000);
    EXPECT_EQ(isvm.weights()[slot], Isvm::kWeightMin);
    EXPECT_EQ(isvm.predict(h), Isvm::kWeightMin);
    isvm.train(h, false, 100000); // saturated low: must not wrap
    EXPECT_EQ(isvm.weights()[slot], Isvm::kWeightMin);
    isvm.train(h, true, 100000);
    EXPECT_EQ(isvm.weights()[slot], Isvm::kWeightMin + 1);
}

TEST(Isvm, DuplicateSlotUpdatesClampLikePerStepApplication)
{
    // Two history PCs landing in the same slot apply a ±2 step; near
    // the rail the clamp must agree with one-at-a-time application
    // (same-sign contributions make the orderings equivalent).
    std::uint64_t a = 0, b = 0;
    for (std::uint64_t pc = 1; pc < 100000; ++pc) {
        if (Isvm::slotOf(pc) == Isvm::slotOf(0x12345)) {
            (a == 0 ? a : b) = pc;
            if (b != 0)
                break;
        }
    }
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    Isvm isvm;
    opt::PcHistory pair{a, b};
    for (int i = 0; i < 70; ++i)
        isvm.train(pair, true, 100000); // +2 per step
    auto slot = Isvm::slotOf(a);
    EXPECT_EQ(isvm.weights()[slot], Isvm::kWeightMax);
    EXPECT_EQ(isvm.predict(pair), 2 * Isvm::kWeightMax);
}

TEST(Isvm, SeparatesContextsByHistory)
{
    // Same current PC, two different histories with opposite labels:
    // the ISVM must learn both (the thing a per-PC counter cannot).
    Isvm isvm;
    opt::PcHistory hot{1111, 2222};
    opt::PcHistory cold{3333, 4444};
    for (int i = 0; i < 40; ++i) {
        isvm.train(hot, true, 30);
        isvm.train(cold, false, 30);
    }
    EXPECT_GT(isvm.predict(hot), 0);
    EXPECT_LT(isvm.predict(cold), 0);
}

TEST(IsvmTable, StorageMatchesPaperBudget)
{
    // §5.4: 2048 PCs x 16 weights x 8 bits = 32.8KB (decimal KB).
    IsvmTable table(2048);
    EXPECT_EQ(table.storageBytes(), 2048u * 16u);
    EXPECT_NEAR(static_cast<double>(table.storageBytes()) / 1000.0,
                32.8, 0.1);
}

TEST(IsvmTable, PcsMapStably)
{
    IsvmTable table(64);
    opt::PcHistory h{5};
    table.forPc(0xABC).train(h, true, 1000);
    EXPECT_GT(table.forPc(0xABC).predict(h), 0);
    // A different core hashes elsewhere (almost surely).
    EXPECT_EQ(table.forPc(0xABC, 1).predict(h), 0);
}

TEST(AdaptiveThreshold, StartsAtFirstCandidate)
{
    AdaptiveThreshold at;
    EXPECT_EQ(at.current(), 0);
}

TEST(AdaptiveThreshold, CyclesThroughCandidatesWhileExploring)
{
    AdaptiveThreshold at;
    std::set<int> seen;
    for (int i = 0; i < 5 * 2048; ++i) {
        seen.insert(at.current());
        at.record(true);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(AdaptiveThreshold, ExploitsBestCandidate)
{
    AdaptiveThreshold at;
    // Make candidate index 2 (threshold 100) look best: feed correct
    // predictions only while it is active.
    for (int i = 0; i < 5 * 2048; ++i) {
        at.record(at.current() == 100);
    }
    EXPECT_EQ(at.current(), 100);
}

TEST(GliderPredictor, ClassifyThresholds)
{
    GliderPredictor pred;
    EXPECT_EQ(pred.classify(60), GliderPrediction::FriendlyHigh);
    EXPECT_EQ(pred.classify(59), GliderPrediction::FriendlyLow);
    EXPECT_EQ(pred.classify(0), GliderPrediction::FriendlyLow);
    EXPECT_EQ(pred.classify(-1), GliderPrediction::Averse);
}

TEST(GliderPredictor, LearnsContextDependentPattern)
{
    GliderPredictor pred;
    std::uint64_t shared_pc = 0x4000;
    opt::PcHistory ctx_a{0x100, 0x104};
    opt::PcHistory ctx_b{0x200, 0x204};
    for (int i = 0; i < 200; ++i) {
        pred.train(shared_pc, 0, ctx_a, true);
        pred.train(shared_pc, 0, ctx_b, false);
    }
    EXPECT_NE(pred.predictWith(shared_pc, ctx_a),
              GliderPrediction::Averse);
    EXPECT_EQ(pred.predictWith(shared_pc, ctx_b),
              GliderPrediction::Averse);
}

TEST(GliderPredictor, StorageBudgetNearPaper)
{
    GliderPredictor pred;
    // ISVM table 32.8KB + PCHR 0.01KB for one core.
    EXPECT_NEAR(static_cast<double>(pred.storageBytes()), 32778.0,
                64.0);
}

TEST(PolicyFactory, AllNamesConstruct)
{
    for (const auto &name : policyNames()) {
        auto p = makePolicy(name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_EQ(p->name(), name);
    }
}

TEST(PolicyFactory, PaperLineup)
{
    auto lineup = paperLineup();
    EXPECT_EQ(lineup.size(), 4u);
    EXPECT_EQ(lineup.back(), "Glider");
}

TEST(PolicyFactory, ZooLineupConstructs)
{
    auto zoo = zooLineup();
    EXPECT_EQ(zoo.size(), 5u);
    auto names = policyNames();
    std::set<std::string> known(names.begin(), names.end());
    for (const auto &name : zoo) {
        EXPECT_TRUE(known.count(name)) << name;
        EXPECT_EQ(makePolicy(name)->name(), name);
    }
}

sim::CacheConfig
smallLlc()
{
    sim::CacheConfig c;
    c.size_bytes = 64 * 16 * 64;
    c.ways = 16;
    return c;
}

TEST(GliderPolicy, BeatsLruOnThrash)
{
    sim::Cache glider(smallLlc(), std::make_unique<GliderPolicy>());
    sim::Cache lru(smallLlc(),
                   std::make_unique<policies::LruPolicy>());
    std::uint64_t h_glider = 0, h_lru = 0;
    for (int sweep = 0; sweep < 80; ++sweep) {
        for (std::uint64_t b = 0; b < 32; ++b) {
            std::uint64_t block = b * 64; // all in set 0 (sampled)
            std::uint64_t pc = 0x400000 + (b % 4) * 4;
            h_glider += glider.access(0, pc, block, false);
            h_lru += lru.access(0, pc, block, false);
        }
    }
    EXPECT_EQ(h_lru, 0u);
    EXPECT_GT(h_glider, 80u * 32u / 10u);
}

/**
 * The paper's central claim, as a unit-style integration test: on a
 * stream whose caching behaviour is decided by the *calling context*
 * of a shared PC, Glider's online accuracy must clearly exceed
 * Hawkeye's, because the PCHR disambiguates what a per-PC counter
 * blends together.
 */
TEST(GliderPolicy, ContextSignalBeatsHawkeyeAccuracy)
{
    auto glider_owner = std::make_unique<GliderPolicy>();
    auto hawkeye_owner = std::make_unique<policies::HawkeyePolicy>();
    auto *glider_probe = glider_owner.get();
    auto *hawkeye_probe = hawkeye_owner.get();
    sim::Cache glider(smallLlc(), std::move(glider_owner));
    sim::Cache hawkeye(smallLlc(), std::move(hawkeye_owner));

    Rng rng(42);
    std::uint64_t hot_next = 0, cold_next = 0;
    const std::uint64_t kHot = 256;       // recycled: OPT-cacheable
    const std::uint64_t kCold = 1u << 20; // huge: never reused in time
    for (int i = 0; i < 120000; ++i) {
        bool hot = rng.chance(0.5);
        std::uint64_t caller = hot ? 0x1000 : 0x2000;
        std::uint64_t shared = 0x3000;
        std::uint64_t block;
        if (hot)
            block = (hot_next++ % kHot);
        else
            block = kCold + cold_next++;
        // Caller marker access, then the shared-PC access whose fate
        // depends on the caller.
        glider.access(0, caller, 8'000'000 + caller, false);
        hawkeye.access(0, caller, 8'000'000 + caller, false);
        glider.access(0, shared, block, false);
        hawkeye.access(0, shared, block, false);
        // Filler call sites (as real code between scheduler events):
        // their PCs flush the stale caller out of the 5-entry PCHR so
        // only the *current* caller distinguishes the contexts.
        for (std::uint64_t f = 0; f < 4; ++f) {
            std::uint64_t fpc = 0x5000 + f * 4;
            glider.access(0, fpc, 9'000'000 + f * 64, false);
            hawkeye.access(0, fpc, 9'000'000 + f * 64, false);
        }
    }
    double acc_glider = glider_probe->predictorAccuracy().accuracy();
    double acc_hawkeye = hawkeye_probe->predictorAccuracy().accuracy();
    EXPECT_GT(glider_probe->predictorAccuracy().events, 1000u);
    EXPECT_GT(acc_glider, acc_hawkeye + 0.05);
}

TEST(GliderPolicy, PredictorAccessibleAfterReset)
{
    GliderPolicy policy;
    policy.reset(sim::CacheGeometry{64, 16, 1});
    EXPECT_EQ(policy.predictor().config().pchr_size, 5u);
}

TEST(GliderPolicy, ConfigurableK)
{
    GliderConfig cfg;
    cfg.pchr_size = 2;
    GliderPolicy policy(cfg);
    policy.reset(sim::CacheGeometry{64, 16, 1});
    EXPECT_EQ(policy.predictor().config().pchr_size, 2u);
}

} // namespace
} // namespace core
} // namespace glider
