/**
 * @file
 * Cross-module integration and property tests: full workload ->
 * hierarchy -> policy pipelines, MIN-dominance invariants, and the
 * qualitative orderings the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "cachesim/simulator.hh"
#include "core/glider_policy.hh"
#include "core/policy_factory.hh"
#include "opt/belady.hh"
#include "opt/llc_stream.hh"
#include "policies/hawkeye.hh"
#include "workloads/registry.hh"
#include "workloads/scheduler_kernel.hh"

namespace glider {
namespace {

using core::makePolicy;

sim::SimOptions
fastOpts()
{
    sim::SimOptions opts;
    opts.warmup_fraction = 0.2;
    return opts;
}

TEST(Integration, EveryPolicyRunsEveryOfflineWorkload)
{
    for (const auto &wl : workloads::offlineSubset()) {
        const auto &trace = workloads::cachedTrace(wl, 150'000);
        for (const auto &policy : core::policyNames()) {
            auto res = sim::runSingleCore(trace, makePolicy(policy),
                                          fastOpts());
            EXPECT_GT(res.ipc, 0.0) << wl << "/" << policy;
            EXPECT_LE(res.llc.misses, res.llc.accesses)
                << wl << "/" << policy;
        }
    }
}

/**
 * MIN dominance: no online policy may beat exact Belady on LLC
 * misses over the same (policy-independent) LLC access stream.
 */
class MinDominance : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MinDominance, NoPolicyBeatsBelady)
{
    const auto &trace = workloads::cachedTrace(GetParam(), 150'000);
    sim::HierarchyConfig cfg;
    auto llc_stream = opt::extractLlcStream(trace, cfg);
    if (llc_stream.empty())
        GTEST_SKIP();
    auto min = opt::simulateBelady(llc_stream, cfg.llc.sets(),
                                   cfg.llc.ways);
    std::uint64_t min_misses = llc_stream.size() - min.hit_count;
    sim::SimOptions opts;
    opts.warmup_fraction = 0.0; // stats over the whole stream
    for (const auto &policy : {"LRU", "SHiP++", "Hawkeye", "Glider"}) {
        auto res = sim::runSingleCore(trace, makePolicy(policy), opts);
        EXPECT_GE(res.llc.misses, min_misses) << policy;
    }
}

INSTANTIATE_TEST_SUITE_P(OfflineSubset, MinDominance,
                         ::testing::Values("mcf", "omnetpp", "soplex",
                                           "sphinx3", "astar", "lbm"));

TEST(Integration, LlcStreamIsPolicyIndependent)
{
    // The LLC sees the same accesses under any LLC policy, because
    // L1/L2 are fixed: compare access counts between LRU and Glider.
    const auto &trace = workloads::cachedTrace("soplex", 120'000);
    sim::SimOptions opts;
    opts.warmup_fraction = 0.0;
    auto a = sim::runSingleCore(trace, makePolicy("LRU"), opts);
    auto b = sim::runSingleCore(trace, makePolicy("Glider"), opts);
    EXPECT_EQ(a.llc.accesses, b.llc.accesses);
}

/**
 * A scheduler workload scaled so several recycled-pool reuse cycles
 * fit in a short trace, paired with a proportionally smaller
 * hierarchy (the Table 1 shapes shrunk 8x). Used where a test needs
 * LLC-level reuse structure without multi-million-access traces.
 */
const traces::Trace &
smallSchedulerTrace()
{
    static traces::Trace trace = [] {
        workloads::SchedulerKernel::Params p;
        p.name = "sched-small";
        p.kernel_id = 200;
        p.target_accesses = 400'000;
        p.ifg_pool_msgs = 512;   // 2048 lines: fits the small LLC
        p.big_pool_msgs = 50'000;
        p.caller_buf_elems = 16'384; // 128KB: misses the small L2
        traces::Trace t(p.name);
        workloads::SchedulerKernel(p).run(t);
        return t;
    }();
    return trace;
}

sim::SimOptions
smallHierarchyOpts()
{
    sim::SimOptions opts;
    opts.hierarchy.l2.size_bytes = 64 * 1024;   // 128 sets x 8 ways
    opts.hierarchy.llc.size_bytes = 256 * 1024; // 256 sets x 16 ways
    opts.warmup_fraction = 0.2;
    return opts;
}

TEST(Integration, GliderReducesMissesVsLruOnContextWorkloads)
{
    // The scheduler workload is the paper's motivating case: a
    // learning policy must cut misses relative to LRU, because the
    // recycled message pool thrashes LRU but fits an OPT-guided LLC.
    const auto &trace = smallSchedulerTrace();
    auto opts = smallHierarchyOpts();
    auto lru = sim::runSingleCore(trace, makePolicy("LRU"), opts);
    auto gld = sim::runSingleCore(trace, makePolicy("Glider"), opts);
    EXPECT_LT(gld.llc.misses, lru.llc.misses * 95 / 100);
}

TEST(Integration, GliderSpeedupTracksMissReduction)
{
    const auto &trace = workloads::cachedTrace("libquantum", 300'000);
    auto lru = sim::runSingleCore(trace, makePolicy("LRU"), fastOpts());
    auto gld = sim::runSingleCore(trace, makePolicy("Glider"),
                                  fastOpts());
    if (gld.llc.misses < lru.llc.misses) {
        EXPECT_GE(gld.ipc, lru.ipc * 0.999);
    }
}

TEST(Integration, OnlineAccuracyProbesWork)
{
    const auto &trace = smallSchedulerTrace();
    // Drive a hierarchy directly so the policy stays reachable for
    // the accuracy probe after the run.
    sim::HierarchyConfig cfg = smallHierarchyOpts().hierarchy;
    sim::Hierarchy hier(cfg, 1, core::makePolicy("Glider"));
    auto &llc_policy =
        static_cast<core::GliderPolicy &>(hier.llc().policy());
    for (const auto &rec : trace)
        hier.access(0, rec.pc, rec.address, rec.is_write);
    EXPECT_GT(llc_policy.predictorAccuracy().events, 100u);
    EXPECT_GT(llc_policy.predictorAccuracy().accuracy(), 0.4);
}

TEST(Integration, MultiCoreMixWithGlider)
{
    const auto &t0 = workloads::cachedTrace("mcf", 120'000);
    const auto &t1 = workloads::cachedTrace("lbm", 120'000);
    const auto &t2 = workloads::cachedTrace("bfs", 120'000);
    const auto &t3 = workloads::cachedTrace("sphinx3", 120'000);
    sim::SimOptions opts;
    opts.hierarchy = sim::HierarchyConfig::forCores(4);
    opts.warmup_fraction = 0.1;
    auto res = sim::runMultiCore({&t0, &t1, &t2, &t3},
                                 makePolicy("Glider"), 60'000, opts);
    ASSERT_EQ(res.ipc_shared.size(), 4u);
    for (auto ipc : res.ipc_shared)
        EXPECT_GT(ipc, 0.0);
}

TEST(Integration, SharedLlcContentionLowersIpc)
{
    const auto &t = workloads::cachedTrace("mcf", 120'000);
    sim::SimOptions opts4;
    opts4.hierarchy = sim::HierarchyConfig::forCores(4);
    opts4.warmup_fraction = 0.1;
    // Solo on the 4-core-sized LLC vs sharing it with three copies
    // of itself: contention must not *increase* IPC.
    auto solo = sim::runMultiCore({&t}, makePolicy("LRU"), 60'000,
                                  opts4);
    auto shared = sim::runMultiCore({&t, &t, &t, &t},
                                    makePolicy("LRU"), 60'000, opts4);
    EXPECT_LE(shared.ipc_shared[0], solo.ipc_shared[0] * 1.05);
}

TEST(Integration, WeightedSpeedupMethodology)
{
    // End-to-end §5.1 metric computation on a small mix.
    std::vector<std::string> mix{"mcf", "lbm"};
    sim::SimOptions opts;
    opts.hierarchy = sim::HierarchyConfig::forCores(2);
    opts.warmup_fraction = 0.1;

    std::vector<const traces::Trace *> traces;
    for (const auto &name : mix)
        traces.push_back(&workloads::cachedTrace(name, 100'000));

    double ws_lru = 0.0, ws_glider = 0.0;
    std::vector<double> single;
    for (auto *t : traces) {
        auto r = sim::runMultiCore({t}, makePolicy("LRU"), 50'000,
                                   opts);
        single.push_back(r.ipc_shared[0]);
    }
    auto lru = sim::runMultiCore(traces, makePolicy("LRU"), 50'000,
                                 opts);
    auto gld = sim::runMultiCore(traces, makePolicy("Glider"), 50'000,
                                 opts);
    for (std::size_t c = 0; c < traces.size(); ++c) {
        ws_lru += lru.ipc_shared[c] / single[c];
        ws_glider += gld.ipc_shared[c] / single[c];
    }
    EXPECT_GT(ws_lru, 0.0);
    EXPECT_GT(ws_glider, 0.0);
    // No hard ordering asserted here (mix-dependent); the bench
    // reports the full comparison.
}

} // namespace
} // namespace glider
