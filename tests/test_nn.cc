/**
 * @file
 * Tests for the mini NN library: tensor ops, finite-difference
 * gradient checks for every layer (linear, embedding, LSTM cell,
 * scaled attention), and optimizer convergence on toy problems.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/attention.hh"
#include "nn/layers.hh"
#include "nn/optim.hh"
#include "nn/tensor.hh"

namespace glider {
namespace nn {
namespace {

TEST(Tensor, ShapeAndIndexing)
{
    Tensor t(2, 3, 1.5f);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.size(), 6u);
    t(1, 2) = 7.0f;
    EXPECT_FLOAT_EQ(t(1, 2), 7.0f);
    EXPECT_FLOAT_EQ(t(0, 0), 1.5f);
}

TEST(Tensor, XavierWithinLimit)
{
    Rng rng(1);
    Tensor t = Tensor::xavier(64, 64, rng);
    float limit = std::sqrt(6.0f / 128.0f);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_LE(std::abs(t.data()[i]), limit);
    }
}

TEST(Tensor, MatvecAccumMatchesManual)
{
    Tensor w(2, 3);
    w(0, 0) = 1;
    w(0, 1) = 2;
    w(0, 2) = 3;
    w(1, 0) = -1;
    w(1, 1) = 0;
    w(1, 2) = 1;
    float x[3] = {1, 1, 2};
    float y[2] = {10, 20};
    matvecAccum(w, x, y);
    EXPECT_FLOAT_EQ(y[0], 10 + 1 + 2 + 6);
    EXPECT_FLOAT_EQ(y[1], 20 - 1 + 0 + 2);
}

TEST(Tensor, SoftmaxNormalises)
{
    float x[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    softmaxInPlace(x, 4);
    float sum = x[0] + x[1] + x[2] + x[3];
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(x[3], x[0]);
}

TEST(Tensor, SoftmaxStableForLargeInputs)
{
    float x[2] = {1000.0f, 1001.0f};
    softmaxInPlace(x, 2);
    EXPECT_FALSE(std::isnan(x[0]));
    EXPECT_NEAR(x[0] + x[1], 1.0f, 1e-6f);
}

/**
 * Central finite-difference check of an analytic gradient: for a
 * scalar function f over a parameter span, compare df/dp.
 */
void
checkGrad(float *param, const float *analytic, std::size_t n,
          const std::function<float()> &f, float eps = 1e-3f,
          float tol = 2e-2f)
{
    for (std::size_t i = 0; i < n; ++i) {
        float keep = param[i];
        param[i] = keep + eps;
        float hi = f();
        param[i] = keep - eps;
        float lo = f();
        param[i] = keep;
        float numeric = (hi - lo) / (2 * eps);
        EXPECT_NEAR(analytic[i], numeric,
                    tol * std::max(1.0f, std::abs(numeric)))
            << "param " << i;
    }
}

TEST(GradCheck, LinearLayer)
{
    Rng rng(2);
    Linear lin(3, 2, rng);
    float x[3] = {0.5f, -1.0f, 2.0f};

    // Scalar loss: sum of squared outputs.
    auto loss = [&] {
        float y[2];
        lin.forward(x, y);
        return 0.5f * (y[0] * y[0] + y[1] * y[1]);
    };
    float y[2];
    lin.forward(x, y);
    float dy[2] = {y[0], y[1]};
    float dx[3] = {0, 0, 0};
    lin.backward(x, dy, dx);

    auto params = lin.params();
    checkGrad(params[0]->value.data(), params[0]->grad.data(),
              params[0]->value.size(), loss);
    checkGrad(params[1]->value.data(), params[1]->grad.data(),
              params[1]->value.size(), loss);
    checkGrad(x, dx, 3, loss);
}

TEST(GradCheck, EmbeddingRow)
{
    Rng rng(3);
    Embedding emb(5, 4, rng);
    auto loss = [&] {
        const float *v = emb.forward(2);
        float acc = 0;
        for (int j = 0; j < 4; ++j)
            acc += 0.5f * v[j] * v[j];
        return acc;
    };
    const float *v = emb.forward(2);
    float dv[4] = {v[0], v[1], v[2], v[3]};
    emb.backward(2, dv);
    auto *p = emb.params()[0];
    checkGrad(p->value.data(), p->grad.data(), p->value.size(), loss);
}

TEST(GradCheck, LstmCellAllParams)
{
    Rng rng(4);
    const std::size_t in = 3, H = 4;
    LstmCell cell(in, H, rng);
    float x[3] = {0.2f, -0.4f, 0.9f};
    std::vector<float> h0(H, 0.1f), c0(H, -0.2f);

    auto loss = [&] {
        std::vector<float> h(H), c(H);
        LstmStepCache cache;
        cell.forwardStep(x, h0.data(), c0.data(), h.data(), c.data(),
                         cache);
        float acc = 0;
        for (std::size_t j = 0; j < H; ++j)
            acc += 0.5f * h[j] * h[j];
        return acc;
    };

    std::vector<float> h(H), c(H);
    LstmStepCache cache;
    cell.forwardStep(x, h0.data(), c0.data(), h.data(), c.data(), cache);
    std::vector<float> dh(h), dc(H, 0.0f), dx(in, 0.0f), dh0(H, 0.0f);
    cell.backwardStep(cache, dh.data(), dc.data(), dx.data(),
                      dh0.data());

    for (auto *p : cell.params()) {
        checkGrad(p->value.data(), p->grad.data(), p->value.size(),
                  loss);
    }
    checkGrad(x, dx.data(), in, loss);
    checkGrad(h0.data(), dh0.data(), H, loss);
    // dc on return is d(loss)/d(c_prev).
    checkGrad(c0.data(), dc.data(), H, loss);
}

TEST(GradCheck, ScaledAttention)
{
    const std::size_t D = 4, S = 3;
    Rng rng(5);
    std::vector<std::vector<float>> src(S, std::vector<float>(D));
    std::vector<float> ht(D);
    for (auto &v : src)
        for (auto &f : v)
            f = static_cast<float>(rng.uniform() - 0.5);
    for (auto &f : ht)
        f = static_cast<float>(rng.uniform() - 0.5);

    ScaledDotAttention attn(2.0f);
    auto loss = [&] {
        std::vector<const float *> sp;
        for (auto &v : src)
            sp.push_back(v.data());
        std::vector<float> ctx(D);
        AttentionCache cache;
        attn.forward(sp, ht.data(), D, ctx.data(), cache);
        float acc = 0;
        for (std::size_t j = 0; j < D; ++j)
            acc += 0.5f * ctx[j] * ctx[j];
        return acc;
    };

    std::vector<const float *> sp;
    for (auto &v : src)
        sp.push_back(v.data());
    std::vector<float> ctx(D);
    AttentionCache cache;
    attn.forward(sp, ht.data(), D, ctx.data(), cache);

    std::vector<std::vector<float>> dsrc(S, std::vector<float>(D, 0.0f));
    std::vector<float *> dsp;
    for (auto &v : dsrc)
        dsp.push_back(v.data());
    std::vector<float> dht(D, 0.0f);
    attn.backward(sp, ht.data(), D, ctx.data(), cache, dsp, dht.data());

    checkGrad(ht.data(), dht.data(), D, loss);
    for (std::size_t s = 0; s < S; ++s)
        checkGrad(src[s].data(), dsrc[s].data(), D, loss);
}

TEST(Attention, WeightsAreDistribution)
{
    const std::size_t D = 8, S = 5;
    Rng rng(6);
    std::vector<std::vector<float>> src(S, std::vector<float>(D));
    std::vector<float> ht(D);
    for (auto &v : src)
        for (auto &f : v)
            f = static_cast<float>(rng.gaussian());
    for (auto &f : ht)
        f = static_cast<float>(rng.gaussian());
    std::vector<const float *> sp;
    for (auto &v : src)
        sp.push_back(v.data());
    std::vector<float> ctx(D);
    AttentionCache cache;
    ScaledDotAttention(1.0f).forward(sp, ht.data(), D, ctx.data(),
                                     cache);
    float sum = 0;
    for (auto w : cache.weights) {
        EXPECT_GE(w, 0.0f);
        sum += w;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Attention, LargerScaleIsSparser)
{
    // Entropy of the attention distribution must fall as the scaling
    // factor grows — the §4.2 mechanism that exposes the anchor PCs.
    const std::size_t D = 8, S = 16;
    Rng rng(7);
    std::vector<std::vector<float>> src(S, std::vector<float>(D));
    std::vector<float> ht(D);
    for (auto &v : src)
        for (auto &f : v)
            f = static_cast<float>(rng.gaussian());
    for (auto &f : ht)
        f = static_cast<float>(rng.gaussian());
    std::vector<const float *> sp;
    for (auto &v : src)
        sp.push_back(v.data());

    auto entropy = [&](float scale) {
        std::vector<float> ctx(D);
        AttentionCache cache;
        ScaledDotAttention(scale).forward(sp, ht.data(), D, ctx.data(),
                                          cache);
        float e = 0;
        for (auto w : cache.weights)
            if (w > 0)
                e -= w * std::log(w);
        return e;
    };
    EXPECT_GT(entropy(1.0f), entropy(5.0f));
}

TEST(Optim, SgdDescendsQuadratic)
{
    Param p(Tensor(1, 1, 5.0f));
    Sgd opt(0.1f);
    for (int i = 0; i < 100; ++i) {
        p.grad(0, 0) = 2.0f * p.value(0, 0); // d/dx x^2
        opt.step({&p});
    }
    EXPECT_NEAR(p.value(0, 0), 0.0f, 1e-3f);
}

TEST(Optim, AdamDescendsQuadratic)
{
    Param p(Tensor(1, 1, 5.0f));
    Adam opt(0.1f);
    for (int i = 0; i < 500; ++i) {
        p.grad(0, 0) = 2.0f * p.value(0, 0);
        opt.step({&p});
    }
    EXPECT_NEAR(p.value(0, 0), 0.0f, 1e-2f);
}

TEST(Optim, StepZeroesGradients)
{
    Param p(Tensor(2, 2, 1.0f));
    p.grad(0, 0) = 3.0f;
    Sgd opt(0.01f);
    opt.step({&p});
    EXPECT_FLOAT_EQ(p.grad(0, 0), 0.0f);
}

TEST(Optim, BceLogitGradientSign)
{
    float d;
    bceWithLogit(0.0f, true, d);
    EXPECT_LT(d, 0.0f); // push logit up for a positive label
    bceWithLogit(0.0f, false, d);
    EXPECT_GT(d, 0.0f);
}

TEST(Optim, BceLossFallsWithConfidence)
{
    float d;
    float weak = bceWithLogit(0.5f, true, d);
    float strong = bceWithLogit(3.0f, true, d);
    EXPECT_GT(weak, strong);
}

TEST(Training, LinearModelLearnsAnd)
{
    // Tiny supervised sanity check: a linear layer + BCE learns AND.
    Rng rng(8);
    Linear lin(2, 1, rng);
    Adam opt(0.05f);
    const float xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const bool ys[4] = {false, false, false, true};
    for (int epoch = 0; epoch < 400; ++epoch) {
        for (int i = 0; i < 4; ++i) {
            float logit;
            lin.forward(xs[i], &logit);
            float d;
            bceWithLogit(logit, ys[i], d);
            float dx[2] = {0, 0};
            lin.backward(xs[i], &d, dx);
            opt.step({lin.params()[0], lin.params()[1]});
        }
    }
    for (int i = 0; i < 4; ++i) {
        float logit;
        lin.forward(xs[i], &logit);
        EXPECT_EQ(logit >= 0.0f, ys[i]) << "case " << i;
    }
}

TEST(Training, LstmLearnsParity)
{
    // An LSTM + linear head learns 4-bit parity of a binary sequence
    // fed one bit per step — requires actual state, so this exercises
    // backprop-through-time end to end.
    Rng rng(9);
    const std::size_t H = 16, T = 4;
    LstmCell cell(1, H, rng);
    Linear head(H, 1, rng);
    Adam opt(0.01f);

    std::vector<nn::Param *> params;
    for (auto *p : cell.params())
        params.push_back(p);
    for (auto *p : head.params())
        params.push_back(p);

    auto run = [&](unsigned bits, bool train) {
        std::vector<std::vector<float>> h(T, std::vector<float>(H));
        std::vector<std::vector<float>> c(T, std::vector<float>(H));
        std::vector<LstmStepCache> caches(T);
        std::vector<float> zero(H, 0.0f);
        for (std::size_t t = 0; t < T; ++t) {
            float x = (bits >> t) & 1 ? 1.0f : -1.0f;
            cell.forwardStep(&x, t ? h[t - 1].data() : zero.data(),
                             t ? c[t - 1].data() : zero.data(),
                             h[t].data(), c[t].data(), caches[t]);
        }
        float logit;
        head.forward(h[T - 1].data(), &logit);
        bool label = __builtin_popcount(bits) % 2 == 1;
        if (train) {
            float dlogit;
            bceWithLogit(logit, label, dlogit);
            std::vector<float> dh(H, 0.0f);
            head.backward(h[T - 1].data(), &dlogit, dh.data());
            std::vector<float> dc(H, 0.0f), dh_prev(H, 0.0f);
            float dx;
            for (std::size_t t = T; t-- > 0;) {
                std::fill(dh_prev.begin(), dh_prev.end(), 0.0f);
                dx = 0;
                cell.backwardStep(caches[t], dh.data(), dc.data(), &dx,
                                  dh_prev.data());
                dh = dh_prev;
            }
            opt.step(params);
        }
        return (logit >= 0.0f) == label;
    };

    for (int epoch = 0; epoch < 500; ++epoch)
        for (unsigned bits = 0; bits < 16; ++bits)
            run(bits, true);
    int correct = 0;
    for (unsigned bits = 0; bits < 16; ++bits)
        correct += run(bits, false);
    EXPECT_EQ(correct, 16);
}

} // namespace
} // namespace nn
} // namespace glider
