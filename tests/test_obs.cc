/**
 * @file
 * Tests for src/obs: metric semantics, histogram percentile edge
 * cases, JSON escape/parse round-trips, registry export, concurrent
 * recording through a shared registry (the ObsRegistry.* tests are
 * part of the TSan CI filter), the bench-report document, the
 * bench_diff comparator (including an injected >10% regression), and
 * the oracle suite JSON round-trip.
 *
 * glider-lint: allow-file(json-outside-obs) hand-written JSON
 * literals here are inputs and expected outputs for the serializer
 * under test.
 */

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "obs/bench_diff.hh"
#include "obs/bench_report.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "verify/oracle_diff.hh"

using namespace glider;

TEST(ObsCounter, IncrementsAndSets)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.set(7);
    EXPECT_EQ(c.value(), 7u);
}

TEST(ObsGauge, SetAndAdd)
{
    obs::Gauge g;
    g.set(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
    g.add(-0.5);
    EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(ObsHistogram, CountSumMinMaxMean)
{
    obs::Histogram h(0.0, 10.0, 10);
    for (double x : {1.0, 2.0, 3.0, 4.0})
        h.record(x);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 10.0);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(ObsHistogram, EmptyPercentileIsZero)
{
    obs::Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(ObsHistogram, SingleSamplePercentiles)
{
    obs::Histogram h(0.0, 100.0, 10);
    h.record(37.0);
    // Every percentile of a single sample lands in its bucket.
    EXPECT_GE(h.percentile(1.0), 30.0);
    EXPECT_LE(h.percentile(99.0), 40.0);
}

TEST(ObsHistogram, OverflowPercentileReturnsObservedMax)
{
    obs::Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.record(1e6); // all samples >= hi -> overflow bin
    EXPECT_EQ(h.overflow(), 10u);
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 1e6);
}

TEST(ObsHistogram, BelowRangeClampsIntoFirstBucket)
{
    obs::Histogram h(10.0, 20.0, 10);
    h.record(-5.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_DOUBLE_EQ(h.min(), -5.0);
}

TEST(ObsHistogram, PercentilesOrderedOnUniformData)
{
    obs::Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.record(static_cast<double>(i));
    double p50 = h.percentile(50.0);
    double p95 = h.percentile(95.0);
    double p99 = h.percentile(99.0);
    EXPECT_LT(p50, p95);
    EXPECT_LT(p95, p99);
    EXPECT_NEAR(p50, 50.0, 2.0);
    EXPECT_NEAR(p95, 95.0, 2.0);
}

TEST(ObsHistogram, MergeAddsSamplesAndRejectsShapeMismatch)
{
    obs::Histogram a(0.0, 10.0, 10);
    obs::Histogram b(0.0, 10.0, 10);
    a.record(1.0);
    b.record(2.0);
    b.record(15.0); // overflow
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_DOUBLE_EQ(a.max(), 15.0);

    obs::Histogram c(0.0, 5.0, 10);
    EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(ObsJson, EscapeRoundTrip)
{
    std::string nasty = "a\"b\\c\nd\te\x01f";
    auto doc = obs::json::Value::object();
    doc[nasty] = obs::json::Value(nasty);
    auto parsed = obs::json::Value::parse(doc.dump());
    ASSERT_TRUE(parsed.isObject());
    const obs::json::Value *v = parsed.find(nasty);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->str(), nasty);
    EXPECT_TRUE(parsed == doc);
}

TEST(ObsJson, KindsSurviveRoundTrip)
{
    auto doc = obs::json::Value::object();
    doc["null"] = obs::json::Value();
    doc["bool"] = obs::json::Value(true);
    doc["int"] = obs::json::Value(std::int64_t{-42});
    doc["big"] = obs::json::Value(std::uint64_t{1} << 62);
    doc["dbl"] = obs::json::Value(0.125);
    doc["str"] = obs::json::Value("x");
    auto arr = obs::json::Value::array();
    arr.push(obs::json::Value(1));
    arr.push(obs::json::Value("two"));
    doc["arr"] = std::move(arr);

    auto parsed = obs::json::Value::parse(doc.dump());
    EXPECT_TRUE(parsed == doc);
    EXPECT_EQ(parsed.find("int")->integer(), -42);
    EXPECT_EQ(parsed.find("big")->integer(),
              std::int64_t{1} << 62);
    EXPECT_DOUBLE_EQ(parsed.find("dbl")->number(), 0.125);
    EXPECT_EQ(parsed.find("arr")->at(1).str(), "two");
}

TEST(ObsJson, ParserRejectsTrailingGarbage)
{
    EXPECT_THROW(obs::json::Value::parse("{} x"),
                 std::runtime_error);
    EXPECT_THROW(obs::json::Value::parse("{\"a\":}"),
                 std::runtime_error);
}

TEST(ObsRegistry, ExportNestsOnDots)
{
    obs::Registry reg;
    reg.counter("llc.hits").inc(3);
    reg.setGauge("llc.miss_rate", 0.25);
    reg.label("build", "release");
    auto doc = reg.toJson();
    EXPECT_EQ(doc.find("schema")->str(), "glider-metrics");
    EXPECT_EQ(doc.find("schema_version")->integer(),
              obs::Registry::kSchemaVersion);
    const obs::json::Value *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->find("llc")->find("hits")->integer(), 3);
    EXPECT_DOUBLE_EQ(
        metrics->find("llc")->find("miss_rate")->number(), 0.25);
    EXPECT_EQ(metrics->find("build")->str(), "release");

    // Round-trips through the parser.
    auto parsed = obs::json::Value::parse(doc.dump());
    EXPECT_TRUE(parsed == doc);
}

TEST(ObsRegistry, RegistrationIsIdempotentAndTypeChecked)
{
    obs::Registry reg;
    obs::Counter &a = reg.counter("x");
    obs::Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
    EXPECT_THROW(reg.histogram("x", 0.0, 1.0, 4),
                 std::invalid_argument);
}

TEST(ObsRegistry, PrefixConflictRejectedAtExport)
{
    obs::Registry reg;
    reg.counter("a.b").inc();
    reg.counter("a.b.c").inc(); // "a.b" is both leaf and subtree
    EXPECT_THROW(reg.toJson(), std::runtime_error);
}

TEST(ObsRegistry, ConcurrentRecordingThroughSharedRegistry)
{
    obs::Registry reg;
    ThreadPool pool(4);
    constexpr int kTasks = 16;
    constexpr int kPerTask = 1000;
    std::vector<std::future<void>> futs;
    for (int t = 0; t < kTasks; ++t) {
        futs.push_back(pool.submit([&reg] {
            // Mixed registration + recording from every worker: the
            // registry hands all threads the same metric objects.
            obs::Counter &c = reg.counter("work.items");
            obs::Histogram &h =
                reg.histogram("work.latency", 0.0, 100.0, 32);
            for (int i = 0; i < kPerTask; ++i) {
                c.inc();
                h.record(static_cast<double>(i % 100));
                reg.gauge("work.last").set(static_cast<double>(i));
            }
        }));
    }
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(reg.counter("work.items").value(),
              static_cast<std::uint64_t>(kTasks) * kPerTask);
    EXPECT_EQ(reg.histogram("work.latency", 0.0, 100.0, 32).count(),
              static_cast<std::uint64_t>(kTasks) * kPerTask);
    auto doc = reg.toJson();
    EXPECT_NE(doc.find("metrics")->find("work"), nullptr);
}

namespace {

/** A minimal well-formed bench document for comparator tests. */
obs::json::Value
benchDoc(double throughput, double ratio, bool with_tolerance)
{
    obs::BenchReport report("unit");
    report.metric("throughput", throughput, "accesses/s",
                  obs::Direction::HigherBetter,
                  with_tolerance ? 0.5 : -1.0);
    report.metric("ratio", ratio, "x", obs::Direction::LowerBetter);
    report.metric("note", 123.0, "", obs::Direction::Info);
    return report.toJson();
}

} // namespace

TEST(ObsBenchReport, DocumentShape)
{
    obs::BenchReport report("shape");
    report.config("accesses", obs::json::Value(std::uint64_t{1000}));
    report.metric("m", 2.0, "x", obs::Direction::HigherBetter, 0.2);
    auto doc = report.toJson();
    EXPECT_EQ(doc.find("schema")->str(), "glider-bench");
    EXPECT_EQ(doc.find("schema_version")->integer(),
              obs::BenchReport::kSchemaVersion);
    EXPECT_EQ(doc.find("bench")->str(), "shape");
    EXPECT_EQ(doc.find("config")->find("accesses")->integer(), 1000);
    const obs::json::Value *m = doc.find("metrics")->find("m");
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->find("value")->number(), 2.0);
    EXPECT_EQ(m->find("direction")->str(), "higher_better");
    EXPECT_DOUBLE_EQ(m->find("tolerance")->number(), 0.2);

    // Round-trips through the parser.
    EXPECT_TRUE(obs::json::Value::parse(doc.dump()) == doc);
}

TEST(ObsBenchDiff, InjectedRegressionFailsDefaultTolerance)
{
    // 20% throughput drop vs a 10% default tolerance: must fail.
    auto baseline = benchDoc(1000.0, 1.0, false);
    auto current = benchDoc(800.0, 1.0, false);
    auto result = obs::diffReports(baseline, current);
    EXPECT_FALSE(result.pass);
    EXPECT_EQ(result.regressions(), 1u);
    // The formatter mentions the failing metric.
    EXPECT_NE(obs::formatDiff(result).find("throughput"),
              std::string::npos);
}

TEST(ObsBenchDiff, WithinToleranceAndImprovementsPass)
{
    // 5% drop within the 10% default; ratio improves (lower better).
    auto baseline = benchDoc(1000.0, 1.0, false);
    auto current = benchDoc(950.0, 0.5, false);
    auto result = obs::diffReports(baseline, current);
    EXPECT_TRUE(result.pass);
    EXPECT_EQ(result.regressions(), 0u);
}

TEST(ObsBenchDiff, PerMetricToleranceOverridesDefault)
{
    // Same 20% drop, but the baseline stamps tolerance 0.5.
    auto baseline = benchDoc(1000.0, 1.0, true);
    auto current = benchDoc(800.0, 1.0, true);
    auto result = obs::diffReports(baseline, current);
    EXPECT_TRUE(result.pass);
}

TEST(ObsBenchDiff, MissingGatedMetricFails)
{
    auto baseline = benchDoc(1000.0, 1.0, false);
    obs::BenchReport partial("unit");
    partial.metric("ratio", 1.0, "x", obs::Direction::LowerBetter);
    auto result = obs::diffReports(baseline, partial.toJson());
    EXPECT_FALSE(result.pass);
    // "throughput" (gated) and "note" (info) are both absent; only
    // the gated one fails the diff, but both are reported missing.
    ASSERT_EQ(result.missing.size(), 2u);
    EXPECT_NE(std::find(result.missing.begin(), result.missing.end(),
                        "throughput"),
              result.missing.end());

    obs::DiffOptions lax;
    lax.fail_on_missing = false;
    EXPECT_TRUE(obs::diffReports(baseline, partial.toJson(), lax).pass);
}

TEST(ObsBenchDiff, InfoMetricsNeverGate)
{
    obs::BenchReport base("unit"), cur("unit");
    base.metric("note", 100.0, "", obs::Direction::Info);
    cur.metric("note", 1.0, "", obs::Direction::Info);
    auto result = obs::diffReports(base.toJson(), cur.toJson());
    EXPECT_TRUE(result.pass);
    EXPECT_EQ(result.regressions(), 0u);
}

TEST(ObsBenchDiff, ZeroBaselineNeverGates)
{
    obs::BenchReport base("unit"), cur("unit");
    base.metric("m", 0.0, "", obs::Direction::HigherBetter);
    cur.metric("m", -100.0, "", obs::Direction::HigherBetter);
    auto result = obs::diffReports(base.toJson(), cur.toJson());
    EXPECT_TRUE(result.pass);
}

TEST(ObsBenchDiff, MismatchedBenchNamesThrow)
{
    obs::BenchReport a("alpha"), b("beta");
    EXPECT_THROW(obs::diffReports(a.toJson(), b.toJson()),
                 std::runtime_error);
}

TEST(ObsOracleSuite, JsonRoundTripWithEscapedWorkloadName)
{
    verify::OracleSuiteEntry entry;
    entry.workload = "mix \"quoted\"\n1"; // exercises escaping
    entry.llc_accesses = 1000;
    entry.diff.stream_accesses = 1000;
    entry.diff.sampled_accesses = 100;
    entry.diff.events = 80;
    entry.diff.agreements = 72;
    entry.diff.belady_friendly = 40;
    entry.diff.optgen_friendly = 44;
    entry.diff.belady_hit_rate = 0.5;
    verify::PcAgreement pc;
    pc.pc = 0xdeadbeef;
    pc.events = 16;
    pc.agree = 8;
    entry.diff.per_pc[pc.pc] = pc;

    auto doc = verify::oracleSuiteJson({entry}, 0.95);
    auto parsed = obs::json::Value::parse(doc.dump());
    EXPECT_TRUE(parsed == doc);

    const obs::json::Value &row = parsed.find("suite")->at(0);
    EXPECT_EQ(row.find("workload")->str(), entry.workload);
    EXPECT_DOUBLE_EQ(row.find("agreement")->number(), 0.9);
    EXPECT_EQ(row.find("worst_pcs")->at(0).find("pc")->str(),
              "0xdeadbeef");
    EXPECT_DOUBLE_EQ(parsed.find("mean_agreement")->number(), 0.9);
    EXPECT_FALSE(parsed.find("pass")->boolean());

    EXPECT_TRUE(verify::oracleSuiteJson({entry}, 0.5)
                    .find("pass")
                    ->boolean());
}
