/**
 * @file
 * Seeded property-based fuzzer for the simulator.
 *
 * Each case derives a random (trace, hierarchy config) pair from a
 * deterministic seed and replays it through every registered
 * replacement policy inside verify::CheckedHierarchy, so every access
 * runs under the full structural-invariant sweep (shadow tag array,
 * flow conservation, counter coherence, LRU reference model for the
 * LRU policy). Each trace additionally runs a "MIN" differential
 * (the replaying BeladyPolicy must reproduce the hit count of the
 * batch simulateBelady oracle on the extracted LLC stream) and an
 * "ADVICE" differential (the multi-core run with a randomly chosen
 * SimOptions::advice_batch must leave every cache statistic and
 * per-core IPC bit-identical to the unprobed run — the batched
 * advice path is observation-only), and a "STREAM" differential (the
 * trace round-tripped through the gtrace codec and replayed via
 * StreamingSource must decode record-exactly and leave every
 * simulation result bit-identical to the in-memory replay).
 *
 * On failure the trace prefix is shrunk while the failure reproduces,
 * then a one-line reproducer is printed:
 *
 *   REPRODUCE: fuzz_simulator --repro --seed 0x2a --policy SHiP --len 312
 *
 * Usage:
 *   fuzz_simulator [--cases N] [--seconds S] [--seed X]
 *   fuzz_simulator --repro --seed X [--policy NAME] [--len N]
 *
 * A "case" is one (trace, config, policy) run; the default budget is
 * 1000 cases (the CI sanitizer job uses --seconds 30 instead).
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cachesim/access_source.hh"
#include "cachesim/simulator.hh"
#include "common/hash.hh"
#include "common/rng.hh"
#include "core/policy_factory.hh"
#include "opt/belady.hh"
#include "opt/llc_stream.hh"
#include "traces/access.hh"
#include "traces/gtrace.hh"
#include "verify/checked_hierarchy.hh"
#include "verify/checked_policy.hh"
#include "verify/invariants.hh"

namespace glider {
namespace fuzz {
namespace {

/** One generated scenario: hierarchy shape, cores, and CPU trace. */
struct Scenario
{
    sim::HierarchyConfig hier;
    unsigned cores = 1;
    traces::Trace trace;
};

std::uint64_t
pow2Between(Rng &rng, unsigned lo_log2, unsigned hi_log2)
{
    return 1ull << rng.range(lo_log2, hi_log2);
}

/**
 * Derive the scenario for (@p seed, @p case_index) deterministically;
 * @p len_override truncates the trace (used by shrinking / --repro).
 */
Scenario
makeScenario(std::uint64_t seed, std::uint64_t case_index,
             std::size_t len_override = 0)
{
    Rng rng(hashCombine(mix64(seed), case_index));
    Scenario s;

    // Small geometries so short traces still thrash every level.
    std::uint64_t l1_sets = pow2Between(rng, 1, 3);
    std::uint32_t l1_ways =
        static_cast<std::uint32_t>(pow2Between(rng, 0, 2));
    std::uint64_t l2_sets = pow2Between(rng, 2, 4);
    std::uint32_t l2_ways =
        static_cast<std::uint32_t>(pow2Between(rng, 1, 3));
    std::uint64_t llc_sets = pow2Between(rng, 0, 6);
    std::uint32_t llc_ways =
        static_cast<std::uint32_t>(pow2Between(rng, 0, 4));
    s.hier.l1 = sim::CacheConfig{"L1D", l1_sets * l1_ways * 64, l1_ways,
                                 4};
    s.hier.l2 = sim::CacheConfig{"L2", l2_sets * l2_ways * 64, l2_ways,
                                 12};
    s.hier.llc = sim::CacheConfig{"LLC", llc_sets * llc_ways * 64,
                                  llc_ways, 26};

    const unsigned core_choices[] = {1, 1, 1, 2, 4};
    s.cores = core_choices[rng.below(5)];

    std::size_t len = static_cast<std::size_t>(rng.range(200, 3000));
    if (len_override > 0 && len_override < len)
        len = len_override;

    // Access-pattern family for this scenario.
    enum { Uniform, Loop, Stride, HotCold, Phased };
    int pattern = static_cast<int>(rng.below(5));
    std::uint64_t blocks = rng.range(4, 4096);
    std::uint64_t loop_len = rng.range(8, 1024);
    std::uint64_t stride = rng.range(1, 8);
    std::uint64_t hot = rng.range(2, 64);
    std::uint64_t pcs = rng.range(1, 16);
    double write_p = rng.uniform() * 0.4;

    s.trace.setName("fuzz");
    std::uint64_t pos = 0;
    for (std::size_t i = 0; i < len; ++i) {
        std::uint64_t block = 0;
        switch (pattern) {
          case Uniform:
            block = rng.below(blocks);
            break;
          case Loop:
            block = pos++ % loop_len;
            break;
          case Stride:
            block = (pos * stride) % blocks;
            ++pos;
            break;
          case HotCold:
            block = rng.chance(0.9) ? rng.below(hot)
                                    : blocks + pos++;
            break;
          case Phased:
            block = (i < len / 2 ? 0 : blocks)
                + rng.below(loop_len);
            break;
        }
        std::uint64_t pc = 0x400000 + hashInto(block / 8, pcs) * 4;
        s.trace.push(pc, block * 64, rng.chance(write_p),
                     static_cast<std::uint8_t>(rng.below(s.cores)));
    }
    return s;
}

/** All policies a scenario runs, differential modes last. */
std::vector<std::string>
policyLineup()
{
    std::vector<std::string> names = core::policyNames();
    names.push_back("MIN");
    names.push_back("ADVICE");
    names.push_back("STREAM");
    return names;
}

/**
 * "STREAM" differential: round-trip the scenario trace through the
 * gtrace codec with a case-derived chunk size, demand record-exact
 * decode, then replay both the in-memory trace and the streamed file
 * through the single-core driver and demand bit-identical results.
 * Any divergence is a codec bug or a chunk-boundary bug in the
 * AccessSource replay loop.
 */
std::optional<std::string>
runStreamCase(std::uint64_t seed, std::uint64_t case_index,
              const Scenario &s)
{
    if (s.trace.empty())
        return std::nullopt;
    Rng rng(hashCombine(mix64(seed) ^ 0x57124Dull, case_index));
    auto chunk = static_cast<std::uint32_t>(1 + rng.below(64));
    std::string path = "/tmp/glider_fuzz_stream."
        + std::to_string(static_cast<unsigned long long>(
            hashCombine(seed, case_index)))
        + ".gtrace";

    traces::GtraceWriter writer;
    if (!writer.open(path, s.trace.name(), chunk))
        return "STREAM differential: cannot create " + path;
    for (const auto &rec : s.trace)
        writer.push(rec);
    if (!writer.finish())
        return "STREAM differential: write error on " + path;

    auto fail = [&](std::string msg) {
        std::remove(path.c_str());
        return std::optional<std::string>(std::move(msg));
    };
    traces::StreamingTrace st;
    std::string error;
    if (!st.open(path, &error))
        return fail("STREAM differential: reopen failed: " + error);
    verify::require(st.size() == s.trace.size(),
                    "STREAM differential: record count changed "
                    "across the codec round-trip");

    // Record-exact decode across every chunk boundary.
    std::vector<traces::AccessRecord> buf(st.maxChunkRecords());
    std::uint64_t i = 0;
    for (std::size_t c = 0; c < st.chunkCount(); ++c) {
        std::size_t n = st.readChunk(c, buf.data(), buf.size());
        for (std::size_t k = 0; k < n; ++k) {
            if (!(buf[k] == s.trace[i])) {
                return fail("STREAM differential: record "
                            + std::to_string(i)
                            + " decoded differently (chunk "
                            + std::to_string(c) + ")");
            }
            ++i;
        }
    }

    sim::SimOptions opts;
    opts.hierarchy = s.hier;
    opts.warmup_fraction = 0.25;
    auto mem = sim::runSingleCore(s.trace, core::makePolicy("LRU"),
                                  opts);
    sim::StreamingSource source(std::move(st));
    auto streamed = sim::runSingleCore(source, core::makePolicy("LRU"),
                                       opts);
    std::remove(path.c_str());
    verify::require(streamed.llc.hits == mem.llc.hits
                        && streamed.llc.misses == mem.llc.misses
                        && streamed.llc.accesses == mem.llc.accesses
                        && streamed.llc.evictions == mem.llc.evictions
                        && streamed.llc.bypasses == mem.llc.bypasses,
                    "STREAM differential: streamed replay changed LLC "
                    "statistics");
    verify::require(streamed.instructions == mem.instructions
                        && streamed.cycles == mem.cycles
                        && streamed.ipc == mem.ipc,
                    "STREAM differential: streamed replay changed "
                    "core-model results");
    return std::nullopt;
}

/**
 * "ADVICE" differential: replay the scenario through the multi-core
 * driver twice — once plain, once with a case-derived
 * SimOptions::advice_batch in [1, 64] — and demand bit-identical
 * hit/miss/eviction counts and per-core IPC. The probe is documented
 * as pure observation, so *any* divergence is a bug in the batched
 * advice path (or in the predictor's batch/scalar equivalence).
 */
std::optional<std::string>
runAdviceCase(std::uint64_t seed, std::uint64_t case_index,
              const Scenario &s)
{
    // Split the flat trace into per-core streams the way the mix
    // drivers feed runMultiCore (trace index = core).
    std::vector<traces::Trace> streams(s.cores);
    for (const auto &rec : s.trace)
        streams[rec.core].push(rec.pc, rec.address, rec.is_write, 0);
    std::vector<const traces::Trace *> mix;
    std::uint64_t quota = 1;
    for (const auto &t : streams) {
        if (t.empty())
            continue;
        mix.push_back(&t);
        if (t.size() > quota)
            quota = t.size();
    }
    if (mix.empty())
        return std::nullopt;

    Rng rng(hashCombine(mix64(seed) ^ 0xAD51CEull, case_index));
    auto batch = static_cast<std::size_t>(1 + rng.below(64));

    sim::SimOptions plain;
    plain.hierarchy = s.hier;
    plain.warmup_fraction = 0.25;
    sim::SimOptions probed = plain;
    probed.advice_batch = batch;
    auto base = sim::runMultiCore(mix, core::makePolicy("Glider"),
                                  quota, plain);
    auto with = sim::runMultiCore(mix, core::makePolicy("Glider"),
                                  quota, probed);

    verify::require(base.llc.hits == with.llc.hits
                        && base.llc.misses == with.llc.misses
                        && base.llc.accesses == with.llc.accesses
                        && base.llc.evictions == with.llc.evictions,
                    "ADVICE differential: enabling the batched advice "
                    "probe changed LLC hit/miss/eviction counts");
    verify::require(base.ipc_shared == with.ipc_shared,
                    "ADVICE differential: enabling the batched advice "
                    "probe changed per-core IPC");
    verify::require(base.advice_queries == 0
                        && base.advice_batches == 0,
                    "ADVICE differential: unprobed run reported "
                    "advice tallies");
    verify::require(with.advice_queries == with.advice_batches * batch,
                    "ADVICE differential: probe served a partial "
                    "window");
    verify::require(with.advice_friendly <= with.advice_queries,
                    "ADVICE differential: friendly answers exceed "
                    "queries");
    return std::nullopt;
}

/**
 * Run one (scenario, policy) case under full checking.
 * @return failure description, or std::nullopt on success.
 */
std::optional<std::string>
runCase(std::uint64_t seed, std::uint64_t case_index,
        const std::string &policy, std::size_t len_override = 0)
{
    Scenario s = makeScenario(seed, case_index, len_override);
    try {
        if (policy == "ADVICE") {
            return runAdviceCase(seed, case_index, s);
        } else if (policy == "STREAM") {
            return runStreamCase(seed, case_index, s);
        } else if (policy == "MIN") {
            // Differential: the replaying BeladyPolicy must reproduce
            // the batch oracle's hit count on the same LLC stream.
            traces::Trace llc = opt::extractLlcStream(s.trace, s.hier);
            if (llc.empty())
                return std::nullopt;
            opt::BeladyResult ref = opt::simulateBelady(
                llc, s.hier.llc.sets(), s.hier.llc.ways);
            std::uint64_t friendly = 0;
            for (auto l : ref.labels)
                friendly += l;
            verify::require(friendly == ref.hit_count,
                            "Belady label/hit inconsistency: friendly "
                            "labels do not match the oracle hit count");
            sim::Cache cache(
                s.hier.llc,
                verify::checkedPolicy(
                    std::make_unique<opt::BeladyPolicy>(llc)),
                s.cores);
            for (const auto &rec : llc) {
                cache.access(rec.core, rec.pc,
                             traces::blockAddr(rec.address),
                             rec.is_write);
            }
            verify::require(
                cache.stats().hits == ref.hit_count,
                "MIN differential: replayed BeladyPolicy hit count "
                "diverged from simulateBelady");
            verify::require(cache.stats().hits + cache.stats().misses
                                == cache.stats().accesses,
                            "counter coherence: hits + misses != "
                            "accesses in the MIN replay cache");
        } else {
            verify::CheckedPolicy::Options options;
            options.verify_lru = policy == "LRU";
            verify::CheckedHierarchy hier(s.hier, s.cores,
                                          core::makePolicy(policy),
                                          options);
            // Exercise warmup accounting mid-trace like the drivers.
            std::size_t warm = s.trace.size() / 4;
            for (std::size_t i = 0; i < s.trace.size(); ++i) {
                const auto &rec = s.trace[i];
                hier.access(rec.core, rec.pc, rec.address,
                            rec.is_write);
                if (i + 1 == warm)
                    hier.clearStatsCounters();
            }
            hier.check();
        }
    } catch (const verify::InvariantViolation &e) {
        return std::string(e.what());
    } catch (const std::exception &e) {
        return std::string("unexpected exception: ") + e.what();
    }
    return std::nullopt;
}

/**
 * Shrink a failing case by truncating the trace prefix while the
 * failure still reproduces. @return the minimal failing length.
 */
std::size_t
shrink(std::uint64_t seed, std::uint64_t case_index,
       const std::string &policy, std::size_t len)
{
    std::size_t step = len / 2;
    while (step >= 1) {
        if (len - step >= 1
            && runCase(seed, case_index, policy, len - step)) {
            len -= step;
        } else {
            step /= 2;
        }
    }
    return len;
}

struct Args
{
    std::uint64_t cases = 1000;
    double seconds = 0.0; //!< 0 = no time budget, use case budget
    std::uint64_t seed = 0xF0220000u;
    bool repro = false;
    std::string policy; //!< empty = all policies
    std::size_t len = 0;
};

bool
parseArgs(int argc, char **argv, Args &args)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--repro") {
            args.repro = true;
        } else if (a == "--cases") {
            const char *v = value();
            if (!v)
                return false;
            args.cases = std::strtoull(v, nullptr, 0);
        } else if (a == "--seconds") {
            const char *v = value();
            if (!v)
                return false;
            args.seconds = std::strtod(v, nullptr);
        } else if (a == "--seed") {
            const char *v = value();
            if (!v)
                return false;
            args.seed = std::strtoull(v, nullptr, 0);
        } else if (a == "--policy") {
            const char *v = value();
            if (!v)
                return false;
            args.policy = v;
        } else if (a == "--len") {
            const char *v = value();
            if (!v)
                return false;
            args.len = std::strtoull(v, nullptr, 0);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
            return false;
        }
    }
    return true;
}

int
reproduce(const Args &args)
{
    // --seed doubles as the case index namespace: a reproducer names
    // seed and case via one value (seed passed through, case 0), so
    // failure lines encode the *derived* per-case seed.
    std::vector<std::string> policies =
        args.policy.empty() ? policyLineup()
                            : std::vector<std::string>{args.policy};
    int rc = 0;
    for (const auto &policy : policies) {
        auto failure = runCase(args.seed, 0, policy, args.len);
        if (failure) {
            std::printf("FAIL  policy=%-8s %s\n", policy.c_str(),
                        failure->c_str());
            rc = 1;
        } else {
            std::printf("ok    policy=%s\n", policy.c_str());
        }
    }
    return rc;
}

int
run(const Args &args)
{
    using Clock = std::chrono::steady_clock;
    auto start = Clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(Clock::now() - start)
            .count();
    };

    std::vector<std::string> policies = policyLineup();
    std::uint64_t cases_run = 0, scenarios = 0, failures = 0;

    for (std::uint64_t index = 0;; ++index) {
        if (args.seconds > 0.0 ? elapsed() >= args.seconds
                               : cases_run >= args.cases) {
            break;
        }
        ++scenarios;
        // Every (trace, config, policy) triple is one case; the
        // per-case seed folds the scenario index so a failure line
        // reproduces without knowing the original budget.
        std::uint64_t case_seed = hashCombine(args.seed, index);
        for (const auto &policy : policies) {
            ++cases_run;
            auto failure = runCase(case_seed, 0, policy);
            if (!failure)
                continue;
            ++failures;
            std::size_t full_len = makeScenario(case_seed, 0).trace
                                       .size();
            std::size_t min_len =
                shrink(case_seed, 0, policy, full_len);
            auto shrunk = runCase(case_seed, 0, policy, min_len);
            std::printf("FUZZ FAILURE (case %" PRIu64 ", policy %s, "
                        "shrunk %zu -> %zu accesses)\n  %s\n",
                        cases_run, policy.c_str(), full_len, min_len,
                        shrunk ? shrunk->c_str() : failure->c_str());
            std::printf("REPRODUCE: fuzz_simulator --repro --seed "
                        "0x%" PRIx64 " --policy %s --len %zu\n",
                        case_seed, policy.c_str(), min_len);
            if (failures >= 10) {
                std::printf("too many failures; stopping early\n");
                goto done;
            }
        }
    }
done:
    std::printf("fuzz_simulator: %" PRIu64 " cases (%" PRIu64
                " scenarios x %zu policies) in %.1fs, %" PRIu64
                " failure%s\n",
                cases_run, scenarios, policies.size(), elapsed(),
                failures, failures == 1 ? "" : "s");
    return failures ? 1 : 0;
}

} // namespace
} // namespace fuzz
} // namespace glider

int
main(int argc, char **argv)
{
    glider::fuzz::Args args;
    if (!glider::fuzz::parseArgs(argc, argv, args)) {
        std::fprintf(
            stderr,
            "usage: fuzz_simulator [--cases N] [--seconds S] "
            "[--seed X]\n"
            "       fuzz_simulator --repro --seed X [--policy NAME] "
            "[--len N]\n");
        return 2;
    }
    return args.repro ? glider::fuzz::reproduce(args)
                      : glider::fuzz::run(args);
}
