/**
 * @file
 * Tests for src/resilience and the checked SweepRunner: fault-plan
 * parsing, per-cell containment/retry/deadline semantics, cooperative
 * simulator cancellation, checkpoint encode/decode and byte-identity,
 * and checkpoint resume (including the determinism recomputation
 * check against tampered rows).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_common.hh"
#include "cachesim/basic_lru.hh"
#include "verify/invariants.hh"

namespace glider {
namespace resilience {
namespace {

/** Deterministic synthetic result row for checkpoint tests. */
sim::SingleCoreResult
makeRow(const std::string &name, double ipc)
{
    sim::SingleCoreResult r;
    r.workload = name;
    r.policy = "TestPolicy";
    r.instructions = 1000;
    r.cycles = 2500.5;
    r.ipc = ipc;
    r.llc.accesses = 400;
    r.llc.hits = 300;
    r.llc.misses = 100;
    r.llc.bypasses = 7;
    r.llc.evictions = 93;
    r.accesses_simulated = 400;
    r.sim_seconds = 1.25; // wall time: must not survive encoding
    return r;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Fast retry budget so quarantine tests don't sleep for real. */
RecoveryOptions
fastRecovery(int max_attempts)
{
    RecoveryOptions opts;
    opts.max_attempts = max_attempts;
    opts.backoff_initial_ms = 1;
    opts.backoff_max_ms = 2;
    return opts;
}

TEST(FaultPlan, ParsesAllClauseKinds)
{
    auto plan = FaultPlan::parse(
        "throw@a/LRU;flaky:2@b;hang@c;abort@d;random:0.5:42");
    ASSERT_EQ(plan.clauses().size(), 5u);
    EXPECT_EQ(plan.clauses()[0].kind, FaultPlan::Kind::Throw);
    EXPECT_EQ(plan.clauses()[0].key, "a/LRU");
    EXPECT_EQ(plan.clauses()[1].kind, FaultPlan::Kind::Flaky);
    EXPECT_EQ(plan.clauses()[1].flaky_attempts, 2);
    EXPECT_EQ(plan.clauses()[2].kind, FaultPlan::Kind::Hang);
    EXPECT_EQ(plan.clauses()[3].kind, FaultPlan::Kind::Abort);
    EXPECT_EQ(plan.clauses()[4].kind, FaultPlan::Kind::Random);
    EXPECT_DOUBLE_EQ(plan.clauses()[4].probability, 0.5);
    EXPECT_EQ(plan.clauses()[4].seed, 42u);
}

TEST(FaultPlan, RejectsMalformedClauses)
{
    EXPECT_THROW(FaultPlan::parse("explode@x"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("throw"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("flaky:0@x"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("random:1.5:7"),
                 std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("random:0.5:7@key"),
                 std::invalid_argument);
}

TEST(RunCell, FlakyCellSucceedsAfterRetries)
{
    auto plan = FaultPlan::parse("flaky:2@cell");
    auto res = runCell<int>(
        "cell", [](const CancelToken &) { return 7; }, fastRecovery(3),
        &plan);
    EXPECT_EQ(res.status, CellStatus::Ok);
    EXPECT_EQ(res.attempts, 3);
    ASSERT_TRUE(res.value.has_value());
    EXPECT_EQ(*res.value, 7);
}

TEST(RunCell, ExhaustedRetriesQuarantine)
{
    auto plan = FaultPlan::parse("throw@cell");
    auto res = runCell<int>(
        "cell", [](const CancelToken &) { return 7; }, fastRecovery(3),
        &plan);
    EXPECT_EQ(res.status, CellStatus::Quarantined);
    EXPECT_EQ(res.attempts, 3);
    EXPECT_FALSE(res.value.has_value());
    EXPECT_NE(res.error.find("cell"), std::string::npos);
}

TEST(RunCell, InvariantViolationIsContained)
{
    auto res = runCell<int>(
        "cell",
        [](const CancelToken &) -> int {
            throw verify::InvariantViolation("occupancy over capacity");
        },
        fastRecovery(1));
    EXPECT_EQ(res.status, CellStatus::Quarantined);
    EXPECT_EQ(res.error, "occupancy over capacity");
}

TEST(RunCell, DeadlineCancelsHungCell)
{
    auto plan = FaultPlan::parse("hang@cell");
    auto opts = fastRecovery(1);
    opts.deadline_ms = 30;
    auto res = runCell<int>(
        "cell", [](const CancelToken &) { return 7; }, opts, &plan);
    EXPECT_EQ(res.status, CellStatus::Quarantined);
    EXPECT_NE(res.error.find("cancelled"), std::string::npos);
}

TEST(RunCell, ParentCancelStopsRetries)
{
    CancelToken parent;
    parent.cancel();
    auto plan = FaultPlan::parse("throw@cell");
    auto res = runCell<int>(
        "cell", [](const CancelToken &) { return 7; }, fastRecovery(3),
        &plan, &parent);
    EXPECT_EQ(res.status, CellStatus::Quarantined);
    EXPECT_EQ(res.attempts, 1); // a cancelled sweep is not retried
}

TEST(Cancellation, SimulatorLoopHonoursToken)
{
    traces::Trace t("cancelled");
    for (std::uint64_t i = 0; i < 10'000; ++i)
        t.push(0x400000, i * 64);
    CancelToken token;
    token.cancel();
    sim::SimOptions opts;
    opts.cancel = &token;
    EXPECT_THROW(sim::runSingleCore(
                     t, std::make_unique<sim::BasicLruPolicy>(), opts),
                 CancelledError);
}

TEST(Checkpoint, EncodeDecodeRoundTrips)
{
    auto row = makeRow("astar", 0.123456789);
    auto encoded = encodeResult(row);
    auto decoded = decodeResult(encoded);
    EXPECT_EQ(decoded.workload, row.workload);
    EXPECT_EQ(decoded.policy, row.policy);
    EXPECT_EQ(decoded.instructions, row.instructions);
    EXPECT_DOUBLE_EQ(decoded.cycles, row.cycles);
    EXPECT_DOUBLE_EQ(decoded.ipc, row.ipc);
    EXPECT_EQ(decoded.llc.accesses, row.llc.accesses);
    EXPECT_EQ(decoded.llc.hits, row.llc.hits);
    EXPECT_EQ(decoded.llc.misses, row.llc.misses);
    EXPECT_EQ(decoded.llc.bypasses, row.llc.bypasses);
    EXPECT_EQ(decoded.llc.evictions, row.llc.evictions);
    EXPECT_EQ(decoded.accesses_simulated, row.accesses_simulated);
    // Wall time is excluded from the checkpoint by design.
    EXPECT_EQ(decoded.sim_seconds, 0.0);
    EXPECT_TRUE(encodeResult(decoded) == encoded);
}

TEST(Checkpoint, RecordsAndReloads)
{
    const std::string path = tempPath("ckpt_reload.json");
    std::remove(path.c_str());
    obs::json::Value config = obs::json::Value::object();
    config["accesses"] =
        obs::json::Value(static_cast<std::uint64_t>(1000));
    {
        SweepCheckpoint ckpt(path, "unit", config);
        EXPECT_EQ(ckpt.load(), 0u);
        ckpt.record("a/LRU", encodeResult(makeRow("a", 1.0)));
        ckpt.record("b/LRU", encodeResult(makeRow("b", 2.0)));
    }
    SweepCheckpoint reloaded(path, "unit", config);
    EXPECT_EQ(reloaded.load(), 2u);
    const auto *row = reloaded.find("a/LRU");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(decodeResult(*row).workload, "a");
    EXPECT_EQ(reloaded.find("missing"), nullptr);
    std::remove(path.c_str());
}

TEST(Checkpoint, ConfigFingerprintMismatchDiscards)
{
    const std::string path = tempPath("ckpt_config.json");
    std::remove(path.c_str());
    obs::json::Value config = obs::json::Value::object();
    config["accesses"] =
        obs::json::Value(static_cast<std::uint64_t>(1000));
    {
        SweepCheckpoint ckpt(path, "unit", config);
        ckpt.record("a/LRU", encodeResult(makeRow("a", 1.0)));
    }
    obs::json::Value other = obs::json::Value::object();
    other["accesses"] =
        obs::json::Value(static_cast<std::uint64_t>(2000));
    SweepCheckpoint stale(path, "unit", other);
    EXPECT_EQ(stale.load(), 0u);
    std::remove(path.c_str());
}

TEST(Checkpoint, FileBytesIndependentOfRecordOrder)
{
    const std::string path_ab = tempPath("ckpt_ab.json");
    const std::string path_ba = tempPath("ckpt_ba.json");
    std::remove(path_ab.c_str());
    std::remove(path_ba.c_str());
    obs::json::Value config = obs::json::Value::object();
    auto row_a = encodeResult(makeRow("a", 1.25));
    auto row_b = encodeResult(makeRow("b", 2.5));
    {
        SweepCheckpoint ckpt(path_ab, "unit", config);
        ckpt.record("a/LRU", row_a);
        ckpt.record("b/LRU", row_b);
    }
    {
        SweepCheckpoint ckpt(path_ba, "unit", config);
        ckpt.record("b/LRU", row_b);
        ckpt.record("a/LRU", row_a);
    }
    const std::string bytes = slurp(path_ab);
    EXPECT_FALSE(bytes.empty());
    EXPECT_EQ(bytes, slurp(path_ba));
    std::remove(path_ab.c_str());
    std::remove(path_ba.c_str());
}

/** SweepOptions with no env dependence, for hermetic runner tests. */
bench::SweepRunner::SweepOptions
hermeticOptions(const FaultPlan *faults = nullptr)
{
    bench::SweepRunner::SweepOptions opts;
    opts.sweep_name = "unit";
    opts.config = obs::json::Value::object();
    opts.recovery = fastRecovery(1);
    opts.verify_resumed = 0;
    opts.faults = faults;
    return opts;
}

TEST(SweepRunner, FaultQuarantinesOnlyTargetCell)
{
    auto plan = FaultPlan::parse("throw@bad");
    bench::SweepRunner sweep(2);
    for (const std::string key : {"good1", "bad", "good2"}) {
        sweep.queueCell(key, [key](const CancelToken &) {
            return makeRow(key, 1.5);
        });
    }
    auto outcome = sweep.runChecked(hermeticOptions(&plan));
    ASSERT_EQ(outcome.cells.size(), 3u);
    EXPECT_TRUE(outcome.degraded());
    EXPECT_TRUE(outcome.cells[0].ok());
    EXPECT_FALSE(outcome.cells[1].ok());
    EXPECT_TRUE(outcome.cells[2].ok());
    // Siblings of the quarantined cell completed with real rows.
    EXPECT_EQ(outcome.cells[0].row.workload, "good1");
    EXPECT_EQ(outcome.cells[2].row.workload, "good2");
    EXPECT_EQ(outcome.cells[1].status, CellStatus::Quarantined);
    EXPECT_NE(outcome.cells[1].error.find("bad"), std::string::npos);
}

TEST(SweepRunner, ResumeSkipsCompletedCellsAndConverges)
{
    const std::string full_path = tempPath("sweep_full.json");
    const std::string part_path = tempPath("sweep_part.json");
    std::remove(full_path.c_str());
    std::remove(part_path.c_str());
    const std::vector<std::string> keys = {"a/LRU", "b/LRU", "c/LRU"};

    std::atomic<int> invocations{0};
    auto queueAll = [&](bench::SweepRunner &sweep) {
        for (const auto &key : keys) {
            sweep.queueCell(key, [key, &invocations](
                                     const CancelToken &) {
                ++invocations;
                return makeRow(key, 3.0);
            });
        }
    };

    // Uninterrupted reference run.
    {
        bench::SweepRunner sweep(2);
        queueAll(sweep);
        auto opts = hermeticOptions();
        opts.checkpoint_path = full_path;
        auto outcome = sweep.runChecked(opts);
        EXPECT_FALSE(outcome.degraded());
        EXPECT_EQ(outcome.resumed, 0u);
    }
    EXPECT_EQ(invocations.load(), 3);

    // Simulated interrupted run: only the first cell got recorded.
    {
        SweepCheckpoint partial(part_path, "unit",
                                obs::json::Value::object());
        partial.record(keys[0], encodeResult(makeRow(keys[0], 3.0)));
    }
    invocations = 0;
    {
        bench::SweepRunner sweep(2);
        queueAll(sweep);
        auto opts = hermeticOptions();
        opts.checkpoint_path = part_path;
        auto outcome = sweep.runChecked(opts);
        EXPECT_FALSE(outcome.degraded());
        EXPECT_EQ(outcome.resumed, 1u);
        ASSERT_EQ(outcome.cells.size(), 3u);
        EXPECT_EQ(outcome.cells[0].status, CellStatus::Resumed);
        EXPECT_EQ(outcome.cells[0].row.workload, "a/LRU");
    }
    // Only the two missing cells were recomputed...
    EXPECT_EQ(invocations.load(), 2);
    // ...and the resumed checkpoint is byte-identical to the
    // uninterrupted one.
    const std::string bytes = slurp(full_path);
    EXPECT_FALSE(bytes.empty());
    EXPECT_EQ(bytes, slurp(part_path));
    std::remove(full_path.c_str());
    std::remove(part_path.c_str());
}

TEST(SweepRunner, VerifyDetectsTamperedResumedRow)
{
    const std::string path = tempPath("sweep_tamper.json");
    std::remove(path.c_str());
    {
        // The checkpointed row does not match what the cell computes.
        SweepCheckpoint ckpt(path, "unit", obs::json::Value::object());
        ckpt.record("a/LRU", encodeResult(makeRow("a/LRU", 99.0)));
    }
    bench::SweepRunner sweep(1);
    sweep.queueCell("a/LRU", [](const CancelToken &) {
        return makeRow("a/LRU", 3.0);
    });
    auto opts = hermeticOptions();
    opts.checkpoint_path = path;
    opts.verify_resumed = 1;
    EXPECT_THROW(sweep.runChecked(opts), CheckpointMismatch);
    std::remove(path.c_str());
}

TEST(SweepRunner, VerifyAcceptsDeterministicResumedRow)
{
    const std::string path = tempPath("sweep_verify_ok.json");
    std::remove(path.c_str());
    {
        SweepCheckpoint ckpt(path, "unit", obs::json::Value::object());
        ckpt.record("a/LRU", encodeResult(makeRow("a/LRU", 3.0)));
    }
    bench::SweepRunner sweep(1);
    sweep.queueCell("a/LRU", [](const CancelToken &) {
        return makeRow("a/LRU", 3.0);
    });
    auto opts = hermeticOptions();
    opts.checkpoint_path = path;
    opts.verify_resumed = 1;
    auto outcome = sweep.runChecked(opts);
    ASSERT_EQ(outcome.cells.size(), 1u);
    EXPECT_EQ(outcome.cells[0].status, CellStatus::Resumed);
    std::remove(path.c_str());
}

} // namespace
} // namespace resilience
} // namespace glider
