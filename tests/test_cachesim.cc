/**
 * @file
 * Unit tests for src/cachesim: cache mechanics, hierarchy routing,
 * the core timing model, and the simulation drivers.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cachesim/basic_lru.hh"
#include "cachesim/cache.hh"
#include "cachesim/core_model.hh"
#include "cachesim/hierarchy.hh"
#include "cachesim/simulator.hh"

namespace glider {
namespace sim {
namespace {

CacheConfig
tinyConfig(std::uint64_t size = 4 * 64, std::uint32_t ways = 2)
{
    CacheConfig c;
    c.name = "tiny";
    c.size_bytes = size;
    c.ways = ways;
    c.latency = 1;
    return c;
}

TEST(CacheConfig, SetsFromGeometry)
{
    CacheConfig c;
    c.size_bytes = 2 * 1024 * 1024;
    c.ways = 16;
    EXPECT_EQ(c.sets(), 2048u);
    c.size_bytes = 32 * 1024;
    c.ways = 8;
    EXPECT_EQ(c.sets(), 64u);
}

TEST(Cache, HitAfterFill)
{
    Cache cache(tinyConfig(), std::make_unique<BasicLruPolicy>());
    EXPECT_FALSE(cache.access(0, 1, 100, false)); // cold miss
    EXPECT_TRUE(cache.access(0, 1, 100, false));  // now resident
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, LruEvictionOrder)
{
    // 2 sets x 2 ways; blocks 0,2,4 land in set 0.
    Cache cache(tinyConfig(), std::make_unique<BasicLruPolicy>());
    cache.access(0, 1, 0, false);
    cache.access(0, 1, 2, false);
    cache.access(0, 1, 0, false); // refresh block 0
    cache.access(0, 1, 4, false); // evicts block 2 (LRU)
    EXPECT_TRUE(cache.probe(0));
    EXPECT_FALSE(cache.probe(2));
    EXPECT_TRUE(cache.probe(4));
}

TEST(Cache, SetsAreIndependent)
{
    Cache cache(tinyConfig(), std::make_unique<BasicLruPolicy>());
    // Blocks 0 and 1 map to different sets; filling set 0 never
    // disturbs set 1.
    cache.access(0, 1, 1, false);
    for (std::uint64_t b = 0; b < 20; b += 2)
        cache.access(0, 1, b, false);
    EXPECT_TRUE(cache.probe(1));
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache cache(tinyConfig(), std::make_unique<BasicLruPolicy>());
    cache.access(0, 1, 0, false);
    auto before = cache.stats().accesses;
    cache.probe(0);
    cache.probe(12345);
    EXPECT_EQ(cache.stats().accesses, before);
}

/** Policy that always bypasses: nothing is ever cached. */
class AlwaysBypass : public ReplacementPolicy
{
  public:
    std::string name() const override { return "bypass"; }
    void reset(const CacheGeometry &geom) override { geom_ = geom; }
    std::uint32_t
    victimWay(const ReplacementAccess &, SetView) override
    {
        return geom_.ways;
    }
    void onHit(const ReplacementAccess &, std::uint32_t) override {}
    void onEvict(const ReplacementAccess &, std::uint32_t,
                 const LineView &) override
    {
    }
    void onInsert(const ReplacementAccess &, std::uint32_t) override {}

  private:
    CacheGeometry geom_;
};

TEST(Cache, BypassNeverFills)
{
    Cache cache(tinyConfig(), std::make_unique<AlwaysBypass>());
    cache.access(0, 1, 0, false);
    cache.access(0, 1, 0, false);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().bypasses, 2u);
    EXPECT_FALSE(cache.probe(0));
}

TEST(Cache, ClearStatsKeepsContents)
{
    Cache cache(tinyConfig(), std::make_unique<BasicLruPolicy>());
    cache.access(0, 1, 0, false);
    cache.clearStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.probe(0));
    EXPECT_TRUE(cache.access(0, 1, 0, false)); // still a hit
}

TEST(Cache, ResetClearsContents)
{
    Cache cache(tinyConfig(), std::make_unique<BasicLruPolicy>());
    cache.access(0, 1, 0, false);
    cache.reset();
    EXPECT_FALSE(cache.probe(0));
}

TEST(Hierarchy, DepthProgression)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg, 1, std::make_unique<BasicLruPolicy>());
    // First touch goes all the way to DRAM; after the fill, the L1
    // serves it.
    EXPECT_EQ(h.access(0, 1, 0x5000, false), AccessDepth::Dram);
    EXPECT_EQ(h.access(0, 1, 0x5000, false), AccessDepth::L1);
}

TEST(Hierarchy, LatencyMonotoneInDepth)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg, 1, std::make_unique<BasicLruPolicy>());
    EXPECT_LT(h.latency(AccessDepth::L1), h.latency(AccessDepth::L2));
    EXPECT_LT(h.latency(AccessDepth::L2), h.latency(AccessDepth::Llc));
    EXPECT_LT(h.latency(AccessDepth::Llc), h.latency(AccessDepth::Dram));
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg, 1, std::make_unique<BasicLruPolicy>());
    // Fill one L1 set (64 sets x 8 ways; stride 64*64 bytes stays in
    // set 0) past capacity; the evicted-but-L2-resident block then
    // hits in L2.
    std::uint64_t stride = 64 * 64;
    for (int i = 0; i < 9; ++i)
        h.access(0, 1, i * stride, false);
    EXPECT_EQ(h.access(0, 1, 0, false), AccessDepth::L2);
}

TEST(Hierarchy, PerCoreLlcMissCounters)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg, 2, std::make_unique<BasicLruPolicy>());
    h.access(0, 1, 0x100000, false);
    h.access(1, 1, 0x200000, false);
    h.access(1, 1, 0x300000, false);
    EXPECT_EQ(h.llcMissesFor(0), 1u);
    EXPECT_EQ(h.llcMissesFor(1), 2u);
}

TEST(CoreModel, PureL1HitsRunAtFullWidth)
{
    CoreModel core;
    for (int i = 0; i < 1000; ++i)
        core.step(AccessDepth::L1, 4);
    core.finish();
    EXPECT_NEAR(core.ipc(), 4.0, 1e-9);
}

TEST(CoreModel, DramMissesLowerIpc)
{
    CoreParams p;
    CoreModel fast(p), slow(p);
    for (int i = 0; i < 1000; ++i) {
        fast.step(AccessDepth::L1, 4);
        slow.step(AccessDepth::Dram, 242);
    }
    fast.finish();
    slow.finish();
    EXPECT_LT(slow.ipc(), fast.ipc());
    EXPECT_GT(slow.ipc(), 0.0);
}

TEST(CoreModel, MshrLimitSerialisesMissBursts)
{
    // With 1 MSHR misses serialise; with 16 they overlap.
    CoreParams serial;
    serial.mshrs = 1;
    CoreParams parallel;
    parallel.mshrs = 16;
    CoreModel a(serial), b(parallel);
    for (int i = 0; i < 200; ++i) {
        a.step(AccessDepth::Dram, 242);
        b.step(AccessDepth::Dram, 242);
    }
    a.finish();
    b.finish();
    EXPECT_LT(a.ipc(), b.ipc());
}

TEST(CoreModel, FinishDrainsOutstanding)
{
    CoreModel core;
    core.step(AccessDepth::Dram, 242);
    double before = core.cycles();
    core.finish();
    EXPECT_GT(core.cycles(), before);
}

TEST(CoreModel, ClearCountersResets)
{
    CoreModel core;
    core.step(AccessDepth::Dram, 242);
    core.clearCounters();
    EXPECT_EQ(core.instructions(), 0u);
    EXPECT_EQ(core.cycles(), 0.0);
}

TEST(CoreModel, ClearCountersRetainsInFlightWindow)
{
    CoreModel core;
    // A long DRAM miss is still outstanding at the warmup boundary:
    // completion 1001 cycles, 4 instructions issued, 1 cycle elapsed.
    core.step(AccessDepth::Dram, 1000);
    core.clearCounters();
    // Post-warmup: 100 L1 hits retire 400 instructions in 100 cycles,
    // but the rebased miss (completion now 1000) must still stall the
    // drain — it was in flight, not dropped.
    for (int i = 0; i < 100; ++i)
        core.step(AccessDepth::L1, 4);
    core.finish();
    EXPECT_EQ(core.instructions(), 400u);
    EXPECT_DOUBLE_EQ(core.cycles(), 1000.0);
    EXPECT_DOUBLE_EQ(core.ipc(), 0.4);
}

traces::Trace
streamingTrace(std::size_t blocks, int sweeps)
{
    traces::Trace t("stream");
    for (int s = 0; s < sweeps; ++s) {
        for (std::size_t b = 0; b < blocks; ++b)
            t.push(0x400000, b * 64);
    }
    return t;
}

TEST(Simulator, SingleCoreRunsAndReports)
{
    auto trace = streamingTrace(100000, 2);
    SimOptions opts;
    auto res = runSingleCore(trace, std::make_unique<BasicLruPolicy>(),
                             opts);
    EXPECT_EQ(res.policy, "LRU");
    EXPECT_GT(res.instructions, 0u);
    EXPECT_GT(res.ipc, 0.0);
    EXPECT_GT(res.llc.accesses, 0u);
}

TEST(Simulator, WarmupReducesMeasuredAccesses)
{
    auto trace = streamingTrace(50000, 2);
    SimOptions none;
    none.warmup_fraction = 0.0;
    SimOptions half;
    half.warmup_fraction = 0.5;
    auto a = runSingleCore(trace, std::make_unique<BasicLruPolicy>(),
                           none);
    auto b = runSingleCore(trace, std::make_unique<BasicLruPolicy>(),
                           half);
    EXPECT_GT(a.instructions, b.instructions);
}

TEST(Simulator, MultiCoreRunsAllCores)
{
    auto t0 = streamingTrace(20000, 1);
    auto t1 = streamingTrace(30000, 1);
    SimOptions opts;
    opts.hierarchy = HierarchyConfig::forCores(2);
    opts.warmup_fraction = 0.1;
    auto res = runMultiCore({&t0, &t1},
                            std::make_unique<BasicLruPolicy>(), 10000,
                            opts);
    ASSERT_EQ(res.ipc_shared.size(), 2u);
    EXPECT_GT(res.ipc_shared[0], 0.0);
    EXPECT_GT(res.ipc_shared[1], 0.0);
}

TEST(Simulator, MultiCoreRewindsShortTraces)
{
    auto t0 = streamingTrace(100, 1); // far shorter than the quota
    auto t1 = streamingTrace(20000, 1);
    SimOptions opts;
    opts.hierarchy = HierarchyConfig::forCores(2);
    opts.warmup_fraction = 0.0;
    auto res = runMultiCore({&t0, &t1},
                            std::make_unique<BasicLruPolicy>(), 5000,
                            opts);
    EXPECT_GT(res.ipc_shared[0], 0.0);
}

} // namespace
} // namespace sim
} // namespace glider

namespace glider {
namespace sim {
namespace {

TEST(Simulator, MultiCorePrivateAddressSpaces)
{
    // Two cores running the *same* trace must not constructively
    // share LLC lines: the driver folds the core id into the
    // physical address, so per-core data is disjoint.
    traces::Trace t("dup");
    for (int i = 0; i < 30000; ++i)
        t.push(0x400000, static_cast<std::uint64_t>(i % 3000) * 4096);

    SimOptions opts;
    opts.hierarchy = HierarchyConfig::forCores(2);
    opts.warmup_fraction = 0.0;
    auto solo = runMultiCore({&t}, std::make_unique<BasicLruPolicy>(),
                             20000, opts);
    auto dup = runMultiCore({&t, &t},
                            std::make_unique<BasicLruPolicy>(), 20000,
                            opts);
    // With sharing, the second core would hit on the first core's
    // fills and the total misses would collapse; with disjoint
    // address spaces the duplicated run misses at least as much per
    // core as the solo run.
    EXPECT_GE(dup.llc.misses + dup.llc.misses / 10,
              2 * solo.llc.misses);
}

TEST(Simulator, MultiCoreLlcIsSharedCapacity)
{
    // One core with a 2-core-sized LLC fits its working set; four
    // duplicated cores must contend and miss more in total than 4x
    // a quarter-share would suggest. Weak sanity check: per-core
    // shared IPC does not exceed solo IPC (no free lunch).
    traces::Trace t("ws");
    for (int i = 0; i < 40000; ++i)
        t.push(0x400000, static_cast<std::uint64_t>(i % 40000) * 64);
    SimOptions opts;
    opts.hierarchy = HierarchyConfig::forCores(2);
    opts.warmup_fraction = 0.0;
    auto solo = runMultiCore({&t}, std::make_unique<BasicLruPolicy>(),
                             30000, opts);
    auto shared = runMultiCore({&t, &t},
                               std::make_unique<BasicLruPolicy>(),
                               30000, opts);
    EXPECT_LE(shared.ipc_shared[0], solo.ipc_shared[0] * 1.02);
}

} // namespace
} // namespace sim
} // namespace glider
