/**
 * @file
 * Tests for src/policies: RRIP mechanics, set dueling, SHiP
 * signature learning, MPPPB perceptron training, and the Hawkeye
 * OPTgen-guided framework.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cachesim/cache.hh"
#include "common/rng.hh"
#include "policies/coalesce.hh"
#include "policies/frd.hh"
#include "policies/hawkeye.hh"
#include "policies/heuristics.hh"
#include "policies/lru.hh"
#include "policies/mpppb.hh"
#include "policies/mustache.hh"
#include "policies/random.hh"
#include "policies/rrip.hh"
#include "policies/sdbp.hh"
#include "policies/ship.hh"

namespace glider {
namespace policies {
namespace {

sim::CacheConfig
smallLlc()
{
    sim::CacheConfig c;
    c.name = "llc";
    c.size_bytes = 64 * 16 * 64; // 64 sets x 16 ways
    c.ways = 16;
    c.latency = 26;
    return c;
}

/** Run a block stream through a cache, returning the hit count. */
std::uint64_t
runStream(sim::Cache &cache, const std::vector<std::uint64_t> &blocks,
          std::uint64_t pc_base = 0x400000)
{
    std::uint64_t hits = 0;
    for (auto b : blocks)
        hits += cache.access(0, pc_base + (b % 7) * 4, b, false);
    return hits;
}

/** Cyclic sweep over n blocks repeated r times, all in one set. */
std::vector<std::uint64_t>
cyclic(std::uint64_t n, int r, std::uint64_t sets = 64)
{
    std::vector<std::uint64_t> out;
    for (int i = 0; i < r; ++i)
        for (std::uint64_t b = 0; b < n; ++b)
            out.push_back(b * sets); // same set index
    return out;
}

TEST(Srrip, HitPromotesToZero)
{
    sim::Cache cache(smallLlc(), std::make_unique<SrripPolicy>());
    cache.access(0, 1, 0, false);
    EXPECT_TRUE(cache.access(0, 1, 0, false));
}

TEST(Srrip, ScanResistantVsLru)
{
    // A hot block plus a long scan: SRRIP keeps the hot block alive
    // longer than LRU because scans insert at distant RRPV.
    auto make_stream = [] {
        std::vector<std::uint64_t> s;
        Rng rng(4);
        for (int i = 0; i < 20000; ++i) {
            if (i % 3 == 0)
                s.push_back((rng.next() % 8) * 64); // hot set of 8
            else
                s.push_back((1000 + i) * 64); // scan
        }
        return s;
    };
    sim::Cache srrip(smallLlc(), std::make_unique<SrripPolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    auto s = make_stream();
    auto h_srrip = runStream(srrip, s);
    auto h_lru = runStream(lru, s);
    EXPECT_GT(h_srrip, h_lru);
}

TEST(Brrip, MostInsertionsAreDistant)
{
    // Thrash pattern: BRRIP retains a fraction of the working set
    // (bimodal), so it beats LRU on a cyclic over-capacity sweep.
    sim::Cache brrip(smallLlc(), std::make_unique<BrripPolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    auto s = cyclic(32, 40); // 2x the 16-way set capacity
    auto h_brrip = runStream(brrip, s);
    auto h_lru = runStream(lru, s);
    EXPECT_GT(h_brrip, h_lru);
    EXPECT_EQ(h_lru, 0u);
}

TEST(Drrip, TracksBetterComponentOnThrash)
{
    // Thrash every set (32 blocks per 16-way set): the BRRIP leaders
    // win the duel and the follower sets retain part of the working
    // set, unlike LRU which gets nothing.
    sim::Cache drrip(smallLlc(), std::make_unique<DrripPolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    std::vector<std::uint64_t> s;
    for (int sweep = 0; sweep < 60; ++sweep)
        for (std::uint64_t b = 0; b < 32 * 64; ++b)
            s.push_back(b);
    auto h_drrip = runStream(drrip, s);
    auto h_lru = runStream(lru, s);
    EXPECT_EQ(h_lru, 0u);
    EXPECT_GT(h_drrip, h_lru);
}

TEST(Ship, LearnsStreamingSignatures)
{
    // PC A streams (never reuses); PC B's lines are hot. After
    // training, SHiP must protect B's lines from A's stream.
    sim::Cache ship(smallLlc(), std::make_unique<ShipPolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    std::vector<std::pair<std::uint64_t, std::uint64_t>> accesses;
    Rng rng(5);
    for (int i = 0; i < 40000; ++i) {
        if (i % 2 == 0)
            accesses.push_back({0xA000, (100000 + i) * 64}); // stream
        else
            accesses.push_back({0xB000, (rng.next() % 256) * 64}); // hot
    }
    std::uint64_t h_ship = 0, h_lru = 0;
    for (auto [pc, b] : accesses) {
        h_ship += ship.access(0, pc, b, false);
        h_lru += lru.access(0, pc, b, false);
    }
    EXPECT_GT(h_ship, h_lru);
}

TEST(ShipPP, AtLeastAsGoodAsShipOnMixedStream)
{
    sim::Cache ship(smallLlc(), std::make_unique<ShipPolicy>());
    sim::Cache shpp(smallLlc(), std::make_unique<ShipPPPolicy>());
    Rng rng(6);
    std::uint64_t h_ship = 0, h_shpp = 0;
    for (int i = 0; i < 60000; ++i) {
        std::uint64_t pc, b;
        if (i % 3 == 0) {
            pc = 0xA000;
            b = (200000 + i) * 64;
        } else {
            pc = 0xB000 + (i % 2) * 8;
            b = (rng.next() % 512) * 64;
        }
        h_ship += ship.access(0, pc, b, false);
        h_shpp += shpp.access(0, pc, b, false);
    }
    EXPECT_GE(h_shpp + h_shpp / 10, h_ship); // within 10% or better
}

TEST(Mpppb, LearnsDeadPcs)
{
    sim::Cache mp(smallLlc(), std::make_unique<MpppbPolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    Rng rng(8);
    std::uint64_t h_mp = 0, h_lru = 0;
    for (int i = 0; i < 60000; ++i) {
        std::uint64_t pc, b;
        if (i % 2 == 0) {
            pc = 0xDEAD;
            b = (500000 + i) * 64; // never reused
        } else {
            pc = 0xF00D;
            b = (rng.next() % 300) * 64; // hot
        }
        h_mp += mp.access(0, pc, b, false);
        h_lru += lru.access(0, pc, b, false);
    }
    EXPECT_GT(h_mp, h_lru);
}

/** Exposes the protected training hook for direct unit testing. */
class TestableHawkeye : public HawkeyePolicy
{
  public:
    using HawkeyePolicy::onTrainingEvent;
};

TEST(Hawkeye, PredictsStreamingPcAverse)
{
    TestableHawkeye policy;
    sim::CacheGeometry geom{64, 16, 1};
    policy.reset(geom);
    // Feed training events directly: PC 0xA000 is always an OPT miss.
    for (int i = 0; i < 64; ++i) {
        opt::TrainingEvent ev;
        ev.opt_hit = false;
        ev.pc = 0xA000;
        policy.onTrainingEvent(ev);
    }
    EXPECT_FALSE(policy.isFriendly(0xA000, 0));
}

TEST(Hawkeye, PredictsReusedPcFriendly)
{
    TestableHawkeye policy;
    policy.reset(sim::CacheGeometry{64, 16, 1});
    for (int i = 0; i < 64; ++i) {
        opt::TrainingEvent ev;
        ev.opt_hit = true;
        ev.pc = 0xB000;
        policy.onTrainingEvent(ev);
    }
    EXPECT_TRUE(policy.isFriendly(0xB000, 0));
}

TEST(Hawkeye, BeatsLruOnThrashingSet)
{
    sim::Cache hawk(smallLlc(), std::make_unique<HawkeyePolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    auto s = cyclic(32, 80); // set 0 is sampled by OPTgen
    auto h_hawk = runStream(hawk, s);
    auto h_lru = runStream(lru, s);
    EXPECT_EQ(h_lru, 0u);
    EXPECT_GT(h_hawk, s.size() / 10);
}

TEST(Hawkeye, AccuracyCountersAdvance)
{
    auto policy = std::make_unique<HawkeyePolicy>();
    auto *probe = policy.get();
    sim::Cache cache(smallLlc(), std::move(policy));
    auto s = cyclic(32, 40);
    runStream(cache, s);
    EXPECT_GT(probe->predictorAccuracy().events, 100u);
    EXPECT_LE(probe->predictorAccuracy().correct,
              probe->predictorAccuracy().events);
}

TEST(Hawkeye, MixedFriendlyAverseStreams)
{
    // Hot region behind PC B; stream behind PC A. Hawkeye should
    // learn to insert A's lines averse and protect B's.
    sim::Cache hawk(smallLlc(), std::make_unique<HawkeyePolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    Rng rng(12);
    std::uint64_t h_hawk = 0, h_lru = 0;
    for (int i = 0; i < 80000; ++i) {
        std::uint64_t pc, b;
        if (i % 2 == 0) {
            pc = 0xAAAA;
            b = (1u << 20) + i; // pure stream
        } else {
            pc = 0xBBBB;
            b = rng.next() % 700; // hot-ish region (~44KB)
        }
        h_hawk += hawk.access(0, pc, b, false);
        h_lru += lru.access(0, pc, b, false);
    }
    EXPECT_GT(h_hawk, h_lru);
}

TEST(RandomPolicy, FillsInvalidWaysFirst)
{
    sim::Cache cache(smallLlc(), std::make_unique<RandomPolicy>());
    for (std::uint64_t b = 0; b < 16; ++b)
        cache.access(0, 1, b * 64, false);
    for (std::uint64_t b = 0; b < 16; ++b)
        EXPECT_TRUE(cache.probe(b * 64));
}

TEST(Frd, BeatsLruOnHotPlusStreamMix)
{
    // The stream PC's lines are never reused, so its learned forward
    // reuse distance collapses toward "dead"; the hot PC's stays
    // short. FRD evicts the dead lines first.
    sim::Cache frd(smallLlc(), std::make_unique<FrdPolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    Rng rng(41);
    std::uint64_t h_frd = 0, h_lru = 0;
    for (int i = 0; i < 80000; ++i) {
        std::uint64_t pc, b;
        if (i % 2 == 0) {
            pc = 0xF00D;
            b = (1u << 22) + i * 64; // dead-on-arrival stream
        } else {
            pc = 0xBEEF;
            b = (rng.next() % 500) * 64; // hot region
        }
        h_frd += frd.access(0, pc, b, false);
        h_lru += lru.access(0, pc, b, false);
    }
    EXPECT_GT(h_frd, h_lru);
}

TEST(Mustache, LookaheadBeatsLruOnCyclicSweep)
{
    // Cyclic sweep of ways+2 blocks in one set: LRU always evicts the
    // block needed next (zero hits); the successor chain names the
    // upcoming blocks, so MUSTACHE protects them and retains a
    // partial working set.
    sim::Cache mustache(smallLlc(), std::make_unique<MustachePolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    auto stream = cyclic(18, 400);
    std::uint64_t h_m = runStream(mustache, stream);
    std::uint64_t h_l = runStream(lru, stream);
    EXPECT_EQ(h_l, 0u);
    EXPECT_GT(h_m, 0u);
}

TEST(Coalesce, BypassesDeadStreamAndKeepsHotSet)
{
    sim::Cache coalesce(smallLlc(), std::make_unique<CoalescePolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    Rng rng(43);
    std::uint64_t h_c = 0, h_l = 0;
    for (int i = 0; i < 80000; ++i) {
        std::uint64_t pc, b;
        if (i % 2 == 0) {
            pc = 0xDEAD;
            b = (1u << 23) + i * 64; // never-reused scan
        } else {
            pc = 0xF17E;
            b = (rng.next() % 500) * 64; // hot region
        }
        h_c += coalesce.access(0, pc, b, false);
        h_l += lru.access(0, pc, b, false);
    }
    EXPECT_GT(h_c, h_l);
}

TEST(EntropyAge, RetainsTightLoop)
{
    // One PC looping over half a set: low window entropy, near
    // insertion, nearly every revisit hits.
    sim::Cache cache(smallLlc(), std::make_unique<EntropyAgePolicy>());
    auto stream = cyclic(8, 500);
    std::uint64_t hits = runStream(cache, stream, 0x500000);
    EXPECT_GT(hits, stream.size() / 2);
}

TEST(DecayCount, FrequencyBeatsLruUnderScans)
{
    // LFU-with-forgetting: frequently revisited blocks build counts
    // that one-shot scan lines (count 1) never displace.
    sim::Cache decay(smallLlc(), std::make_unique<DecayCountPolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    Rng rng(44);
    std::uint64_t h_d = 0, h_l = 0;
    for (int i = 0; i < 80000; ++i) {
        std::uint64_t b;
        if (i % 2 == 0)
            b = (1u << 24) + i * 64; // scan
        else
            b = (rng.next() % 400) * 64; // hot region
        h_d += decay.access(0, 0x77, b, false);
        h_l += lru.access(0, 0x77, b, false);
    }
    EXPECT_GT(h_d, h_l);
}

} // namespace
} // namespace policies
} // namespace glider

namespace glider {
namespace policies {
namespace {

TEST(Sdbp, LearnsDeadStreamVsHotMix)
{
    sim::Cache sdbp(smallLlc(), std::make_unique<SdbpPolicy>());
    sim::Cache lru(smallLlc(), std::make_unique<LruPolicy>());
    Rng rng(21);
    std::uint64_t h_sdbp = 0, h_lru = 0;
    for (int i = 0; i < 80000; ++i) {
        std::uint64_t pc, b;
        if (i % 2 == 0) {
            pc = 0xD00D;
            b = (1u << 21) + i; // dead-on-arrival stream
        } else {
            pc = 0xCAFE;
            b = rng.next() % 600; // hot region
        }
        h_sdbp += sdbp.access(0, pc, b, false);
        h_lru += lru.access(0, pc, b, false);
    }
    EXPECT_GT(h_sdbp, h_lru);
}

TEST(Sdbp, RunsOnUniformRandomWithoutPathology)
{
    sim::Cache sdbp(smallLlc(), std::make_unique<SdbpPolicy>());
    Rng rng(22);
    std::uint64_t hits = 0;
    for (int i = 0; i < 40000; ++i)
        hits += sdbp.access(0, 0x100 + rng.next() % 5,
                            rng.next() % 2048, false);
    EXPECT_GT(hits, 0u);
}

/**
 * Property sweep: on a hot-region-plus-stream mixture, every
 * learning policy must beat LRU, across several geometry shapes.
 */
class LearningBeatsLru
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(LearningBeatsLru, OnHotPlusStreamMix)
{
    auto [policy_name, ways] = GetParam();
    sim::CacheConfig cfg;
    cfg.size_bytes = 64ull * ways * 64;
    cfg.ways = static_cast<std::uint32_t>(ways);

    auto make = [&](const std::string &name)
        -> std::unique_ptr<sim::ReplacementPolicy> {
        if (name == "SHiP++")
            return std::make_unique<ShipPPPolicy>();
        if (name == "SDBP")
            return std::make_unique<SdbpPolicy>();
        if (name == "Hawkeye")
            return std::make_unique<HawkeyePolicy>();
        return std::make_unique<MpppbPolicy>();
    };
    sim::Cache smart(cfg, make(policy_name));
    sim::Cache lru(cfg, std::make_unique<LruPolicy>());

    Rng rng(33);
    std::uint64_t hot_blocks = 64ull * ways / 2;
    std::uint64_t h_smart = 0, h_lru = 0;
    for (int i = 0; i < 60000; ++i) {
        std::uint64_t pc, b;
        if (i % 2 == 0) {
            pc = 0xAB00; // stream PC
            b = (1u << 22) + i;
        } else {
            pc = 0xCD00;
            b = rng.next() % hot_blocks;
        }
        h_smart += smart.access(0, pc, b, false);
        h_lru += lru.access(0, pc, b, false);
    }
    EXPECT_GE(h_smart, h_lru) << policy_name << " ways=" << ways;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndGeometries, LearningBeatsLru,
    ::testing::Combine(::testing::Values("SHiP++", "SDBP", "Hawkeye",
                                         "MPPPB"),
                       ::testing::Values(4, 8, 16)));

} // namespace
} // namespace policies
} // namespace glider
