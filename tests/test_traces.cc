/**
 * @file
 * Unit tests for src/traces: record semantics, trace container, file
 * round-trips, and Table 2 statistics.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "traces/access.hh"
#include "traces/trace.hh"
#include "traces/trace_stats.hh"

namespace glider {
namespace traces {
namespace {

TEST(Access, BlockAddrStripsOffset)
{
    EXPECT_EQ(blockAddr(0), 0u);
    EXPECT_EQ(blockAddr(63), 0u);
    EXPECT_EQ(blockAddr(64), 1u);
    EXPECT_EQ(blockAddr(0x1000), 0x1000u >> 6);
}

TEST(Access, SameBlockForNeighbours)
{
    EXPECT_EQ(blockAddr(0x1234), blockAddr(0x1234 + 1));
}

TEST(Trace, PushAndIndex)
{
    Trace t("x");
    t.push(0x400000, 0x1000);
    t.push(0x400004, 0x2000, true, 2);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].pc, 0x400000u);
    EXPECT_FALSE(t[0].is_write);
    EXPECT_TRUE(t[1].is_write);
    EXPECT_EQ(t[1].core, 2);
}

TEST(Trace, TruncateShrinksOnly)
{
    Trace t("x");
    for (int i = 0; i < 10; ++i)
        t.push(1, i * 64);
    t.truncate(4);
    EXPECT_EQ(t.size(), 4u);
    t.truncate(100);
    EXPECT_EQ(t.size(), 4u);
}

TEST(Trace, SliceClampsToBounds)
{
    Trace t("x");
    for (int i = 0; i < 10; ++i)
        t.push(1, i * 64);
    Trace s = t.slice(8, 5);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0].address, 8u * 64);
    Trace empty = t.slice(20, 5);
    EXPECT_TRUE(empty.empty());
}

TEST(Trace, SaveLoadRoundTrip)
{
    Trace t("roundtrip");
    for (int i = 0; i < 100; ++i)
        t.push(0x400000 + i * 4, 0x10000 + i * 64, i % 3 == 0,
               static_cast<std::uint8_t>(i % 4));
    std::string path = "/tmp/glider_trace_test.bin";
    ASSERT_TRUE(t.save(path));
    Trace loaded;
    ASSERT_TRUE(Trace::load(path, loaded));
    ASSERT_EQ(loaded.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(loaded[i], t[i]);
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage)
{
    std::string path = "/tmp/glider_trace_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace file at all", f);
    std::fclose(f);
    Trace t;
    EXPECT_FALSE(Trace::load(path, t));
    std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileFails)
{
    Trace t;
    EXPECT_FALSE(Trace::load("/tmp/glider_no_such_file.bin", t));
}

TEST(TraceStats, CountsUniquePcsAndBlocks)
{
    Trace t("stats");
    // 2 PCs, 3 unique blocks, 6 accesses.
    t.push(1, 0 * 64);
    t.push(1, 1 * 64);
    t.push(2, 2 * 64);
    t.push(2, 2 * 64 + 8); // same block as previous
    t.push(1, 0 * 64);
    t.push(2, 1 * 64);
    TraceStats s = computeStats(t);
    EXPECT_EQ(s.accesses, 6u);
    EXPECT_EQ(s.unique_pcs, 2u);
    EXPECT_EQ(s.unique_addrs, 3u);
    EXPECT_DOUBLE_EQ(s.accesses_per_pc, 3.0);
    EXPECT_DOUBLE_EQ(s.accesses_per_addr, 2.0);
}

TEST(TraceStats, EmptyTraceIsAllZero)
{
    TraceStats s = computeStats(Trace("empty"));
    EXPECT_EQ(s.accesses, 0u);
    EXPECT_EQ(s.unique_pcs, 0u);
    EXPECT_EQ(s.accesses_per_pc, 0.0);
}

TEST(TraceStats, FormatRowContainsName)
{
    Trace t("mcf");
    t.push(1, 64);
    auto row = formatStatsRow(computeStats(t));
    EXPECT_NE(row.find("mcf"), std::string::npos);
}

} // namespace
} // namespace traces
} // namespace glider
