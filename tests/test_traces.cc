/**
 * @file
 * Unit tests for src/traces: record semantics, trace container, file
 * round-trips, Table 2 statistics, the process-wide TraceCache, and
 * the determinism/shape guarantees of the workload generators that
 * everything downstream (oracles, golden tests, benches) rests on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "traces/access.hh"
#include "traces/trace.hh"
#include "traces/trace_cache.hh"
#include "traces/trace_stats.hh"
#include "workloads/registry.hh"

namespace glider {
namespace traces {
namespace {

TEST(Access, BlockAddrStripsOffset)
{
    EXPECT_EQ(blockAddr(0), 0u);
    EXPECT_EQ(blockAddr(63), 0u);
    EXPECT_EQ(blockAddr(64), 1u);
    EXPECT_EQ(blockAddr(0x1000), 0x1000u >> 6);
}

TEST(Access, SameBlockForNeighbours)
{
    EXPECT_EQ(blockAddr(0x1234), blockAddr(0x1234 + 1));
}

TEST(Trace, PushAndIndex)
{
    Trace t("x");
    t.push(0x400000, 0x1000);
    t.push(0x400004, 0x2000, true, 2);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].pc, 0x400000u);
    EXPECT_FALSE(t[0].is_write);
    EXPECT_TRUE(t[1].is_write);
    EXPECT_EQ(t[1].core, 2);
}

TEST(Trace, TruncateShrinksOnly)
{
    Trace t("x");
    for (int i = 0; i < 10; ++i)
        t.push(1, i * 64);
    t.truncate(4);
    EXPECT_EQ(t.size(), 4u);
    t.truncate(100);
    EXPECT_EQ(t.size(), 4u);
}

TEST(Trace, SliceClampsToBounds)
{
    Trace t("x");
    for (int i = 0; i < 10; ++i)
        t.push(1, i * 64);
    Trace s = t.slice(8, 5);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0].address, 8u * 64);
    Trace empty = t.slice(20, 5);
    EXPECT_TRUE(empty.empty());
}

TEST(Trace, SaveLoadRoundTrip)
{
    Trace t("roundtrip");
    for (int i = 0; i < 100; ++i)
        t.push(0x400000 + i * 4, 0x10000 + i * 64, i % 3 == 0,
               static_cast<std::uint8_t>(i % 4));
    std::string path = "/tmp/glider_trace_test.bin";
    ASSERT_TRUE(t.save(path));
    Trace loaded;
    ASSERT_TRUE(Trace::load(path, loaded));
    ASSERT_EQ(loaded.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(loaded[i], t[i]);
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage)
{
    std::string path = "/tmp/glider_trace_garbage.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace file at all", f);
    std::fclose(f);
    Trace t;
    EXPECT_FALSE(Trace::load(path, t));
    std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileFails)
{
    Trace t;
    EXPECT_FALSE(Trace::load("/tmp/glider_no_such_file.bin", t));
}

/** Write @p t, then rewrite the file as its first @p bytes bytes. */
void
truncateFile(const std::string &path, long bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::vector<char> data(static_cast<std::size_t>(bytes));
    ASSERT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
}

Trace
smallTrace(int n)
{
    Trace t("fixture");
    for (int i = 0; i < n; ++i)
        t.push(0x400000 + i * 4, 0x10000 + i * 64, i % 2 == 0,
               static_cast<std::uint8_t>(i % 3));
    return t;
}

TEST(Trace, LoadRejectsPartialFinalRecord)
{
    // A torn write / interrupted copy: the final record is cut mid-way.
    // Header is 16 bytes, each record 24; cut 10 bytes into record 5.
    std::string path = "/tmp/glider_trace_torn.bin";
    ASSERT_TRUE(smallTrace(5).save(path));
    truncateFile(path, 16 + 4 * 24 + 10);
    Trace t;
    EXPECT_FALSE(Trace::load(path, t));
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsMissingWholeRecords)
{
    // Truncated exactly at a record boundary: the byte count is
    // self-consistent per record but short of the declared count.
    std::string path = "/tmp/glider_trace_short.bin";
    ASSERT_TRUE(smallTrace(5).save(path));
    truncateFile(path, 16 + 3 * 24);
    Trace t;
    EXPECT_FALSE(Trace::load(path, t));
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsTruncatedHeader)
{
    std::string path = "/tmp/glider_trace_hdr.bin";
    ASSERT_TRUE(smallTrace(5).save(path));
    truncateFile(path, 12); // magic survives, count does not
    Trace t;
    EXPECT_FALSE(Trace::load(path, t));
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsTrailingGarbage)
{
    // Extra bytes past the declared record count: the file no longer
    // round-trips what save() wrote, so it must be rejected rather
    // than silently accepted.
    std::string path = "/tmp/glider_trace_trailing.bin";
    ASSERT_TRUE(smallTrace(5).save(path));
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("stale bytes from a previous longer trace", f);
    std::fclose(f);
    Trace t;
    EXPECT_FALSE(Trace::load(path, t));
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsEmptyFile)
{
    std::string path = "/tmp/glider_trace_empty.bin";
    std::fclose(std::fopen(path.c_str(), "wb"));
    Trace t;
    EXPECT_FALSE(Trace::load(path, t));
    std::remove(path.c_str());
}

TEST(Trace, ZeroRecordTraceRoundTrips)
{
    std::string path = "/tmp/glider_trace_zero.bin";
    ASSERT_TRUE(Trace("nothing").save(path));
    Trace t;
    EXPECT_TRUE(Trace::load(path, t));
    EXPECT_TRUE(t.empty());
    std::remove(path.c_str());
}

TEST(TraceStats, CountsUniquePcsAndBlocks)
{
    Trace t("stats");
    // 2 PCs, 3 unique blocks, 6 accesses.
    t.push(1, 0 * 64);
    t.push(1, 1 * 64);
    t.push(2, 2 * 64);
    t.push(2, 2 * 64 + 8); // same block as previous
    t.push(1, 0 * 64);
    t.push(2, 1 * 64);
    TraceStats s = computeStats(t);
    EXPECT_EQ(s.accesses, 6u);
    EXPECT_EQ(s.unique_pcs, 2u);
    EXPECT_EQ(s.unique_addrs, 3u);
    EXPECT_DOUBLE_EQ(s.accesses_per_pc, 3.0);
    EXPECT_DOUBLE_EQ(s.accesses_per_addr, 2.0);
}

TEST(TraceStats, EmptyTraceIsAllZero)
{
    TraceStats s = computeStats(Trace("empty"));
    EXPECT_EQ(s.accesses, 0u);
    EXPECT_EQ(s.unique_pcs, 0u);
    EXPECT_EQ(s.accesses_per_pc, 0.0);
}

TEST(TraceStats, FormatRowContainsName)
{
    Trace t("mcf");
    t.push(1, 64);
    auto row = formatStatsRow(computeStats(t));
    EXPECT_NE(row.find("mcf"), std::string::npos);
}

/** Builder that counts invocations and encodes the key in the trace. */
TraceCache::Builder
countingBuilder(std::atomic<int> &builds)
{
    return [&builds](const std::string &name, std::uint64_t accesses,
                     Trace &out) {
        ++builds;
        for (std::uint64_t i = 0; i < accesses; ++i)
            out.push(std::hash<std::string>{}(name), i * 64);
    };
}

TEST(TraceCache, BuildsOncePerKey)
{
    std::atomic<int> builds{0};
    TraceCache cache(countingBuilder(builds));
    const Trace &a = cache.get("wl", 10);
    const Trace &b = cache.get("wl", 10);
    EXPECT_EQ(&a, &b); // same storage, not a copy
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(TraceCache, DistinctKeysDoNotCollide)
{
    // Same name with different lengths, and different names with the
    // same length, are all distinct keys with independent builds.
    std::atomic<int> builds{0};
    TraceCache cache(countingBuilder(builds));
    EXPECT_EQ(cache.get("wl", 10).size(), 10u);
    EXPECT_EQ(cache.get("wl", 20).size(), 20u);
    EXPECT_EQ(cache.get("other", 10).size(), 10u);
    EXPECT_NE(cache.get("wl", 10)[0].pc, cache.get("other", 10)[0].pc);
    EXPECT_EQ(builds.load(), 3);
    EXPECT_EQ(cache.size(), 3u);
}

TEST(TraceCache, ConcurrentGetsShareOneBuild)
{
    std::atomic<int> builds{0};
    TraceCache cache(countingBuilder(builds));
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int i = 0; i < 8; ++i)
        threads.emplace_back([&] {
            const Trace &t = cache.get("shared", 1000);
            if (t.size() != 1000)
                ++mismatches;
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(TraceCache, ClearDropsEntriesAndRebuilds)
{
    std::atomic<int> builds{0};
    TraceCache cache(countingBuilder(builds));
    cache.get("wl", 10);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    cache.get("wl", 10);
    EXPECT_EQ(builds.load(), 2);
}

TEST(TraceCache, AssignsNameWhenBuilderLeavesItEmpty)
{
    TraceCache cache([](const std::string &, std::uint64_t, Trace &out) {
        out.push(1, 64);
    });
    EXPECT_EQ(cache.get("fallback", 1).name(), "fallback");
}

TEST(WorkloadGen, DeterministicAcrossIndependentRuns)
{
    // Kernels are pure functions of their parameters: two separately
    // constructed instances must emit byte-identical traces.
    for (const auto &wl : workloads::offlineSubset()) {
        Trace a, b;
        workloads::makeWorkload(wl, 20'000)->run(a);
        workloads::makeWorkload(wl, 20'000)->run(b);
        ASSERT_EQ(a.size(), b.size()) << wl;
        for (std::size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]) << wl << " diverges at " << i;
    }
}

TEST(WorkloadGen, PrefixStability)
{
    // A longer budget extends the trace; it must not reshuffle the
    // prefix (oracle labels computed on a short run stay valid).
    Trace small, big;
    workloads::makeWorkload("mcf", 10'000)->run(small);
    workloads::makeWorkload("mcf", 20'000)->run(big);
    ASSERT_GE(big.size(), small.size());
    for (std::size_t i = 0; i < small.size(); ++i)
        ASSERT_EQ(small[i], big[i]) << "prefix diverges at " << i;
}

TEST(WorkloadGen, DistributionShape)
{
    // Loose structural bounds every synthetic benchmark must meet to
    // be a plausible LLC study input: a realistic PC population and
    // genuine temporal reuse, but nowhere near one-PC/one-block
    // degeneracy.
    for (const auto &wl : workloads::offlineSubset()) {
        Trace t;
        workloads::makeWorkload(wl, 30'000)->run(t);
        TraceStats s = computeStats(t);
        EXPECT_GE(s.accesses, 30'000u) << wl;
        EXPECT_GE(s.unique_pcs, 4u) << wl;
        EXPECT_LE(s.unique_pcs, 100'000u) << wl;
        EXPECT_GT(s.unique_addrs, 64u) << wl;
        EXPECT_GT(s.accesses_per_addr, 1.05) << wl;
    }
}

TEST(WorkloadGen, DifferentBenchmarksDiffer)
{
    Trace a, b;
    workloads::makeWorkload("mcf", 10'000)->run(a);
    workloads::makeWorkload("lbm", 10'000)->run(b);
    bool differ = a.size() != b.size();
    for (std::size_t i = 0; !differ && i < a.size(); ++i)
        differ = !(a[i] == b[i]);
    EXPECT_TRUE(differ);
}

} // namespace
} // namespace traces
} // namespace glider
