/**
 * @file
 * Serving-layer stress suite: MPSC queue linearizability, shard
 * determinism against a single-threaded reference, backpressure,
 * graceful shutdown with in-flight batches, snapshot/restore
 * round-trips, and fault-plan soak (throw/flaky/hang inside a shard
 * worker). Sized to run under TSan in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "serve/advice_engine.hh"
#include "serve/mpsc_queue.hh"

namespace {

using namespace glider;
using serve::AdviceEngine;
using serve::AdviceRequest;
using serve::AdviceResponse;
using serve::EngineConfig;
using serve::MpscRingQueue;
using serve::RequestKind;
using serve::ResponseStatus;

/** Spin until @p done reaches @p expect (acquire), or fail at 30s. */
void
awaitDone(const std::atomic<std::uint64_t> &done, std::uint64_t expect)
{
    auto deadline = std::chrono::steady_clock::now()
        + std::chrono::seconds(30);
    while (done.load(std::memory_order_acquire) < expect) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "engine did not publish " << expect << " responses";
        std::this_thread::yield();
    }
}

/** One scripted tenant operation. */
struct Op
{
    bool train = false;
    std::uint64_t pc = 0;
    bool opt_hit = false;
};

/** Deterministic mixed advise/train stream over a small PC set. */
std::vector<Op>
makeOps(std::uint64_t seed, std::size_t n, std::size_t pcs = 24,
        double train_fraction = 0.3)
{
    Rng rng(seed);
    std::vector<Op> ops(n);
    for (auto &op : ops) {
        op.pc = 0x4000 + 8 * rng.below(pcs);
        op.train = rng.chance(train_fraction);
        op.opt_hit = rng.chance(0.5);
    }
    return ops;
}

/**
 * Single-threaded oracle: the same serial semantics the engine
 * promises per tenant, but through the *per-access* scalar predictor
 * path (decisionSum over the live PCHR) rather than predictMany —
 * a genuinely different code path, so bit-equality is a strong
 * differential check of batching, sharding, and queueing.
 */
class ReferenceTenant
{
  public:
    explicit ReferenceTenant(const core::GliderConfig &config)
        : pred_(config, 1)
    {
    }

    AdviceResponse
    advise(std::uint64_t pc)
    {
        AdviceResponse out;
        out.score = pred_.decisionSum(pc, 0);
        out.level = serve::toAdviceLevel(pred_.classify(out.score));
        out.status = ResponseStatus::Ok;
        pred_.observe(pc, 0);
        return out;
    }

    void
    train(std::uint64_t pc, bool opt_hit)
    {
        pred_.train(pc, 0, pred_.history(0), opt_hit);
        pred_.observe(pc, 0);
    }

    const core::GliderPredictor &predictor() const { return pred_; }

  private:
    core::GliderPredictor pred_;
};

/** Submit @p ops for @p tenant in order, retrying on backpressure. */
void
submitAll(AdviceEngine &engine, std::uint64_t tenant,
          const std::vector<Op> &ops,
          std::vector<AdviceResponse> &responses,
          std::atomic<std::uint64_t> &done)
{
    ASSERT_EQ(responses.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        AdviceRequest req;
        req.tenant = tenant;
        req.pc = ops[i].pc;
        req.kind =
            ops[i].train ? RequestKind::Train : RequestKind::Advise;
        req.opt_hit = ops[i].opt_hit;
        req.response = &responses[i];
        req.done = &done;
        while (!engine.submit(req))
            std::this_thread::yield();
    }
}

/** Engine responses for one tenant must bit-match the reference. */
void
expectMatchesReference(const core::GliderConfig &config,
                       const std::vector<Op> &ops,
                       const std::vector<AdviceResponse> &responses)
{
    ReferenceTenant ref(config);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].train) {
            ref.train(ops[i].pc, ops[i].opt_hit);
            EXPECT_EQ(responses[i].status, ResponseStatus::Ok);
            continue;
        }
        AdviceResponse want = ref.advise(ops[i].pc);
        EXPECT_EQ(responses[i].score, want.score) << "op " << i;
        EXPECT_EQ(responses[i].level, want.level) << "op " << i;
        EXPECT_EQ(responses[i].status, ResponseStatus::Ok)
            << "op " << i;
    }
}

TEST(MpscQueue, FifoAndBackpressureSingleThread)
{
    MpscRingQueue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.tryPush(i));
    EXPECT_FALSE(q.tryPush(99)); // full: backpressure, not overwrite
    int v = -1;
    EXPECT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(q.tryPush(4)); // slot recycled
    for (int want = 1; want <= 4; ++want) {
        ASSERT_TRUE(q.tryPop(v));
        EXPECT_EQ(v, want);
    }
    EXPECT_FALSE(q.tryPop(v)); // empty
}

TEST(MpscQueue, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(MpscRingQueue<int>(1).capacity(), 2u);
    EXPECT_EQ(MpscRingQueue<int>(3).capacity(), 4u);
    EXPECT_EQ(MpscRingQueue<int>(64).capacity(), 64u);
    EXPECT_EQ(MpscRingQueue<int>(65).capacity(), 128u);
}

TEST(MpscQueue, NProducersExactlyOncePerProducerFifo)
{
    struct Item
    {
        std::uint32_t producer = 0;
        std::uint32_t seq = 0;
    };
    constexpr std::uint32_t kProducers = 4;
    constexpr std::uint32_t kPerProducer = 20000;
    MpscRingQueue<Item> q(128); // small: forces backpressure retries

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::uint32_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (std::uint32_t s = 0; s < kPerProducer; ++s) {
                Item item{p, s};
                while (!q.tryPush(item))
                    std::this_thread::yield();
            }
        });
    }

    // Single consumer: every item arrives exactly once, and each
    // producer's items arrive in its push order.
    std::uint32_t next_seq[kProducers] = {0, 0, 0, 0};
    std::uint64_t popped = 0;
    Item item;
    while (popped < std::uint64_t{kProducers} * kPerProducer) {
        if (!q.tryPop(item)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_LT(item.producer, kProducers);
        ASSERT_EQ(item.seq, next_seq[item.producer])
            << "per-producer FIFO violated (or duplicate/lost item)";
        ++next_seq[item.producer];
        ++popped;
    }
    for (auto &t : producers)
        t.join();
    for (std::uint32_t p = 0; p < kProducers; ++p)
        EXPECT_EQ(next_seq[p], kPerProducer);
    EXPECT_FALSE(q.tryPop(item)); // nothing invented
}

TEST(AdviceEngine, SingleTenantBitIdenticalToReference)
{
    EngineConfig config;
    config.shards = 2;
    config.queue_capacity = 256;
    AdviceEngine engine(config);

    std::vector<Op> ops = makeOps(0xA11CE, 3000);
    std::vector<AdviceResponse> responses(ops.size());
    std::atomic<std::uint64_t> done{0};
    submitAll(engine, 42, ops, responses, done);
    awaitDone(done, ops.size());
    engine.stop();

    expectMatchesReference(config.predictor, ops, responses);
    AdviceEngine::Stats stats = engine.stats();
    EXPECT_EQ(stats.accepted, ops.size());
    EXPECT_EQ(stats.served, ops.size());
    EXPECT_EQ(stats.quarantined_tenants, 0u);
}

TEST(AdviceEngine, ConcurrentTenantsEachBitIdentical)
{
    EngineConfig config;
    config.shards = 3;
    config.queue_capacity = 128;
    AdviceEngine engine(config);

    constexpr std::size_t kClients = 4;
    constexpr std::size_t kOps = 4000;
    std::vector<std::vector<Op>> ops(kClients);
    std::vector<std::vector<AdviceResponse>> responses(kClients);
    std::vector<std::atomic<std::uint64_t>> done(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        ops[c] = makeOps(0xBEEF00 + c, kOps, 16 + 4 * c);
        responses[c].resize(kOps);
    }
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            submitAll(engine, 100 + c, ops[c], responses[c], done[c]);
        });
    }
    for (auto &t : clients)
        t.join();
    for (std::size_t c = 0; c < kClients; ++c)
        awaitDone(done[c], kOps);
    engine.stop();

    // Concurrency must not leak between tenants: each stream is
    // bit-identical to its own single-threaded reference.
    for (std::size_t c = 0; c < kClients; ++c)
        expectMatchesReference(config.predictor, ops[c],
                               responses[c]);
    EXPECT_EQ(engine.stats().served, kClients * kOps);
}

TEST(AdviceEngine, GracefulShutdownServesInFlightBatches)
{
    EngineConfig config;
    config.shards = 2;
    config.queue_capacity = 1024;
    AdviceEngine engine(config);

    // Fill both shards with in-flight work, then stop immediately:
    // every accepted request must still be answered.
    std::vector<Op> ops = makeOps(0x5109, 800);
    std::vector<AdviceResponse> responses(ops.size());
    std::atomic<std::uint64_t> done{0};
    std::uint64_t accepted = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        AdviceRequest req;
        req.tenant = 7 + (i % 5);
        req.pc = ops[i].pc;
        req.kind =
            ops[i].train ? RequestKind::Train : RequestKind::Advise;
        req.opt_hit = ops[i].opt_hit;
        req.response = &responses[i];
        req.done = &done;
        if (engine.submit(req))
            ++accepted;
    }
    engine.stop();

    EXPECT_EQ(done.load(std::memory_order_acquire), accepted);
    EXPECT_EQ(engine.stats().served, accepted);

    // The gate is down: nothing is accepted after stop().
    AdviceRequest late;
    late.tenant = 7;
    late.pc = 0x4000;
    late.response = &responses[0];
    late.done = &done;
    EXPECT_FALSE(engine.submit(late));
}

TEST(AdviceEngine, BackpressureWhenQueueFull)
{
    // One shard whose worker hangs on its first tenant run (unwound
    // by the per-attempt recovery deadline), with a 2-slot ring: the
    // flood behind the hung batch must see tryPush backpressure.
    resilience::FaultPlan plan =
        resilience::FaultPlan::parse("hang@tenant/1");
    EngineConfig config;
    config.shards = 1;
    config.queue_capacity = 2;
    config.faults = &plan;
    config.recovery.max_attempts = 1;
    config.recovery.deadline_ms = 200;
    AdviceEngine engine(config);

    constexpr std::size_t kTries = 64;
    std::vector<AdviceResponse> responses(kTries);
    std::atomic<std::uint64_t> done{0};
    std::uint64_t accepted = 0, rejected = 0;
    for (std::size_t i = 0; i < kTries; ++i) {
        AdviceRequest req;
        req.tenant = 1;
        req.pc = 0x4000 + 8 * (i % 8);
        req.response = &responses[i];
        req.done = &done;
        if (engine.submit(req))
            ++accepted;
        else
            ++rejected;
    }
    EXPECT_GT(rejected, 0u) << "full ring must refuse, not block";
    EXPECT_GT(accepted, 0u);
    awaitDone(done, accepted);
    engine.stop();

    // The hang exhausted the attempt budget: tenant 1 is quarantined
    // and every accepted request was answered as such.
    EXPECT_EQ(engine.stats().served, accepted);
    EXPECT_EQ(engine.stats().rejected, rejected);
    EXPECT_EQ(engine.stats().quarantined_tenants, 1u);
}

TEST(AdviceEngine, SnapshotRestoreRoundTripsByteIdentical)
{
    EngineConfig config;
    config.shards = 2;
    config.queue_capacity = 256;

    std::vector<std::uint64_t> tenants = {3, 11, 900};
    std::vector<std::vector<Op>> ops;
    ops.reserve(tenants.size());
    for (std::size_t t = 0; t < tenants.size(); ++t)
        ops.push_back(makeOps(0xCAFE + t, 1500, 20, 0.5));

    AdviceEngine engine(config);
    std::vector<std::vector<AdviceResponse>> responses(tenants.size());
    std::vector<std::atomic<std::uint64_t>> done(tenants.size());
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        responses[t].resize(ops[t].size());
        submitAll(engine, tenants[t], ops[t], responses[t], done[t]);
    }
    for (std::size_t t = 0; t < tenants.size(); ++t)
        awaitDone(done[t], ops[t].size());
    engine.stop();

    obs::json::Value snap = engine.snapshotJson();
    std::string first = snap.dump();

    // Restore into a fresh engine — with a *different* shard count,
    // since placement is recomputed from ids — and re-snapshot: the
    // document must come back byte-identical.
    EngineConfig config3 = config;
    config3.shards = 3;
    AdviceEngine restored(config3);
    restored.restoreJson(obs::json::Value::parse(first));
    EXPECT_EQ(restored.snapshotJson().dump(), first);

    // File round-trip through the atomic tmp+rename writer.
    std::string path =
        ::testing::TempDir() + "glider_serve_ckpt_test.json";
    ASSERT_TRUE(engine.saveSnapshot(path));
    AdviceEngine from_file(config);
    ASSERT_TRUE(from_file.loadSnapshot(path));
    EXPECT_EQ(from_file.snapshotJson().dump(), first);
    std::remove(path.c_str());
}

TEST(AdviceEngine, RestoredEngineContinuesIdentically)
{
    EngineConfig config;
    config.shards = 2;
    config.queue_capacity = 256;
    const std::uint64_t tenant = 77;
    std::vector<Op> phase1 = makeOps(0xF00D, 2000, 20, 0.5);
    std::vector<Op> phase2 = makeOps(0xF11D, 2000, 20, 0.3);

    // Phase 1 on engine A, snapshot, restore into engine B, phase 2
    // on B. An uninterrupted reference plays both phases straight
    // through; B's phase-2 answers must bit-match it.
    AdviceEngine a(config);
    std::vector<AdviceResponse> r1(phase1.size());
    std::atomic<std::uint64_t> done1{0};
    submitAll(a, tenant, phase1, r1, done1);
    awaitDone(done1, phase1.size());
    a.stop();
    obs::json::Value snap = a.snapshotJson();

    AdviceEngine b(config);
    b.restoreJson(snap);
    std::vector<AdviceResponse> r2(phase2.size());
    std::atomic<std::uint64_t> done2{0};
    submitAll(b, tenant, phase2, r2, done2);
    awaitDone(done2, phase2.size());
    b.stop();

    ReferenceTenant ref(config.predictor);
    for (const Op &op : phase1) {
        if (op.train)
            ref.train(op.pc, op.opt_hit);
        else
            ref.advise(op.pc);
    }
    for (std::size_t i = 0; i < phase2.size(); ++i) {
        if (phase2[i].train) {
            ref.train(phase2[i].pc, phase2[i].opt_hit);
            continue;
        }
        AdviceResponse want = ref.advise(phase2[i].pc);
        EXPECT_EQ(r2[i].score, want.score) << "phase2 op " << i;
        EXPECT_EQ(r2[i].level, want.level) << "phase2 op " << i;
    }
}

TEST(AdviceEngine, ThrowFaultQuarantinesOnlyTargetTenant)
{
    resilience::FaultPlan plan =
        resilience::FaultPlan::parse("throw@tenant/7");
    EngineConfig config;
    config.shards = 2;
    config.queue_capacity = 256;
    config.faults = &plan;
    config.recovery.max_attempts = 2;
    AdviceEngine engine(config);

    std::vector<std::uint64_t> tenants = {5, 6, 7};
    std::vector<std::vector<Op>> ops;
    std::vector<std::vector<AdviceResponse>> responses(3);
    std::vector<std::atomic<std::uint64_t>> done(3);
    for (std::size_t t = 0; t < 3; ++t) {
        ops.push_back(makeOps(0xD00D + t, 600));
        responses[t].resize(ops[t].size());
        submitAll(engine, tenants[t], ops[t], responses[t], done[t]);
    }
    for (std::size_t t = 0; t < 3; ++t)
        awaitDone(done[t], ops[t].size());
    engine.stop();

    // Sibling tenants keep serving, bit-identical to reference.
    expectMatchesReference(config.predictor, ops[0], responses[0]);
    expectMatchesReference(config.predictor, ops[1], responses[1]);
    // The faulted tenant is quarantined; every answer says so.
    for (const AdviceResponse &r : responses[2])
        EXPECT_EQ(r.status, ResponseStatus::Quarantined);
    EXPECT_EQ(engine.stats().quarantined_tenants, 1u);

    // A post-fault snapshot must still restore byte-identically
    // (including the quarantine flag and attempt count).
    std::string first = engine.snapshotJson().dump();
    AdviceEngine restored(config);
    restored.restoreJson(obs::json::Value::parse(first));
    EXPECT_EQ(restored.snapshotJson().dump(), first);
}

TEST(AdviceEngine, FlakyFaultRecoversWithoutDivergence)
{
    // flaky:1 fails the tenant's first-ever attempt, then succeeds:
    // the retry must replay cleanly (faults fire before any state
    // mutation), so answers still bit-match the reference.
    resilience::FaultPlan plan =
        resilience::FaultPlan::parse("flaky:1@tenant/3");
    EngineConfig config;
    config.shards = 1;
    config.queue_capacity = 128;
    config.faults = &plan;
    config.recovery.max_attempts = 3;
    AdviceEngine engine(config);

    std::vector<Op> ops = makeOps(0xFA7E, 500);
    std::vector<AdviceResponse> responses(ops.size());
    std::atomic<std::uint64_t> done{0};
    submitAll(engine, 3, ops, responses, done);
    awaitDone(done, ops.size());
    engine.stop();

    expectMatchesReference(config.predictor, ops, responses);
    EXPECT_EQ(engine.stats().quarantined_tenants, 0u);
}

TEST(AdviceEngine, SoakMixedTenantsUnderConcurrentLoad)
{
    EngineConfig config;
    config.shards = 3;
    config.queue_capacity = 64; // small ring: constant backpressure
    config.max_batch = 32;
    AdviceEngine engine(config);

    constexpr std::size_t kClients = 4;
    constexpr std::size_t kOps = 3000;
    // Each client owns two tenants and interleaves their streams;
    // per-tenant order is still the client's submission order.
    std::vector<std::vector<Op>> ops(kClients);
    std::vector<std::vector<std::uint64_t>> tenant_of(kClients);
    std::vector<std::vector<AdviceResponse>> responses(kClients);
    std::vector<std::atomic<std::uint64_t>> done(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        ops[c] = makeOps(0x50AC + c, kOps, 20, 0.4);
        responses[c].resize(kOps);
        tenant_of[c].resize(kOps);
        Rng rng(0x7E4A + c);
        for (std::size_t i = 0; i < kOps; ++i)
            tenant_of[c][i] = 2 * c + rng.below(2);
    }
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (std::size_t i = 0; i < kOps; ++i) {
                AdviceRequest req;
                req.tenant = tenant_of[c][i];
                req.pc = ops[c][i].pc;
                req.kind = ops[c][i].train ? RequestKind::Train
                                           : RequestKind::Advise;
                req.opt_hit = ops[c][i].opt_hit;
                req.response = &responses[c][i];
                req.done = &done[c];
                while (!engine.submit(req))
                    std::this_thread::yield();
            }
        });
    }
    for (auto &t : clients)
        t.join();
    for (std::size_t c = 0; c < kClients; ++c)
        awaitDone(done[c], kOps);
    engine.stop();

    AdviceEngine::Stats stats = engine.stats();
    EXPECT_EQ(stats.accepted, kClients * kOps);
    EXPECT_EQ(stats.served, kClients * kOps);
    EXPECT_EQ(stats.quarantined_tenants, 0u);

    // Per-tenant determinism holds through the mixed-tenant soak:
    // replay each tenant's substream against its own reference.
    for (std::size_t c = 0; c < kClients; ++c) {
        for (std::uint64_t t = 2 * c; t <= 2 * c + 1; ++t) {
            ReferenceTenant ref(config.predictor);
            for (std::size_t i = 0; i < kOps; ++i) {
                if (tenant_of[c][i] != t)
                    continue;
                if (ops[c][i].train) {
                    ref.train(ops[c][i].pc, ops[c][i].opt_hit);
                    continue;
                }
                AdviceResponse want = ref.advise(ops[c][i].pc);
                EXPECT_EQ(responses[c][i].score, want.score)
                    << "client " << c << " tenant " << t << " op "
                    << i;
                EXPECT_EQ(responses[c][i].level, want.level);
            }
        }
    }
}

} // namespace
