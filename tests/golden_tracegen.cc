/**
 * @file
 * Generator for the committed golden traces under tests/data.
 *
 * The traces are deterministic functions of fixed seeds and are
 * deliberately self-contained here — independent of the workload
 * kernels — so kernel evolution cannot silently invalidate the
 * golden regression counts in test_golden.cc. Rerun only when the
 * golden suite itself is being regenerated on purpose:
 *
 *   ./build/tests/golden_tracegen tests/data
 *
 * then refresh the expected counts table in tests/test_golden.cc
 * (the test prints actual counts on mismatch).
 */

#include <cstdio>
#include <string>

#include "common/rng.hh"
#include "traces/trace.hh"

namespace glider {
namespace {

/**
 * Mixed-phase workload: a hot set under pointer-chase-like reuse,
 * periodic loop sweeps, and a cold streaming tail — enough structure
 * that LRU, Hawkeye, and Glider all make materially different
 * decisions on it.
 */
traces::Trace
goldenMix()
{
    Rng rng(0xA11CE);
    traces::Trace t("golden_mix");
    std::uint64_t cold = 1 << 20;
    for (int i = 0; i < 24000; ++i) {
        std::uint64_t block;
        std::uint64_t pc;
        int phase = (i / 3000) % 2;
        if (phase == 0 && rng.chance(0.7)) {
            block = rng.below(48); // hot set
            pc = 0x400000 + (block % 6) * 4;
        } else if (rng.chance(0.5)) {
            block = 4096 + (static_cast<std::uint64_t>(i) % 1200);
            pc = 0x410000; // loop sweep
        } else {
            block = cold++; // no-reuse stream
            pc = 0x420000;
        }
        t.push(pc, block * 64, rng.chance(0.25),
               /*core=*/0);
    }
    return t;
}

/** Scanning workload: repeated sweeps with random interjections. */
traces::Trace
goldenScan()
{
    Rng rng(0x5CA9);
    traces::Trace t("golden_scan");
    std::uint64_t pos = 0;
    for (int i = 0; i < 24000; ++i) {
        std::uint64_t block;
        std::uint64_t pc;
        if (rng.chance(0.85)) {
            block = pos++ % 3000; // capacity-exceeding sweep
            pc = 0x500000 + (block % 4) * 4;
        } else {
            block = 8192 + rng.below(96); // random hot pokes
            pc = 0x510000;
        }
        t.push(pc, block * 64, false, 0);
    }
    return t;
}

} // namespace
} // namespace glider

int
main(int argc, char **argv)
{
    std::string dir = argc > 1 ? argv[1] : "tests/data";
    for (const auto &trace :
         {glider::goldenMix(), glider::goldenScan()}) {
        std::string path = dir + "/" + trace.name() + ".trace";
        if (!trace.save(path)) {
            std::fprintf(stderr, "failed to write %s\n", path.c_str());
            return 1;
        }
        std::printf("wrote %s (%zu accesses)\n", path.c_str(),
                    trace.size());
    }
    return 0;
}
