/**
 * @file
 * Tests for src/opt: next-use computation, exact Belady MIN (unit
 * and optimality properties), the replaying BeladyPolicy, OPTgen,
 * and LLC-stream extraction.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cachesim/basic_lru.hh"
#include "cachesim/cache.hh"
#include "common/rng.hh"
#include "opt/belady.hh"
#include "opt/llc_stream.hh"
#include "opt/optgen.hh"

namespace glider {
namespace opt {
namespace {

traces::Trace
fromBlocks(const std::vector<std::uint64_t> &blocks)
{
    traces::Trace t("blocks");
    for (auto b : blocks)
        t.push(0x400000 + b * 4, b * 64);
    return t;
}

TEST(NextUse, SimpleChain)
{
    auto t = fromBlocks({1, 2, 1, 3, 2, 1});
    auto next = computeNextUse(t);
    EXPECT_EQ(next[0], 2u);
    EXPECT_EQ(next[1], 4u);
    EXPECT_EQ(next[2], 5u);
    EXPECT_EQ(next[3], SIZE_MAX);
    EXPECT_EQ(next[4], SIZE_MAX);
    EXPECT_EQ(next[5], SIZE_MAX);
}

TEST(Belady, TinyFullyAssociativeExample)
{
    // 1 set, 2 ways. Sequence: A B C A B. MIN keeps A and B (C has
    // no reuse), so the second A and B hit.
    auto t = fromBlocks({0, 2, 4, 0, 2}); // even blocks, sets=1
    auto res = simulateBelady(t, 1, 2);
    EXPECT_EQ(res.hit_count, 2u);
    EXPECT_EQ(res.hits[3], 1);
    EXPECT_EQ(res.hits[4], 1);
    // The first A and B are labelled friendly (their reuse hits),
    // C and the final accesses are not.
    EXPECT_EQ(res.labels[0], 1);
    EXPECT_EQ(res.labels[1], 1);
    EXPECT_EQ(res.labels[2], 0);
    EXPECT_EQ(res.labels[3], 0);
    EXPECT_EQ(res.labels[4], 0);
}

TEST(Belady, CyclicThrashGetsCapacityFractionOfHits)
{
    // Cyclic sweep over 4 blocks with 1 set x 2 ways: LRU would get
    // zero hits; MIN keeps a subset pinned.
    std::vector<std::uint64_t> seq;
    for (int sweep = 0; sweep < 10; ++sweep)
        for (std::uint64_t b = 0; b < 4; ++b)
            seq.push_back(b);
    auto t = fromBlocks(seq);
    auto res = simulateBelady(t, 1, 2);
    // MIN can retain at least one block across each sweep boundary.
    EXPECT_GE(res.hit_count, 9u);
}

double
lruHitRate(const traces::Trace &t, std::uint64_t sets,
           std::uint32_t ways)
{
    sim::CacheConfig cfg;
    cfg.size_bytes = sets * ways * 64;
    cfg.ways = ways;
    sim::Cache cache(cfg, std::make_unique<sim::BasicLruPolicy>());
    std::uint64_t hits = 0;
    for (const auto &rec : t)
        hits += cache.access(0, rec.pc, traces::blockAddr(rec.address),
                             false);
    return static_cast<double>(hits) / static_cast<double>(t.size());
}

/** MIN optimality: Belady's hit rate dominates LRU on random traces. */
class BeladyDominance : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BeladyDominance, BeatsOrMatchesLru)
{
    Rng rng(GetParam());
    std::vector<std::uint64_t> seq;
    for (int i = 0; i < 4000; ++i)
        seq.push_back(rng.below(64));
    auto t = fromBlocks(seq);
    auto res = simulateBelady(t, 4, 4);
    EXPECT_GE(res.hitRate() + 1e-12, lruHitRate(t, 4, 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyDominance,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/** Labels are consistent with hits: every hit has a friendly parent. */
TEST(Belady, LabelHitConsistency)
{
    Rng rng(99);
    std::vector<std::uint64_t> seq;
    for (int i = 0; i < 3000; ++i)
        seq.push_back(rng.below(40));
    auto t = fromBlocks(seq);
    auto res = simulateBelady(t, 2, 4);
    // Count hits and friendly labels: each hit at i corresponds to
    // exactly one earlier friendly access, so the counts match.
    std::uint64_t friendly = 0;
    for (auto l : res.labels)
        friendly += l;
    EXPECT_EQ(friendly, res.hit_count);
}

TEST(BeladyPolicy, ReplayMatchesSimulatedHitCount)
{
    Rng rng(7);
    std::vector<std::uint64_t> seq;
    for (int i = 0; i < 5000; ++i)
        seq.push_back(rng.below(96));
    auto t = fromBlocks(seq);
    auto reference = simulateBelady(t, 4, 4);

    sim::CacheConfig cfg;
    cfg.size_bytes = 4 * 4 * 64;
    cfg.ways = 4;
    sim::Cache cache(cfg, std::make_unique<BeladyPolicy>(t));
    for (const auto &rec : t)
        cache.access(0, rec.pc, traces::blockAddr(rec.address), false);
    EXPECT_EQ(cache.stats().hits, reference.hit_count);
}

TEST(OptGenSet, HitWhenIntervalFits)
{
    OptGenSet set(/*ways=*/1, /*history=*/8, /*entries=*/4);
    PcHistory none;
    EXPECT_FALSE(set.access(10, 1, 0, none, false, false).has_value());
    auto ev = set.access(10, 2, 0, none, false, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->opt_hit);
    EXPECT_EQ(ev->pc, 1u); // labels the *previous* access's PC
}

TEST(OptGenSet, MissWhenCapacityExceeded)
{
    // 1 way: intervals of A and B overlap, so only one can fit.
    OptGenSet set(1, 8, 4);
    PcHistory none;
    set.access(10, 1, 0, none, false, false); // A
    set.access(20, 2, 0, none, false, false); // B
    auto ev_a = set.access(10, 3, 0, none, false, false); // A again
    ASSERT_TRUE(ev_a.has_value());
    EXPECT_TRUE(ev_a->opt_hit); // A's interval [0,2) fits
    auto ev_b = set.access(20, 4, 0, none, false, false); // B again
    ASSERT_TRUE(ev_b.has_value());
    EXPECT_FALSE(ev_b->opt_hit); // quantum 1..2 already full
}

TEST(OptGenSet, TwoWaysAllowOverlap)
{
    OptGenSet set(2, 16, 8);
    PcHistory none;
    set.access(10, 1, 0, none, false, false);
    set.access(20, 2, 0, none, false, false);
    auto a = set.access(10, 3, 0, none, false, false);
    auto b = set.access(20, 4, 0, none, false, false);
    ASSERT_TRUE(a && b);
    EXPECT_TRUE(a->opt_hit);
    EXPECT_TRUE(b->opt_hit);
}

TEST(OptGenSet, ExpiredEntriesTrainNegative)
{
    OptGenSet set(1, 4, 8); // 4-quantum window
    PcHistory none;
    set.access(10, 1, 0, none, true, true);
    // Six unrelated accesses age block 10 out of the window.
    for (std::uint64_t b = 0; b < 6; ++b)
        set.access(100 + b, 2, 0, none, false, false);
    bool found = false;
    while (auto ev = set.popExpired()) {
        if (ev->block == 10) {
            found = true;
            EXPECT_FALSE(ev->opt_hit);
            EXPECT_EQ(ev->pc, 1u);
            EXPECT_TRUE(ev->prediction_valid);
            EXPECT_TRUE(ev->predicted_friendly);
        }
    }
    EXPECT_TRUE(found);
}

TEST(OptGenSet, CapacityEvictionTrainsNegative)
{
    OptGenSet set(4, 1024, /*entries=*/2);
    PcHistory none;
    set.access(1, 11, 0, none, false, true);
    set.access(2, 12, 0, none, false, true);
    set.access(3, 13, 0, none, false, true); // displaces the oldest
    auto ev = set.popExpired();
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->pc, 11u);
    EXPECT_FALSE(ev->opt_hit);
}

TEST(OptGenSet, EntryAtNewBaseSurvivesWindowSlide)
{
    OptGenSet set(1, 4, 8); // 4-quantum window
    PcHistory none;
    set.access(10, 0xA, 0, none, false, false); // t=0
    set.access(11, 0xB, 0, none, false, false); // t=1
    set.access(12, 0xC, 0, none, false, false); // t=2
    set.access(13, 0xD, 0, none, false, false); // t=3
    // t=4 slides the window to new_base=1: the t=0 entry ages out,
    // while the t=1 entry (last_time == new_base) must survive.
    set.access(14, 0xE, 0, none, false, false);
    auto ev = set.popExpired();
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->block, 10u);
    EXPECT_FALSE(ev->opt_hit);
    EXPECT_FALSE(set.popExpired().has_value());
    EXPECT_EQ(set.stats().expired_negatives, 1u);

    // One quantum later (new_base=2) the t=1 entry emits exactly one
    // negative — not zero, not a duplicate.
    set.access(15, 0xF, 0, none, false, false);
    ev = set.popExpired();
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->block, 11u);
    EXPECT_FALSE(set.popExpired().has_value());
    EXPECT_EQ(set.stats().expired_negatives, 2u);
}

TEST(OptGenSet, UtilizationAtExactWindowBoundary)
{
    OptGenSet set(1, 4, 8);
    PcHistory none;
    // Four accesses to one block: clock_ lands exactly on
    // history_quanta_, the boundary between the partial-window and
    // sliding-window scan ranges of occupancyUtilization().
    for (int i = 0; i < 4; ++i)
        set.access(42, 0x1, 0, none, false, false);
    EXPECT_EQ(set.clock(), 4u);
    // Three closed one-quantum intervals reserved occupancy in quanta
    // 0..2; the newest quantum is empty: 3 / (4 quanta * 1 way).
    EXPECT_DOUBLE_EQ(set.occupancyUtilization(), 0.75);
}

TEST(OptGenSampler, DrainInterleavesAcrossSets)
{
    // 2 sets, 1 way, both sampled; per-set sampler capacity is
    // 2*ways = 2 tracked addresses.
    OptGenSampler sampler(2, 1, 2);
    PcHistory none;
    // Four distinct blocks per set queue two capacity-eviction
    // negatives in each set's expired queue.
    for (std::uint64_t b = 0; b < 4; ++b) {
        sampler.access(0, 100 + b, 0x10, 0, none, false, false);
        sampler.access(1, 200 + b, 0x20, 0, none, false, false);
    }
    std::vector<std::uint64_t> pcs;
    while (auto ev = sampler.popExpired())
        pcs.push_back(ev->pc);
    ASSERT_EQ(pcs.size(), 4u);
    // Round-robin drain alternates the two sets; a cursor that never
    // advances on success would drain one set exhaustively first.
    EXPECT_NE(pcs[0], pcs[1]);
    EXPECT_EQ(pcs[0], pcs[2]);
    EXPECT_EQ(pcs[1], pcs[3]);
}

TEST(OptGenSet, HistorySnapshotRoundTrips)
{
    OptGenSet set(2, 16, 8);
    PcHistory h{111, 222, 333};
    set.access(10, 1, 3, h, true, true);
    auto ev = set.access(10, 2, 0, {}, false, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->history, h);
    EXPECT_EQ(ev->core, 3);
}

TEST(OptGenSampler, SamplesSubsetOfSets)
{
    OptGenSampler sampler(2048, 16, 64);
    std::size_t sampled = 0;
    for (std::uint64_t s = 0; s < 2048; ++s)
        sampled += sampler.isSampled(s);
    EXPECT_EQ(sampled, 64u);
}

TEST(OptGenSampler, SampleIsStrideAliasFree)
{
    // No single residue class modulo small strides may own all the
    // sampled sets (the failure mode of strided sampling).
    OptGenSampler sampler(256, 16, 64);
    for (std::uint64_t stride : {2, 4, 8}) {
        std::vector<std::size_t> count(stride, 0);
        for (std::uint64_t s = 0; s < 256; ++s) {
            if (sampler.isSampled(s))
                ++count[s % stride];
        }
        for (auto c : count)
            EXPECT_GT(c, 0u) << "stride " << stride;
    }
}

TEST(OptGenSampler, SmallCachesSampleEverySet)
{
    OptGenSampler sampler(8, 2, 64);
    for (std::uint64_t s = 0; s < 8; ++s)
        EXPECT_TRUE(sampler.isSampled(s));
}

TEST(LlcStream, FiltersL1L2Hits)
{
    traces::Trace t("hot");
    // One block touched repeatedly: only the first access escapes L1.
    for (int i = 0; i < 100; ++i)
        t.push(1, 0x8000);
    auto llc = extractLlcStream(t);
    EXPECT_EQ(llc.size(), 1u);
}

TEST(LlcStream, StreamingPassesThrough)
{
    traces::Trace t("cold");
    for (int i = 0; i < 1000; ++i)
        t.push(1, static_cast<std::uint64_t>(i) * 4096);
    auto llc = extractLlcStream(t);
    EXPECT_EQ(llc.size(), 1000u);
}

TEST(LlcStream, PreservesOrderAndPcs)
{
    traces::Trace t("mix");
    for (int i = 0; i < 64; ++i)
        t.push(0x400000 + i, static_cast<std::uint64_t>(i) * 1ull << 20);
    auto llc = extractLlcStream(t);
    ASSERT_EQ(llc.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(llc[i].pc, 0x400000u + i);
}

} // namespace
} // namespace opt
} // namespace glider

namespace glider {
namespace opt {
namespace {

/**
 * Property: OPTgen's per-set hit reconstruction tracks exact Belady.
 * OPTgen is an online approximation (bounded window, bounded
 * entries), so it may under-count hits, but on traces whose reuse
 * fits the window the two must agree closely.
 */
class OptGenVsExact : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(OptGenVsExact, AgreesOnShortReuseTraces)
{
    Rng rng(GetParam());
    // Single-set trace with reuse distances well inside the window.
    const std::uint32_t ways = 4;
    std::vector<std::uint64_t> blocks;
    for (int i = 0; i < 2000; ++i)
        blocks.push_back(rng.below(8)); // 8 blocks, 4 ways

    traces::Trace t("optgen");
    for (auto b : blocks)
        t.push(0x400000 + b * 4, b * 64 * 1 /*same set: sets=1*/);
    auto exact = simulateBelady(t, 1, ways);

    OptGenSet set(ways, 8 * ways, 8 * ways);
    std::uint64_t optgen_hits = 0;
    for (auto b : blocks) {
        auto ev = set.access(b, 0x400000 + b * 4, 0, {}, false, false);
        if (ev && ev->opt_hit)
            ++optgen_hits;
    }
    // Within 5% of the exact oracle's hit count.
    double exact_hits = static_cast<double>(exact.hit_count);
    EXPECT_NEAR(static_cast<double>(optgen_hits), exact_hits,
                0.05 * exact_hits + 8.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptGenVsExact,
                         ::testing::Values(11, 12, 13, 14, 15));

TEST(OptGen, NeverExceedsCapacityPerQuantum)
{
    // Adversarial: all blocks conflict; the number of positive labels
    // in any window is bounded by what the capacity admits. Verified
    // indirectly: hit rate can never exceed (ways)/(unique blocks).
    Rng rng(77);
    const std::uint32_t ways = 2;
    const std::uint64_t uniq = 16;
    OptGenSet set(ways, 8 * ways, 8 * ways);
    std::uint64_t hits = 0, events = 0;
    for (int i = 0; i < 5000; ++i) {
        auto b = rng.below(uniq);
        auto ev = set.access(b, 1, 0, {}, false, false);
        if (ev) {
            ++events;
            hits += ev->opt_hit;
        }
    }
    ASSERT_GT(events, 0u);
    EXPECT_LT(static_cast<double>(hits) / static_cast<double>(events),
              0.8);
}

} // namespace
} // namespace opt
} // namespace glider
