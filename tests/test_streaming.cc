/**
 * @file
 * Streaming-trace tests: the gtrace v1 codec (round-trip property
 * fuzz, chunk slicing, corruption rejection), the StreamingSource /
 * AccessSource plumbing, generate-once/stream-many spill semantics,
 * and the load-bearing guarantee of the billion-access path — that a
 * streamed simulation is bit-identical to the in-memory one.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "cachesim/access_source.hh"
#include "cachesim/basic_lru.hh"
#include "cachesim/simulator.hh"
#include "common/rng.hh"
#include "traces/gtrace.hh"
#include "traces/trace.hh"
#include "workloads/registry.hh"

namespace glider {
namespace traces {
namespace {

std::string
tmpPath(const char *tag)
{
    return std::string("/tmp/glider_gtrace_") + tag + "."
        + std::to_string(::getpid()) + ".gtrace";
}

/** Write @p t as a gtrace at @p path with the given chunk size. */
void
writeGtrace(const Trace &t, const std::string &path,
            std::uint32_t chunk_target)
{
    GtraceWriter w;
    ASSERT_TRUE(w.open(path, t.name(), chunk_target));
    for (const auto &rec : t)
        w.push(rec);
    ASSERT_TRUE(w.finish());
}

/** Decode every chunk of @p st, in order, into one vector. */
std::vector<AccessRecord>
readAll(const StreamingTrace &st)
{
    std::vector<AccessRecord> out;
    std::vector<AccessRecord> buf(st.maxChunkRecords());
    for (std::size_t c = 0; c < st.chunkCount(); ++c) {
        std::size_t n = st.readChunk(c, buf.data(), buf.size());
        out.insert(out.end(), buf.begin(), buf.begin() + n);
    }
    return out;
}

void
expectSameRecords(const Trace &want, const std::vector<AccessRecord> &got)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], want[i]) << "record " << i;
}

TEST(Gtrace, RoundTripsTypicalTrace)
{
    Trace t("typical");
    for (int i = 0; i < 5000; ++i)
        t.push(0x400000 + (i % 37) * 4, 0x10000 + i * 64, i % 5 == 0,
               static_cast<std::uint8_t>(i % 4));
    std::string path = tmpPath("typical");
    writeGtrace(t, path, 512);
    StreamingTrace st;
    std::string error;
    ASSERT_TRUE(st.open(path, &error)) << error;
    EXPECT_EQ(st.name(), "typical");
    EXPECT_EQ(st.size(), t.size());
    EXPECT_EQ(st.chunkCount(), (5000u + 511) / 512);
    expectSameRecords(t, readAll(st));
    std::remove(path.c_str());
}

TEST(Gtrace, RoundTripPropertyFuzz)
{
    // Random traces x random chunk sizes, with adversarial address
    // behaviour: huge forward/backward jumps (far beyond 4 GiB),
    // sequential runs, repeated records, random cores and writes.
    Rng rng(0xF00D);
    for (int round = 0; round < 25; ++round) {
        Trace t("fuzz");
        auto len = static_cast<int>(rng.below(3000));
        std::uint64_t pc = rng.next();
        std::uint64_t addr = rng.next();
        for (int i = 0; i < len; ++i) {
            switch (rng.below(4)) {
              case 0: // full-range teleport (delta may exceed 2^63)
                pc = rng.next();
                addr = rng.next();
                break;
              case 1: // > 4 GiB jump backwards
                addr -= (5ull << 30) + rng.below(1u << 20);
                break;
              case 2: // small forward stride
                pc += 4;
                addr += 64;
                break;
              default: // repeat the previous record
                break;
            }
            t.push(pc, addr, rng.chance(0.3),
                   static_cast<std::uint8_t>(rng.below(4)));
        }
        auto chunk =
            static_cast<std::uint32_t>(1 + rng.below(300));
        std::string path = tmpPath("fuzz");
        writeGtrace(t, path, chunk);
        StreamingTrace st;
        std::string error;
        ASSERT_TRUE(st.open(path, &error))
            << error << " (round " << round << ")";
        ASSERT_EQ(st.size(), t.size()) << "round " << round;
        expectSameRecords(t, readAll(st));
        std::remove(path.c_str());
    }
}

TEST(Gtrace, RoundTripsEmptyTrace)
{
    std::string path = tmpPath("empty");
    writeGtrace(Trace("nothing"), path, 64);
    StreamingTrace st;
    std::string error;
    ASSERT_TRUE(st.open(path, &error)) << error;
    EXPECT_EQ(st.size(), 0u);
    EXPECT_EQ(st.chunkCount(), 0u);
    std::remove(path.c_str());
}

TEST(Gtrace, RoundTripsSingleRecord)
{
    Trace t("one");
    t.push(UINT64_MAX, UINT64_MAX, true, 3);
    std::string path = tmpPath("one");
    writeGtrace(t, path, 1);
    StreamingTrace st;
    ASSERT_TRUE(st.open(path));
    EXPECT_EQ(st.size(), 1u);
    expectSameRecords(t, readAll(st));
    std::remove(path.c_str());
}

TEST(Gtrace, ChunkSlicingMatchesTraceSlices)
{
    // Each chunk decodes independently (deltas reset per chunk), so
    // chunk c must equal the trace slice [c*K, (c+1)*K) — including
    // when read in arbitrary order.
    Trace t("sliced");
    Rng rng(42);
    for (int i = 0; i < 1000; ++i)
        t.push(rng.next(), rng.next(), rng.chance(0.5));
    constexpr std::uint32_t kChunk = 96;
    std::string path = tmpPath("sliced");
    writeGtrace(t, path, kChunk);
    StreamingTrace st;
    ASSERT_TRUE(st.open(path));
    std::vector<AccessRecord> buf(st.maxChunkRecords());
    // Deliberately scrambled read order.
    std::vector<std::size_t> order;
    for (std::size_t c = 0; c < st.chunkCount(); ++c)
        order.push_back((c * 7 + 3) % st.chunkCount());
    for (std::size_t c : order) {
        std::size_t n = st.readChunk(c, buf.data(), buf.size());
        Trace want = t.slice(c * kChunk, kChunk);
        ASSERT_EQ(n, want.size()) << "chunk " << c;
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(buf[i], want[i]) << "chunk " << c << " rec " << i;
    }
    std::remove(path.c_str());
}

TEST(Gtrace, OpenRejectsBadMagic)
{
    std::string path = tmpPath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("GLDRTRC1 this is some other format entirely", f);
    std::fclose(f);
    StreamingTrace st;
    std::string error;
    EXPECT_FALSE(st.open(path, &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(Gtrace, OpenRejectsTruncation)
{
    // Every proper prefix of a valid file must be rejected: the chunk
    // walk or the trailer check catches the cut wherever it lands.
    Trace t("trunc");
    for (int i = 0; i < 300; ++i)
        t.push(0x400000 + i, 0x10000 + i * 64);
    std::string path = tmpPath("trunc");
    writeGtrace(t, path, 64);
    std::vector<char> bytes;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            bytes.insert(bytes.end(), buf, buf + n);
        std::fclose(f);
    }
    for (std::size_t cut : {std::size_t{4}, std::size_t{20},
                            bytes.size() / 2, bytes.size() - 1}) {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, cut, f), cut);
        std::fclose(f);
        StreamingTrace st;
        std::string error;
        EXPECT_FALSE(st.open(path, &error)) << "cut at " << cut;
    }
    std::remove(path.c_str());
}

TEST(Gtrace, ReadChunkThrowsOnFlippedPayloadByte)
{
    Trace t("corrupt");
    for (int i = 0; i < 200; ++i)
        t.push(0x400000 + i, 0x10000 + i * 64);
    std::string path = tmpPath("corrupt");
    writeGtrace(t, path, 64);
    // Flip one byte deep inside the file (within some chunk payload).
    {
        std::FILE *f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, 120, SEEK_SET), 0);
        int c = std::fgetc(f);
        ASSERT_NE(c, EOF);
        ASSERT_EQ(std::fseek(f, 120, SEEK_SET), 0);
        std::fputc(c ^ 0xFF, f);
        std::fclose(f);
    }
    StreamingTrace st;
    std::string error;
    // Framing fields are length/offset driven, so a payload flip still
    // opens — the per-chunk checksum is what catches it on read.
    ASSERT_TRUE(st.open(path, &error)) << error;
    std::vector<AccessRecord> buf(st.maxChunkRecords());
    EXPECT_THROW(
        {
            for (std::size_t c = 0; c < st.chunkCount(); ++c)
                st.readChunk(c, buf.data(), buf.size());
        },
        std::runtime_error);
    std::remove(path.c_str());
}

TEST(Gtrace, ReadChunkThrowsOnSmallBuffer)
{
    Trace t("smallbuf");
    for (int i = 0; i < 64; ++i)
        t.push(1, i * 64);
    std::string path = tmpPath("smallbuf");
    writeGtrace(t, path, 64);
    StreamingTrace st;
    ASSERT_TRUE(st.open(path));
    std::vector<AccessRecord> buf(8);
    EXPECT_THROW(st.readChunk(0, buf.data(), buf.size()),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(GtraceSink, KernelStreamsIdenticallyToTrace)
{
    // The same kernel through a Trace and through a GtraceSink must
    // produce identical record streams — generate-once/stream-many
    // depends on the sink abstraction not perturbing generation.
    Trace in_memory;
    workloads::makeWorkload("mcf", 20'000)->run(in_memory);

    std::string path = tmpPath("sink");
    GtraceWriter w;
    ASSERT_TRUE(w.open(path, "mcf", 1024));
    GtraceSink sink(w);
    workloads::makeWorkload("mcf", 20'000)->run(sink);
    ASSERT_TRUE(w.finish());

    StreamingTrace st;
    ASSERT_TRUE(st.open(path));
    expectSameRecords(in_memory, readAll(st));
    std::remove(path.c_str());
}

} // namespace
} // namespace traces

namespace sim {
namespace {

traces::Trace
simTrace(std::uint64_t accesses)
{
    traces::Trace t;
    workloads::makeWorkload("omnetpp", accesses)->run(t);
    t.setName("omnetpp");
    return t;
}

TEST(StreamingSource, DeliversAndRewinds)
{
    traces::Trace t = simTrace(10'000);
    std::string path = "/tmp/glider_src_test.gtrace";
    {
        traces::GtraceWriter w;
        ASSERT_TRUE(w.open(path, t.name(), 777));
        for (const auto &rec : t)
            w.push(rec);
        ASSERT_TRUE(w.finish());
    }
    traces::StreamingTrace st;
    ASSERT_TRUE(st.open(path));
    StreamingSource src(std::move(st));
    EXPECT_EQ(src.name(), "omnetpp");
    EXPECT_EQ(src.size(), t.size());
    for (int pass = 0; pass < 2; ++pass) {
        std::uint64_t i = 0;
        for (auto chunk = src.nextChunk(); !chunk.empty();
             chunk = src.nextChunk()) {
            for (const auto &rec : chunk)
                ASSERT_EQ(rec, t[i++]) << "pass " << pass;
        }
        EXPECT_EQ(i, t.size()) << "pass " << pass;
        EXPECT_TRUE(src.nextChunk().empty()); // stays exhausted
        src.rewind();
    }
    std::remove(path.c_str());
}

TEST(StreamingSource, SingleCoreRunIsBitIdenticalToInMemory)
{
    traces::Trace t = simTrace(30'000);
    std::string path = "/tmp/glider_src_single.gtrace";
    {
        traces::GtraceWriter w;
        ASSERT_TRUE(w.open(path, t.name(), 1000));
        for (const auto &rec : t)
            w.push(rec);
        ASSERT_TRUE(w.finish());
    }
    SimOptions opts;
    auto mem = runSingleCore(t, std::make_unique<BasicLruPolicy>(),
                             opts);
    traces::StreamingTrace st;
    ASSERT_TRUE(st.open(path));
    StreamingSource src(std::move(st));
    auto streamed = runSingleCore(src,
                                  std::make_unique<BasicLruPolicy>(),
                                  opts);
    EXPECT_EQ(streamed.workload, mem.workload);
    EXPECT_EQ(streamed.llc.accesses, mem.llc.accesses);
    EXPECT_EQ(streamed.llc.hits, mem.llc.hits);
    EXPECT_EQ(streamed.llc.misses, mem.llc.misses);
    EXPECT_EQ(streamed.llc.evictions, mem.llc.evictions);
    EXPECT_EQ(streamed.llc.bypasses, mem.llc.bypasses);
    EXPECT_EQ(streamed.instructions, mem.instructions);
    EXPECT_EQ(streamed.cycles, mem.cycles);
    EXPECT_EQ(streamed.ipc, mem.ipc);
    EXPECT_EQ(streamed.accesses_simulated, mem.accesses_simulated);
    std::remove(path.c_str());
}

TEST(StreamingSource, MultiCoreRunIsBitIdenticalToInMemory)
{
    // The multi-core driver wraps streams (rewind at exhaustion), so
    // this also pins the wrap-around semantics against the in-memory
    // modulo-cursor behaviour.
    traces::Trace a = simTrace(8'000);
    traces::Trace b;
    workloads::makeWorkload("mcf", 8'000)->run(b);
    b.setName("mcf");
    std::string pa = "/tmp/glider_src_mc_a.gtrace";
    std::string pb = "/tmp/glider_src_mc_b.gtrace";
    const std::vector<std::pair<const traces::Trace *, std::string>>
        to_write{{&a, pa}, {&b, pb}};
    for (const auto &[t, p] : to_write) {
        traces::GtraceWriter w;
        ASSERT_TRUE(w.open(p, t->name(), 640));
        for (const auto &rec : *t)
            w.push(rec);
        ASSERT_TRUE(w.finish());
    }
    SimOptions opts;
    auto mem = runMultiCore({&a, &b},
                            std::make_unique<BasicLruPolicy>(), 12'000,
                            opts);

    traces::StreamingTrace sa, sb;
    ASSERT_TRUE(sa.open(pa));
    ASSERT_TRUE(sb.open(pb));
    StreamingSource srca(std::move(sa)), srcb(std::move(sb));
    std::vector<AccessSource *> sources{&srca, &srcb};
    auto streamed = runMultiCore(sources,
                                 std::make_unique<BasicLruPolicy>(),
                                 12'000, opts);
    EXPECT_EQ(streamed.workloads, mem.workloads);
    EXPECT_EQ(streamed.llc.accesses, mem.llc.accesses);
    EXPECT_EQ(streamed.llc.hits, mem.llc.hits);
    EXPECT_EQ(streamed.llc.misses, mem.llc.misses);
    EXPECT_EQ(streamed.llc.evictions, mem.llc.evictions);
    ASSERT_EQ(streamed.ipc_shared.size(), mem.ipc_shared.size());
    for (std::size_t c = 0; c < mem.ipc_shared.size(); ++c)
        EXPECT_EQ(streamed.ipc_shared[c], mem.ipc_shared[c]);
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

} // namespace
} // namespace sim

namespace workloads {
namespace {

/** RAII env var override. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const std::string &value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old)
            old_ = old;
        ::setenv(name, value.c_str(), 1);
    }
    ~EnvGuard()
    {
        if (old_.has_value())
            ::setenv(name_, old_->c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    std::optional<std::string> old_;
};

TEST(TraceSpill, FingerprintSeparatesNameAndLength)
{
    EXPECT_NE(traceFingerprint("mcf", 1000),
              traceFingerprint("lbm", 1000));
    EXPECT_NE(traceFingerprint("mcf", 1000),
              traceFingerprint("mcf", 2000));
    EXPECT_EQ(traceFingerprint("mcf", 1000),
              traceFingerprint("mcf", 1000));
}

TEST(TraceSpill, EnsureGeneratesOnceAndReuses)
{
    std::string dir = "/tmp/glider_spill_test."
        + std::to_string(::getpid());
    EnvGuard env("GLIDER_TRACE_DIR", dir);

    std::string path = ensureSpilledTrace("sphinx3", 5'000);
    ASSERT_TRUE(std::filesystem::exists(path));
    auto first_write = std::filesystem::last_write_time(path);

    // Second call must reuse the existing file, not regenerate.
    EXPECT_EQ(ensureSpilledTrace("sphinx3", 5'000), path);
    EXPECT_EQ(std::filesystem::last_write_time(path), first_write);

    // The spilled stream replays exactly what the kernel emits.
    traces::Trace want;
    makeWorkload("sphinx3", 5'000)->run(want);
    traces::StreamingTrace st;
    ASSERT_TRUE(st.open(path));
    EXPECT_EQ(st.name(), "sphinx3");
    ASSERT_EQ(st.size(), want.size());
    std::vector<traces::AccessRecord> buf(st.maxChunkRecords());
    std::uint64_t i = 0;
    for (std::size_t c = 0; c < st.chunkCount(); ++c) {
        std::size_t n = st.readChunk(c, buf.data(), buf.size());
        for (std::size_t k = 0; k < n; ++k)
            ASSERT_EQ(buf[k], want[i++]);
    }
    std::filesystem::remove_all(dir);
}

TEST(TraceSpill, DistinctLengthsGetDistinctFiles)
{
    std::string dir = "/tmp/glider_spill_len."
        + std::to_string(::getpid());
    EnvGuard env("GLIDER_TRACE_DIR", dir);
    std::string a = ensureSpilledTrace("tc", 2'000);
    std::string b = ensureSpilledTrace("tc", 4'000);
    EXPECT_NE(a, b);
    EXPECT_TRUE(std::filesystem::exists(a));
    EXPECT_TRUE(std::filesystem::exists(b));
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace workloads
} // namespace glider
