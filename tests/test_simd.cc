/**
 * @file
 * Differential tests for the vectorized batched prediction path: the
 * SIMD dot kernels against the scalar reference (exhaustive corners
 * plus fuzz), predictMany against per-access predict, the PCHR's
 * incrementally maintained slot counts against a from-scratch rescan,
 * and the simulator's batched-advice probe against an unprobed run.
 * Every backend the binary compiled in and the CPU supports is
 * exercised; the suite is the proof behind "bit-exact on all
 * backends".
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cachesim/simulator.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "core/glider_policy.hh"
#include "core/glider_predictor.hh"
#include "core/isvm.hh"
#include "core/pc_history_register.hh"
#include "core/policy_factory.hh"
#include "workloads/registry.hh"

namespace glider {
namespace core {
namespace {

/** Backends to test: every one usable on this build + machine. */
std::vector<simd::Backend>
usableBackends()
{
    std::vector<simd::Backend> backends{simd::Backend::Scalar};
    for (auto b : {simd::Backend::Avx2, simd::Backend::Neon}) {
        if (simd::usable(b))
            backends.push_back(b);
    }
    return backends;
}

class SimdBackend
    : public ::testing::TestWithParam<simd::Backend>
{
};

INSTANTIATE_TEST_SUITE_P(
    Backends, SimdBackend, ::testing::ValuesIn(usableBackends()),
    [](const auto &row) { return simd::backendName(row.param); });

TEST(Simd, ActiveBackendIsUsable)
{
    EXPECT_TRUE(simd::usable(simd::activeBackend()));
    EXPECT_TRUE(simd::compiled(simd::activeBackend()));
}

/**
 * Exhaustive corner sweep: every (weight, count) corner pair that
 * stresses the 16-bit intermediate of the AVX2 maddubs path —
 * saturated weights against maximal counts in adjacent lanes — must
 * match exact integer arithmetic.
 */
TEST_P(SimdBackend, CornerCasesMatchScalarReference)
{
    const std::int8_t weight_corners[] = {-128, -127, -1, 0, 1, 127};
    const std::uint8_t count_corners[] = {0, 1, 5, 127, 128, 255};
    alignas(64) std::int8_t w[simd::kDotLanes];
    alignas(64) std::uint8_t c[simd::kDotLanes];
    const std::int8_t *rows[1] = {w};
    for (std::int8_t wc : weight_corners) {
        for (std::uint8_t cc : count_corners) {
            for (std::size_t phase = 0; phase < 4; ++phase) {
                for (std::size_t j = 0; j < simd::kDotLanes; ++j) {
                    // Alternate corner and filler values so adjacent
                    // lanes (paired by maddubs) see the worst case.
                    bool on = ((j + phase) % 2) == 0;
                    w[j] = on ? wc : static_cast<std::int8_t>(j - 8);
                    // Keep each adjacent pair's count sum within the
                    // documented kMaxCountSum exactness bound.
                    c[j] = on ? cc : static_cast<std::uint8_t>(0);
                }
                std::int32_t expect = 0, got = 0;
                simd::dotRowsScalar(rows, c, 1, &expect);
                simd::dotRowsWith(GetParam(), rows, c, 1, &got);
                EXPECT_EQ(got, expect)
                    << "weight corner " << static_cast<int>(wc)
                    << " count corner " << static_cast<int>(cc)
                    << " phase " << phase;
            }
        }
    }
}

/**
 * Fuzzed kernel check over batched rows: random weights, random
 * counts whose per-request sum respects kMaxCountSum, random batch
 * sizes including odd tails.
 */
TEST_P(SimdBackend, FuzzedBatchesMatchScalarReference)
{
    Rng rng(0x51D0u);
    constexpr std::size_t kMaxBatch = 67;
    std::vector<std::int8_t> plane(kMaxBatch * simd::kDotLanes);
    std::vector<std::uint8_t> counts(kMaxBatch * simd::kDotLanes);
    std::vector<const std::int8_t *> rows(kMaxBatch);
    std::vector<std::int32_t> expect(kMaxBatch), got(kMaxBatch);
    for (int round = 0; round < 500; ++round) {
        std::size_t n = 1 + rng.below(kMaxBatch);
        for (std::size_t i = 0; i < n; ++i) {
            rows[i] = plane.data() + i * simd::kDotLanes;
            std::size_t budget = simd::kMaxCountSum;
            for (std::size_t j = 0; j < simd::kDotLanes; ++j) {
                plane[i * simd::kDotLanes + j] =
                    static_cast<std::int8_t>(rng.range(-128, 127));
                std::uint64_t draw = rng.below(40);
                std::uint8_t cnt = static_cast<std::uint8_t>(
                    draw < budget ? draw : budget);
                counts[i * simd::kDotLanes + j] = cnt;
                budget -= cnt;
            }
        }
        simd::dotRowsScalar(rows.data(), counts.data(), n,
                            expect.data());
        simd::dotRowsWith(GetParam(), rows.data(), counts.data(), n,
                          got.data());
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(got[i], expect[i])
                << "round " << round << " request " << i << " of "
                << n;
    }
}

TEST(SlotCounts, MatchesPerPcHashing)
{
    Rng rng(7);
    for (int round = 0; round < 200; ++round) {
        opt::PcHistory h;
        std::size_t len = rng.below(9);
        for (std::size_t i = 0; i < len; ++i)
            h.push_back(rng.next());
        SlotCounts counts = countSlots(h);
        int lanes = 0;
        for (std::size_t j = 0; j < kIsvmWeights; ++j)
            lanes += counts.lane[j];
        EXPECT_EQ(static_cast<std::size_t>(lanes), h.size());
        for (auto pc : h)
            EXPECT_GT(counts.lane[Isvm::slotOf(pc)], 0);
    }
}

TEST(SlotCounts, PchrMaintainsCountsIncrementally)
{
    // Heavy churn through a small PC pool forces every transition:
    // fresh insert, refresh of a resident PC, and insert-with-evict.
    PcHistoryRegister pchr(5);
    Rng rng(21);
    for (int i = 0; i < 20'000; ++i) {
        pchr.observe(0x400000 + rng.below(12) * 4);
        ASSERT_EQ(pchr.slotCounts(), countSlots(pchr.snapshot()))
            << "incremental counts diverged from rescan at step " << i;
    }
    pchr.clear();
    EXPECT_EQ(pchr.slotCounts(), SlotCounts{});
}

TEST(IsvmTable, WeightPlaneIsContiguousAndCacheLineAligned)
{
    IsvmTable table(128);
    auto plane = table.plane();
    EXPECT_EQ(plane.size(), 128u * kIsvmWeights);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(plane.data())
                  % IsvmTable::kPlaneAlign,
              0u);
    // Row views alias the plane: a train through forPc must be
    // visible in the linear sweep.
    opt::PcHistory h{0x10, 0x24};
    table.forPc(0xABC).train(h, true, 1000);
    int nonzero = 0;
    for (std::int8_t w : plane)
        nonzero += w != 0;
    EXPECT_GT(nonzero, 0);
    EXPECT_EQ(table.row(table.rowIndexOf(0xABC, 0)),
              plane.data()
                  + table.rowIndexOf(0xABC, 0) * kIsvmWeights);
}

/** A predictor trained into a rich state: mixed signs, saturation. */
GliderPredictor
trainedPredictor(unsigned cores = 1)
{
    GliderConfig cfg;
    cfg.adaptive_threshold = false;
    cfg.fixed_threshold = 1'000'000; // always update: drive saturation
    GliderPredictor pred(cfg, cores);
    Rng rng(99);
    for (int i = 0; i < 30'000; ++i) {
        auto core = static_cast<std::uint8_t>(rng.below(cores));
        std::uint64_t pc = 0x400000 + rng.below(64) * 4;
        opt::PcHistory h;
        std::size_t len = rng.below(6);
        for (std::size_t j = 0; j < len; ++j)
            h.push_back(0x400000 + rng.below(64) * 4);
        // Per-PC fixed label: rows drift monotonically and saturate.
        pred.train(pc, core, h, (pc >> 2) % 2 == 0);
    }
    return pred;
}

TEST_P(SimdBackend, PredictManyMatchesPerAccessPredict)
{
    GliderPredictor pred = trainedPredictor(2);
    EXPECT_GT(pred.table().weightStats().at_max
                  + pred.table().weightStats().at_min,
              0u)
        << "fixture failed to saturate any weight";

    Rng rng(5);
    std::vector<opt::PcHistory> histories;
    std::vector<PredictRequest> requests;
    constexpr std::size_t kRequests = 333; // odd: chunk tails covered
    histories.reserve(kRequests);
    for (std::size_t i = 0; i < kRequests; ++i) {
        opt::PcHistory h;
        // Include empty and short histories explicitly.
        std::size_t len = i < 4 ? i : rng.below(7);
        for (std::size_t j = 0; j < len; ++j)
            h.push_back(0x400000 + rng.below(80) * 4);
        histories.push_back(std::move(h));
    }
    for (std::size_t i = 0; i < kRequests; ++i) {
        PredictRequest req;
        req.pc = 0x400000 + rng.below(80) * 4;
        req.core = static_cast<std::uint8_t>(i % 2);
        req.history = histories[i];
        requests.push_back(req);
    }
    std::vector<Prediction> out(kRequests);
    pred.predictManyWith(GetParam(), requests, out);
    for (std::size_t i = 0; i < kRequests; ++i) {
        EXPECT_EQ(out[i].sum,
                  pred.decisionSumWith(requests[i].pc, histories[i],
                                       requests[i].core))
            << "request " << i;
        EXPECT_EQ(out[i].level,
                  pred.predictWith(requests[i].pc, histories[i],
                                   requests[i].core))
            << "request " << i;
    }
}

TEST_P(SimdBackend, PredictManyHonorsPreResolvedCounts)
{
    GliderPredictor pred = trainedPredictor();
    Rng rng(13);
    std::vector<SlotCounts> counts;
    std::vector<PredictRequest> requests;
    for (std::size_t i = 0; i < 100; ++i) {
        opt::PcHistory h;
        std::size_t len = rng.below(6);
        for (std::size_t j = 0; j < len; ++j)
            h.push_back(0x400000 + rng.below(64) * 4);
        counts.push_back(countSlots(h));
    }
    for (std::size_t i = 0; i < 100; ++i) {
        PredictRequest req;
        req.pc = 0x400000 + rng.below(64) * 4;
        req.counts = &counts[i];
        requests.push_back(req);
    }
    std::vector<Prediction> out(100);
    pred.predictManyWith(GetParam(), requests, out);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_EQ(out[i].sum,
                  pred.decisionSumCounts(requests[i].pc, counts[i]))
            << "request " << i;
    }
}

TEST(PredictMany, EmptyBatchIsANoOp)
{
    GliderPredictor pred;
    pred.predictMany({}, {});
}

TEST(PredictMany, DispatchedBackendMatchesScalar)
{
    GliderPredictor pred = trainedPredictor();
    Rng rng(31);
    std::vector<SlotCounts> counts;
    std::vector<PredictRequest> requests;
    for (std::size_t i = 0; i < 200; ++i) {
        opt::PcHistory h;
        for (std::size_t j = 0; j < rng.below(6); ++j)
            h.push_back(0x400000 + rng.below(64) * 4);
        counts.push_back(countSlots(h));
    }
    for (std::size_t i = 0; i < 200; ++i) {
        PredictRequest req;
        req.pc = 0x400000 + rng.below(64) * 4;
        req.counts = &counts[i];
        requests.push_back(req);
    }
    std::vector<Prediction> fast(200), ref(200);
    pred.predictMany(requests, fast);
    pred.predictManyWith(simd::Backend::Scalar, requests, ref);
    for (std::size_t i = 0; i < 200; ++i) {
        EXPECT_EQ(fast[i].sum, ref[i].sum) << "request " << i;
        EXPECT_EQ(fast[i].level, ref[i].level) << "request " << i;
    }
}

TEST(AdviceProbe, DoesNotPerturbSimulationResults)
{
    const auto &t0 = workloads::cachedTrace("mcf", 60'000);
    const auto &t1 = workloads::cachedTrace("lbm", 60'000);
    sim::SimOptions plain;
    plain.hierarchy = sim::HierarchyConfig::forCores(2);
    plain.warmup_fraction = 0.1;
    sim::SimOptions probed = plain;
    probed.advice_batch = 32;
    auto base = sim::runMultiCore({&t0, &t1}, makePolicy("Glider"),
                                  30'000, plain);
    auto with = sim::runMultiCore({&t0, &t1}, makePolicy("Glider"),
                                  30'000, probed);
    // The probe is observation-only: every simulation statistic must
    // be bit-identical with and without it.
    EXPECT_EQ(base.llc.hits, with.llc.hits);
    EXPECT_EQ(base.llc.misses, with.llc.misses);
    EXPECT_EQ(base.ipc_shared, with.ipc_shared);
    EXPECT_EQ(base.advice_queries, 0u);
    EXPECT_EQ(base.advice_batches, 0u);
    // ...and the probed run actually served batches.
    EXPECT_GT(with.advice_batches, 0u);
    EXPECT_EQ(with.advice_queries, with.advice_batches * 32);
    EXPECT_LE(with.advice_friendly, with.advice_queries);
}

TEST(AdviceProbe, GliderServesBatchesAgainstLiveState)
{
    GliderPolicy policy;
    policy.reset(sim::CacheGeometry{64, 16, 1});
    // Feed accesses through the policy interface so the PCHR fills.
    for (int i = 0; i < 64; ++i) {
        sim::ReplacementAccess acc;
        acc.pc = 0x400000 + static_cast<std::uint64_t>(i % 6) * 4;
        acc.block_addr = static_cast<std::uint64_t>(i) * 64;
        acc.set = 0;
        policy.onInsert(acc, static_cast<std::uint32_t>(i % 16));
    }
    std::vector<sim::AdviceQuery> queries(100);
    for (std::size_t i = 0; i < queries.size(); ++i)
        queries[i].pc = 0x400000 + (i % 6) * 4;
    std::vector<sim::Advice> advice(queries.size());
    const sim::BatchAdviceProvider &provider = policy;
    provider.serveAdviceBatch(queries, advice);
    const GliderPredictor &pred = policy.predictor();
    for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(advice[i].score,
                  pred.decisionSum(queries[i].pc, queries[i].core))
            << "query " << i;
    }
}

} // namespace
} // namespace core
} // namespace glider
