/**
 * @file
 * Tests for src/workloads: registry integrity, kernel determinism,
 * access budgets, PC-namespace disjointness, graph construction, and
 * the structural properties the experiments rely on (context-
 * dependent locality in the scheduler kernel).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "workloads/graph_kernels.hh"
#include "workloads/recording_memory.hh"
#include "workloads/registry.hh"
#include "workloads/scenario_kernels.hh"
#include "workloads/scheduler_kernel.hh"
#include "workloads/spec_kernels.hh"

namespace glider {
namespace workloads {
namespace {

TEST(Registry, WorkloadCounts)
{
    EXPECT_EQ(allWorkloads().size(), 39u);
    EXPECT_EQ(figure11Workloads().size(), 33u);
    EXPECT_EQ(figure10Workloads().size(), 23u);
    EXPECT_EQ(offlineSubset().size(), 6u);
    EXPECT_EQ(scenarioWorkloads().size(), 4u);
}

TEST(Registry, Figure10NamesAreRegistered)
{
    auto all = allWorkloads();
    std::set<std::string> known(all.begin(), all.end());
    for (const auto &n : figure10Workloads())
        EXPECT_TRUE(known.count(n)) << n;
}

TEST(Registry, OfflineSubsetMatchesTable2)
{
    auto s = offlineSubset();
    std::vector<std::string> expect{"mcf",     "omnetpp", "soplex",
                                    "sphinx3", "astar",   "lbm"};
    EXPECT_EQ(s, expect);
}

TEST(Registry, SuitesAssigned)
{
    EXPECT_EQ(suiteOf("mcf"), Suite::Spec2006);
    EXPECT_EQ(suiteOf("605.mcf"), Suite::Spec2017);
    EXPECT_EQ(suiteOf("bfs"), Suite::Gap);
}

TEST(Registry, EveryWorkloadGenerates)
{
    for (const auto &name : allWorkloads()) {
        traces::Trace t(name);
        makeWorkload(name, 20'000)->run(t);
        EXPECT_GE(t.size(), 20'000u) << name;
        EXPECT_LT(t.size(), 200'000u) << name << " overshoots budget";
    }
}

TEST(Registry, KernelsAreDeterministic)
{
    for (const auto &name : {"mcf", "omnetpp", "bfs"}) {
        traces::Trace a(name), b(name);
        makeWorkload(name, 30'000)->run(a);
        makeWorkload(name, 30'000)->run(b);
        ASSERT_EQ(a.size(), b.size()) << name;
        for (std::size_t i = 0; i < a.size(); i += 97)
            EXPECT_EQ(a[i], b[i]) << name << " @" << i;
    }
}

TEST(Registry, PcNamespacesDisjointAcrossWorkloads)
{
    traces::Trace a("mcf"), b("soplex");
    makeWorkload("mcf", 20'000)->run(a);
    makeWorkload("soplex", 20'000)->run(b);
    std::unordered_set<std::uint64_t> pcs_a;
    for (const auto &r : a)
        pcs_a.insert(r.pc);
    for (const auto &r : b)
        EXPECT_FALSE(pcs_a.count(r.pc));
}

TEST(Registry, CachedTraceIsMemoised)
{
    const auto &a = cachedTrace("astar", 15'000);
    const auto &b = cachedTrace("astar", 15'000);
    EXPECT_EQ(&a, &b);
}

TEST(RecordingMemory, AllocationsDoNotOverlap)
{
    traces::Trace t("alloc");
    RecordingMemory mem(t);
    auto a = mem.allocate(1000);
    auto b = mem.allocate(1000);
    EXPECT_GE(b, a + 1000);
    // Page alignment: different regions never share a cache block.
    EXPECT_NE(traces::blockAddr(a + 999), traces::blockAddr(b));
}

TEST(RecordingMemory, TracedArrayRecordsAddresses)
{
    traces::Trace t("arr");
    RecordingMemory mem(t);
    TracedArray<std::uint64_t> arr(mem, 16, 5);
    arr.set(0x42, 3, 99);
    EXPECT_EQ(arr.get(0x43, 3), 99u);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].pc, 0x42u);
    EXPECT_TRUE(t[0].is_write);
    EXPECT_EQ(t[1].pc, 0x43u);
    EXPECT_FALSE(t[1].is_write);
    EXPECT_EQ(t[0].address, arr.base() + 3 * 8);
}

TEST(PcBlock, DisjointPerKernelId)
{
    PcBlock a(1), b(2);
    EXPECT_NE(a.pc(0), b.pc(0));
    EXPECT_LT(a.pc(1000), b.pc(0));
}

TEST(Zipf, SkewsTowardSmallIndices)
{
    Rng rng(9);
    std::size_t head = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        head += zipfDraw(rng, 1000, 0.9) < 100;
    // A uniform draw would put ~10% in the first decile.
    EXPECT_GT(static_cast<double>(head) / n, 0.5);
}

TEST(Zipf, StaysInRange)
{
    Rng rng(10);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipfDraw(rng, 37, 1.1), 37u);
}

TEST(Zipf, EmptyDomainReturnsZero)
{
    // Regression: zipfDraw(rng, 0, s) used to scale by n - 1, which
    // underflows to SIZE_MAX for n == 0 and returned wild indices.
    Rng rng(11);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipfDraw(rng, 0, 0.9), 0u);
}

TEST(SpecKernels, CompressionSlotZeroIsAValidMatch)
{
    // Regression for the empty-slot sentinel: slots store i + 1, so a
    // slot filled at input position 0 reads back as occupied. With
    // one hash slot and a two-iteration inner loop, every
    // back-reference (the pc(3) loads) stems from a probe that saw
    // the i == 0 fill; the old `set(slot, i)` encoding made that
    // probe read "empty" and this count was zero.
    CompressionKernel::Params p;
    p.name = "senti";
    p.kernel_id = 81;
    p.seed = 3;
    p.input_elems = 12;  // inner loop visits i = 0 and i = 2 only
    p.hash_entries = 1;  // every probe shares the one slot
    p.target_accesses = 20'000;
    traces::Trace t("senti");
    CompressionKernel(p).run(t);
    PcBlock pcs(81);
    std::size_t backrefs = 0;
    for (const auto &r : t)
        backrefs += r.pc == pcs.pc(3);
    EXPECT_GT(backrefs, 0u);
}

TEST(ScenarioKernels, RegisteredInAdversarialSuite)
{
    auto scen = scenarioWorkloads();
    ASSERT_EQ(scen.size(), 4u);
    for (const auto &n : scen)
        EXPECT_EQ(suiteOf(n), Suite::Adversarial) << n;
    // Adversarial entries never leak into the paper figures.
    for (const auto &n : figure11Workloads())
        EXPECT_NE(suiteOf(n), Suite::Adversarial) << n;
    for (const auto &n : figure10Workloads())
        EXPECT_NE(suiteOf(n), Suite::Adversarial) << n;
}

TEST(ScenarioKernels, GenerateAndAreDeterministic)
{
    for (const auto &name : scenarioWorkloads()) {
        traces::Trace a(name), b(name);
        makeWorkload(name, 25'000)->run(a);
        makeWorkload(name, 25'000)->run(b);
        ASSERT_GE(a.size(), 25'000u) << name;
        ASSERT_EQ(a.size(), b.size()) << name;
        for (std::size_t i = 0; i < a.size(); i += 101)
            EXPECT_EQ(a[i], b[i]) << name << " @" << i;
    }
}

TEST(ScenarioKernels, PhaseShiftVisitsEveryPhase)
{
    PhaseShiftKernel::Params p;
    p.name = "ps";
    p.kernel_id = 88;
    p.seed = 5;
    p.stream_elems = 50'000;
    p.hot_elems = 2'048;
    p.gather_elems = 10'000;
    p.phase_accesses = 4'000;
    p.target_accesses = 40'000;
    traces::Trace t("ps");
    PhaseShiftKernel(p).run(t);
    PcBlock pcs(88);
    std::size_t hot = 0, stream = 0, gather = 0;
    for (const auto &r : t) {
        hot += r.pc == pcs.pc(0);
        stream += r.pc == pcs.pc(2);
        gather += r.pc == pcs.pc(3);
    }
    EXPECT_GT(hot, 1'000u);
    EXPECT_GT(stream, 1'000u);
    EXPECT_GT(gather, 1'000u);
}

TEST(ScenarioKernels, ScanFloodSeparatesHotAndFloodStreams)
{
    ScanFloodKernel::Params p;
    p.name = "sf";
    p.kernel_id = 90;
    p.seed = 7;
    p.flood_elems = 40'000;
    p.hot_elems = 2'048;
    p.hot_rounds = 4;
    p.target_accesses = 30'000;
    traces::Trace t("sf");
    ScanFloodKernel(p).run(t);
    PcBlock pcs(90);
    std::unordered_set<std::uint64_t> hot_blocks, flood_blocks;
    for (const auto &r : t) {
        if (r.pc == pcs.pc(0))
            hot_blocks.insert(traces::blockAddr(r.address));
        else if (r.pc == pcs.pc(2))
            flood_blocks.insert(traces::blockAddr(r.address));
    }
    ASSERT_GT(hot_blocks.size(), 0u);
    // The flood sweeps a region far larger than the hot set.
    EXPECT_GT(flood_blocks.size(), 10 * hot_blocks.size());
}

TEST(Graph, CsrIsWellFormed)
{
    auto g = buildPowerLawGraph(1000, 8, 3);
    EXPECT_EQ(g.numVertices(), 1000u);
    EXPECT_EQ(g.numEdges(), 8000u);
    EXPECT_EQ(g.offsets.front(), 0u);
    EXPECT_EQ(g.offsets.back(), g.targets.size());
    for (std::size_t v = 0; v < g.numVertices(); ++v) {
        EXPECT_LE(g.offsets[v], g.offsets[v + 1]);
        EXPECT_TRUE(std::is_sorted(g.targets.begin() + g.offsets[v],
                                   g.targets.begin() + g.offsets[v + 1]));
    }
    for (auto tgt : g.targets)
        EXPECT_LT(tgt, 1000u);
}

TEST(Graph, DegreeDistributionIsSkewed)
{
    auto g = buildPowerLawGraph(2000, 10, 7);
    std::size_t max_degree = 0;
    for (std::size_t v = 0; v < g.numVertices(); ++v) {
        max_degree = std::max<std::size_t>(
            max_degree, g.offsets[v + 1] - g.offsets[v]);
    }
    // Hubs must exist: max degree far above the average of 10.
    EXPECT_GT(max_degree, 100u);
}

TEST(Graph, AllAlgorithmsRun)
{
    for (auto algo : {GraphAlgo::Bfs, GraphAlgo::PageRank,
                      GraphAlgo::Components, GraphAlgo::Betweenness,
                      GraphAlgo::Sssp, GraphAlgo::TriangleCount}) {
        GraphKernel::Params p;
        p.name = "g";
        p.kernel_id = 99;
        p.vertices = 5000;
        p.avg_degree = 8;
        p.target_accesses = 25'000;
        p.algo = algo;
        traces::Trace t("g");
        GraphKernel(p).run(t);
        EXPECT_GE(t.size(), 25'000u);
    }
}

TEST(Scheduler, AnchorPrecedesTargetsInTrace)
{
    SchedulerKernel::Params p;
    p.kernel_id = 77;
    p.target_accesses = 50'000;
    SchedulerKernel k(p);
    traces::Trace t("omnetpp");
    k.run(t);

    // Every scheduleAt target access follows one of the six caller
    // marker PCs.
    std::uint64_t target0 = k.targetPc(0);
    const auto &callers = k.callerPcs();
    std::size_t checked = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i].pc != target0)
            continue;
        ++checked;
        std::uint64_t prev = t[i - 1].pc;
        bool is_caller = false;
        for (auto c : callers)
            is_caller |= prev == c;
        EXPECT_TRUE(is_caller) << std::hex << prev;
    }
    EXPECT_GT(checked, 100u);
}

TEST(Scheduler, IfgPoolIsReusedBigPoolsAreNot)
{
    SchedulerKernel::Params p;
    p.kernel_id = 78;
    p.target_accesses = 200'000;
    p.ifg_pool_msgs = 512;
    p.big_pool_msgs = 100'000;
    SchedulerKernel k(p);
    traces::Trace t("omnetpp");
    k.run(t);

    // Count reuses of blocks touched by the target PC, separated by
    // which caller preceded them (the IFG pair is callerPcs()[0..1]).
    std::uint64_t target0 = k.targetPc(0);
    const auto &callers = k.callerPcs();
    std::unordered_set<std::uint64_t> ifg_blocks, other_blocks;
    std::size_t ifg_repeat = 0, other_repeat = 0;
    std::size_t ifg_total = 0, other_total = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i].pc != target0)
            continue;
        auto block = traces::blockAddr(t[i].address);
        if (t[i - 1].pc == callers[0] || t[i - 1].pc == callers[1]) {
            ++ifg_total;
            ifg_repeat += !ifg_blocks.insert(block).second;
        } else {
            ++other_total;
            other_repeat += !other_blocks.insert(block).second;
        }
    }
    ASSERT_GT(ifg_total, 0u);
    ASSERT_GT(other_total, 0u);
    double ifg_rate = static_cast<double>(ifg_repeat) / ifg_total;
    double other_rate = static_cast<double>(other_repeat) / other_total;
    EXPECT_GT(ifg_rate, 0.8);   // small pool: heavy reuse
    EXPECT_LT(other_rate, 0.2); // big pools: barely any
}

TEST(SpecKernels, BudgetsRespectedAcrossFamilies)
{
    struct Case
    {
        const char *name;
        std::uint64_t budget;
    };
    for (auto c : {Case{"libquantum", 12'000}, Case{"bzip2", 12'000},
                   Case{"gcc", 12'000}, Case{"sphinx3", 12'000},
                   Case{"lbm", 12'000}, Case{"astar", 12'000}}) {
        traces::Trace t(c.name);
        makeWorkload(c.name, c.budget)->run(t);
        EXPECT_GE(t.size(), c.budget) << c.name;
    }
}

TEST(SpecKernels, StreamingHasLowBlockReuseWithinSweep)
{
    StreamingKernel::Params p;
    p.name = "stream";
    p.kernel_id = 80;
    p.elems = 100'000; // one sweep ~ 12.5k accesses
    p.target_accesses = 12'000;
    traces::Trace t("stream");
    StreamingKernel(p).run(t);
    std::unordered_set<std::uint64_t> blocks;
    for (const auto &r : t)
        blocks.insert(traces::blockAddr(r.address));
    // A single partial sweep touches each block at most twice
    // (load + store share the block), so unique blocks ~ accesses/2.
    EXPECT_GT(blocks.size(), t.size() / 4);
}

} // namespace
} // namespace workloads
} // namespace glider
