/**
 * @file
 * Differential tests: OPTgen's cache-friendly/averse labels against
 * exact Belady MIN on the same LLC streams (verify::diffOracles).
 *
 * Two kinds of assertion live here. The agreement floors mirror the
 * CI gate in bench/verify_oracles: with Hawkeye's published budgets,
 * OPTgen must track the exact oracle within tolerance on the paper's
 * workloads. The sensitivity tests are the control group: starved
 * budgets or adversarial streams must *reduce* agreement, proving
 * the comparison can actually fail and the high scores are earned.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "opt/llc_stream.hh"
#include "verify/oracle_diff.hh"
#include "workloads/registry.hh"

namespace glider {
namespace verify {
namespace {

/** Thrash stream over @p working_set blocks on a tiny geometry. */
traces::Trace
thrashStream(std::uint64_t working_set, int accesses)
{
    Rng rng(0x7423);
    traces::Trace t("thrash");
    for (int i = 0; i < accesses; ++i) {
        std::uint64_t block = rng.chance(0.7)
            ? static_cast<std::uint64_t>(i) % working_set
            : rng.below(working_set);
        t.push(0x400000 + (block % 16) * 4, block * 64, false, 0);
    }
    return t;
}

OracleDiffConfig
tinyGeometry()
{
    OracleDiffConfig cfg;
    cfg.sets = 16;
    cfg.ways = 4;
    cfg.sampled_sets = 16; // sample everything: every access labelled
    return cfg;
}

TEST(OracleDiff, HighAgreementOnOfflineSubset)
{
    std::uint64_t events = 0, agreements = 0;
    for (const auto &wl : workloads::offlineSubset()) {
        const auto &trace = workloads::cachedTrace(wl, 150'000);
        auto stream = opt::extractLlcStream(trace);
        auto res = diffOracles(stream);
        EXPECT_GE(res.agreement(), 0.95) << wl;
        events += res.events;
        agreements += res.agreements;
    }
    ASSERT_GT(events, 0u);
    EXPECT_GE(static_cast<double>(agreements)
                  / static_cast<double>(events),
              0.95);
}

TEST(OracleDiff, PerPcTalliesSumToTotals)
{
    const auto &trace =
        workloads::cachedTrace(workloads::offlineSubset().front(),
                               120'000);
    auto res = diffOracles(opt::extractLlcStream(trace));
    ASSERT_GT(res.events, 0u);
    std::uint64_t events = 0, agree = 0;
    for (const auto &[pc, tally] : res.per_pc) {
        EXPECT_EQ(pc, tally.pc);
        EXPECT_LE(tally.agree, tally.events);
        events += tally.events;
        agree += tally.agree;
    }
    EXPECT_EQ(events, res.events);
    EXPECT_EQ(agree, res.agreements);
    EXPECT_LE(res.events, res.sampled_accesses);
    EXPECT_LE(res.sampled_accesses, res.stream_accesses);
}

TEST(OracleDiff, PerfectAgreementOnCacheResidentStream)
{
    // Working set half the cache: after first touch both oracles
    // call every access friendly, so agreement is exactly 1.
    traces::Trace t("resident");
    for (int round = 0; round < 200; ++round)
        for (std::uint64_t b = 0; b < 32; ++b)
            t.push(0x400000, b * 64, false, 0);
    auto res = diffOracles(t, tinyGeometry());
    ASSERT_GT(res.events, 0u);
    EXPECT_DOUBLE_EQ(res.agreement(), 1.0);
    EXPECT_GT(res.belady_hit_rate, 0.9);
}

TEST(OracleDiff, StarvedBudgetsReduceAgreement)
{
    // Same adversarial stream, honest vs starved OPTgen budgets: the
    // starved run must disagree with Belady strictly more often —
    // the differential is sensitive, not a rubber stamp.
    auto stream = thrashStream(/*working_set=*/192, 20'000);
    auto honest = diffOracles(stream, tinyGeometry());
    auto cfg = tinyGeometry();
    cfg.window_quanta_per_way = 1;
    cfg.entries_per_way = 1;
    auto starved = diffOracles(stream, cfg);
    ASSERT_GT(honest.events, 0u);
    ASSERT_GT(starved.events, 0u);
    EXPECT_LT(starved.agreement(), honest.agreement());
    EXPECT_LT(starved.agreement(), 0.95);
}

TEST(OracleDiff, WorstPcsOrderedWorstFirst)
{
    auto cfg = tinyGeometry();
    cfg.window_quanta_per_way = 1;
    cfg.entries_per_way = 1;
    auto res = diffOracles(thrashStream(192, 20'000), cfg);
    auto worst = res.worstPcs(4);
    ASSERT_FALSE(worst.empty());
    EXPECT_LE(worst.size(), 4u);
    for (std::size_t i = 1; i < worst.size(); ++i)
        EXPECT_LE(worst[i - 1].rate(), worst[i].rate());
    for (const auto &pc : worst)
        EXPECT_GE(pc.events, 8u);
}

TEST(OracleDiff, EmptyStreamIsVacuouslyPerfect)
{
    auto res = diffOracles(traces::Trace("empty"), tinyGeometry());
    EXPECT_EQ(res.events, 0u);
    EXPECT_EQ(res.stream_accesses, 0u);
    EXPECT_DOUBLE_EQ(res.agreement(), 1.0);
}

} // namespace
} // namespace verify
} // namespace glider
