/**
 * @file
 * Wire types of the advice engine: one request/response pair per
 * tenant operation. A request is a 48-byte POD that travels by value
 * through the MPSC ring; the response is written in place through a
 * caller-owned pointer, published by a release increment of the
 * caller's completion counter. Clients keep response storage and the
 * counter alive until the increment lands (acquire-load it to read
 * the response safely).
 */

#ifndef GLIDER_SERVE_REQUEST_HH
#define GLIDER_SERVE_REQUEST_HH

#include <atomic>
#include <cstdint>

#include "cachesim/advice.hh"

namespace glider {
namespace serve {

/** What a request asks the tenant's predictor to do. */
enum class RequestKind : std::uint8_t {
    Advise, //!< predict for pc, then observe pc into the PCHR
    Train   //!< train on (pc, opt_hit), then observe pc
};

/** Why a response carries (or does not carry) a usable score. */
enum class ResponseStatus : std::uint8_t {
    Ok,         //!< served against live predictor state
    Quarantined //!< tenant disabled after exhausting fault retries
};

/** One completed operation's result, written by the owning shard. */
struct AdviceResponse
{
    int score = 0; //!< raw ISVM decision sum (Advise only)
    sim::AdviceLevel level = sim::AdviceLevel::FriendlyLow;
    ResponseStatus status = ResponseStatus::Ok;
    std::uint64_t served_ns = 0; //!< steady-clock stamp at completion
};

/** One operation travelling through the ingest ring. */
struct AdviceRequest
{
    std::uint64_t tenant = 0; //!< shard + predictor-state key
    std::uint64_t pc = 0;     //!< load PC the operation concerns
    RequestKind kind = RequestKind::Advise;
    bool opt_hit = false;     //!< Train label (ignored for Advise)
    AdviceResponse *response = nullptr;       //!< caller-owned slot
    // glider-mo: publish — the server's release fetch_add makes
    // the response slot visible to the client's acquire wait loop.
    std::atomic<std::uint64_t> *done = nullptr; //!< completion counter
};

} // namespace serve
} // namespace glider

#endif // GLIDER_SERVE_REQUEST_HH
