/**
 * @file
 * AdviceEngine runtime: shard workers, batching, backpressure and
 * graceful shutdown. Snapshot/restore lives in snapshot.cc.
 */

#include "advice_engine.hh"

#include <chrono>
#include <thread>

#include "common/env_registry.hh"
#include "common/logging.hh"

namespace glider {
namespace serve {

EngineConfig
EngineConfig::fromEnv()
{
    EngineConfig config;
    config.shards =
        static_cast<unsigned>(env::u64(env::Knob::ServeShards));
    if (config.shards == 0)
        config.shards = 1;
    config.queue_capacity =
        static_cast<std::size_t>(env::u64(env::Knob::ServeQueueCap));
    if (config.queue_capacity < 2)
        config.queue_capacity = 2;
    return config;
}

AdviceEngine::AdviceEngine(const EngineConfig &config)
    : config_(config), pool_(config.shards == 0 ? 1 : config.shards)
{
    if (config_.shards == 0)
        config_.shards = 1;
    if (config_.max_batch == 0)
        config_.max_batch = 1;
    shards_.reserve(config_.shards);
    for (unsigned i = 0; i < config_.shards; ++i)
        shards_.push_back(std::make_unique<Shard>(config_));
    workers_.reserve(config_.shards);
    for (auto &shard : shards_) {
        Shard *s = shard.get();
        workers_.push_back(pool_.submit([this, s] { shardLoop(*s); }));
    }
}

AdviceEngine::~AdviceEngine() { stop(); }

bool
AdviceEngine::submit(const AdviceRequest &request)
{
    Shard &shard = *shards_[shardOf(request.tenant)];
    // Account the request *before* checking the stop gate: a worker
    // only exits once served == accepted with the gate up, so any
    // submission that passes the gate is guaranteed to be drained
    // even if stop() lands between the gate check and the push.
    shard.accepted.fetch_add(1, std::memory_order_seq_cst);
    if (stop_.load(std::memory_order_seq_cst)
        || !shard.queue.tryPush(request)) {
        shard.accepted.fetch_sub(1, std::memory_order_seq_cst);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

void
AdviceEngine::shardLoop(Shard &shard)
{
    unsigned idle = 0;
    for (;;) {
        std::size_t n = 0;
        if (shard.queue.tryPop(shard.drain[0]))
            n = 1;
        if (n == 0) {
            if (stop_.load(std::memory_order_seq_cst)
                && shard.served.load(std::memory_order_seq_cst)
                    >= shard.accepted.load(std::memory_order_seq_cst))
                return;
            // Idle backoff: spin briefly for latency, then sleep so
            // an idle engine does not burn the shard's core.
            if (++idle < 64)
                std::this_thread::yield();
            else
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
            continue;
        }
        idle = 0;
        // Busy-time accounting starts once the first pop succeeds:
        // draining the rest of the batch, grouping and serving are
        // all serving-path work; idle spins above are not. Thread
        // CPU time, not wall time — preemption by client threads on
        // a core-starved host must not count against the shard.
        std::uint64_t t0 = TenantServer::cpuNs();
        while (n < config_.max_batch
               && shard.queue.tryPop(shard.drain[n]))
            ++n;
        shard.batches.fetch_add(1, std::memory_order_relaxed);
        processBatch(shard, n);
        shard.busy_ns.fetch_add(TenantServer::cpuNs() - t0,
                                std::memory_order_relaxed);
    }
}

void
AdviceEngine::processBatch(Shard &shard, std::size_t n)
{
    // Group the drained requests by tenant, preserving per-tenant
    // arrival order, and serve each group as one run. Single pass:
    // each request is appended to its tenant's chain through the
    // epoch-stamped open-addressed bucket table (stale buckets are
    // invalidated by the epoch bump — no per-batch clearing), so
    // grouping is O(n) whatever the tenant mix. Touches only
    // pre-sized worker-owned scratch — no allocation per batch.
    constexpr std::uint32_t kNone = 0xFFFFFFFFu;
    const std::uint64_t epoch = ++shard.epoch;
    const std::size_t mask = shard.buckets.size() - 1;
    std::size_t nruns = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        shard.next[i] = kNone;
        const std::uint64_t tenant = shard.drain[i].tenant;
        std::size_t b = static_cast<std::size_t>(mix64(tenant)) & mask;
        for (;;) {
            RunBucket &bucket = shard.buckets[b];
            if (bucket.epoch != epoch) {
                bucket.tenant = tenant;
                bucket.head = i;
                bucket.tail = i;
                bucket.epoch = epoch;
                shard.order[nruns++] = static_cast<std::uint32_t>(b);
                break;
            }
            if (bucket.tenant == tenant) {
                shard.next[bucket.tail] = i;
                bucket.tail = i;
                break;
            }
            b = (b + 1) & mask;
        }
    }
    for (std::size_t k = 0; k < nruns; ++k) {
        const RunBucket &bucket = shard.buckets[shard.order[k]];
        std::size_t len = 0;
        for (std::uint32_t i = bucket.head; i != kNone;
             i = shard.next[i])
            shard.run[len++] = &shard.drain[i];
        TenantState &state = shard.server.tenant(bucket.tenant);
        shard.server.serveRun(
            bucket.tenant, state,
            std::span<const AdviceRequest *const>(shard.run.data(),
                                                  len),
            config_.faults, config_.recovery, &pool_.token());
        shard.served.fetch_add(len, std::memory_order_seq_cst);
    }
}

void
AdviceEngine::stop()
{
    stop_.store(true, std::memory_order_seq_cst);
    LockGuard lock(stop_mutex_);
    if (joined_)
        return;
    for (auto &w : workers_) {
        if (w.valid())
            w.get();
    }
    joined_ = true;
}

AdviceEngine::Stats
AdviceEngine::stats() const
{
    Stats out;
    out.rejected = rejected_.load(std::memory_order_relaxed);
    for (const auto &shard : shards_) {
        out.accepted +=
            shard->accepted.load(std::memory_order_relaxed);
        out.served += shard->served.load(std::memory_order_relaxed);
        out.batches += shard->batches.load(std::memory_order_relaxed);
        out.busy_ns += shard->busy_ns.load(std::memory_order_relaxed);
        out.quarantined_tenants +=
            shard->server.quarantinedTenants();
    }
    return out;
}

void
AdviceEngine::exportMetrics(obs::Registry &registry,
                            const std::string &prefix) const
{
    Stats s = stats();
    registry.setCounter(prefix + ".accepted", s.accepted);
    registry.setCounter(prefix + ".served", s.served);
    registry.setCounter(prefix + ".rejected", s.rejected);
    registry.setCounter(prefix + ".batches", s.batches);
    registry.setCounter(prefix + ".quarantined_tenants",
                        s.quarantined_tenants);
    registry.setGauge(prefix + ".shards",
                      static_cast<double>(shards_.size()));
    registry.setGauge(
        prefix + ".queue_capacity",
        static_cast<double>(shards_[0]->queue.capacity()));
    if (s.batches > 0)
        registry.setGauge(prefix + ".avg_batch",
                          static_cast<double>(s.served)
                              / static_cast<double>(s.batches));
    registry.setGauge(prefix + ".busy_seconds",
                      static_cast<double>(s.busy_ns) / 1e9);
    if (s.busy_ns > 0)
        registry.setGauge(prefix + ".served_per_busy_sec",
                          static_cast<double>(s.served) * 1e9
                              / static_cast<double>(s.busy_ns));
}

const TenantServer &
AdviceEngine::server(std::size_t shard) const
{
    GLIDER_ASSERT(shard < shards_.size());
    return shards_[shard]->server;
}

} // namespace serve
} // namespace glider
