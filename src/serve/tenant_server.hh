/**
 * @file
 * Per-shard tenant state and the serial request processor.
 *
 * A TenantServer is thread-free: it owns the predictor state of every
 * tenant hashed to one shard and processes runs of requests for one
 * tenant at a time, in arrival order. The engine gives each shard its
 * own TenantServer and drives it from exactly one worker thread, so a
 * tenant's train/predict stream is single-threaded and deterministic
 * by construction — the same object also runs standalone (no queue,
 * no threads) as the bench's reference floor and the tests' oracle.
 *
 * Serial semantics, mirroring GliderPolicy's snapshot rule: an Advise
 * for pc predicts against the PCHR *before* pc is observed, then
 * observes pc; a Train for (pc, label) trains against the PCHR before
 * pc, then observes pc. Advise predictions are gathered into
 * predictMany batches (the SIMD path); a Train flushes the pending
 * batch first so every prediction sees exactly the weights a fully
 * serial execution would have seen.
 */

#ifndef GLIDER_SERVE_TENANT_SERVER_HH
#define GLIDER_SERVE_TENANT_SERVER_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <ctime>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "common/cancellation.hh"
#include "common/hash.hh"
#include "core/glider_predictor.hh"
#include "resilience/fault_inject.hh"
#include "resilience/recovery.hh"
#include "request.hh"

namespace glider {
namespace serve {

/** Map a predictor decision to the wire-level advice enum. */
inline sim::AdviceLevel
toAdviceLevel(core::GliderPrediction p)
{
    switch (p) {
      case core::GliderPrediction::FriendlyHigh:
        return sim::AdviceLevel::FriendlyHigh;
      case core::GliderPrediction::FriendlyLow:
        return sim::AdviceLevel::FriendlyLow;
      case core::GliderPrediction::Averse:
        break;
    }
    return sim::AdviceLevel::Averse;
}

/** One tenant's predictor state plus serving bookkeeping. */
struct TenantState
{
    explicit TenantState(const core::GliderConfig &config)
        : predictor(config, 1)
    {
    }

    core::GliderPredictor predictor; //!< single-core partition
    bool quarantined = false; //!< disabled after exhausted retries
    std::uint64_t served = 0;  //!< Advise operations completed
    std::uint64_t trained = 0; //!< Train operations completed
    int fault_attempts = 0;    //!< cumulative fault-plan attempts
};

/** Serial multi-tenant request processor (one per shard). */
class TenantServer
{
  public:
    /** Advise operations gathered per predictMany flush. */
    static constexpr std::size_t kBatch =
        core::GliderPredictor::kBatchChunk;

    explicit TenantServer(const core::GliderConfig &config)
        : config_(config)
    {
        for (auto &req : preq_)
            req = core::PredictRequest{};
    }

    TenantServer(const TenantServer &) = delete;
    TenantServer &operator=(const TenantServer &) = delete;

    /**
     * Get-or-create the state of @p id. A direct-mapped cache in
     * front of the ordered map keeps the per-run lookup O(1) on the
     * hot path (the map stays the source of truth and the ordered
     * view for snapshots).
     */
    TenantState &
    tenant(std::uint64_t id)
    {
        std::size_t slot =
            static_cast<std::size_t>(mix64(id)) & (kTenantCache - 1);
        if (cache_ptr_[slot] != nullptr && cache_id_[slot] == id)
            return *cache_ptr_[slot];
        auto it = tenants_.find(id);
        if (it == tenants_.end())
            it = tenants_
                     .emplace(id,
                              std::make_unique<TenantState>(config_))
                     .first;
        cache_id_[slot] = id;
        cache_ptr_[slot] = it->second.get();
        return *it->second;
    }

    /** Replace @p id with fresh state (checkpoint restore). */
    TenantState &
    resetTenant(std::uint64_t id)
    {
        std::size_t slot =
            static_cast<std::size_t>(mix64(id)) & (kTenantCache - 1);
        if (cache_ptr_[slot] != nullptr && cache_id_[slot] == id)
            cache_ptr_[slot] = nullptr; // the pointer is replaced
        auto &state = tenants_[id];
        state = std::make_unique<TenantState>(config_);
        return *state;
    }

    /** Lookup without creating; nullptr when the tenant is unknown. */
    const TenantState *
    find(std::uint64_t id) const
    {
        auto it = tenants_.find(id);
        return it == tenants_.end() ? nullptr : it->second.get();
    }

    /**
     * Process one in-order run of requests, all for tenant @p state.
     * Publishes every response (release-increments each request's
     * done counter). Never throws; fault injection, when wanted,
     * happens in serveRun *before* this touches any state.
     */
    void
    processRun(TenantState &state,
               std::span<const AdviceRequest *const> run)
    {
        for (const AdviceRequest *req : run) {
            if (req->kind == RequestKind::Advise) {
                pending_[npend_] = req;
                counts_[npend_] =
                    state.predictor.historyCounts(0);
                preq_[npend_].pc = req->pc;
                preq_[npend_].core = 0;
                preq_[npend_].counts = &counts_[npend_];
                ++npend_;
                state.predictor.observe(req->pc, 0);
                if (npend_ == kBatch)
                    flush(state);
            } else {
                // Train consumes the PCHR feature before pc enters
                // it; flush first so the pending predictions were
                // computed against pre-train weights, exactly as a
                // serial execution interleaves them.
                flush(state);
                state.predictor.train(req->pc, 0,
                                      state.predictor.history(0),
                                      req->opt_hit);
                state.predictor.observe(req->pc, 0);
                ++state.trained;
                publish(*req, 0,
                        core::GliderPrediction::FriendlyLow,
                        ResponseStatus::Ok);
            }
        }
        flush(state);
        drainDone();
    }

    /**
     * processRun under fault containment: each attempt fires
     * @p faults for key "tenant/<id>" *before* any state mutation
     * (so retries replay cleanly), with a fresh per-attempt
     * CancelToken chained to @p parent and armed with the recovery
     * deadline (this is what unwinds hang faults). A tenant that
     * exhausts the attempt budget is quarantined: this run and all
     * later ones answer with ResponseStatus::Quarantined.
     */
    void
    serveRun(std::uint64_t id, TenantState &state,
             std::span<const AdviceRequest *const> run,
             const resilience::FaultPlan *faults,
             const resilience::RecoveryOptions &recovery,
             const CancelToken *parent)
    {
        if (state.quarantined) {
            refuse(run);
            return;
        }
        if (faults == nullptr || faults->empty()) {
            processRun(state, run);
            return;
        }
        std::string key = "tenant/" + std::to_string(id);
        int max_attempts =
            recovery.max_attempts < 1 ? 1 : recovery.max_attempts;
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
            CancelToken token(parent);
            if (recovery.deadline_ms > 0)
                token.setDeadlineMs(recovery.deadline_ms);
            try {
                faults->apply(key, ++state.fault_attempts, token);
                processRun(state, run);
                return;
            } catch (const std::exception &) {
                // FaultInjected or CancelledError (hang + deadline):
                // nothing mutated yet, safe to retry.
            }
            if (parent != nullptr && parent->cancelled())
                break;
        }
        state.quarantined = true;
        ++quarantined_;
        refuse(run);
    }

    /** Tenants quarantined by exhausted fault retries. */
    std::uint64_t quarantinedTenants() const { return quarantined_; }

    /** All tenant state, keyed by id (ordered — snapshot iteration). */
    const std::map<std::uint64_t, std::unique_ptr<TenantState>> &
    tenants() const
    {
        return tenants_;
    }

    const core::GliderConfig &config() const { return config_; }

    /** Steady-clock nanoseconds (response timestamps). */
    static std::uint64_t
    nowNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /**
     * Per-thread CPU nanoseconds (busy-time accounting). Unlike the
     * wall clock this excludes time the thread spent preempted, so
     * serving-path throughput computed from it is stable even when
     * the host has fewer cores than threads. Falls back to the wall
     * clock where no thread CPU clock exists.
     */
    static std::uint64_t
    cpuNs()
    {
#if defined(CLOCK_THREAD_CPUTIME_ID)
        timespec ts;
        if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
            return static_cast<std::uint64_t>(ts.tv_sec)
                * 1'000'000'000ull
                + static_cast<std::uint64_t>(ts.tv_nsec);
#endif
        return nowNs();
    }

  private:
    void
    publish(const AdviceRequest &req, int score,
            core::GliderPrediction level, ResponseStatus status)
    {
        if (req.response != nullptr) {
            req.response->score = score;
            req.response->level = toAdviceLevel(level);
            req.response->status = status;
            req.response->served_ns = nowNs();
        }
        noteDone(req.done);
    }

    /**
     * Defer a done-counter increment. Counters are released in
     * per-counter groups at the end of the run (drainDone), so a
     * waiting client costs one contended fetch_add per run instead
     * of one per request. Response slots are written before their
     * counter's release lands, preserving the publish contract.
     */
    void
    noteDone(std::atomic<std::uint64_t> *done)
    {
        if (done == nullptr)
            return;
        for (std::size_t j = 0; j < ndone_; ++j) {
            if (done_ptr_[j] == done) {
                ++done_cnt_[j];
                return;
            }
        }
        if (ndone_ == kDoneSlots)
            drainDone();
        done_ptr_[ndone_] = done;
        done_cnt_[ndone_] = 1;
        ++ndone_;
    }

    /** Release every deferred done-counter increment. */
    void
    drainDone()
    {
        for (std::size_t j = 0; j < ndone_; ++j)
            done_ptr_[j]->fetch_add(done_cnt_[j],
                                    std::memory_order_release);
        ndone_ = 0;
    }

    /** Run the pending Advise batch through the SIMD path. */
    void
    flush(TenantState &state)
    {
        if (npend_ == 0)
            return;
        state.predictor.predictMany(
            std::span<const core::PredictRequest>(preq_.data(),
                                                  npend_),
            std::span<core::Prediction>(pred_.data(), npend_));
        std::uint64_t stamp = nowNs();
        for (std::size_t i = 0; i < npend_; ++i) {
            const AdviceRequest &req = *pending_[i];
            if (req.response != nullptr) {
                req.response->score = pred_[i].sum;
                req.response->level = toAdviceLevel(pred_[i].level);
                req.response->status = ResponseStatus::Ok;
                req.response->served_ns = stamp;
            }
            noteDone(req.done);
        }
        state.served += npend_;
        npend_ = 0;
    }

    /** Answer a run without touching predictor state. */
    void
    refuse(std::span<const AdviceRequest *const> run)
    {
        for (const AdviceRequest *req : run)
            publish(*req, 0, core::GliderPrediction::FriendlyLow,
                    ResponseStatus::Quarantined);
        drainDone();
    }

    core::GliderConfig config_;
    std::map<std::uint64_t, std::unique_ptr<TenantState>> tenants_;
    std::uint64_t quarantined_ = 0;

    // Direct-mapped tenant-pointer cache (hot-path lookup).
    static constexpr std::size_t kTenantCache = 64;
    std::array<std::uint64_t, kTenantCache> cache_id_{};
    std::array<TenantState *, kTenantCache> cache_ptr_{};

    // predictMany gather scratch (fixed, allocation-free).
    std::array<const AdviceRequest *, kBatch> pending_{};
    std::array<core::SlotCounts, kBatch> counts_{};
    std::array<core::PredictRequest, kBatch> preq_{};
    std::array<core::Prediction, kBatch> pred_{};
    std::size_t npend_ = 0;

    // Deferred done-counter groups (one slot per distinct waiting
    // client seen in the current run; overflow drains early).
    static constexpr std::size_t kDoneSlots = 16;
    // glider-mo: publish — drainDone's release increments pair
    // with each client's acquire wait on its counter.
    std::array<std::atomic<std::uint64_t> *, kDoneSlots> done_ptr_{};
    std::array<std::uint64_t, kDoneSlots> done_cnt_{};
    std::size_t ndone_ = 0;
};

} // namespace serve
} // namespace glider

#endif // GLIDER_SERVE_TENANT_SERVER_HH
