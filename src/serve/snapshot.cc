/**
 * @file
 * Snapshot/restore of the advice engine's trained tenant state.
 *
 * Schema "glider-serve-ckpt" (version 1):
 * {
 *   "schema": "glider-serve-ckpt",
 *   "schema_version": 1,
 *   "config": { predictor shape + shard count },
 *   "tenants": {
 *     "<id>": {
 *       "quarantined": bool,
 *       "served": n, "trained": n, "fault_attempts": n,
 *       "train_updates": n, "train_skips": n,
 *       "adaptive": { explore/exploit schedule state },
 *       "pchr": [ resident PCs, LRU -> MRU ],
 *       "isvm_rows": { "<row index>": [ 16 weights ], ... }
 *     }, ...
 *   }
 * }
 *
 * Determinism contract: tenants are emitted in ascending id order,
 * isvm_rows in ascending row order, only non-zero rows are stored,
 * and no wall-clock field exists — so snapshot(restore(snapshot(x)))
 * is byte-identical to snapshot(x). Shard placement is *not* stored:
 * restore recomputes it from the ids, so a checkpoint taken with N
 * shards loads correctly into an engine with M.
 */

#include "advice_engine.hh"

#include <cstdio>
#include <map>
#include <stdexcept>

#include "common/logging.hh"

namespace glider {
namespace serve {

namespace {

constexpr const char *kSchema = "glider-serve-ckpt";
constexpr int kSchemaVersion = 1;

obs::json::Value
adaptiveToJson(const core::AdaptiveThreshold::State &s)
{
    obs::json::Value out = obs::json::Value::object();
    out["active"] = obs::json::Value(
        static_cast<std::uint64_t>(s.active));
    out["exploring"] = obs::json::Value(s.exploring);
    out["events"] = obs::json::Value(s.events);
    out["correct"] = obs::json::Value(s.correct);
    out["exploit_epochs_left"] =
        obs::json::Value(s.exploit_epochs_left);
    obs::json::Value acc = obs::json::Value::array();
    for (double a : s.accuracy)
        acc.push(obs::json::Value(a));
    out["accuracy"] = std::move(acc);
    out["switches"] = obs::json::Value(s.switches);
    return out;
}

core::AdaptiveThreshold::State
adaptiveFromJson(const obs::json::Value &doc)
{
    core::AdaptiveThreshold::State s;
    s.active = static_cast<std::size_t>(doc.find("active")->integer());
    s.exploring = doc.find("exploring")->boolean();
    s.events =
        static_cast<std::uint64_t>(doc.find("events")->integer());
    s.correct =
        static_cast<std::uint64_t>(doc.find("correct")->integer());
    s.exploit_epochs_left = static_cast<std::uint64_t>(
        doc.find("exploit_epochs_left")->integer());
    const obs::json::Value &acc = *doc.find("accuracy");
    for (std::size_t i = 0; i < 5 && i < acc.size(); ++i)
        s.accuracy[i] = acc.at(i).number();
    s.switches =
        static_cast<std::uint64_t>(doc.find("switches")->integer());
    return s;
}

obs::json::Value
tenantToJson(const TenantState &state)
{
    const core::GliderPredictor &pred = state.predictor;
    obs::json::Value out = obs::json::Value::object();
    out["quarantined"] = obs::json::Value(state.quarantined);
    out["served"] = obs::json::Value(state.served);
    out["trained"] = obs::json::Value(state.trained);
    out["fault_attempts"] = obs::json::Value(
        static_cast<std::int64_t>(state.fault_attempts));
    out["train_updates"] = obs::json::Value(pred.trainUpdates());
    out["train_skips"] = obs::json::Value(pred.trainSkips());
    out["adaptive"] = adaptiveToJson(pred.adaptiveState());
    obs::json::Value pchr = obs::json::Value::array();
    for (std::uint64_t pc : pred.history(0))
        pchr.push(obs::json::Value(pc));
    out["pchr"] = std::move(pchr);
    obs::json::Value rows = obs::json::Value::object();
    const core::IsvmTable &table = pred.table();
    for (std::size_t r = 0; r < table.entries(); ++r) {
        const std::int8_t *w = table.row(r);
        bool nonzero = false;
        for (std::size_t j = 0; j < core::kIsvmWeights; ++j)
            nonzero = nonzero || w[j] != 0;
        if (!nonzero)
            continue;
        obs::json::Value row = obs::json::Value::array();
        for (std::size_t j = 0; j < core::kIsvmWeights; ++j)
            row.push(obs::json::Value(static_cast<int>(w[j])));
        rows[std::to_string(r)] = std::move(row);
    }
    out["isvm_rows"] = std::move(rows);
    return out;
}

void
tenantFromJson(TenantState &state, const obs::json::Value &doc)
{
    core::GliderPredictor &pred = state.predictor;
    state.quarantined = doc.find("quarantined")->boolean();
    state.served =
        static_cast<std::uint64_t>(doc.find("served")->integer());
    state.trained =
        static_cast<std::uint64_t>(doc.find("trained")->integer());
    state.fault_attempts =
        static_cast<int>(doc.find("fault_attempts")->integer());
    pred.restoreTrainCounters(
        static_cast<std::uint64_t>(
            doc.find("train_updates")->integer()),
        static_cast<std::uint64_t>(doc.find("train_skips")->integer()));
    pred.restoreAdaptive(adaptiveFromJson(*doc.find("adaptive")));
    // Replaying the resident PCs oldest-first reproduces both the
    // LRU order and the incremental slot-count feature exactly.
    const obs::json::Value &pchr = *doc.find("pchr");
    for (std::size_t i = 0; i < pchr.size(); ++i)
        pred.observe(
            static_cast<std::uint64_t>(pchr.at(i).integer()), 0);
    const obs::json::Value &rows = *doc.find("isvm_rows");
    core::IsvmTable &table = pred.table();
    for (const auto &[key, row] : rows.members()) {
        std::size_t r = std::stoull(key);
        if (r >= table.entries())
            throw std::runtime_error(
                "glider-serve-ckpt: isvm row " + key
                + " out of range");
        std::int8_t *w = table.row(r);
        for (std::size_t j = 0;
             j < core::kIsvmWeights && j < row.size(); ++j)
            w[j] = static_cast<std::int8_t>(row.at(j).integer());
    }
}

const obs::json::Value &
requireMember(const obs::json::Value &doc, const std::string &key)
{
    const obs::json::Value *v = doc.find(key);
    if (v == nullptr)
        throw std::runtime_error("glider-serve-ckpt: missing member '"
                                 + key + "'");
    return *v;
}

} // namespace

obs::json::Value
AdviceEngine::snapshotJson() const
{
    obs::json::Value out = obs::json::Value::object();
    out["schema"] = obs::json::Value(kSchema);
    out["schema_version"] = obs::json::Value(kSchemaVersion);
    // The shard count is deliberately absent: placement is a pure
    // function of tenant id, so the same document restores into any
    // shard layout — and byte-identity survives resharding.
    obs::json::Value conf = obs::json::Value::object();
    conf["pchr_size"] = obs::json::Value(
        static_cast<std::uint64_t>(config_.predictor.pchr_size));
    conf["isvm_entries"] = obs::json::Value(
        static_cast<std::uint64_t>(config_.predictor.isvm_entries));
    conf["confidence_threshold"] =
        obs::json::Value(config_.predictor.confidence_threshold);
    conf["adaptive_threshold"] =
        obs::json::Value(config_.predictor.adaptive_threshold);
    conf["fixed_threshold"] =
        obs::json::Value(config_.predictor.fixed_threshold);
    out["config"] = std::move(conf);

    // Merge the per-shard tenant maps into one ascending-id view so
    // the document layout is independent of the shard count.
    std::map<std::uint64_t, const TenantState *> all;
    for (const auto &shard : shards_) {
        GLIDER_ASSERT(
            shard->accepted.load(std::memory_order_seq_cst)
            == shard->served.load(std::memory_order_seq_cst));
        for (const auto &[id, state] : shard->server.tenants())
            all.emplace(id, state.get());
    }
    obs::json::Value tenants = obs::json::Value::object();
    for (const auto &[id, state] : all)
        tenants[std::to_string(id)] = tenantToJson(*state);
    out["tenants"] = std::move(tenants);
    return out;
}

void
AdviceEngine::restoreJson(const obs::json::Value &doc)
{
    if (requireMember(doc, "schema").str() != kSchema)
        throw std::runtime_error(
            "glider-serve-ckpt: unexpected schema");
    if (requireMember(doc, "schema_version").integer()
        != kSchemaVersion)
        throw std::runtime_error(
            "glider-serve-ckpt: unsupported schema version");
    const obs::json::Value &conf = requireMember(doc, "config");
    if (static_cast<std::size_t>(
            requireMember(conf, "pchr_size").integer())
            != config_.predictor.pchr_size
        || static_cast<std::size_t>(
               requireMember(conf, "isvm_entries").integer())
            != config_.predictor.isvm_entries
        || static_cast<int>(
               requireMember(conf, "confidence_threshold").integer())
            != config_.predictor.confidence_threshold
        || requireMember(conf, "adaptive_threshold").boolean()
            != config_.predictor.adaptive_threshold
        || static_cast<int>(
               requireMember(conf, "fixed_threshold").integer())
            != config_.predictor.fixed_threshold)
        throw std::runtime_error(
            "glider-serve-ckpt: predictor config mismatch");
    const obs::json::Value &tenants = requireMember(doc, "tenants");
    for (const auto &[key, tenant_doc] : tenants.members()) {
        std::uint64_t id = std::stoull(key);
        Shard &shard = *shards_[shardOf(id)];
        tenantFromJson(shard.server.resetTenant(id), tenant_doc);
    }
}

bool
AdviceEngine::saveSnapshot(const std::string &path) const
{
    std::string doc = snapshotJson().dump();
    doc += '\n';
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
        GLIDER_WARN("serve snapshot: cannot open " + tmp);
        return false;
    }
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    bool closed = std::fclose(f) == 0;
    if (n != doc.size() || !closed) {
        GLIDER_WARN("serve snapshot: short write to " + tmp);
        std::remove(tmp.c_str());
        return false;
    }
    // Atomic replace: a kill leaves the old or the new complete
    // file, never a torn one.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        GLIDER_WARN("serve snapshot: rename to " + path + " failed");
        return false;
    }
    return true;
}

bool
AdviceEngine::loadSnapshot(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return false;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    restoreJson(obs::json::Value::parse(text));
    return true;
}

} // namespace serve
} // namespace glider
