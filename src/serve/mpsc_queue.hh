/**
 * @file
 * Lock-free bounded multi-producer/single-consumer ring for the
 * advice engine's ingest path (Vyukov's bounded MPMC algorithm,
 * narrowed to one consumer per shard).
 *
 * Every slot carries an atomic sequence number: a producer claims a
 * ticket with one fetch-add-style CAS on head_, writes the payload,
 * and publishes by storing seq = ticket + 1; the consumer accepts a
 * slot only once its sequence shows the payload is published, so a
 * claimed-but-unwritten slot reads as "empty", never as garbage.
 * Capacity is fixed at construction (rounded up to a power of two)
 * and all storage is allocated there — the push/pop hot path is
 * allocation-free and wait-free for the consumer, lock-free for
 * producers. tryPush returning false is the backpressure signal.
 */

#ifndef GLIDER_SERVE_MPSC_QUEUE_HH
#define GLIDER_SERVE_MPSC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/logging.hh"

namespace glider {
namespace serve {

/** Fixed-capacity lock-free MPSC ring queue. */
template <typename T>
class MpscRingQueue
{
  public:
    /** @param capacity Slots; rounded up to a power of two (min 2). */
    explicit MpscRingQueue(std::size_t capacity)
    {
        std::size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        slots_ = std::make_unique<Slot[]>(cap);
        for (std::size_t i = 0; i < cap; ++i)
            slots_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpscRingQueue(const MpscRingQueue &) = delete;
    MpscRingQueue &operator=(const MpscRingQueue &) = delete;

    std::size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue a copy of @p value. Safe from any number of producer
     * threads concurrently. @return false when the ring is full (the
     * caller's backpressure signal); the queue is untouched then.
     */
    bool
    tryPush(const T &value)
    {
        Slot *slot;
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            slot = &slots_[pos & mask_];
            std::size_t seq = slot->seq.load(std::memory_order_acquire);
            auto dif = static_cast<std::intptr_t>(seq)
                - static_cast<std::intptr_t>(pos);
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                // The slot one full lap behind is still occupied.
                return false;
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
        slot->value = value;
        slot->seq.store(pos + 1, std::memory_order_release);
        return true;
    }

    /**
     * Dequeue into @p out. Single consumer only. @return false when
     * no published element is available (a producer may still be
     * mid-write; its element becomes visible once published).
     */
    bool
    tryPop(T &out)
    {
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        Slot *slot = &slots_[pos & mask_];
        std::size_t seq = slot->seq.load(std::memory_order_acquire);
        auto dif = static_cast<std::intptr_t>(seq)
            - static_cast<std::intptr_t>(pos + 1);
        if (dif < 0)
            return false; // empty (or claimed but not yet published)
        GLIDER_ASSERT(dif == 0);
        out = std::move(slot->value);
        // Recycle the slot for the producer one lap ahead.
        slot->seq.store(pos + mask_ + 1, std::memory_order_release);
        tail_.store(pos + 1, std::memory_order_relaxed);
        return true;
    }

    /** Approximate occupancy (telemetry; racy by nature). */
    std::size_t
    sizeApprox() const
    {
        std::size_t head = head_.load(std::memory_order_relaxed);
        std::size_t tail = tail_.load(std::memory_order_relaxed);
        return head >= tail ? head - tail : 0;
    }

  private:
    struct Slot
    {
        // glider-mo: publish — release-stores hand the slot's
        // value (or its vacancy) to the acquire-loading other side.
        std::atomic<std::size_t> seq{0};
        T value{};
    };

    // Producers contend on head_, the consumer owns tail_; keep them
    // (and the slot array pointer) on separate cache lines.
    // glider-mo: counter-relaxed — pure claim tickets; slot
    // handoff synchronizes through each Slot::seq, never through
    // these cursors.
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0}; // glider-mo: counter-relaxed
    alignas(64) std::size_t mask_ = 0;
    std::unique_ptr<Slot[]> slots_;
};

} // namespace serve
} // namespace glider

#endif // GLIDER_SERVE_MPSC_QUEUE_HH
