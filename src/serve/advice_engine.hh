/**
 * @file
 * The long-lived, multi-tenant advice engine (ROADMAP: the online
 * serving path for the Glider predictor).
 *
 * Topology: N worker shards on a ThreadPool, each owning one
 * lock-free MPSC ingest ring and one TenantServer. A tenant id is
 * hash-sharded, so every operation of a tenant lands on the same
 * shard and its train/predict stream executes single-threaded and
 * deterministic; different tenants serve concurrently. Workers drain
 * their ring in batches, group the drained requests by tenant
 * (preserving per-tenant arrival order) and push each group through
 * TenantServer — Advise operations ride predictMany's SIMD path.
 *
 * Backpressure: submit() returns false when the target shard's ring
 * is full (or the engine is stopping); nothing is queued then.
 * Shutdown is graceful and cooperative: stop() flips the submit gate
 * and each worker exits only once every accepted request of its
 * shard has been answered, so in-flight batches always complete.
 * Snapshot/restore of all trained tenant state uses the
 * glider-serve-ckpt JSON schema (obs::json, atomic tmp+rename) — see
 * snapshot.cc.
 */

#ifndef GLIDER_SERVE_ADVICE_ENGINE_HH
#define GLIDER_SERVE_ADVICE_ENGINE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "common/thread_annotations.hh"
#include "common/thread_pool.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "core/glider_predictor.hh"
#include "mpsc_queue.hh"
#include "tenant_server.hh"

namespace glider {
namespace serve {

/** Engine sizing and behaviour knobs. */
struct EngineConfig
{
    unsigned shards = 2;             //!< worker shards (>= 1)
    std::size_t queue_capacity = 1024; //!< per-shard ring slots
    std::size_t max_batch = 256;     //!< max requests drained per spin
    core::GliderConfig predictor;    //!< per-tenant predictor shape
    //! Optional fault plan fired per tenant run (tests/soak).
    const resilience::FaultPlan *faults = nullptr;
    //! Attempt budget + per-attempt deadline for faulted runs.
    resilience::RecoveryOptions recovery;

    /**
     * Env-tuned sizing: GLIDER_SERVE_SHARDS (default 2) and
     * GLIDER_SERVE_QUEUE_CAP (default 1024).
     */
    static EngineConfig fromEnv();
};

/** Sharded multi-tenant advice engine. */
class AdviceEngine
{
  public:
    explicit AdviceEngine(const EngineConfig &config);
    ~AdviceEngine();

    AdviceEngine(const AdviceEngine &) = delete;
    AdviceEngine &operator=(const AdviceEngine &) = delete;

    unsigned
    shards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Shard owning @p tenant (stable hash partition). */
    std::size_t
    shardOf(std::uint64_t tenant) const
    {
        return static_cast<std::size_t>(
            mix64(tenant) % shards_.size());
    }

    /**
     * Enqueue one operation. @return false — and nothing happens —
     * when the owning shard's ring is full (backpressure) or the
     * engine is stopping. On true, the request's response slot and
     * done counter must stay alive until the done counter's release
     * increment lands.
     */
    bool submit(const AdviceRequest &request);

    /**
     * Graceful shutdown: refuse new submissions, serve everything
     * already accepted, join the workers. Idempotent; called by the
     * destructor. After stop() the engine is quiescent — snapshot()
     * reads are race-free.
     */
    void stop();

    bool
    stopping() const
    {
        return stop_.load(std::memory_order_seq_cst);
    }

    /** Aggregate serving statistics (racy snapshots while running). */
    struct Stats
    {
        std::uint64_t accepted = 0;  //!< requests admitted to rings
        std::uint64_t served = 0;    //!< responses published
        std::uint64_t rejected = 0;  //!< backpressure refusals
        std::uint64_t batches = 0;   //!< drain cycles with work
        std::uint64_t quarantined_tenants = 0;
        //! Thread-CPU nanoseconds the workers spent draining +
        //! serving (excludes idle spinning and preemption).
        //! served / (busy_ns summed over shards) is the serving
        //! path's per-shard throughput, independent of how many
        //! cores the host can actually run the shards and the
        //! load-generating clients on.
        std::uint64_t busy_ns = 0;
    };

    Stats stats() const;

    /** Export serving telemetry under @p prefix. */
    void exportMetrics(obs::Registry &registry,
                       const std::string &prefix) const;

    /**
     * All trained tenant state as a glider-serve-ckpt document.
     * Requires a quiescent engine (after stop(), or before any
     * traffic); asserts that every accepted request was served.
     */
    obs::json::Value snapshotJson() const;

    /**
     * Load tenant state from a glider-serve-ckpt document into this
     * (idle) engine, replacing any same-id tenants. Shard placement
     * is recomputed from the ids, so a snapshot restores correctly
     * into an engine with a different shard count.
     * @throws std::runtime_error on schema or config mismatch.
     */
    void restoreJson(const obs::json::Value &doc);

    /** snapshotJson() to @p path via atomic tmp+rename. */
    bool saveSnapshot(const std::string &path) const;

    /** restoreJson() from @p path. @return false when unreadable. */
    bool loadSnapshot(const std::string &path);

    const EngineConfig &config() const { return config_; }

    /** Shard-local tenant servers (tests; engine must be idle). */
    const TenantServer &server(std::size_t shard) const;

  private:
    /** Hash bucket of the per-batch tenant-grouping table. */
    struct RunBucket
    {
        std::uint64_t tenant = 0;
        std::uint32_t head = 0;
        std::uint32_t tail = 0;
        std::uint64_t epoch = 0; //!< valid iff == the batch epoch
    };

    struct Shard
    {
        Shard(const EngineConfig &config)
            : queue(config.queue_capacity), server(config.predictor)
        {
            drain.resize(config.max_batch);
            run.resize(config.max_batch);
            next.resize(config.max_batch);
            order.resize(config.max_batch);
            // Open-addressed grouping table at <= 0.5 load factor.
            std::size_t cap = 16;
            while (cap < 2 * config.max_batch)
                cap *= 2;
            buckets.resize(cap);
        }

        MpscRingQueue<AdviceRequest> queue;
        TenantServer server;
        // accepted/served carry the shutdown drain protocol
        // (stop-flag + served >= accepted must totally order against
        // submit's accept-then-check); batches/busy_ns are pure
        // telemetry.
        std::atomic<std::uint64_t> accepted{0}; // glider-mo: gate-seqcst
        std::atomic<std::uint64_t> served{0};   // glider-mo: gate-seqcst
        std::atomic<std::uint64_t> batches{0};  // glider-mo: counter-relaxed
        std::atomic<std::uint64_t> busy_ns{0};  // glider-mo: counter-relaxed
        // Worker-owned drain/grouping scratch, sized once. Grouping
        // is one pass: requests of one tenant are chained through
        // `next` via the epoch-stamped bucket table (no per-batch
        // clearing), then each chain is served as one run.
        std::vector<AdviceRequest> drain;
        std::vector<const AdviceRequest *> run;
        std::vector<std::uint32_t> next;
        std::vector<std::uint32_t> order; //!< first-seen bucket order
        std::vector<RunBucket> buckets;
        std::uint64_t epoch = 0;
    };

    void shardLoop(Shard &shard);
    void processBatch(Shard &shard, std::size_t n);

    EngineConfig config_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<bool> stop_{false};          // glider-mo: gate-seqcst
    std::atomic<std::uint64_t> rejected_{0}; // glider-mo: counter-relaxed
    ThreadPool pool_;
    std::vector<std::future<void>> workers_;
    Mutex stop_mutex_;
    bool joined_ GLIDER_GUARDED_BY(stop_mutex_) = false;
};

} // namespace serve
} // namespace glider

#endif // GLIDER_SERVE_ADVICE_ENGINE_HH
