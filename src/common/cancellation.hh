/**
 * @file
 * Cooperative cancellation for long-running simulation cells.
 *
 * A CancelToken is a shared flag plus an optional soft deadline that
 * work loops poll at coarse intervals (the simulator checks every few
 * thousand accesses). Cancellation is always cooperative: nothing is
 * interrupted mid-operation, the loop observes the token and throws
 * CancelledError at its next checkpoint, unwinding through ordinary
 * RAII. Tokens chain: a per-cell token with a parent observes the
 * pool-wide token too, so one cancel() on the pool stops every cell.
 */

#ifndef GLIDER_COMMON_CANCELLATION_HH
#define GLIDER_COMMON_CANCELLATION_HH

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace glider {

/** Thrown by CancelToken::throwIfCancelled when the token fired. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Shared cancellation flag with an optional soft deadline. */
class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    /** @param parent Optional upstream token observed alongside. */
    explicit CancelToken(const CancelToken *parent = nullptr)
        : parent_(parent)
    {
    }

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation; visible to every poller immediately. */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    /** Arm a soft deadline @p ms milliseconds from now (0 disarms). */
    void
    setDeadlineMs(std::uint64_t ms)
    {
        has_deadline_ = ms > 0;
        if (has_deadline_)
            deadline_ = Clock::now() + std::chrono::milliseconds(ms);
    }

    /** True once cancel() was called, the deadline passed, or a
     *  parent token reports cancelled. */
    bool
    cancelled() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            return true;
        if (has_deadline_ && Clock::now() >= deadline_) {
            cancelled_.store(true, std::memory_order_relaxed);
            return true;
        }
        return parent_ && parent_->cancelled();
    }

    /** @throws CancelledError when cancelled(). */
    // glider-lint: allow(hotpath-transitive) cancellation exit:
    // thrown at most once per run when the deadline/stop fires; the
    // steady-state path is a relaxed load plus a branch.
    void
    throwIfCancelled() const
    {
        if (cancelled())
            throw CancelledError("cancelled (deadline or stop request)");
    }

  private:
    const CancelToken *parent_;
    // glider-mo: flag-relaxed — poll-only latch; no data is
    // published under it (the cancelled run unwinds via the thrown
    // CancelledError, not via this flag).
    mutable std::atomic<bool> cancelled_{false};
    bool has_deadline_ = false;
    Clock::time_point deadline_{};
};

} // namespace glider

#endif // GLIDER_COMMON_CANCELLATION_HH
