/**
 * @file
 * Summary-statistics helpers used by experiment harnesses: running
 * mean/min/max accumulators, histograms, CDF extraction, and the
 * geometric mean used for speedup aggregation.
 */

#ifndef GLIDER_COMMON_STATS_UTIL_HH
#define GLIDER_COMMON_STATS_UTIL_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace glider {

/** Incremental accumulator for count / mean / min / max / stddev. */
class Summary
{
  public:
    /** Add one observation. */
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_ || n_ == 1)
            min_ = x;
        if (x > max_ || n_ == 1)
            max_ = x;
    }

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 when fewer than 2 points. */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bin histogram over [lo, hi); out-of-range values clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins)
        : lo_(lo), hi_(hi), counts_(bins, 0)
    {
    }

    /** Record one sample. */
    void
    add(double x)
    {
        double t = (x - lo_) / (hi_ - lo_);
        auto bin = static_cast<std::int64_t>(
            t * static_cast<double>(counts_.size()));
        if (bin < 0)
            bin = 0;
        if (bin >= static_cast<std::int64_t>(counts_.size()))
            bin = static_cast<std::int64_t>(counts_.size()) - 1;
        ++counts_[static_cast<std::size_t>(bin)];
        ++total_;
    }

    const std::vector<std::uint64_t> &counts() const { return counts_; }
    std::uint64_t total() const { return total_; }

    /** Cumulative distribution: cdf()[i] = P(sample in bins 0..i). */
    std::vector<double>
    cdf() const
    {
        std::vector<double> out(counts_.size(), 0.0);
        double acc = 0.0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            acc += static_cast<double>(counts_[i]);
            out[i] = total_ ? acc / static_cast<double>(total_) : 0.0;
        }
        return out;
    }

    /** Lower edge of bin @p i. */
    double
    binLow(std::size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i)
            / static_cast<double>(counts_.size());
    }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** Geometric mean of strictly positive values; 0 on empty input. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Arithmetic mean; 0 on empty input. */
inline double
amean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

} // namespace glider

#endif // GLIDER_COMMON_STATS_UTIL_HH
