/**
 * @file
 * Counting global operator new/delete (GLIDER_ALLOCGUARD builds).
 *
 * All eight replaceable forms funnel through countedAlloc/countedFree
 * so the per-thread counters in alloc_guard.hh see every heap
 * allocation in the process, including those made by the standard
 * library. The hooks deliberately do nothing clever — malloc/free
 * plus a counter bump — so allocation behavior under the guard stays
 * representative of release builds.
 */

#include "common/alloc_guard.hh"

#if GLIDER_ALLOCGUARD

#include <cstdlib>
#include <new>

namespace glider {
namespace {

// POD per-thread counters: zero-initialized, no dynamic init, and
// trivially destructible so counting stays safe during thread and
// process teardown.
thread_local std::uint64_t t_allocations = 0;
thread_local std::uint64_t t_frees = 0;
thread_local std::uint64_t t_bytes = 0;

void *
countedAlloc(std::size_t size)
{
    ++t_allocations;
    t_bytes += size;
    // malloc(0) may return nullptr legally; operator new must not.
    return std::malloc(size ? size : 1);
}

void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    ++t_allocations;
    t_bytes += size;
    // aligned_alloc requires size to be a multiple of alignment.
    std::size_t rounded = (size + align - 1) / align * align;
    return std::aligned_alloc(align, rounded ? rounded : align);
}

void
countedFree(void *p) noexcept
{
    if (p != nullptr)
        ++t_frees;
    std::free(p);
}

} // namespace

bool
allocGuardEnabled() noexcept
{
    return true;
}

AllocCounts
allocCounts() noexcept
{
    return {t_allocations, t_frees, t_bytes};
}

} // namespace glider

void *
operator new(std::size_t size)
{
    void *p = glider::countedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return glider::countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return glider::countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p = glider::countedAlignedAlloc(
        size, static_cast<std::size_t>(align));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    glider::countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    glider::countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    glider::countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    glider::countedFree(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    glider::countedFree(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    glider::countedFree(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    glider::countedFree(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    glider::countedFree(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    glider::countedFree(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    glider::countedFree(p);
}

#else // !GLIDER_ALLOCGUARD

namespace glider {

bool
allocGuardEnabled() noexcept
{
    return false;
}

AllocCounts
allocCounts() noexcept
{
    return {};
}

} // namespace glider

#endif // GLIDER_ALLOCGUARD
