/**
 * @file
 * Saturating counter, the workhorse state element of hardware
 * predictors (Hawkeye's per-PC counters, SHiP's SHCT, RRPV fields).
 */

#ifndef GLIDER_COMMON_SATURATING_COUNTER_HH
#define GLIDER_COMMON_SATURATING_COUNTER_HH

#include <cstdint>

#include "logging.hh"

namespace glider {

/**
 * An n-bit unsigned saturating counter. Increments stick at 2^bits - 1
 * and decrements stick at 0, exactly like the hardware element.
 */
class SaturatingCounter
{
  public:
    /**
     * @param bits Width in bits (1..31).
     * @param initial Initial value, clamped to the representable range.
     */
    explicit SaturatingCounter(unsigned bits = 2, std::uint32_t initial = 0)
        : max_((1u << bits) - 1),
          value_(initial > max_ ? max_ : initial)
    {
        GLIDER_ASSERT(bits >= 1 && bits <= 31);
    }

    /** Saturating increment. @return new value. */
    std::uint32_t
    increment()
    {
        if (value_ < max_)
            ++value_;
        return value_;
    }

    /** Saturating decrement. @return new value. */
    std::uint32_t
    decrement()
    {
        if (value_ > 0)
            --value_;
        return value_;
    }

    std::uint32_t value() const { return value_; }
    std::uint32_t max() const { return max_; }
    bool saturatedHigh() const { return value_ == max_; }
    bool saturatedLow() const { return value_ == 0; }

    /** True when the counter is in its upper half (MSB set). */
    bool msb() const { return value_ > max_ / 2; }

    /** Force a specific value (clamped). */
    void
    set(std::uint32_t v)
    {
        value_ = v > max_ ? max_ : v;
    }

  private:
    std::uint32_t max_;
    std::uint32_t value_;
};

} // namespace glider

#endif // GLIDER_COMMON_SATURATING_COUNTER_HH
