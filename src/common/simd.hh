/**
 * @file
 * SIMD dispatch for the batched ISVM prediction kernel.
 *
 * The one hot kernel the predictor needs is a 16-lane signed-8-bit
 * dot product: a weight row (int8) against a slot-count vector
 * (uint8), summed exactly into an int32. This header provides three
 * interchangeable backends — AVX2, NEON, and a portable scalar
 * reference — that are bit-identical on every input the predictor
 * can produce (total history length <= 255, so no intermediate
 * saturates), plus configure-time selection and runtime dispatch.
 *
 * Configure-time policy (CMake option GLIDER_SIMD):
 *   auto (default)  compile every backend the target architecture
 *                   supports and pick the best at runtime (CPUID on
 *                   x86; NEON is baseline on AArch64).
 *   avx2 | neon     compile and force that backend unconditionally
 *                   (for known deployment targets; no runtime probe).
 *   scalar          compile only the portable reference.
 *
 * Runtime policy: in auto builds the GLIDER_SIMD environment knob
 * (see common/env_registry.hh) narrows the probe to one usable
 * backend — e.g. GLIDER_SIMD=scalar pins the reference kernel for
 * differential stress runs. Configure-time forces ignore the knob.
 *
 * Adding a backend: implement dotRowsYourIsa with the exact integer
 * semantics of dotRowsScalar, extend Backend/name/compiled/usable,
 * and add a dispatch arm to dotRowsWith. The differential tests in
 * tests/test_simd.cc pick up new backends through usable().
 */

#ifndef GLIDER_COMMON_SIMD_HH
#define GLIDER_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/env_registry.hh"

#if defined(GLIDER_SIMD_FORCE_AVX2) \
    && !(defined(__x86_64__) || defined(__i386__))
#error "GLIDER_SIMD=avx2 requires an x86 target"
#endif
#if defined(GLIDER_SIMD_FORCE_NEON) && !defined(__ARM_NEON)
#error "GLIDER_SIMD=neon requires a NEON-capable ARM target"
#endif

#if !defined(GLIDER_SIMD_FORCE_SCALAR) \
    && !defined(GLIDER_SIMD_FORCE_NEON) \
    && (defined(__x86_64__) || defined(__i386__)) \
    && (defined(__GNUC__) || defined(__clang__))
#define GLIDER_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define GLIDER_SIMD_HAVE_AVX2 0
#endif

#if !defined(GLIDER_SIMD_FORCE_SCALAR) \
    && !defined(GLIDER_SIMD_FORCE_AVX2) && defined(__ARM_NEON)
#define GLIDER_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#else
#define GLIDER_SIMD_HAVE_NEON 0
#endif

namespace glider {
namespace simd {

/** Weight-row width shared with the ISVM layout (16 x int8). */
inline constexpr std::size_t kDotLanes = 16;

/**
 * Exactness bound: every backend is bit-identical to the scalar
 * reference as long as the counts of one request sum to at most 255
 * (the AVX2 path pairs lanes into 16-bit products; 255 * 128 * 2
 * stays inside int16 only when adjacent counts sum to <= 255, which
 * a <=255-element history guarantees).
 */
inline constexpr std::size_t kMaxCountSum = 255;

/** Available kernel implementations. */
enum class Backend { Scalar, Avx2, Neon };

inline const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Avx2:
        return "avx2";
      case Backend::Neon:
        return "neon";
      default:
        return "scalar";
    }
}

/** Was @p b compiled into this binary (configure-time)? */
inline bool
compiled(Backend b)
{
    switch (b) {
      case Backend::Avx2:
        return GLIDER_SIMD_HAVE_AVX2 != 0;
      case Backend::Neon:
        return GLIDER_SIMD_HAVE_NEON != 0;
      default:
        return true;
    }
}

/** Is @p b compiled in *and* supported by the running CPU? */
inline bool
usable(Backend b)
{
#if GLIDER_SIMD_HAVE_AVX2
    if (b == Backend::Avx2)
        return __builtin_cpu_supports("avx2") != 0;
#endif
    if (b == Backend::Neon)
        return compiled(Backend::Neon); // NEON is baseline when compiled
    return b == Backend::Scalar;
}

/**
 * Portable reference kernel: sums[i] = dot(rows[i], counts row i),
 * exact int32 arithmetic. All other backends must match it bit for
 * bit. @p counts holds n contiguous 16-byte rows.
 */
inline void
dotRowsScalar(const std::int8_t *const *rows, const std::uint8_t *counts,
              std::size_t n, std::int32_t *sums)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::int8_t *w = rows[i];
        const std::uint8_t *c = counts + i * kDotLanes;
        std::int32_t sum = 0;
        for (std::size_t j = 0; j < kDotLanes; ++j)
            sum += static_cast<std::int32_t>(c[j])
                * static_cast<std::int32_t>(w[j]);
        sums[i] = sum;
    }
}

#if GLIDER_SIMD_HAVE_AVX2

/** Horizontal sum of four int32 lanes. */
__attribute__((target("avx2"))) inline std::int32_t
hsum4Avx2(__m128i v)
{
    __m128i hi = _mm_add_epi32(v, _mm_shuffle_epi32(v, 0x4E));
    __m128i s = _mm_add_epi32(hi, _mm_shuffle_epi32(hi, 0xB1));
    return _mm_cvtsi128_si32(s);
}

/**
 * AVX2 kernel: four requests per main-loop iteration. maddubs
 * multiplies the unsigned counts against the signed weights into
 * 16-bit pairs (exact while adjacent counts sum to <= 255, see
 * kMaxCountSum), madd widens to int32, and two hadd passes plus one
 * cross-lane permute reduce all four requests to a single 128-bit
 * store. A two-request step and a 128-bit step mop up the tail.
 */
__attribute__((target("avx2"))) inline void
dotRowsAvx2(const std::int8_t *const *rows, const std::uint8_t *counts,
            std::size_t n, std::int32_t *sums)
{
    const __m256i ones = _mm256_set1_epi16(1);
    const __m256i lane_order =
        _mm256_setr_epi32(0, 4, 1, 5, 0, 0, 0, 0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i w0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rows[i]));
        __m128i w1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rows[i + 1]));
        __m128i w2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rows[i + 2]));
        __m128i w3 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rows[i + 3]));
        __m256i wa = _mm256_inserti128_si256(_mm256_castsi128_si256(w0),
                                             w1, 1);
        __m256i wb = _mm256_inserti128_si256(_mm256_castsi128_si256(w2),
                                             w3, 1);
        __m256i ca = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(counts + i * kDotLanes));
        __m256i cb = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
            counts + (i + 2) * kDotLanes));
        __m256i qa = _mm256_madd_epi16(_mm256_maddubs_epi16(ca, wa),
                                       ones);
        __m256i qb = _mm256_madd_epi16(_mm256_maddubs_epi16(cb, wb),
                                       ones);
        // qa = [a0..a3 | b0..b3], qb = [c0..c3 | d0..d3]; two hadds
        // give [a c a c | b d b d], the permute picks lanes 0,4,1,5.
        __m256i t = _mm256_hadd_epi32(qa, qb);
        __m256i u = _mm256_hadd_epi32(t, t);
        __m256i abcd = _mm256_permutevar8x32_epi32(u, lane_order);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(sums + i),
                         _mm256_castsi256_si128(abcd));
    }
    for (; i + 2 <= n; i += 2) {
        __m128i w0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rows[i]));
        __m128i w1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rows[i + 1]));
        __m256i w = _mm256_inserti128_si256(_mm256_castsi128_si256(w0),
                                            w1, 1);
        __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
            counts + i * kDotLanes));
        __m256i pairs = _mm256_maddubs_epi16(c, w);
        __m256i quads = _mm256_madd_epi16(pairs, ones);
        sums[i] = hsum4Avx2(_mm256_castsi256_si128(quads));
        sums[i + 1] = hsum4Avx2(_mm256_extracti128_si256(quads, 1));
    }
    if (i < n) {
        __m128i w = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rows[i]));
        __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i *>(
            counts + i * kDotLanes));
        __m128i pairs = _mm_maddubs_epi16(c, w);
        __m128i quads = _mm_madd_epi16(pairs, _mm_set1_epi16(1));
        sums[i] = hsum4Avx2(quads);
    }
}

#endif // GLIDER_SIMD_HAVE_AVX2

#if GLIDER_SIMD_HAVE_NEON

/**
 * NEON kernel: counts and weights widen to int16 (counts <= 255 fit),
 * four widening multiply-accumulates produce four int32 lanes, and a
 * cross-lane add finishes the request. Exact for all inputs.
 */
inline void
dotRowsNeon(const std::int8_t *const *rows, const std::uint8_t *counts,
            std::size_t n, std::int32_t *sums)
{
    for (std::size_t i = 0; i < n; ++i) {
        int8x16_t w = vld1q_s8(rows[i]);
        uint8x16_t c = vld1q_u8(counts + i * kDotLanes);
        int16x8_t clo = vreinterpretq_s16_u16(vmovl_u8(vget_low_u8(c)));
        int16x8_t chi =
            vreinterpretq_s16_u16(vmovl_u8(vget_high_u8(c)));
        int16x8_t wlo = vmovl_s8(vget_low_s8(w));
        int16x8_t whi = vmovl_s8(vget_high_s8(w));
        int32x4_t acc =
            vmull_s16(vget_low_s16(clo), vget_low_s16(wlo));
        acc = vmlal_s16(acc, vget_high_s16(clo), vget_high_s16(wlo));
        acc = vmlal_s16(acc, vget_low_s16(chi), vget_low_s16(whi));
        acc = vmlal_s16(acc, vget_high_s16(chi), vget_high_s16(whi));
#if defined(__aarch64__)
        sums[i] = vaddvq_s32(acc);
#else
        int32x2_t p = vadd_s32(vget_low_s32(acc), vget_high_s32(acc));
        p = vpadd_s32(p, p);
        sums[i] = vget_lane_s32(p, 0);
#endif
    }
}

#endif // GLIDER_SIMD_HAVE_NEON

/**
 * Backend the dispatching entry point uses: the forced backend under
 * a configure-time GLIDER_SIMD=avx2|neon|scalar, otherwise the
 * runtime GLIDER_SIMD env knob (auto|avx2|neon|scalar, ignored when
 * the requested backend is not usable), otherwise the best usable
 * backend. Resolved once per process.
 */
inline Backend
activeBackend()
{
#if defined(GLIDER_SIMD_FORCE_AVX2)
    return Backend::Avx2;
#elif defined(GLIDER_SIMD_FORCE_NEON)
    return Backend::Neon;
#elif defined(GLIDER_SIMD_FORCE_SCALAR)
    return Backend::Scalar;
#else
    // glider-lint: allow(hotpath-transitive) env knob read once via
    // static-init; steady-state calls only read the cached Backend.
    static const Backend resolved = [] {
        const char *knob = env::raw(env::Knob::Simd);
        if (knob != nullptr) {
            if (std::strcmp(knob, "scalar") == 0)
                return Backend::Scalar;
            if (std::strcmp(knob, "avx2") == 0 && usable(Backend::Avx2))
                return Backend::Avx2;
            if (std::strcmp(knob, "neon") == 0 && usable(Backend::Neon))
                return Backend::Neon;
        }
        return usable(Backend::Avx2)
            ? Backend::Avx2
            : usable(Backend::Neon) ? Backend::Neon : Backend::Scalar;
    }();
    return resolved;
#endif
}

/**
 * Run the dot kernel with an explicit backend (tests and per-backend
 * benchmarks). Backends that are not compiled in fall back to the
 * scalar reference, which is bit-identical anyway.
 */
inline void
dotRowsWith(Backend backend, const std::int8_t *const *rows,
            const std::uint8_t *counts, std::size_t n,
            std::int32_t *sums)
{
    switch (backend) {
#if GLIDER_SIMD_HAVE_AVX2
      case Backend::Avx2:
        dotRowsAvx2(rows, counts, n, sums);
        return;
#endif
#if GLIDER_SIMD_HAVE_NEON
      case Backend::Neon:
        dotRowsNeon(rows, counts, n, sums);
        return;
#endif
      default:
        dotRowsScalar(rows, counts, n, sums);
        return;
    }
}

/** Dispatching entry point: the active backend's kernel. */
inline void
dotRows(const std::int8_t *const *rows, const std::uint8_t *counts,
        std::size_t n, std::int32_t *sums)
{
    dotRowsWith(activeBackend(), rows, counts, n, sums);
}

} // namespace simd
} // namespace glider

#endif // GLIDER_COMMON_SIMD_HH
