/**
 * @file
 * A fixed-size worker pool with a task queue and futures, used by the
 * experiment harness to fan independent (workload x policy)
 * simulations across cores. Tasks are plain callables; results and
 * exceptions travel back through std::future, so a worker that throws
 * surfaces the exception at the caller's get().
 */

#ifndef GLIDER_COMMON_THREAD_POOL_HH
#define GLIDER_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "cancellation.hh"

namespace glider {

/** Fixed-size thread pool; FIFO task queue; future-based results. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 is clamped to 1. */
    explicit ThreadPool(unsigned threads = defaultThreads())
    {
        if (threads == 0)
            threads = 1;
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool() { shutdown(); }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned
    size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Queue @p fn for execution; its return value (or exception) is
     * delivered through the returned future.
     * @throws std::runtime_error if the pool has been shut down.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_)
                throw std::runtime_error(
                    "ThreadPool::submit after shutdown");
            queue_.emplace([task] { (*task)(); });
            submitted_.fetch_add(1, std::memory_order_relaxed);
            std::size_t depth = queue_.size();
            std::size_t peak =
                peak_queue_.load(std::memory_order_relaxed);
            while (depth > peak
                   && !peak_queue_.compare_exchange_weak(
                       peak, depth, std::memory_order_relaxed))
                ;
        }
        cv_.notify_one();
        return fut;
    }

    /** Tasks ever submitted (telemetry). */
    std::uint64_t
    submitted() const
    {
        return submitted_.load(std::memory_order_relaxed);
    }

    /** Tasks that finished running (telemetry). */
    std::uint64_t
    completed() const
    {
        return completed_.load(std::memory_order_relaxed);
    }

    /** High-water mark of tasks waiting in the queue (telemetry). */
    std::size_t
    peakQueueDepth() const
    {
        return peak_queue_.load(std::memory_order_relaxed);
    }

    /** Tasks currently waiting (not yet picked up by a worker). */
    std::size_t
    queueDepth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

    /**
     * Stop accepting tasks, run everything still queued, and join the
     * workers. Idempotent; called by the destructor.
     */
    void
    shutdown()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_)
                return;
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_) {
            if (w.joinable())
                w.join();
        }
    }

    /**
     * Pool-wide cancellation token. Cancelling it does not drop
     * queued tasks (their futures stay valid); tasks that poll the
     * token — directly or through a chained per-cell child — observe
     * the request and unwind cooperatively.
     */
    const CancelToken &token() const { return cancel_; }

    /** Request cooperative cancellation of every polling task. */
    void cancel() { cancel_.cancel(); }

    /** Hardware concurrency, falling back to 1 when unknown. */
    static unsigned
    defaultThreads()
    {
        unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty())
                    return; // stopping_ and drained
                task = std::move(queue_.front());
                queue_.pop();
            }
            task(); // packaged_task captures any exception
            completed_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
    std::atomic<std::uint64_t> submitted_{0}; // glider-mo: counter-relaxed
    std::atomic<std::uint64_t> completed_{0}; // glider-mo: counter-relaxed
    std::atomic<std::size_t> peak_queue_{0};  // glider-mo: counter-relaxed
    CancelToken cancel_;
};

} // namespace glider

#endif // GLIDER_COMMON_THREAD_POOL_HH
