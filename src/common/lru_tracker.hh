/**
 * @file
 * Bounded most-recently-used key tracker.
 *
 * Models small fully-associative LRU structures such as Glider's PC
 * History Register (PCHR): a capacity-bounded set of unique keys where
 * touching a key moves it to the MRU position and inserting into a full
 * tracker evicts the LRU key.
 */

#ifndef GLIDER_COMMON_LRU_TRACKER_HH
#define GLIDER_COMMON_LRU_TRACKER_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "logging.hh"

namespace glider {

/**
 * A tiny LRU set of unique keys. Linear scan is intentional: the
 * hardware analogue holds ~5 entries, so a vector beats any node-based
 * structure both in simulation speed and in fidelity to the CAM the
 * hardware would use.
 */
template <typename Key>
class LruTracker
{
  public:
    /** @param capacity Maximum number of resident keys; must be > 0. */
    explicit LruTracker(std::size_t capacity)
        : capacity_(capacity)
    {
        GLIDER_ASSERT(capacity > 0);
        entries_.reserve(capacity);
    }

    /** Outcome of a touch, for callers mirroring the contents. */
    struct TouchResult
    {
        bool inserted = false; //!< key was not resident and entered
        bool evicted = false;  //!< a resident key was displaced
        Key victim{};          //!< the displaced key (when evicted)
    };

    /**
     * Touch @p key: insert it (evicting LRU if full) or refresh it to
     * the MRU position if already present.
     * @return true if the key was newly inserted.
     */
    bool
    touch(const Key &key)
    {
        return touchTracked(key).inserted;
    }

    /**
     * touch() plus the membership delta, so a caller maintaining a
     * derived view of the resident set (e.g. the PCHR's slot-count
     * feature) can update it incrementally instead of rescanning.
     */
    TouchResult
    touchTracked(const Key &key)
    {
        TouchResult result;
        auto it = std::find(entries_.begin(), entries_.end(), key);
        if (it != entries_.end()) {
            // Rotate the found key to the back (MRU position).
            std::rotate(it, it + 1, entries_.end());
            return result;
        }
        result.inserted = true;
        if (entries_.size() == capacity_) {
            result.evicted = true;
            result.victim = entries_.front();
            entries_.erase(entries_.begin());
        }
        // glider-lint: allow(hotpath-transitive) bounded: entries_
        // is reserved to capacity_ at construction and never exceeds
        // it, so this push_back never reallocates.
        entries_.push_back(key);
        return result;
    }

    /** @return true if @p key is currently resident. */
    bool
    contains(const Key &key) const
    {
        return std::find(entries_.begin(), entries_.end(), key)
            != entries_.end();
    }

    /** Resident keys in LRU→MRU order. */
    const std::vector<Key> &entries() const { return entries_; }

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool empty() const { return entries_.empty(); }

    /** Remove all resident keys. */
    void clear() { entries_.clear(); }

  private:
    std::size_t capacity_;
    std::vector<Key> entries_;
};

} // namespace glider

#endif // GLIDER_COMMON_LRU_TRACKER_HH
