/**
 * @file
 * Error and status reporting in the gem5 spirit: panic() for internal
 * invariant violations, fatal() for unrecoverable user/configuration
 * errors, warn()/inform() for status messages.
 */

#ifndef GLIDER_COMMON_LOGGING_HH
#define GLIDER_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace glider {

/** Severity levels used by the logging backend. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Print a formatted log line to stderr with a severity prefix. */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &msg);

} // namespace detail

/**
 * Abort the process because an internal invariant was violated.
 * Use for conditions that indicate a bug in this library, never for
 * user error.
 */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/**
 * Exit the process because of an unrecoverable user-facing error
 * (bad configuration, invalid arguments).
 */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace glider

#define GLIDER_PANIC(msg) ::glider::panicImpl(__FILE__, __LINE__, (msg))
#define GLIDER_FATAL(msg) ::glider::fatalImpl(__FILE__, __LINE__, (msg))
#define GLIDER_WARN(msg) \
    ::glider::detail::logMessage(::glider::LogLevel::Warn, __FILE__, \
                                 __LINE__, (msg))
#define GLIDER_INFORM(msg) \
    ::glider::detail::logMessage(::glider::LogLevel::Inform, __FILE__, \
                                 __LINE__, (msg))

/** Always-on assertion that panics (not UB) when violated. */
#define GLIDER_ASSERT(cond) \
    do { \
        if (!(cond)) \
            GLIDER_PANIC(std::string("assertion failed: ") + #cond); \
    } while (0)

#endif // GLIDER_COMMON_LOGGING_HH
