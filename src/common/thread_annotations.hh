/**
 * @file
 * Clang thread-safety annotations plus annotated mutex wrappers.
 *
 * The macros expand to clang's capability attributes when the
 * compiler supports them and to nothing elsewhere, so gcc builds are
 * unaffected while the CI lint job compiles with clang and
 * -Werror=thread-safety: a read of a GLIDER_GUARDED_BY member outside
 * its lock is then a build error, not a review comment. std::mutex
 * itself carries no capability attribute, so lock-protected state
 * uses the Mutex/LockGuard wrappers below; code that must interact
 * with std::condition_variable (which demands a real std::mutex,
 * e.g. ThreadPool) stays on the std types and out of the analysis.
 */

#ifndef GLIDER_COMMON_THREAD_ANNOTATIONS_HH
#define GLIDER_COMMON_THREAD_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__)
#define GLIDER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GLIDER_THREAD_ANNOTATION(x)
#endif

//! Marks a type as a lockable capability (clang names it in errors).
#define GLIDER_CAPABILITY(x) GLIDER_THREAD_ANNOTATION(capability(x))
//! Data member readable/writable only while holding @p x.
#define GLIDER_GUARDED_BY(x) GLIDER_THREAD_ANNOTATION(guarded_by(x))
//! Function callable only while holding the named capabilities.
#define GLIDER_REQUIRES(...) \
    GLIDER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
//! Function acquires the named capabilities (held on return).
#define GLIDER_ACQUIRE(...) \
    GLIDER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
//! Function releases the named capabilities.
#define GLIDER_RELEASE(...) \
    GLIDER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
//! RAII type whose ctor acquires and dtor releases a capability.
#define GLIDER_SCOPED_CAPABILITY \
    GLIDER_THREAD_ANNOTATION(scoped_lockable)
//! Opt a function out (init/teardown code the analysis cannot see).
#define GLIDER_NO_THREAD_SAFETY_ANALYSIS \
    GLIDER_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace glider {

/** std::mutex annotated as a clang capability. */
class GLIDER_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() GLIDER_ACQUIRE()
    {
        m_.lock();
    }

    void
    unlock() GLIDER_RELEASE()
    {
        m_.unlock();
    }

  private:
    std::mutex m_;
};

/** std::lock_guard over Mutex, visible to the analysis. */
class GLIDER_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &m) GLIDER_ACQUIRE(m) : m_(m)
    {
        m_.lock();
    }

    ~LockGuard() GLIDER_RELEASE() { m_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &m_;
};

} // namespace glider

#endif // GLIDER_COMMON_THREAD_ANNOTATIONS_HH
