/**
 * @file
 * The GLIDER_* knob table and its typed accessors. This file holds
 * the tree's only getenv("GLIDER_…") call; everything else goes
 * through env::raw and friends so the registry stays the single
 * source of truth for names, defaults, and docs.
 */

#include "common/env_registry.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace glider {
namespace env {

namespace {

// Same order as enum Knob (alphabetical by name); checked in info().
const KnobInfo kKnobs[] = {
    {Knob::Accesses, "GLIDER_ACCESSES", "u64", "2000000",
     "Per-workload trace length in CPU accesses for bench sweeps."},
    {Knob::AdviceBatch, "GLIDER_ADVICE_BATCH", "u64", "32",
     "fig13 batched-advice group size per core."},
    {Knob::BenchDir, "GLIDER_BENCH_DIR", "string", ".",
     "Directory where BENCH_*.json reports are written."},
    {Knob::BenchJson, "GLIDER_BENCH_JSON", "flag", "1",
     "Set to 0 to suppress writing BENCH_*.json reports."},
    {Knob::CellDeadlineMs, "GLIDER_CELL_DEADLINE_MS", "u64", "0",
     "Per-attempt sweep-cell deadline in ms; 0 disables."},
    {Knob::CellRetries, "GLIDER_CELL_RETRIES", "u64", "2",
     "Extra attempts after a sweep cell's first failure."},
    {Knob::Ckpt, "GLIDER_CKPT", "string", "",
     "Sweep checkpoint path; empty disables checkpoint/resume."},
    {Knob::CkptVerify, "GLIDER_CKPT_VERIFY", "u64", "1",
     "Resumed checkpoint rows to recompute and byte-compare."},
    {Knob::ConvEpochs, "GLIDER_CONV_EPOCHS", "u64", "12",
     "fig15 convergence-curve training epochs."},
    {Knob::Epochs, "GLIDER_EPOCHS", "u64", "6",
     "Offline LSTM training epochs."},
    {Knob::FaultInject, "GLIDER_FAULT_INJECT", "string", "",
     "Fault-injection plan spec; empty disables."},
    {Knob::LstmDim, "GLIDER_LSTM_DIM", "u64", "32",
     "Offline-model hidden/embedding dimension."},
    {Knob::MaxSeq, "GLIDER_MAX_SEQ", "u64", "60",
     "fig14 maximum attention history length swept."},
    {Knob::MicroAccesses, "GLIDER_MICRO_ACCESSES", "u64", "2000000",
     "microbench_simulator accesses per repetition."},
    {Knob::MicroReps, "GLIDER_MICRO_REPS", "u64", "3",
     "microbench_simulator repetitions (best-of)."},
    {Knob::Mixes, "GLIDER_MIXES", "u64", "20",
     "fig13 number of random multicore workload mixes."},
    {Knob::MixAccesses, "GLIDER_MIX_ACCESSES", "u64", "300000",
     "fig13 per-core accesses per mix."},
    {Knob::ScenarioAccesses, "GLIDER_SCENARIO_ACCESSES", "u64", "0",
     "Adversarial-scenario trace length; 0 = GLIDER_ACCESSES."},
    {Knob::ServeClients, "GLIDER_SERVE_CLIENTS", "u64", "4",
     "serve_loadgen concurrent closed-loop clients."},
    {Knob::ServeQueueCap, "GLIDER_SERVE_QUEUE_CAP", "u64", "1024",
     "AdviceEngine per-shard ingest ring capacity."},
    {Knob::ServeRequests, "GLIDER_SERVE_REQUESTS", "u64", "50000",
     "serve_loadgen requests per client."},
    {Knob::ServeShards, "GLIDER_SERVE_SHARDS", "u64", "2",
     "AdviceEngine worker-shard count."},
    {Knob::ServeTenants, "GLIDER_SERVE_TENANTS", "u64", "16",
     "serve_loadgen distinct tenant count."},
    {Knob::ServeTrainPct, "GLIDER_SERVE_TRAIN_PCT", "u64", "30",
     "serve_loadgen percentage of Train operations."},
    {Knob::ServeWindow, "GLIDER_SERVE_WINDOW", "u64", "64",
     "serve_loadgen per-client in-flight window."},
    {Knob::ServeWorkload, "GLIDER_SERVE_WORKLOAD", "string", "mcf",
     "serve_loadgen backing workload trace."},
    {Knob::ServeZipfPct, "GLIDER_SERVE_ZIPF_PCT", "u64", "90",
     "serve_loadgen Zipf tenant-skew exponent x100."},
    {Knob::Simd, "GLIDER_SIMD", "string", "auto",
     "Runtime SIMD backend override: auto|avx2|neon|scalar."},
    {Knob::StreamAccesses, "GLIDER_STREAM_ACCESSES", "u64", "1000000",
     "stream_throughput accesses per repetition."},
    {Knob::StreamReps, "GLIDER_STREAM_REPS", "u64", "2",
     "stream_throughput repetitions (best-of)."},
    {Knob::StreamWorkload, "GLIDER_STREAM_WORKLOAD", "string", "mcf",
     "stream_throughput backing workload trace."},
    {Knob::Threads, "GLIDER_THREADS", "u64", "0",
     "Sweep worker threads; 0 = hardware concurrency."},
    {Knob::TraceDir, "GLIDER_TRACE_DIR", "string", "gtraces",
     "Directory for spilled gtrace files."},
    {Knob::TraceSpill, "GLIDER_TRACE_SPILL", "flag", "0",
     "Spill generated traces to disk and stream replays from them."},
    {Knob::VerifyMinAgreement, "GLIDER_VERIFY_MIN_AGREEMENT", "f64",
     "0.95", "verify_oracles minimum Belady/OPTgen agreement."},
    {Knob::VerifyWorkloads, "GLIDER_VERIFY_WORKLOADS", "string",
     "offline", "verify_oracles suite: offline|fig10|all|CSV names."},
};

constexpr std::size_t kKnobCount = sizeof(kKnobs) / sizeof(kKnobs[0]);

} // namespace

const KnobInfo *
allKnobs(std::size_t *count)
{
    *count = kKnobCount;
    return kKnobs;
}

const KnobInfo &
info(Knob k)
{
    const auto idx = static_cast<std::size_t>(k);
    GLIDER_ASSERT(idx < kKnobCount);
    const KnobInfo &row = kKnobs[idx];
    GLIDER_ASSERT(row.id == k);
    return row;
}

const KnobInfo *
findByName(const std::string &name)
{
    for (const KnobInfo &row : kKnobs)
        if (name == row.name)
            return &row;
    return nullptr;
}

const char *
raw(Knob k)
{
    return std::getenv(info(k).name);
}

bool
isSet(Knob k)
{
    const char *v = raw(k);
    return v != nullptr && *v != '\0';
}

std::string
str(Knob k)
{
    const char *v = raw(k);
    return (v != nullptr && *v != '\0') ? v : info(k).def;
}

std::uint64_t
u64(Knob k)
{
    const char *v = raw(k);
    if (v == nullptr || *v == '\0')
        v = info(k).def;
    return std::strtoull(v, nullptr, 10);
}

double
f64(Knob k)
{
    const char *v = raw(k);
    if (v == nullptr || *v == '\0')
        v = info(k).def;
    return std::strtod(v, nullptr);
}

bool
flag(Knob k)
{
    const char *v = raw(k);
    if (v == nullptr || *v == '\0')
        v = info(k).def;
    return *v != '\0' && *v != '0';
}

} // namespace env
} // namespace glider
