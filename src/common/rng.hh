/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the simulator (random replacement,
 * BRRIP epsilon insertion, workload generators, model initialisation)
 * draw from explicitly seeded Rng instances so that every experiment
 * is exactly reproducible run-to-run.
 */

#ifndef GLIDER_COMMON_RNG_HH
#define GLIDER_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace glider {

/**
 * xoshiro256** generator (Blackman & Vigna). Small, fast, and of far
 * higher quality than rand(); deterministic across platforms.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit output. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free mapping; bias is
        // negligible (< 2^-64 * bound) for simulator purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Standard normal via Marsaglia polar method (no cached spare, so
     * the stream position is easy to reason about).
     */
    double
    gaussian()
    {
        double u, v, s;
        do {
            u = 2.0 * uniform() - 1.0;
            v = 2.0 * uniform() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        double mul = std::sqrt(-2.0 * std::log(s) / s);
        return u * mul;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace glider

#endif // GLIDER_COMMON_RNG_HH
