#include "logging.hh"

namespace glider {
namespace detail {

void
logMessage(LogLevel level, const char *file, int line,
           const std::string &msg)
{
    const char *prefix = "info";
    switch (level) {
      case LogLevel::Inform: prefix = "info"; break;
      case LogLevel::Warn:   prefix = "warn"; break;
      case LogLevel::Fatal:  prefix = "fatal"; break;
      case LogLevel::Panic:  prefix = "panic"; break;
    }
    std::fprintf(stderr, "%s: %s (%s:%d)\n", prefix, msg.c_str(), file,
                 line);
}

} // namespace detail

void
panicImpl(const char *file, int line, const std::string &msg)
{
    detail::logMessage(LogLevel::Panic, file, line, msg);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    detail::logMessage(LogLevel::Fatal, file, line, msg);
    std::exit(1);
}

} // namespace glider
