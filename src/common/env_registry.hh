/**
 * @file
 * Central registry of every GLIDER_* environment knob.
 *
 * Each knob is declared exactly once here with its name, type,
 * default, and a one-line doc string. All runtime reads go through
 * the typed accessors below; the only std::getenv("GLIDER_…") call
 * in the tree lives in env_registry.cc, and glider_lint's
 * `env-registry` rule rejects any other. The same table generates
 * README's knob reference (`glider_lint --print-env-table`), and
 * lint cross-checks the two against drift.
 *
 * Adding a knob: extend Knob (alphabetical), add its row to kKnobs
 * in env_registry.cc at the same position, and regenerate the README
 * table. The registry self-checks that enum order and table order
 * agree.
 */

#ifndef GLIDER_COMMON_ENV_REGISTRY_HH
#define GLIDER_COMMON_ENV_REGISTRY_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace glider {
namespace env {

/** Every GLIDER_* knob, alphabetical by variable name. */
enum class Knob {
    Accesses,           //!< GLIDER_ACCESSES
    AdviceBatch,        //!< GLIDER_ADVICE_BATCH
    BenchDir,           //!< GLIDER_BENCH_DIR
    BenchJson,          //!< GLIDER_BENCH_JSON
    CellDeadlineMs,     //!< GLIDER_CELL_DEADLINE_MS
    CellRetries,        //!< GLIDER_CELL_RETRIES
    Ckpt,               //!< GLIDER_CKPT
    CkptVerify,         //!< GLIDER_CKPT_VERIFY
    ConvEpochs,         //!< GLIDER_CONV_EPOCHS
    Epochs,             //!< GLIDER_EPOCHS
    FaultInject,        //!< GLIDER_FAULT_INJECT
    LstmDim,            //!< GLIDER_LSTM_DIM
    MaxSeq,             //!< GLIDER_MAX_SEQ
    MicroAccesses,      //!< GLIDER_MICRO_ACCESSES
    MicroReps,          //!< GLIDER_MICRO_REPS
    Mixes,              //!< GLIDER_MIXES
    MixAccesses,        //!< GLIDER_MIX_ACCESSES
    ScenarioAccesses,   //!< GLIDER_SCENARIO_ACCESSES
    ServeClients,       //!< GLIDER_SERVE_CLIENTS
    ServeQueueCap,      //!< GLIDER_SERVE_QUEUE_CAP
    ServeRequests,      //!< GLIDER_SERVE_REQUESTS
    ServeShards,        //!< GLIDER_SERVE_SHARDS
    ServeTenants,       //!< GLIDER_SERVE_TENANTS
    ServeTrainPct,      //!< GLIDER_SERVE_TRAIN_PCT
    ServeWindow,        //!< GLIDER_SERVE_WINDOW
    ServeWorkload,      //!< GLIDER_SERVE_WORKLOAD
    ServeZipfPct,       //!< GLIDER_SERVE_ZIPF_PCT
    Simd,               //!< GLIDER_SIMD
    StreamAccesses,     //!< GLIDER_STREAM_ACCESSES
    StreamReps,         //!< GLIDER_STREAM_REPS
    StreamWorkload,     //!< GLIDER_STREAM_WORKLOAD
    Threads,            //!< GLIDER_THREADS
    TraceDir,           //!< GLIDER_TRACE_DIR
    TraceSpill,         //!< GLIDER_TRACE_SPILL
    VerifyMinAgreement, //!< GLIDER_VERIFY_MIN_AGREEMENT
    VerifyWorkloads,    //!< GLIDER_VERIFY_WORKLOADS
};

/** One registry row; all strings are static. */
struct KnobInfo
{
    Knob id;
    const char *name; //!< environment variable ("GLIDER_…")
    const char *type; //!< "u64" | "f64" | "string" | "flag"
    const char *def;  //!< default, rendered exactly as documented
    const char *doc;  //!< one-line description
};

/** The full table, alphabetical by name; @p count receives its size. */
const KnobInfo *allKnobs(std::size_t *count);

/** Registry row for @p k. */
const KnobInfo &info(Knob k);

/** Registry row by variable name, nullptr if not registered. */
const KnobInfo *findByName(const std::string &name);

/**
 * Raw environment value for @p k: the process environment string, or
 * nullptr when the variable is unset. The one getenv choke point.
 */
const char *raw(Knob k);

/** True when the variable is set to a non-empty value. */
bool isSet(Knob k);

/** String value, falling back to the registered default. */
std::string str(Knob k);

/** Base-10 integer value, falling back to the registered default. */
std::uint64_t u64(Knob k);

/** Floating-point value, falling back to the registered default. */
double f64(Knob k);

/**
 * Boolean value: false iff the effective value (environment, else
 * the registered default) is empty or starts with '0'.
 */
bool flag(Knob k);

} // namespace env
} // namespace glider

#endif // GLIDER_COMMON_ENV_REGISTRY_HH
