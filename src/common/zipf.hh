/**
 * @file
 * Exact Zipf(s) sampling over ranks [0, n) via a precomputed,
 * normalised CDF — promoted out of bench/serve_loadgen.cc so the
 * adversarial scenario kernels and the serving load generator share
 * one sampler.
 *
 * This is the *exact* inverse-CDF sampler: rank r carries probability
 * 1/(r+1)^s / H(n,s). It is distinct from workloads::zipfDraw, the
 * cheap power-law approximation the SPEC-like kernels keep using
 * because committed golden traces and spill fingerprints depend on
 * its exact output (see spec_kernels.cc).
 *
 * Construction is O(n) time and space and belongs in setup code;
 * pick() is an O(log n) binary search, allocation-free, and safe on
 * the simulation hot path.
 */

#ifndef GLIDER_COMMON_ZIPF_HH
#define GLIDER_COMMON_ZIPF_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hh"

namespace glider {

/** Zipf(s) sampler over ranks [0, n) via a precomputed CDF. */
class ZipfPicker
{
  public:
    ZipfPicker(std::size_t n, double s)
    {
        cdf_.reserve(n);
        double total = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            total += 1.0 / std::pow(static_cast<double>(r + 1), s);
            cdf_.push_back(total);
        }
        for (double &c : cdf_)
            c /= total;
    }

    /**
     * Draw one rank: the smallest r with u < cdf[r] (binary search,
     * equivalent to a linear first-passage scan of the CDF). An
     * empty domain returns 0 rather than underflowing.
     */
    std::size_t
    pick(Rng &rng) const noexcept
    {
        if (cdf_.empty())
            return 0;
        double u = rng.uniform();
        auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
        if (it == cdf_.end())
            return cdf_.size() - 1;
        return static_cast<std::size_t>(it - cdf_.begin());
    }

    /** Number of ranks (n at construction). */
    std::size_t size() const noexcept { return cdf_.size(); }

    /** P(rank == r) under the normalised distribution. */
    double
    probability(std::size_t r) const noexcept
    {
        if (r >= cdf_.size())
            return 0.0;
        return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
    }

  private:
    std::vector<double> cdf_;
};

} // namespace glider

#endif // GLIDER_COMMON_ZIPF_HH
