/**
 * @file
 * Small integer-hashing helpers shared by predictor tables.
 *
 * Hardware predictor tables index by folded/hashed PCs; these helpers
 * centralise the mixing functions so every table hashes consistently.
 */

#ifndef GLIDER_COMMON_HASH_HH
#define GLIDER_COMMON_HASH_HH

#include <cstdint>

namespace glider {

/** Strong 64-bit finalizer (splitmix64 / murmur3-style avalanche). */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
}

/** Hash @p x down to @p bits bits (bits in [1, 64]). */
inline std::uint64_t
hashBits(std::uint64_t x, unsigned bits)
{
    return mix64(x) >> (64 - bits);
}

/** Hash @p x into [0, size). Intended for power-of-two and odd sizes. */
inline std::uint64_t
hashInto(std::uint64_t x, std::uint64_t size)
{
    return mix64(x) % size;
}

/** Combine two hash values (boost::hash_combine-style). */
inline std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

} // namespace glider

#endif // GLIDER_COMMON_HASH_HH
