#ifndef GLIDER_COMMON_ALLOC_GUARD_HH
#define GLIDER_COMMON_ALLOC_GUARD_HH

/**
 * @file
 * Scoped heap-allocation counting for zero-allocation assertions.
 *
 * Built with -DGLIDER_ALLOCGUARD=ON the global operator new/delete
 * pair is replaced with counting hooks (alloc_guard.cc), and a
 * ScopedAllocCheck reads the per-thread counter around a region:
 *
 *     glider::ScopedAllocCheck guard;
 *     for (...) cache.access(...);        // the claimed-hot region
 *     GLIDER_ASSERT(guard.allocations() == 0, "hot path allocated");
 *
 * In default builds every call collapses to a constant and the guard
 * compiles away; tests that depend on real counts should skip when
 * allocGuardEnabled() is false. Counters are thread_local, so a
 * check only sees allocations made by its own thread — exactly what
 * the single-threaded simulator hot path needs, and immune to noise
 * from worker-pool threads.
 */

#include <cstdint>

namespace glider {

/** Allocation totals for the calling thread since thread start. */
struct AllocCounts
{
    std::uint64_t allocations = 0; //!< operator new calls
    std::uint64_t frees = 0;       //!< operator delete calls
    std::uint64_t bytes = 0;       //!< total bytes requested
};

/** True when the counting operator new/delete is compiled in. */
bool allocGuardEnabled() noexcept;

/** Current totals for this thread (all-zero when disabled). */
AllocCounts allocCounts() noexcept;

/**
 * Snapshot of the thread's allocation counters at construction;
 * allocations()/bytes() report growth since then. Purely an
 * observer — asserting on the result is the caller's job, which
 * keeps the failure message and tolerance at the call site.
 */
class ScopedAllocCheck
{
  public:
    ScopedAllocCheck() noexcept : start_(allocCounts())
    {
    }

    /** operator new calls on this thread since construction. */
    std::uint64_t
    allocations() const noexcept
    {
        return allocCounts().allocations - start_.allocations;
    }

    /** Bytes requested on this thread since construction. */
    std::uint64_t
    bytes() const noexcept
    {
        return allocCounts().bytes - start_.bytes;
    }

  private:
    AllocCounts start_;
};

} // namespace glider

#endif // GLIDER_COMMON_ALLOC_GUARD_HH
