#include "graph_kernels.hh"

#include <algorithm>

#include "spec_kernels.hh" // zipfDraw

namespace glider {
namespace workloads {

CsrGraph
buildPowerLawGraph(std::size_t vertices, std::size_t avg_degree,
                   std::uint64_t seed)
{
    Rng rng(seed);
    std::size_t edges = vertices * avg_degree;
    std::vector<std::uint32_t> src(edges), dst(edges);
    for (std::size_t e = 0; e < edges; ++e) {
        // Skewed endpoints give the hub-dominated degree distribution
        // of real-world (Kronecker/web) graphs.
        src[e] = static_cast<std::uint32_t>(zipfDraw(rng, vertices, 0.4));
        dst[e] = static_cast<std::uint32_t>(zipfDraw(rng, vertices, 0.4));
    }

    CsrGraph g;
    g.offsets.assign(vertices + 1, 0);
    for (auto s : src)
        ++g.offsets[s + 1];
    for (std::size_t v = 0; v < vertices; ++v)
        g.offsets[v + 1] += g.offsets[v];
    g.targets.resize(edges);
    std::vector<std::uint32_t> cursor(g.offsets.begin(),
                                      g.offsets.end() - 1);
    for (std::size_t e = 0; e < edges; ++e)
        g.targets[cursor[src[e]]++] = dst[e];
    // Sorted adjacency lists (GAP does the same; required by tc).
    for (std::size_t v = 0; v < vertices; ++v) {
        std::sort(g.targets.begin() + g.offsets[v],
                  g.targets.begin() + g.offsets[v + 1]);
    }
    return g;
}

namespace {

/** Traced CSR wrapper: graph arrays backed by TracedArrays. */
struct TracedGraph
{
    TracedGraph(RecordingMemory &mem, const CsrGraph &g)
        : offsets(mem, g.offsets.size()), targets(mem, g.targets.size())
    {
        for (std::size_t i = 0; i < g.offsets.size(); ++i)
            offsets.raw(i) = g.offsets[i];
        for (std::size_t i = 0; i < g.targets.size(); ++i)
            targets.raw(i) = g.targets[i];
    }

    TracedArray<std::uint32_t> offsets;
    TracedArray<std::uint32_t> targets;
};

struct Budget
{
    const traces::TraceSink &trace;
    std::size_t start;
    std::uint64_t target;

    bool done() const { return trace.size() - start >= target; }
};

} // namespace

void
GraphKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    Budget budget{trace, trace.size(), p_.target_accesses};

    CsrGraph g = buildPowerLawGraph(p_.vertices, p_.avg_degree, p_.seed);
    TracedGraph tg(mem, g);
    std::size_t nv = g.numVertices();

    switch (p_.algo) {
      case GraphAlgo::Bfs: {
        TracedArray<std::uint32_t> parent(mem, nv);
        std::vector<std::uint32_t> frontier, next;
        while (!budget.done()) {
            for (std::size_t i = 0; i < nv; ++i)
                parent.raw(i) = ~0u;
            auto source = static_cast<std::uint32_t>(rng.below(nv));
            parent.raw(source) = source;
            frontier.assign(1, source);
            while (!frontier.empty() && !budget.done()) {
                next.clear();
                for (auto v : frontier) {
                    auto lo = tg.offsets.get(pcs.pc(0), v);
                    auto hi = tg.offsets.get(pcs.pc(1), v + 1);
                    for (auto e = lo; e < hi; ++e) {
                        auto u = tg.targets.get(pcs.pc(2), e);
                        if (parent.get(pcs.pc(3), u) == ~0u) {
                            parent.set(pcs.pc(4), u, v);
                            next.push_back(u);
                        }
                    }
                }
                frontier.swap(next);
            }
        }
        break;
      }

      case GraphAlgo::PageRank: {
        TracedArray<std::uint64_t> rank(mem, nv, 1000);
        TracedArray<std::uint64_t> rank_next(mem, nv, 0);
        while (!budget.done()) {
            for (std::size_t v = 0; v < nv && !budget.done(); ++v) {
                auto lo = tg.offsets.get(pcs.pc(0), v);
                auto hi = tg.offsets.get(pcs.pc(1), v + 1);
                if (hi == lo)
                    continue;
                auto share = rank.get(pcs.pc(2), v) / (hi - lo);
                for (auto e = lo; e < hi; ++e) {
                    auto u = tg.targets.get(pcs.pc(3), e);
                    auto cur = rank_next.get(pcs.pc(4), u);
                    rank_next.set(pcs.pc(5), u, cur + share);
                }
                if ((v & 2047) == 0 && budget.done())
                    break;
            }
            for (std::size_t v = 0; v < nv && !budget.done(); ++v) {
                auto nr = rank_next.get(pcs.pc(6), v);
                rank.set(pcs.pc(7), v, 150 + (nr * 85) / 100);
                rank_next.set(pcs.pc(8), v, 0);
            }
        }
        break;
      }

      case GraphAlgo::Components: {
        TracedArray<std::uint32_t> comp(mem, nv);
        while (!budget.done()) {
            for (std::size_t v = 0; v < nv; ++v)
                comp.raw(v) = static_cast<std::uint32_t>(v);
            bool changed = true;
            while (changed && !budget.done()) {
                changed = false;
                for (std::size_t v = 0; v < nv && !budget.done(); ++v) {
                    auto lo = tg.offsets.get(pcs.pc(0), v);
                    auto hi = tg.offsets.get(pcs.pc(1), v + 1);
                    auto cv = comp.get(pcs.pc(2), v);
                    for (auto e = lo; e < hi; ++e) {
                        auto u = tg.targets.get(pcs.pc(3), e);
                        auto cu = comp.get(pcs.pc(4), u);
                        if (cu < cv) {
                            comp.set(pcs.pc(5), v, cu);
                            cv = cu;
                            changed = true;
                        } else if (cv < cu) {
                            comp.set(pcs.pc(6), u, cv);
                            changed = true;
                        }
                    }
                    if ((v & 2047) == 0 && budget.done())
                        break;
                }
            }
        }
        break;
      }

      case GraphAlgo::Betweenness: {
        TracedArray<std::uint32_t> depth(mem, nv);
        TracedArray<std::uint64_t> sigma(mem, nv);
        TracedArray<std::uint64_t> delta(mem, nv);
        std::vector<std::uint32_t> order;
        while (!budget.done()) {
            for (std::size_t i = 0; i < nv; ++i) {
                depth.raw(i) = ~0u;
                sigma.raw(i) = 0;
                delta.raw(i) = 0;
            }
            auto source = static_cast<std::uint32_t>(rng.below(nv));
            depth.raw(source) = 0;
            sigma.raw(source) = 1;
            order.assign(1, source);
            // Forward BFS collecting the visit order and path counts.
            for (std::size_t head = 0;
                 head < order.size() && !budget.done(); ++head) {
                auto v = order[head];
                auto dv = depth.get(pcs.pc(0), v);
                auto sv = sigma.get(pcs.pc(1), v);
                auto lo = tg.offsets.get(pcs.pc(2), v);
                auto hi = tg.offsets.get(pcs.pc(3), v + 1);
                for (auto e = lo; e < hi; ++e) {
                    auto u = tg.targets.get(pcs.pc(4), e);
                    auto du = depth.get(pcs.pc(5), u);
                    if (du == ~0u) {
                        depth.set(pcs.pc(6), u, dv + 1);
                        order.push_back(u);
                        du = dv + 1;
                    }
                    if (du == dv + 1) {
                        sigma.set(pcs.pc(7), u,
                                  sigma.get(pcs.pc(8), u) + sv);
                    }
                }
            }
            // Backward dependency accumulation.
            for (std::size_t i = order.size(); i-- > 1;) {
                auto v = order[i];
                delta.set(pcs.pc(9), v,
                          delta.get(pcs.pc(10), v) + 1);
                if (budget.done())
                    break;
            }
        }
        break;
      }

      case GraphAlgo::Sssp: {
        TracedArray<std::uint64_t> dist(mem, nv);
        while (!budget.done()) {
            for (std::size_t i = 0; i < nv; ++i)
                dist.raw(i) = ~0ull;
            dist.raw(rng.below(nv)) = 0;
            // Bellman-Ford rounds over the full edge set.
            for (int round = 0; round < 12 && !budget.done(); ++round) {
                bool changed = false;
                for (std::size_t v = 0; v < nv && !budget.done(); ++v) {
                    auto dv = dist.get(pcs.pc(0), v);
                    if (dv == ~0ull)
                        continue;
                    auto lo = tg.offsets.get(pcs.pc(1), v);
                    auto hi = tg.offsets.get(pcs.pc(2), v + 1);
                    for (auto e = lo; e < hi; ++e) {
                        auto u = tg.targets.get(pcs.pc(3), e);
                        auto w = 1 + (static_cast<std::uint64_t>(u) % 7);
                        if (dv + w < dist.get(pcs.pc(4), u)) {
                            dist.set(pcs.pc(5), u, dv + w);
                            changed = true;
                        }
                    }
                    if ((v & 2047) == 0 && budget.done())
                        break;
                }
                if (!changed)
                    break;
            }
        }
        break;
      }

      case GraphAlgo::TriangleCount: {
        std::uint64_t triangles = 0;
        while (!budget.done()) {
            for (std::size_t v = 0; v < nv && !budget.done(); ++v) {
                auto vlo = tg.offsets.get(pcs.pc(0), v);
                auto vhi = tg.offsets.get(pcs.pc(1), v + 1);
                for (auto e = vlo; e < vhi; ++e) {
                    auto u = tg.targets.get(pcs.pc(2), e);
                    if (u <= v)
                        continue;
                    // Merge-intersect adj(v) and adj(u); hub lists are
                    // re-read constantly — the cache-friendly half.
                    auto ulo = tg.offsets.get(pcs.pc(3), u);
                    auto uhi = tg.offsets.get(pcs.pc(4), u + 1);
                    auto i = vlo, j = ulo;
                    while (i < vhi && j < uhi) {
                        auto a = tg.targets.get(pcs.pc(5), i);
                        auto b = tg.targets.get(pcs.pc(6), j);
                        if (a == b) {
                            ++triangles;
                            ++i;
                            ++j;
                        } else if (a < b) {
                            ++i;
                        } else {
                            ++j;
                        }
                    }
                    if (budget.done())
                        break;
                }
                if ((v & 255) == 0 && budget.done())
                    break;
            }
        }
        (void)triangles;
        break;
      }
    }
}

} // namespace workloads
} // namespace glider
