#include "spec_kernels.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/hash.hh"

namespace glider {
namespace workloads {

namespace {

/** True once @p trace has grown by the kernel's access budget. */
bool
budgetDone(const traces::TraceSink &trace, std::size_t start,
           std::uint64_t target)
{
    return trace.size() - start >= target;
}

} // namespace

std::size_t
zipfDraw(Rng &rng, std::size_t n, double s)
{
    // Power-law approximation of a Zipf(s) draw: skew a uniform draw
    // toward index 0 with exponent growing in s. Exact Zipf sampling
    // lives in common/zipf.hh (ZipfPicker); this approximation stays
    // because committed golden traces and spill fingerprints depend
    // on its exact output, and the predictors under study only care
    // that a small head of indices absorbs most probability mass,
    // which this preserves.
    if (n == 0)
        return 0; // empty domain: n - 1 would underflow to SIZE_MAX
    double gamma = 1.0 + 3.0 * s;
    double u = rng.uniform();
    auto idx = static_cast<std::size_t>(
        static_cast<double>(n) * std::pow(u, gamma));
    return idx >= n ? n - 1 : idx;
}

void
NetworkSimplexKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    std::size_t start = trace.size();

    TracedArray<std::uint64_t> arc_head(mem, p_.arcs);
    TracedArray<std::uint64_t> arc_tail(mem, p_.arcs);
    TracedArray<std::int64_t> arc_cost(mem, p_.arcs);
    TracedArray<std::int64_t> node_pot(mem, p_.nodes);
    // Hot spanning-tree slice: 64B records, one cache block per node.
    TracedArray<std::uint64_t> tree(mem, p_.hot_tree * 8);
    std::vector<std::size_t> tree_parent(p_.hot_tree, 0);

    for (std::size_t i = 0; i < p_.arcs; ++i) {
        arc_head.raw(i) = rng.below(p_.nodes);
        arc_tail.raw(i) = rng.below(p_.nodes);
        arc_cost.raw(i) = rng.range(-100, 100);
    }
    for (std::size_t i = 1; i < p_.hot_tree; ++i)
        tree_parent[i] = rng.below(i);

    while (!budgetDone(trace, start, p_.target_accesses)) {
        // Price-out pass: stream the arc arrays, chasing into the
        // node-potential array at data-dependent indices.
        for (std::size_t i = 0; i < p_.arcs; ++i) {
            auto h = arc_head.get(pcs.pc(0), i);
            auto t = arc_tail.get(pcs.pc(1), i);
            auto c = arc_cost.get(pcs.pc(2), i);
            auto red = c + node_pot.get(pcs.pc(3), h)
                - node_pot.get(pcs.pc(4), t);
            if (red < 0 && (i & 31) == 0) {
                // Pivot: walk the hot tree path back toward the root,
                // adjusting potentials (heavily reused working set).
                std::size_t v = 1 + rng.below(p_.hot_tree - 1);
                while (v != 0) {
                    auto pot = tree.get(pcs.pc(5), v * 8);
                    tree.set(pcs.pc(6), v * 8,
                             pot + static_cast<std::uint64_t>(-red));
                    v = tree_parent[v];
                }
                node_pot.set(pcs.pc(7), h,
                             node_pot.get(pcs.pc(8), h) + red);
            }
            if ((i & 4095) == 0
                && budgetDone(trace, start, p_.target_accesses)) {
                return;
            }
        }
    }
}

void
SparseSolverKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    std::size_t start = trace.size();

    std::size_t nnz = p_.rows * p_.nnz_per_row;
    TracedArray<std::uint64_t> col_idx(mem, nnz);
    TracedArray<std::int64_t> vals(mem, nnz);
    TracedArray<std::int64_t> x(mem, p_.vec_elems, 1);
    TracedArray<std::int64_t> y(mem, p_.rows);

    for (std::size_t i = 0; i < nnz; ++i) {
        col_idx.raw(i) = rng.below(p_.vec_elems);
        vals.raw(i) = rng.range(-8, 8);
    }

    while (!budgetDone(trace, start, p_.target_accesses)) {
        // One SpMV sweep: the matrix streams (cyclic reuse far beyond
        // LLC capacity), the x-vector gathers hit a mid-sized hot set.
        for (std::size_t r = 0; r < p_.rows; ++r) {
            std::int64_t acc = 0;
            for (std::size_t j = 0; j < p_.nnz_per_row; ++j) {
                std::size_t e = r * p_.nnz_per_row + j;
                auto ci = col_idx.get(pcs.pc(0), e);
                auto v = vals.get(pcs.pc(1), e);
                acc += v * x.get(pcs.pc(2), ci);
            }
            y.set(pcs.pc(3), r, acc);
            if ((r & 2047) == 0
                && budgetDone(trace, start, p_.target_accesses)) {
                return;
            }
        }
        // Scale pass: refresh x from y (sequential, short).
        for (std::size_t i = 0; i < p_.vec_elems; ++i) {
            auto v = y.get(pcs.pc(4), i % p_.rows);
            x.set(pcs.pc(5), i, (v >> 4) + 1);
        }
    }
}

void
ScoreTableKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    std::size_t start = trace.size();

    TracedArray<std::int64_t> tables(mem, p_.tables * p_.table_elems, 3);
    TracedArray<std::int64_t> frame(mem, p_.frame_elems, 5);
    TracedArray<std::int64_t> scratch(mem, 64, 7);

    while (!budgetDone(trace, start, p_.target_accesses)) {
        // Per-frame feature read (small, cache-resident noise).
        for (std::size_t e = 0; e < p_.frame_elems; e += 8)
            frame.get(pcs.pc(0), e);

        // Two beam widths with their own inlined scoring loops (PC
        // sets 3..6 for the narrow beam, 7..10 for the wide beam):
        // the narrow beam probes the hot Zipf head (LLC-resident),
        // the wide beam streams through the cold tail.
        bool narrow = rng.chance(0.5);
        std::size_t head = p_.tables / 16;
        for (std::size_t probe = 0; probe < 24; ++probe) {
            std::size_t t = narrow
                ? zipfDraw(rng, head, p_.zipf_s)
                : head + rng.below(p_.tables - head);
            std::uint32_t pc_base = narrow ? 3 : 7;
            std::int64_t score = 0;
            for (std::size_t e = 0; e < p_.table_elems; e += 8) {
                score += tables.get(pcs.pc(pc_base + (e / 8) % 4),
                                    t * p_.table_elems + e);
            }
            scratch.raw(0) = score; // keep the computation live
        }
    }
}

void
GridSearchKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    std::size_t start = trace.size();

    std::size_t cells = p_.width * p_.height;
    TracedArray<std::uint64_t> occupancy(mem, cells);
    // gscore packs (episode epoch << 40 | g): values written by
    // earlier episodes read as "unset" without a reset sweep, so
    // repeated searches over the same route re-touch the same
    // corridor of cells (the cross-episode reuse signal).
    TracedArray<std::uint64_t> gscore(mem, cells, 0);
    TracedArray<std::uint64_t> heap(mem, 65536);
    std::uint64_t epoch = 0;

    for (std::size_t i = 0; i < cells; ++i)
        occupancy.raw(i) = rng.chance(0.25) ? 1 : 0;

    // A small rotation of recurring start/goal routes, as a planner
    // re-querying the same map does.
    std::vector<std::pair<std::size_t, std::size_t>> routes;
    for (std::size_t r = 0; r < p_.route_pairs; ++r)
        routes.emplace_back(rng.below(cells),
                            rng.below(p_.width) + (rng.below(p_.height))
                                * p_.width);

    std::size_t heap_n = 0;
    auto heap_push = [&](std::uint64_t prio, std::uint64_t cell) {
        if (heap_n + 1 >= heap.size())
            return;
        std::size_t i = ++heap_n;
        heap.set(pcs.pc(0), i, (prio << 32) | cell);
        while (i > 1) {
            auto parent = heap.get(pcs.pc(1), i / 2);
            auto self = heap.get(pcs.pc(2), i);
            if (parent <= self)
                break;
            heap.set(pcs.pc(3), i / 2, self);
            heap.set(pcs.pc(4), i, parent);
            i /= 2;
        }
    };
    auto heap_pop = [&]() -> std::uint64_t {
        auto top = heap.get(pcs.pc(5), 1);
        auto last = heap.get(pcs.pc(6), heap_n--);
        std::size_t i = 1;
        heap.set(pcs.pc(7), 1, last);
        while (2 * i <= heap_n) {
            std::size_t c = 2 * i;
            if (c + 1 <= heap_n
                && heap.get(pcs.pc(8), c + 1) < heap.get(pcs.pc(9), c)) {
                ++c;
            }
            auto child = heap.get(pcs.pc(10), c);
            auto self = heap.get(pcs.pc(11), i);
            if (self <= child)
                break;
            heap.set(pcs.pc(12), i, child);
            heap.set(pcs.pc(13), c, self);
            i = c;
        }
        return top;
    };

    while (!budgetDone(trace, start, p_.target_accesses)) {
        // One best-first search episode over a recurring route.
        ++epoch;
        auto [cur, goal] = routes[epoch % routes.size()];
        std::size_t goal_x = goal % p_.width;
        std::size_t goal_y = goal / p_.width;
        auto unpack_g = [&](std::uint64_t v) {
            return (v >> 40) == epoch ? (v & 0xFFFFFFFFFFull) : ~0ull;
        };
        heap_n = 0;
        heap_push(0, cur);
        gscore.set(pcs.pc(18), cur, (epoch << 40));
        std::size_t steps = 0;
        while (heap_n > 0 && steps++ < 40'000) {
            std::uint64_t cell = heap_pop() & 0xFFFFFFFFull;
            std::size_t cx = cell % p_.width;
            std::size_t cy = cell / p_.width;
            if (cx == goal_x && cy == goal_y)
                break;
            auto g = unpack_g(gscore.get(pcs.pc(14), cell));
            const std::int64_t dxs[4] = {1, -1, 0, 0};
            const std::int64_t dys[4] = {0, 0, 1, -1};
            for (int d = 0; d < 4; ++d) {
                auto nx = static_cast<std::int64_t>(cx) + dxs[d];
                auto ny = static_cast<std::int64_t>(cy) + dys[d];
                if (nx < 0 || ny < 0
                    || nx >= static_cast<std::int64_t>(p_.width)
                    || ny >= static_cast<std::int64_t>(p_.height)) {
                    continue;
                }
                auto ncell = static_cast<std::size_t>(ny)
                    * p_.width + static_cast<std::size_t>(nx);
                if (occupancy.get(pcs.pc(15), ncell))
                    continue;
                auto ng = (g == ~0ull ? 0 : g) + 1;
                if (ng < unpack_g(gscore.get(pcs.pc(16), ncell))) {
                    gscore.set(pcs.pc(17), ncell, (epoch << 40) | ng);
                    std::uint64_t h = static_cast<std::uint64_t>(
                        std::llabs(nx - static_cast<std::int64_t>(goal_x))
                        + std::llabs(ny - static_cast<std::int64_t>(goal_y)));
                    heap_push(ng + h, ncell);
                }
            }
            if ((steps & 1023) == 0
                && budgetDone(trace, start, p_.target_accesses)) {
                return;
            }
        }
    }
}

void
StencilKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    std::size_t start = trace.size();

    TracedArray<std::int64_t> grid_a(mem, p_.grid_elems, 1);
    TracedArray<std::int64_t> grid_b(mem, p_.grid_elems, 2);

    bool a_to_b = true;
    while (!budgetDone(trace, start, p_.target_accesses)) {
        auto &src = a_to_b ? grid_a : grid_b;
        auto &dst = a_to_b ? grid_b : grid_a;
        std::size_t w = p_.row_width;
        // Sample one lane of each 64B block: the neighbouring lanes
        // share the block so a per-element walk would only inflate
        // trace length without changing the block-level stream.
        for (std::size_t i = w; i + w < p_.grid_elems; i += 8) {
            auto c = src.get(pcs.pc(0), i);
            auto l = src.get(pcs.pc(1), i - 8);
            auto r = src.get(pcs.pc(2), i + 8);
            auto u = src.get(pcs.pc(3), i - w);
            auto d = src.get(pcs.pc(4), i + w);
            dst.set(pcs.pc(5), i, (c * 4 + l + r + u + d) / 8);
            if ((i & 8191) == 0
                && budgetDone(trace, start, p_.target_accesses)) {
                return;
            }
        }
        a_to_b = !a_to_b;
    }
}

void
StreamingKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    std::size_t start = trace.size();

    TracedArray<std::uint64_t> gates(mem, p_.elems, 1);

    while (!budgetDone(trace, start, p_.target_accesses)) {
        // One gate application: read-modify-write sweep. The cyclic
        // reuse distance equals the array size, so LRU re-misses the
        // whole array while MIN pins a capacity-sized prefix.
        for (std::size_t i = 0; i < p_.elems; i += 8) {
            auto v = gates.get(pcs.pc(0), i);
            gates.set(pcs.pc(1), i, v ^ (v << 1) ^ 0x5ull);
            if ((i & 8191) == 0
                && budgetDone(trace, start, p_.target_accesses)) {
                return;
            }
        }
    }
}

void
CompressionKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    std::size_t start = trace.size();

    TracedArray<std::uint64_t> input(mem, p_.input_elems);
    TracedArray<std::uint64_t> hash_tab(mem, p_.hash_entries);

    for (std::size_t i = 0; i < p_.input_elems; ++i)
        input.raw(i) = rng.below(1u << 16);

    while (!budgetDone(trace, start, p_.target_accesses)) {
        for (std::size_t i = 0; i + 8 < p_.input_elems; i += 2) {
            auto tok = input.get(pcs.pc(0), i);
            auto slot = hashInto(tok ^ (i >> 3), p_.hash_entries);
            auto prev = hash_tab.get(pcs.pc(1), slot);
            // Slots store i + 1 so 0 is a true "never filled"
            // sentinel: index 0 is a legal match position, and the
            // old `set(slot, i)` encoding made any slot written at
            // i == 0 read as empty forever, silently disabling its
            // back-reference path.
            hash_tab.set(pcs.pc(2), slot, i + 1);
            if (prev != 0 && rng.chance(0.3)) {
                // Back-reference: re-read a recent window position,
                // Zipf-near offsets so the sliding window stays warm.
                std::size_t off =
                    1 + zipfDraw(rng, std::min<std::size_t>(i, 30'000),
                                 p_.zipf_s);
                if (off <= i)
                    input.get(pcs.pc(3), i - off);
            }
            if ((i & 4095) == 0
                && budgetDone(trace, start, p_.target_accesses)) {
                return;
            }
        }
    }
}

void
TreeWalkKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    std::size_t start = trace.size();

    // Two 64B blocks per node (key block + payload block), each
    // visited by its own call site: together with the two caller
    // sites per walk mode this puts six unique PCs into the LLC
    // stream per mode switch, so a k=5 PCHR flushes stale markers.
    TracedArray<std::uint64_t> nodes(mem, p_.node_count * 16);
    std::vector<std::uint32_t> left(p_.node_count, 0);
    std::vector<std::uint32_t> right(p_.node_count, 0);

    // Random binary topology. Nodes [0, hot_nodes) form the hot
    // subtree (built first so the subtree is closed under children);
    // the remainder hangs below it.
    auto build = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo + 1; i < hi; ++i) {
            std::size_t parent = lo + rng.below(i - lo);
            if (left[parent] == 0)
                left[parent] = static_cast<std::uint32_t>(i);
            else if (right[parent] == 0)
                right[parent] = static_cast<std::uint32_t>(i);
            else if (rng.chance(0.5))
                left[static_cast<std::size_t>(left[parent])] =
                    static_cast<std::uint32_t>(i);
            else
                right[static_cast<std::size_t>(right[parent])] =
                    static_cast<std::uint32_t>(i);
        }
    };
    build(0, p_.hot_nodes);
    build(p_.hot_nodes, p_.node_count);

    // Per-mode caller buffers, cycled sequentially and larger than
    // the L2, so the caller PCs appear in the LLC access stream (the
    // context feature the history-based predictors need).
    TracedArray<std::uint64_t> hot_buf(mem, p_.caller_buf_elems);
    TracedArray<std::uint64_t> cold_buf(mem, p_.caller_buf_elems);
    std::size_t hot_cursor = 0, cold_cursor = 0;

    // Marker call sites are chosen so their 4-bit predictor-feature
    // hashes are pairwise distinct and distinct from the visit PCs'.
    // A real program has dozens of PCs carrying the same context, so
    // a single hash collision is harmless there; this synthetic
    // kernel concentrates all context in two PCs per mode, and a
    // degenerate collision would erase the signal the experiment is
    // about rather than model anything physical.
    std::uint64_t marker_pc[4];
    {
        bool used[16] = {};
        used[hashBits(pcs.pc(3), 4)] = true;
        used[hashBits(pcs.pc(4), 4)] = true;
        int found = 0;
        for (std::uint32_t site = 6; site < 64 && found < 4; ++site) {
            auto slot = hashBits(pcs.pc(site), 4);
            if (!used[slot]) {
                used[slot] = true;
                marker_pc[found++] = pcs.pc(site);
            }
        }
    }

    while (!budgetDone(trace, start, p_.target_accesses)) {
        bool hot = rng.chance(p_.hot_fraction);
        // Caller context: each walk mode runs its own setup code over
        // its own working buffer before descending the tree. Two
        // distinct call sites per mode ensure a k=5 PCHR flushes the
        // previous walk's markers (the visit loop below contributes
        // only three more unique PCs).
        // The two reads sit half a buffer apart so neither line was
        // recently touched: both marker PCs must miss the private
        // levels and appear in the LLC stream every walk.
        if (hot) {
            hot_buf.get(marker_pc[0],
                        (hot_cursor += 8) % p_.caller_buf_elems);
            hot_buf.get(marker_pc[1],
                        (hot_cursor + p_.caller_buf_elems / 2)
                            % p_.caller_buf_elems);
        } else {
            cold_buf.get(marker_pc[2],
                         (cold_cursor += 8) % p_.caller_buf_elems);
            cold_buf.get(marker_pc[3],
                         (cold_cursor + p_.caller_buf_elems / 2)
                             % p_.caller_buf_elems);
        }
        // Each query visits a chain of nodes uniformly spread over
        // the mode's region (hash-consed lookups: the child pointer
        // is read, but the next node comes from the query stream).
        // Uniform visits keep the regions' reuse structure clean:
        // the hot region is sized so that, interleaved with cold
        // pollution, LRU thrashes on it while OPT retains it.
        std::size_t region_lo = hot ? 0 : p_.hot_nodes;
        std::size_t region_n = hot ? p_.hot_nodes
                                   : p_.node_count - p_.hot_nodes;
        for (int depth = 0; depth < 15; ++depth) {
            std::size_t v = region_lo + rng.below(region_n);
            auto key = nodes.get(pcs.pc(3), v * 16);
            auto payload = nodes.get(pcs.pc(4), v * 16 + 8);
            (void)key;
            (void)payload;
            (void)left;
            (void)right;
        }
        if (budgetDone(trace, start, p_.target_accesses))
            return;
    }
}

} // namespace workloads
} // namespace glider
