#include "registry.hh"

#include <cstdio>
#include <filesystem>
#include <mutex>
#include <unordered_set>

#include <unistd.h>

#include "common/env_registry.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "traces/gtrace.hh"
#include "traces/trace_cache.hh"
#include "graph_kernels.hh"
#include "scenario_kernels.hh"
#include "scheduler_kernel.hh"
#include "spec_kernels.hh"

namespace glider {
namespace workloads {

namespace {

/** Kernel family selector for the registry table. */
enum class Family
{
    NetworkSimplex,
    Scheduler,
    SparseSolver,
    ScoreTable,
    GridSearch,
    Stencil,
    Streaming,
    Compression,
    TreeWalk,
    Graph,
    PhaseShift,
    ScanFlood,
    MultiTenant,
    ZipfStream,
};

struct Entry
{
    const char *name;
    Suite suite;
    Family family;
    //! Family-specific size knob: grid/array elems, vertices, nodes...
    std::size_t scale;
    //! For Family::Graph: which algorithm.
    GraphAlgo algo;
};

/**
 * The registry table. kernel_id (PC namespace) is the index into this
 * table, so PCs are stable across runs and disjoint across workloads.
 * `scale` diversifies working-set sizes within a family so same-family
 * benchmarks still behave differently at the LLC.
 */
const Entry kTable[] = {
    // SPEC CPU2006
    {"astar", Suite::Spec2006, Family::GridSearch, 1024, GraphAlgo::Bfs},
    {"bwaves", Suite::Spec2006, Family::Stencil, 330'000, GraphAlgo::Bfs},
    {"bzip2", Suite::Spec2006, Family::Compression, 800'000,
     GraphAlgo::Bfs},
    {"cactusADM", Suite::Spec2006, Family::Stencil, 260'000,
     GraphAlgo::Bfs},
    {"calculix", Suite::Spec2006, Family::SparseSolver, 36'000,
     GraphAlgo::Bfs},
    {"gcc", Suite::Spec2006, Family::TreeWalk, 350'000, GraphAlgo::Bfs},
    {"GemsFDTD", Suite::Spec2006, Family::Stencil, 420'000,
     GraphAlgo::Bfs},
    {"lbm", Suite::Spec2006, Family::Stencil, 380'000, GraphAlgo::Bfs},
    {"leslie3d", Suite::Spec2006, Family::Stencil, 240'000,
     GraphAlgo::Bfs},
    {"libquantum", Suite::Spec2006, Family::Streaming, 1'000'000,
     GraphAlgo::Bfs},
    {"mcf", Suite::Spec2006, Family::NetworkSimplex, 1'200'000,
     GraphAlgo::Bfs},
    {"milc", Suite::Spec2006, Family::Stencil, 300'000, GraphAlgo::Bfs},
    {"omnetpp", Suite::Spec2006, Family::Scheduler, 262'144,
     GraphAlgo::Bfs},
    {"soplex", Suite::Spec2006, Family::SparseSolver, 44'000,
     GraphAlgo::Bfs},
    {"sphinx3", Suite::Spec2006, Family::ScoreTable, 4096, GraphAlgo::Bfs},
    {"tonto", Suite::Spec2006, Family::SparseSolver, 30'000,
     GraphAlgo::Bfs},
    {"wrf", Suite::Spec2006, Family::Stencil, 280'000, GraphAlgo::Bfs},
    {"xalancbmk", Suite::Spec2006, Family::TreeWalk, 500'000,
     GraphAlgo::Bfs},
    {"zeusmp", Suite::Spec2006, Family::Stencil, 310'000,
     GraphAlgo::Bfs},
    // SPEC CPU2017
    {"603.bwaves", Suite::Spec2017, Family::Stencil, 350'000,
     GraphAlgo::Bfs},
    {"605.mcf", Suite::Spec2017, Family::NetworkSimplex, 1'500'000,
     GraphAlgo::Bfs},
    {"619.lbm", Suite::Spec2017, Family::Stencil, 400'000,
     GraphAlgo::Bfs},
    {"620.omnetpp", Suite::Spec2017, Family::Scheduler, 320'000,
     GraphAlgo::Bfs},
    {"621.wrf", Suite::Spec2017, Family::Stencil, 270'000,
     GraphAlgo::Bfs},
    {"627.cam4", Suite::Spec2017, Family::Stencil, 290'000,
     GraphAlgo::Bfs},
    {"628.pop2", Suite::Spec2017, Family::Stencil, 250'000,
     GraphAlgo::Bfs},
    {"649.fotonik3d", Suite::Spec2017, Family::Stencil, 360'000,
     GraphAlgo::Bfs},
    {"654.roms", Suite::Spec2017, Family::Stencil, 320'000,
     GraphAlgo::Bfs},
    {"657.xz", Suite::Spec2017, Family::Compression, 1'000'000,
     GraphAlgo::Bfs},
    // GAP
    {"bc", Suite::Gap, Family::Graph, 300'000, GraphAlgo::Betweenness},
    {"bfs", Suite::Gap, Family::Graph, 400'000, GraphAlgo::Bfs},
    {"cc", Suite::Gap, Family::Graph, 250'000, GraphAlgo::Components},
    {"pr", Suite::Gap, Family::Graph, 150'000, GraphAlgo::PageRank},
    {"sssp", Suite::Gap, Family::Graph, 90'000, GraphAlgo::Sssp},
    {"tc", Suite::Gap, Family::Graph, 120'000, GraphAlgo::TriangleCount},
    // Adversarial scenario matrix (policy zoo; appended so existing
    // kernel_ids — and with them every PC namespace — stay stable).
    {"adv.phase", Suite::Adversarial, Family::PhaseShift, 600'000,
     GraphAlgo::Bfs},
    {"adv.scanflood", Suite::Adversarial, Family::ScanFlood, 500'000,
     GraphAlgo::Bfs},
    {"adv.multitenant", Suite::Adversarial, Family::MultiTenant,
     400'000, GraphAlgo::Bfs},
    {"adv.zipf", Suite::Adversarial, Family::ZipfStream, 1'000'000,
     GraphAlgo::Bfs},
};

constexpr std::size_t kTableSize = sizeof(kTable) / sizeof(kTable[0]);

const Entry &
find(const std::string &name)
{
    for (const auto &e : kTable) {
        if (name == e.name)
            return e;
    }
    GLIDER_FATAL("unknown workload: " + name);
}

std::uint32_t
indexOf(const Entry &e)
{
    return static_cast<std::uint32_t>(&e - kTable);
}

} // namespace

std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names;
    names.reserve(kTableSize);
    for (const auto &e : kTable)
        names.emplace_back(e.name);
    return names;
}

std::vector<std::string>
figure11Workloads()
{
    // Figure 11/12's 33 workloads: the paper suites minus 628.pop2
    // and 657.xz (which only appear in the Figure 10 accuracy study).
    // Suite-based so appending scenario entries to kTable never
    // perturbs the paper figures.
    std::vector<std::string> names;
    for (const auto &e : kTable) {
        if (e.suite == Suite::Adversarial)
            continue;
        std::string n = e.name;
        if (n != "628.pop2" && n != "657.xz")
            names.push_back(n);
    }
    return names;
}

std::vector<std::string>
scenarioWorkloads()
{
    std::vector<std::string> names;
    for (const auto &e : kTable) {
        if (e.suite == Suite::Adversarial)
            names.emplace_back(e.name);
    }
    return names;
}

std::vector<std::string>
figure10Workloads()
{
    return {"603.bwaves", "605.mcf", "620.omnetpp", "621.wrf",
            "628.pop2",   "654.roms", "657.xz",     "bc",
            "bfs",        "bzip2",    "cactusADM",  "cc",
            "GemsFDTD",   "lbm",      "leslie3d",   "mcf",
            "omnetpp",    "pr",       "soplex",     "sphinx3",
            "sssp",       "tc",       "wrf"};
}

std::vector<std::string>
offlineSubset()
{
    return {"mcf", "omnetpp", "soplex", "sphinx3", "astar", "lbm"};
}

Suite
suiteOf(const std::string &name)
{
    return find(name).suite;
}

std::unique_ptr<Kernel>
makeWorkload(const std::string &name, std::uint64_t target_accesses)
{
    const Entry &e = find(name);
    std::uint32_t id = indexOf(e);
    // Seed differs per workload so same-family benchmarks diverge.
    std::uint64_t seed = 0xC0FFEEull + id * 7919;

    switch (e.family) {
      case Family::NetworkSimplex: {
        NetworkSimplexKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.nodes = e.scale;
        return std::make_unique<NetworkSimplexKernel>(p);
      }
      case Family::Scheduler: {
        SchedulerKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.big_pool_msgs = e.scale;
        return std::make_unique<SchedulerKernel>(p);
      }
      case Family::SparseSolver: {
        SparseSolverKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.rows = e.scale;
        p.vec_elems = e.scale;
        return std::make_unique<SparseSolverKernel>(p);
      }
      case Family::ScoreTable: {
        ScoreTableKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.tables = e.scale;
        return std::make_unique<ScoreTableKernel>(p);
      }
      case Family::GridSearch: {
        GridSearchKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.width = e.scale;
        p.height = e.scale;
        return std::make_unique<GridSearchKernel>(p);
      }
      case Family::Stencil: {
        StencilKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.grid_elems = e.scale;
        return std::make_unique<StencilKernel>(p);
      }
      case Family::Streaming: {
        StreamingKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.elems = e.scale;
        return std::make_unique<StreamingKernel>(p);
      }
      case Family::Compression: {
        CompressionKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.input_elems = e.scale;
        return std::make_unique<CompressionKernel>(p);
      }
      case Family::TreeWalk: {
        TreeWalkKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.node_count = e.scale;
        return std::make_unique<TreeWalkKernel>(p);
      }
      case Family::Graph: {
        GraphKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.vertices = e.scale;
        p.algo = e.algo;
        return std::make_unique<GraphKernel>(p);
      }
      case Family::PhaseShift: {
        PhaseShiftKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.stream_elems = e.scale;
        return std::make_unique<PhaseShiftKernel>(p);
      }
      case Family::ScanFlood: {
        ScanFloodKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.flood_elems = e.scale;
        return std::make_unique<ScanFloodKernel>(p);
      }
      case Family::MultiTenant: {
        MultiTenantKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.stream_elems = e.scale;
        return std::make_unique<MultiTenantKernel>(p);
      }
      case Family::ZipfStream: {
        ZipfStreamKernel::Params p;
        p.name = name;
        p.kernel_id = id;
        p.seed = seed;
        p.target_accesses = target_accesses;
        p.objects = e.scale;
        return std::make_unique<ZipfStreamKernel>(p);
      }
    }
    GLIDER_PANIC("unreachable workload family");
}

const traces::Trace &
cachedTrace(const std::string &name, std::uint64_t target_accesses)
{
    // Process-wide: all benches, tests, and sweep workers share one
    // generation per (name, length). Distinct traces can build
    // concurrently; only same-key requests wait on each other.
    static traces::TraceCache cache(
        [](const std::string &n, std::uint64_t accesses,
           traces::Trace &out) {
            out.setName(n);
            makeWorkload(n, accesses)->run(out);
        });
    return cache.get(name, target_accesses);
}

std::uint64_t
traceFingerprint(const std::string &name, std::uint64_t target_accesses)
{
    // Everything the generated stream is a function of: the kernel's
    // emission logic (kGeneratorVersion), its identity + parameters
    // (the name, which fixes the table entry, scale, and seed), and
    // the access budget.
    std::uint64_t h = mix64(0x67747263ull ^ kGeneratorVersion);
    for (unsigned char c : name)
        h = hashCombine(h, c);
    return hashCombine(h, target_accesses);
}

bool
traceSpillEnabled()
{
    return env::flag(env::Knob::TraceSpill);
}

std::string
traceSpillDir()
{
    return env::str(env::Knob::TraceDir);
}

std::string
spillPath(const std::string &name, std::uint64_t target_accesses)
{
    char fp[17];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(
                      traceFingerprint(name, target_accesses)));
    return traceSpillDir() + "/" + name + "."
        + std::to_string(target_accesses) + "." + fp + ".gtrace";
}

std::string
ensureSpilledTrace(const std::string &name,
                   std::uint64_t target_accesses)
{
    std::string path = spillPath(name, target_accesses);

    // In-process once-guard: validate or generate each path only once
    // per process, no matter how many cells stream it.
    static std::mutex mu;
    static std::unordered_set<std::string> ready;
    std::lock_guard<std::mutex> lock(mu);
    if (ready.count(path) != 0)
        return path;

    auto valid = [&] {
        traces::StreamingTrace t;
        return t.open(path) && t.name() == name
            && t.size() >= target_accesses;
    };
    if (!valid()) {
        std::error_code ec;
        std::filesystem::create_directories(traceSpillDir(), ec);
        // Stage under a per-process temp name, then rename into place:
        // a crashed or concurrent generator can never leave a partial
        // file at the final path, and racing workers produce
        // byte-identical content (the generator is deterministic), so
        // last-rename-wins is correct.
        std::string tmp = path + ".tmp." + std::to_string(::getpid());
        traces::GtraceWriter writer;
        if (!writer.open(tmp, name))
            GLIDER_FATAL("cannot create spill file " + tmp);
        traces::GtraceSink sink(writer);
        makeWorkload(name, target_accesses)->run(sink);
        if (!writer.finish())
            GLIDER_FATAL("write error spilling " + tmp);
        std::filesystem::rename(tmp, path, ec);
        if (ec)
            GLIDER_FATAL("cannot publish spill file " + path + ": "
                         + ec.message());
        if (!valid())
            GLIDER_FATAL("spilled trace failed validation: " + path);
    }
    ready.insert(path);
    return path;
}

} // namespace workloads
} // namespace glider
