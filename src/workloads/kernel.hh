/**
 * @file
 * Base interface for workload kernels: algorithms instrumented to emit
 * memory-access traces (see recording_memory.hh for the rationale).
 */

#ifndef GLIDER_WORKLOADS_KERNEL_HH
#define GLIDER_WORKLOADS_KERNEL_HH

#include <cstdint>
#include <memory>
#include <string>

#include "traces/sink.hh"

namespace glider {
namespace workloads {

/**
 * A runnable workload. Kernels are deterministic functions of their
 * construction parameters (including the RNG seed), so a given kernel
 * always emits the same trace.
 */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    /** Human-readable kernel name (used as the trace name). */
    virtual std::string name() const = 0;

    /**
     * Execute the kernel, appending roughly target_accesses records to
     * @p sink (an in-memory Trace or a streaming on-disk writer —
     * identical records either way). Kernels check the budget at
     * iteration boundaries, so the final trace may slightly exceed the
     * target.
     */
    virtual void run(traces::TraceSink &sink) = 0;
};

} // namespace workloads
} // namespace glider

#endif // GLIDER_WORKLOADS_KERNEL_HH
