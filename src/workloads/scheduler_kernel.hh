/**
 * @file
 * omnetpp-like discrete-event network-simulator kernel.
 *
 * This kernel reproduces the program structure the paper dissects in
 * §5.5 (Table 4, Figures 16/17): several caller methods —
 * scheduleEndIFGPeriod(), sendJamSignal(), scheduleEndTXPeriod() —
 * each pass a message object to a shared scheduleAt() method whose
 * load instructions (the *target PCs*) dereference the message.
 * endIFG messages come from a small recycled pool (cache-friendly);
 * jam/TX messages cycle through pools far larger than the LLC
 * (cache-averse). Whether a target PC's access is friendly therefore
 * depends on which caller (*anchor PC*) appears in the control-flow
 * history, not on the target PC itself.
 */

#ifndef GLIDER_WORKLOADS_SCHEDULER_KERNEL_HH
#define GLIDER_WORKLOADS_SCHEDULER_KERNEL_HH

#include <array>

#include "kernel.hh"
#include "recording_memory.hh"

namespace glider {
namespace workloads {

/** Discrete-event scheduler with context-dependent message locality. */
class SchedulerKernel : public Kernel
{
  public:
    struct Params
    {
        std::string name = "omnetpp";
        std::uint32_t kernel_id = 0;
        std::uint64_t seed = 1;
        std::uint64_t target_accesses = 2'000'000;
        std::size_t ifg_pool_msgs = 6144;     //!< ~1.5 MB (256B msgs)
        std::size_t big_pool_msgs = 262'144;  //!< ~67 MB per big pool
        std::size_t heap_capacity = 8192;     //!< future-event set
        std::size_t caller_buf_elems = 65'536; //!< 512KB per caller
        double ifg_fraction = 0.5;            //!< share of IFG events
    };

    /** Call-site indices within the kernel's PC block. */
    enum Site : std::uint32_t
    {
        SiteCallerIfg = 0,   //!< anchor PC inside scheduleEndIFGPeriod()
        SiteCallerJam = 1,   //!< marker inside sendJamSignal()
        SiteCallerTx = 2,    //!< marker inside scheduleEndTXPeriod()
        SiteTarget0 = 3,     //!< scheduleAt(): msg->setSentFrom(...)
        SiteTarget1 = 4,     //!< scheduleAt(): msg->setArrival(...)
        SiteTarget2 = 5,     //!< scheduleAt(): ev.messageSent(msg)
        SiteTarget3 = 6,     //!< scheduleAt(): msgQueue.insert(msg)
        SiteHeapRead = 7,
        SiteHeapWrite = 8,
        SitePopRead = 9,
        SiteCallerIfg2 = 10, //!< second call site in the IFG caller
        SiteCallerJam2 = 11,
        SiteCallerTx2 = 12,
    };

    explicit SchedulerKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

    /**
     * The anchor PC the paper's Table 4 identifies (the first marker
     * site inside scheduleEndIFGPeriod()); valid after run().
     */
    std::uint64_t anchorPc() const { return anchor_pc_; }

    /**
     * All six caller-marker PCs (IFG, jam, TX pairs in order);
     * valid after run().
     */
    const std::array<std::uint64_t, 6> &callerPcs() const
    {
        return caller_pcs_;
    }

    /** The four scheduleAt() target PCs of Table 4. */
    std::uint64_t targetPc(unsigned i) const
    {
        return PcBlock(p_.kernel_id).pc(SiteTarget0 + i);
    }

  private:
    /** True once the trace has grown by target_accesses. */
    bool budgetDone(const traces::TraceSink &trace, std::size_t start) const;

    Params p_;
    std::uint64_t anchor_pc_ = 0;
    std::array<std::uint64_t, 6> caller_pcs_{};
};

} // namespace workloads
} // namespace glider

#endif // GLIDER_WORKLOADS_SCHEDULER_KERNEL_HH
