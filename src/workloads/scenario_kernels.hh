/**
 * @file
 * Adversarial scenario kernels for the policy-zoo matrix (ROADMAP
 * bullet 3). Where the SPEC-like kernels imitate specific benchmarks,
 * these distil the stress patterns that separate replacement policies
 * most sharply:
 *
 *  - PhaseShiftKernel: abrupt working-set changes — a policy's learned
 *    state is periodically invalidated wholesale, punishing slow
 *    forgetters (and rewarding DecayCount-style decay).
 *  - ScanFloodKernel: a cache-resident hot set interrupted by one-shot
 *    scan floods — the classic scan-resistance test that LRU fails.
 *  - MultiTenantKernel: interleaved tenants with conflicting patterns
 *    (loop, stream, skewed table) context-switching at random-length
 *    quanta, so per-PC statistics blur across tenants.
 *  - ZipfStreamKernel: a TTLCacheNet-style CDN request stream — exact
 *    Zipf popularity (common/zipf.hh) over a large object space with
 *    epochal popularity drift.
 *
 * All four are deterministic functions of their parameters, share the
 * KernelParams plumbing of the SPEC-like kernels, and live in the same
 * registry PC namespace scheme (kernel_id-indexed PcBlock).
 */

#ifndef GLIDER_WORKLOADS_SCENARIO_KERNELS_HH
#define GLIDER_WORKLOADS_SCENARIO_KERNELS_HH

#include <cstdint>
#include <string>

#include "kernel.hh"
#include "recording_memory.hh"
#include "spec_kernels.hh" // KernelParams

namespace glider {
namespace workloads {

/**
 * Phase-changing workload: rotates through three phases — a tight
 * loop over a hot buffer, a streaming sweep, and a skewed gather —
 * each running for a fixed access quota before switching. Every phase
 * boundary also advances the hot buffer's position, so state learned
 * in one phase is actively wrong in the next.
 */
class PhaseShiftKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t stream_elems = 600'000; //!< 8B each (~4.8 MB)
        std::size_t hot_elems = 24'576;     //!< ~192 KB, L2 < hot < LLC
        std::size_t gather_elems = 120'000; //!< skewed-gather region
        std::uint64_t phase_accesses = 40'000; //!< quota per phase
    };

    explicit PhaseShiftKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

/**
 * Scan-flood workload: a small hot set is accessed continuously
 * (skewed so even within the hot set some lines matter more);
 * periodically a one-shot scan flood sweeps a region far larger than
 * the LLC. A scan-resistant policy keeps the hot set resident through
 * the flood; recency-driven policies lose it every time.
 */
class ScanFloodKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t flood_elems = 500'000; //!< 8B each (~4 MB) per flood
        std::size_t hot_elems = 20'480;    //!< ~160 KB hot set
        std::size_t hot_rounds = 24;       //!< hot passes between floods
    };

    explicit ScanFloodKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

/**
 * Multi-tenant interference: three tenants — a loop tenant (small
 * reusable buffer), a streaming tenant (large one-shot sweeps), and a
 * table tenant (Zipf-skewed lookups) — share the cache, context-
 * switching at random-length quanta. Each tenant's accesses come from
 * its own call sites, but the interleaving makes recency and
 * frequency signals mutually polluting.
 */
class MultiTenantKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t stream_elems = 400'000; //!< streaming tenant (~3.2 MB)
        std::size_t loop_elems = 12'288;    //!< loop tenant (~96 KB)
        std::size_t table_elems = 96'000;   //!< table tenant (~768 KB)
        std::uint64_t quantum_mean = 2'000; //!< mean accesses per quantum
    };

    explicit MultiTenantKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

/**
 * Zipf request stream (after the TTLCacheNet CDN-trace setting): each
 * request draws an object rank from an exact Zipf(s) distribution
 * (common/zipf.hh) and touches that object's record plus a hashed
 * metadata slot. Every drift epoch the rank-to-object mapping
 * rotates, so yesterday's head objects decay into the tail and the
 * policy must re-learn the popular set.
 */
class ZipfStreamKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t objects = 1'000'000;  //!< object space (~8 MB)
        std::size_t ranks = 262'144;      //!< Zipf domain size
        double zipf_s = 0.9;              //!< popularity skew
        std::uint64_t drift_accesses = 150'000; //!< epoch length
    };

    explicit ZipfStreamKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

} // namespace workloads
} // namespace glider

#endif // GLIDER_WORKLOADS_SCENARIO_KERNELS_HH
