/**
 * @file
 * Instrumented memory for the synthetic workload kernels.
 *
 * The paper evaluates on SimPoint traces of SPEC 2006/2017 and GAP
 * (reference inputs), which we cannot redistribute. Instead, each
 * workload kernel *executes a real algorithm* against TracedArray
 * containers; every element access is recorded as an (PC, address)
 * pair through RecordingMemory. The PC is a stable per-call-site
 * identifier, mirroring how a static load instruction's PC tags every
 * dynamic access it issues.
 */

#ifndef GLIDER_WORKLOADS_RECORDING_MEMORY_HH
#define GLIDER_WORKLOADS_RECORDING_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "traces/sink.hh"

namespace glider {
namespace workloads {

/**
 * Records accesses into a TraceSink and hands out non-overlapping
 * address regions via a bump allocator, mimicking a process address
 * space.
 */
class RecordingMemory
{
  public:
    explicit RecordingMemory(traces::TraceSink &sink) : sink_(&sink) {}

    /** Record a load of @p addr by static instruction @p pc. */
    void
    load(std::uint64_t pc, std::uint64_t addr)
    {
        sink_->push(pc, addr, false);
    }

    /** Record a store to @p addr by static instruction @p pc. */
    void
    store(std::uint64_t pc, std::uint64_t addr)
    {
        sink_->push(pc, addr, true);
    }

    /**
     * Reserve @p bytes of address space, 4KB-page aligned so regions
     * never share cache blocks.
     * @return base address of the region.
     */
    std::uint64_t
    allocate(std::uint64_t bytes)
    {
        constexpr std::uint64_t page = 4096;
        std::uint64_t base = brk_;
        brk_ += (bytes + page - 1) / page * page + page;
        return base;
    }

    traces::TraceSink &trace() { return *sink_; }

  private:
    traces::TraceSink *sink_;
    std::uint64_t brk_ = 0x100000000ull;
};

/**
 * A vector whose element accesses are recorded. The algorithm runs
 * for real (values are stored and returned), so access streams have
 * genuine data-dependent structure.
 */
template <typename T>
class TracedArray
{
  public:
    /** Allocate @p n elements of backing storage and address space. */
    TracedArray(RecordingMemory &mem, std::size_t n, T init = T())
        : mem_(&mem), data_(n, init),
          base_(mem.allocate(n * sizeof(T)))
    {
    }

    /** Traced load of element @p i by call site @p pc. */
    const T &
    get(std::uint64_t pc, std::size_t i)
    {
        GLIDER_ASSERT(i < data_.size());
        mem_->load(pc, base_ + i * sizeof(T));
        return data_[i];
    }

    /** Traced store of element @p i by call site @p pc. */
    void
    set(std::uint64_t pc, std::size_t i, const T &v)
    {
        GLIDER_ASSERT(i < data_.size());
        mem_->store(pc, base_ + i * sizeof(T));
        data_[i] = v;
    }

    /** Untraced access for setup/verification code. */
    T &raw(std::size_t i) { return data_[i]; }
    const T &raw(std::size_t i) const { return data_[i]; }

    std::size_t size() const { return data_.size(); }
    std::uint64_t base() const { return base_; }

  private:
    RecordingMemory *mem_;
    std::vector<T> data_;
    std::uint64_t base_;
};

/**
 * Stable PC namespace helper: each kernel gets a disjoint PC block so
 * call sites never collide across kernels mixed into one trace.
 */
class PcBlock
{
  public:
    /** @param kernel_id Disjoint id per kernel instance. */
    explicit PcBlock(std::uint32_t kernel_id)
        : base_(0x400000ull + static_cast<std::uint64_t>(kernel_id) * 0x10000ull)
    {
    }

    /** PC of call site @p site within this kernel. */
    std::uint64_t
    pc(std::uint32_t site) const
    {
        return base_ + site * 4; // x86-ish instruction spacing
    }

  private:
    std::uint64_t base_;
};

} // namespace workloads
} // namespace glider

#endif // GLIDER_WORKLOADS_RECORDING_MEMORY_HH
