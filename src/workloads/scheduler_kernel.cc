#include "scheduler_kernel.hh"

#include "common/hash.hh"
#include "common/rng.hh"

namespace glider {
namespace workloads {

void
SchedulerKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    std::size_t start = trace.size();

    // Message objects are four cache blocks each (32 x 8B fields),
    // one block per scheduleAt() target PC. Four distinct lines per
    // message (a) make the recycled pool big enough to thrash LRU
    // while still fitting an OPT-managed LLC, and (b) put enough
    // unique PCs into the LLC access stream that a k=5 PCHR flushes
    // the previous event's caller — leaving exactly the *current*
    // caller as the distinguishing context feature.
    TracedArray<std::uint64_t> ifg_pool(mem, p_.ifg_pool_msgs * 32);
    TracedArray<std::uint64_t> jam_pool(mem, p_.big_pool_msgs * 32);
    TracedArray<std::uint64_t> tx_pool(mem, p_.big_pool_msgs * 32);
    TracedArray<std::uint64_t> heap(mem, p_.heap_capacity);
    // Per-caller working buffers, cycled sequentially: larger than
    // the L2, so the caller PCs are visible in the LLC stream (an
    // L1-resident marker would never reach the replacement policy).
    TracedArray<std::uint64_t> ifg_buf(mem, p_.caller_buf_elems);
    TracedArray<std::uint64_t> jam_buf(mem, p_.caller_buf_elems);
    TracedArray<std::uint64_t> tx_buf(mem, p_.caller_buf_elems);

    std::size_t next_ifg = 0, next_jam = 0, next_tx = 0;
    std::size_t buf_ifg = 0, buf_jam = 0, buf_tx = 0;
    std::size_t heap_n = 0;

    // Caller-marker call sites with pairwise-distinct 4-bit feature
    // hashes, also distinct from the four scheduleAt() target PCs
    // (see the TreeWalk kernel for the rationale: the context here
    // is concentrated in few PCs, so degenerate feature collisions
    // would erase the signal under study rather than model anything).
    std::uint64_t caller_pc[6];
    {
        bool used[16] = {};
        for (std::uint32_t t = SiteTarget0; t <= SiteTarget3; ++t)
            used[hashBits(pcs.pc(t), 4)] = true;
        int found = 0;
        for (std::uint32_t site = 16; site < 96 && found < 6; ++site) {
            auto slot = hashBits(pcs.pc(site), 4);
            if (!used[slot]) {
                used[slot] = true;
                caller_pc[found++] = pcs.pc(site);
            }
        }
        anchor_pc_ = caller_pc[0];
        for (int i = 0; i < 6; ++i)
            caller_pcs_[i] = caller_pc[i];
    }

    // scheduleAt(t, msg): the four target load/store PCs dereference
    // the message object, then the event is pushed into the
    // future-event set (a small, heavily reused binary heap).
    auto schedule_at = [&](TracedArray<std::uint64_t> &pool,
                           std::size_t msg) {
        pool.get(pcs.pc(SiteTarget0), msg * 32);      // msg->sentFrom
        pool.set(pcs.pc(SiteTarget1), msg * 32 + 8, heap_n); // arrival
        pool.get(pcs.pc(SiteTarget2), msg * 32 + 16); // ev.messageSent
        pool.get(pcs.pc(SiteTarget3), msg * 32 + 24); // msgQueue.insert
        if (heap_n + 1 < p_.heap_capacity) {
            std::size_t i = ++heap_n;
            heap.set(pcs.pc(SiteHeapWrite), i, rng.below(1u << 20));
            while (i > 1) {
                auto parent = heap.get(pcs.pc(SiteHeapRead), i / 2);
                auto self = heap.get(pcs.pc(SiteHeapRead), i);
                if (parent <= self)
                    break;
                heap.set(pcs.pc(SiteHeapWrite), i / 2, self);
                heap.set(pcs.pc(SiteHeapWrite), i, parent);
                i /= 2;
            }
        }
    };

    while (!budgetDone(trace, start)) {
        double u = rng.uniform();
        // Each caller touches its working buffer from two distinct
        // call sites: with the four scheduleAt() targets that makes
        // six unique LLC-visible PCs per event, so a k=5 PCHR always
        // flushes at least the leading marker of the previous caller
        // — the first marker PC of each pair is then present iff its
        // caller issued the current event.
        if (u < p_.ifg_fraction) {
            // scheduleEndIFGPeriod(): recycled small pool — the loads
            // below will be re-touched soon, so OPT caches them.
            ifg_buf.get(caller_pc[0],
                        (buf_ifg += 8) % p_.caller_buf_elems);
            ifg_buf.get(caller_pc[1],
                        (buf_ifg + p_.caller_buf_elems / 2)
                            % p_.caller_buf_elems);
            std::size_t msg = next_ifg++ % p_.ifg_pool_msgs;
            schedule_at(ifg_pool, msg);
        } else if (u < p_.ifg_fraction + (1.0 - p_.ifg_fraction) / 2) {
            // sendJamSignal(): fresh message from a huge pool — the
            // object will not be touched again for an entire pool
            // cycle, so OPT declines to cache it.
            jam_buf.get(caller_pc[2],
                        (buf_jam += 8) % p_.caller_buf_elems);
            jam_buf.get(caller_pc[3],
                        (buf_jam + p_.caller_buf_elems / 2)
                            % p_.caller_buf_elems);
            std::size_t msg = next_jam++ % p_.big_pool_msgs;
            schedule_at(jam_pool, msg);
        } else {
            // scheduleEndTXPeriod(): likewise cache-averse.
            tx_buf.get(caller_pc[4],
                       (buf_tx += 8) % p_.caller_buf_elems);
            tx_buf.get(caller_pc[5],
                       (buf_tx + p_.caller_buf_elems / 2)
                           % p_.caller_buf_elems);
            std::size_t msg = next_tx++ % p_.big_pool_msgs;
            schedule_at(tx_pool, msg);
        }

        // Drain a few events so the heap stays small and hot.
        if (heap_n > 4) {
            heap.get(pcs.pc(SitePopRead), 1);
            auto last = heap.get(pcs.pc(SitePopRead), heap_n--);
            heap.set(pcs.pc(SiteHeapWrite), 1, last);
        }
    }
}

bool
SchedulerKernel::budgetDone(const traces::TraceSink &trace,
                             std::size_t start) const
{
    return trace.size() - start >= p_.target_accesses;
}

} // namespace workloads
} // namespace glider
