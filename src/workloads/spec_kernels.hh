/**
 * @file
 * Kernel families imitating the access structure of the SPEC CPU2006
 * and SPEC CPU2017 benchmarks the paper evaluates on. Each family
 * executes a real (simplified) algorithm; parameters control working
 * set sizes so that the mix of cache-friendly and cache-averse access
 * streams at the LLC resembles the named benchmark.
 *
 * The recurring structural elements are:
 *  - cyclic sweeps over a working set larger than the LLC (LRU gets no
 *    hits; Belady retains a capacity-sized subset — the pattern where
 *    learning-based policies beat LRU the most);
 *  - a "hot" region between L2 and LLC size that smart policies must
 *    protect from streaming pollution;
 *  - per-PC behavioural bias, plus a fraction of shared call sites
 *    whose behaviour depends on calling context (control-flow
 *    history), which is exactly the signal Glider/LSTM exploit and a
 *    single-PC counter (Hawkeye) cannot.
 */

#ifndef GLIDER_WORKLOADS_SPEC_KERNELS_HH
#define GLIDER_WORKLOADS_SPEC_KERNELS_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "kernel.hh"
#include "recording_memory.hh"

namespace glider {
namespace workloads {

/** Common knobs shared by all SPEC-like kernels. */
struct KernelParams
{
    std::string name;          //!< workload name (e.g. "mcf")
    std::uint32_t kernel_id = 0; //!< disjoint PC-namespace id
    std::uint64_t seed = 1;    //!< RNG seed
    std::uint64_t target_accesses = 2'000'000;
};

/**
 * mcf-like network-simplex kernel: streaming sweeps over a large arc
 * array, data-dependent accesses to node records, and pointer chasing
 * along a hot spanning-tree path.
 */
class NetworkSimplexKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t nodes = 1'200'000;  //!< 8B potentials (~9.6 MB)
        std::size_t arcs = 80'000;      //!< 3 x 8B fields (~1.9 MB);
                                        //!< one pricing pass ~0.5M
                                        //!< accesses, so a 2M trace
                                        //!< spans several passes
        std::size_t hot_tree = 12'000;  //!< nodes in the hot path set
    };

    explicit NetworkSimplexKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

/**
 * soplex/calculix-like sparse-solver kernel: CSR sparse
 * matrix-vector products with gathers into a mid-sized dense vector.
 */
class SparseSolverKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t rows = 40'000;
        std::size_t nnz_per_row = 8;
        std::size_t vec_elems = 40'000; //!< 8B each (~0.3 MB hot)
    };

    explicit SparseSolverKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

/**
 * sphinx3-like acoustic-scoring kernel: per-frame feature streams
 * scored against senone tables drawn from a Zipf distribution, giving
 * hot (friendly) and cold (averse) table halves behind shared scoring
 * call sites.
 */
class ScoreTableKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t tables = 4096;       //!< senone tables
        std::size_t table_elems = 512;   //!< 8B elems => 4KB per table
        std::size_t frame_elems = 512;   //!< feature vector per frame
        double zipf_s = 0.9;             //!< table popularity skew
    };

    explicit ScoreTableKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

/**
 * astar-like grid-search kernel: weighted-grid best-first search with
 * a small open-list heap (friendly) over large occupancy/score grids
 * (averse with spatial locality).
 */
class GridSearchKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t width = 1024;
        std::size_t height = 1024;   //!< ~8 MB of 8B cells
        std::size_t route_pairs = 8; //!< recurring start/goal pairs
    };

    explicit GridSearchKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

/**
 * lbm/bwaves/zeusmp-like stencil kernel: alternating sweeps over two
 * large grids. With grid_bytes far above LLC size this is the classic
 * streaming/thrashing pattern.
 */
class StencilKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t grid_elems = 2'000'000; //!< 8B cells (~16 MB/grid)
        std::size_t row_width = 2000;       //!< for the ±W neighbours
    };

    explicit StencilKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

/**
 * libquantum-like streaming kernel: repeated full sweeps over a single
 * array a few times LLC size — Belady keeps a capacity-sized prefix
 * resident while LRU gets zero reuse hits.
 */
class StreamingKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t elems = 1'000'000; //!< 8B each (~8 MB)
    };

    explicit StreamingKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

/**
 * bzip2/xz-like compression kernel: sequential input scan, hashed
 * match-table probes, and Zipf-distributed back-reference copies into
 * a sliding window.
 */
class CompressionKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t input_elems = 1'500'000; //!< 8B tokens (~12 MB)
        std::size_t hash_entries = 196'608;  //!< 8B each (~1.5 MB)
        double zipf_s = 1.1;                 //!< back-reference skew
    };

    explicit CompressionKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

/**
 * gcc/xalancbmk-like tree-walk kernel: repeated traversals of a
 * pointer-linked tree where a hot subtree absorbs most visits behind
 * the same traversal call sites that also walk the cold remainder —
 * context (the path taken into the subtree) predicts cacheability.
 */
class TreeWalkKernel : public Kernel
{
  public:
    struct Params : KernelParams
    {
        std::size_t node_count = 400'000; //!< 128B nodes (~51 MB)
        std::size_t hot_nodes = 9'000;    //!< hot region (~1.1 MB)
        double hot_fraction = 0.5;        //!< share of walks that stay hot
        std::size_t caller_buf_elems = 65'536; //!< 512KB per walk mode
    };

    explicit TreeWalkKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

/** Draw a Zipf(s)-distributed index in [0, n) using inverse CDF. */
std::size_t zipfDraw(Rng &rng, std::size_t n, double s);

} // namespace workloads
} // namespace glider

#endif // GLIDER_WORKLOADS_SPEC_KERNELS_HH
