/**
 * @file
 * GAP-benchmark-style graph kernels (bfs, pr, cc, bc, sssp, tc)
 * executed over synthetic power-law graphs in CSR form.
 *
 * The defining access structure of graph analytics — sequential scans
 * of offset/edge arrays combined with scattered, degree-skewed gathers
 * into per-vertex property arrays — emerges naturally from executing
 * the real algorithms over the generated topology.
 */

#ifndef GLIDER_WORKLOADS_GRAPH_KERNELS_HH
#define GLIDER_WORKLOADS_GRAPH_KERNELS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "kernel.hh"
#include "recording_memory.hh"

namespace glider {
namespace workloads {

/** A CSR graph with power-law-ish degree distribution. */
struct CsrGraph
{
    std::vector<std::uint32_t> offsets; //!< size |V|+1
    std::vector<std::uint32_t> targets; //!< size |E|

    std::size_t numVertices() const { return offsets.size() - 1; }
    std::size_t numEdges() const { return targets.size(); }
};

/**
 * Build a graph whose edge endpoints are drawn from a power-law
 * distribution (preferential-attachment flavour), then sorted into
 * CSR. Deterministic in (vertices, avg_degree, seed).
 */
CsrGraph buildPowerLawGraph(std::size_t vertices, std::size_t avg_degree,
                            std::uint64_t seed);

/** Which GAP kernel to run. */
enum class GraphAlgo { Bfs, PageRank, Components, Betweenness, Sssp,
                       TriangleCount };

/** One GAP kernel over a synthetic graph. */
class GraphKernel : public Kernel
{
  public:
    struct Params
    {
        std::string name = "bfs";
        std::uint32_t kernel_id = 0;
        std::uint64_t seed = 1;
        std::uint64_t target_accesses = 2'000'000;
        GraphAlgo algo = GraphAlgo::Bfs;
        std::size_t vertices = 600'000;
        std::size_t avg_degree = 10;
    };

    explicit GraphKernel(Params p) : p_(std::move(p)) {}
    std::string name() const override { return p_.name; }
    void run(traces::TraceSink &sink) override;

  private:
    Params p_;
};

} // namespace workloads
} // namespace glider

#endif // GLIDER_WORKLOADS_GRAPH_KERNELS_HH
