#include "scenario_kernels.hh"

#include "common/hash.hh"
#include "common/rng.hh"
#include "common/zipf.hh"

namespace glider {
namespace workloads {

namespace {

/** True once @p target accesses have been appended since @p start. */
bool
budgetDone(const traces::TraceSink &trace, std::size_t start,
           std::uint64_t target)
{
    return trace.size() - start >= target;
}

} // namespace

void
PhaseShiftKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    std::size_t start = trace.size();

    TracedArray<std::uint64_t> stream(mem, p_.stream_elems, 1);
    TracedArray<std::uint64_t> gather(mem, p_.gather_elems, 1);
    // The hot buffer covers the whole stream region; each phase epoch
    // uses a different hot window inside it, so "hot" addresses learned
    // in one epoch are plain streaming traffic in the next.
    std::uint64_t epoch = 0;
    std::size_t stream_pos = 0;

    while (!budgetDone(trace, start, p_.target_accesses)) {
        std::size_t hot_base =
            (epoch * p_.hot_elems * 7) % (p_.stream_elems - p_.hot_elems);
        std::size_t quota_start = trace.size();

        // Phase 0: tight reuse loop over the current hot window.
        while (trace.size() - quota_start < p_.phase_accesses
               && !budgetDone(trace, start, p_.target_accesses)) {
            for (std::size_t i = 0; i < p_.hot_elems; i += 8) {
                auto v = stream.get(pcs.pc(0), hot_base + i);
                stream.set(pcs.pc(1), hot_base + i, v + epoch);
                if (trace.size() - quota_start >= p_.phase_accesses
                    || budgetDone(trace, start, p_.target_accesses)) {
                    break;
                }
            }
        }
        if (budgetDone(trace, start, p_.target_accesses))
            return;

        // Phase 1: streaming sweep continuing from where the last
        // sweep stopped — pure pollution with no short-term reuse.
        quota_start = trace.size();
        while (trace.size() - quota_start < p_.phase_accesses) {
            stream.get(pcs.pc(2), stream_pos);
            stream_pos = (stream_pos + 8) % p_.stream_elems;
            if (budgetDone(trace, start, p_.target_accesses))
                return;
        }

        // Phase 2: skewed gather — data-dependent indices biased
        // toward an epoch-rotating head of the gather region.
        quota_start = trace.size();
        while (trace.size() - quota_start < p_.phase_accesses) {
            std::size_t head = (epoch * 4099) % p_.gather_elems;
            std::size_t idx = rng.chance(0.7)
                ? (head + rng.below(p_.gather_elems / 16))
                    % p_.gather_elems
                : rng.below(p_.gather_elems);
            auto v = gather.get(pcs.pc(3), idx);
            gather.set(pcs.pc(4), idx, v ^ (v >> 3) ^ epoch);
            if (budgetDone(trace, start, p_.target_accesses))
                return;
        }
        ++epoch;
    }
}

void
ScanFloodKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    std::size_t start = trace.size();

    TracedArray<std::uint64_t> hot(mem, p_.hot_elems, 1);
    TracedArray<std::uint64_t> flood(mem, p_.flood_elems, 1);

    while (!budgetDone(trace, start, p_.target_accesses)) {
        // Hot rounds: sample the hot set with a mild skew so a
        // frequency-aware policy can rank even within the hot set.
        for (std::size_t round = 0; round < p_.hot_rounds; ++round) {
            for (std::size_t i = 0; i < p_.hot_elems; i += 8) {
                std::size_t idx = rng.chance(0.5)
                    ? i / 2    // the front half gets double traffic
                    : i;
                auto v = hot.get(pcs.pc(0), idx);
                hot.set(pcs.pc(1), idx, v + round);
                if (budgetDone(trace, start, p_.target_accesses))
                    return;
            }
        }
        // The flood: one-shot sequential sweep far beyond LLC size.
        // Every line is dead on arrival — the defining bypass test.
        for (std::size_t i = 0; i < p_.flood_elems; i += 8) {
            flood.get(pcs.pc(2), i);
            if (budgetDone(trace, start, p_.target_accesses))
                return;
        }
    }
}

void
MultiTenantKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    std::size_t start = trace.size();

    TracedArray<std::uint64_t> stream(mem, p_.stream_elems, 1);
    TracedArray<std::uint64_t> loop(mem, p_.loop_elems, 1);
    TracedArray<std::uint64_t> table(mem, p_.table_elems, 1);

    std::size_t stream_pos = 0;
    std::size_t loop_pos = 0;
    std::uint32_t tenant = 0;

    while (!budgetDone(trace, start, p_.target_accesses)) {
        // Context switch: a random-length quantum for the next tenant
        // (round-robin order, exponential-ish length spread).
        std::uint64_t quantum =
            p_.quantum_mean / 2 + rng.below(p_.quantum_mean);
        std::size_t quantum_start = trace.size();

        switch (tenant) {
          case 0: // loop tenant: cache-friendly cyclic reuse
            while (trace.size() - quantum_start < quantum) {
                auto v = loop.get(pcs.pc(0), loop_pos);
                loop.set(pcs.pc(1), loop_pos, v + 1);
                loop_pos = (loop_pos + 8) % p_.loop_elems;
                if (budgetDone(trace, start, p_.target_accesses))
                    return;
            }
            break;
          case 1: // streaming tenant: pure pollution
            while (trace.size() - quantum_start < quantum) {
                stream.get(pcs.pc(2), stream_pos);
                stream_pos = (stream_pos + 8) % p_.stream_elems;
                if (budgetDone(trace, start, p_.target_accesses))
                    return;
            }
            break;
          default: // table tenant: skewed lookups, moderate reuse
            while (trace.size() - quantum_start < quantum) {
                std::size_t idx = zipfDraw(rng, p_.table_elems, 0.8);
                auto v = table.get(pcs.pc(3), idx);
                if (v % 5 == 0)
                    table.set(pcs.pc(4), idx, v + 3);
                else
                    table.set(pcs.pc(5), idx, v + 1);
                if (budgetDone(trace, start, p_.target_accesses))
                    return;
            }
            break;
        }
        tenant = (tenant + 1) % 3;
    }
}

void
ZipfStreamKernel::run(traces::TraceSink &trace)
{
    RecordingMemory mem(trace);
    PcBlock pcs(p_.kernel_id);
    Rng rng(p_.seed);
    std::size_t start = trace.size();

    TracedArray<std::uint64_t> objects(mem, p_.objects, 1);
    TracedArray<std::uint64_t> metadata(mem, p_.ranks / 4, 0);
    // Exact-CDF sampler (not the kernels' inverse-power approximation):
    // request popularity must match the analytic Zipf head mass that
    // the TTLCacheNet setting assumes.
    ZipfPicker picker(p_.ranks, p_.zipf_s);

    std::uint64_t epoch = 0;
    std::uint64_t epoch_start = trace.size();

    while (!budgetDone(trace, start, p_.target_accesses)) {
        if (trace.size() - epoch_start >= p_.drift_accesses) {
            ++epoch; // popularity drift: remap ranks to new objects
            epoch_start = trace.size();
        }
        std::size_t rank = picker.pick(rng);
        // Rank-to-object mapping rotates per epoch; the multiplier is
        // coprime with any power-of-two object count, so the hot head
        // scatters across the object space instead of clustering.
        std::size_t obj =
            (rank * 2654435761ull + epoch * 40503ull) % p_.objects;
        auto v = objects.get(pcs.pc(0), obj);
        objects.set(pcs.pc(1), obj, v + 1);
        // Metadata shard lookup: hashed by rank, so head-object
        // metadata is itself hot — a second, smaller reuse tier.
        metadata.get(pcs.pc(2), hashInto(rank, metadata.size()));
    }
}

} // namespace workloads
} // namespace glider
