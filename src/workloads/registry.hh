/**
 * @file
 * Registry of named workloads.
 *
 * The paper evaluates 33 memory-intensive applications from SPEC
 * CPU2006, SPEC CPU2017, and GAP (Figure 11/12), a 23-benchmark subset
 * for online accuracy (Figure 10), and a 6-benchmark subset for
 * offline analysis (Table 2, Figures 4–6, 9, 14, 15). This registry
 * exposes the same names, each bound to a synthetic kernel whose
 * access structure imitates the named benchmark (see DESIGN.md for
 * the substitution rationale).
 */

#ifndef GLIDER_WORKLOADS_REGISTRY_HH
#define GLIDER_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "kernel.hh"
#include "traces/trace.hh"

namespace glider {
namespace workloads {

/** Suite a workload belongs to, for Figure 11/12 suite averages. */
enum class Suite { Spec2006, Spec2017, Gap };

/** All workload names known to the registry. */
std::vector<std::string> allWorkloads();

/** The 33 names of the paper's Figure 11/12 single-core evaluation. */
std::vector<std::string> figure11Workloads();

/** The 23 names of the paper's Figure 10 online-accuracy study. */
std::vector<std::string> figure10Workloads();

/** The 6 offline-analysis names of Table 2 / Figures 4–6, 9, 14, 15. */
std::vector<std::string> offlineSubset();

/** Suite of a registered workload. Fatal on unknown names. */
Suite suiteOf(const std::string &name);

/**
 * Instantiate the kernel for @p name with the given access budget.
 * Fatal on unknown names.
 */
std::unique_ptr<Kernel> makeWorkload(const std::string &name,
                                     std::uint64_t target_accesses);

/**
 * Generate (and memoise within the process) the trace for @p name.
 * All benches share one generation per (name, length).
 */
const traces::Trace &cachedTrace(const std::string &name,
                                 std::uint64_t target_accesses);

/**
 * Bump when any kernel's emission logic changes: it keys the on-disk
 * spill fingerprint, so stale .gtrace files regenerate instead of
 * silently replaying an older generator's stream.
 */
constexpr std::uint32_t kGeneratorVersion = 1;

/**
 * Fingerprint of the deterministic generator output for
 * (name, target_accesses) at kGeneratorVersion. Identical across
 * processes, so concurrent sweep workers resolve to the same file.
 */
std::uint64_t traceFingerprint(const std::string &name,
                               std::uint64_t target_accesses);

/** True when $GLIDER_TRACE_SPILL asks benches to stream from disk. */
bool traceSpillEnabled();

/**
 * Directory holding spilled .gtrace files: $GLIDER_TRACE_DIR, or
 * "gtraces" under the current directory when unset.
 */
std::string traceSpillDir();

/**
 * Path the spilled trace for (name, target_accesses) lives at —
 * <dir>/<name>.<accesses>.<fingerprint-hex>.gtrace.
 */
std::string spillPath(const std::string &name,
                      std::uint64_t target_accesses);

/**
 * Generate-once/stream-many: return the path of a valid spilled
 * gtrace for (name, target_accesses), generating it on a miss. The
 * write is atomic (temp file + rename) and the fingerprint is in the
 * filename, so concurrent workers either reuse the file or race to
 * produce byte-identical content. An existing file that fails
 * validation (truncated copy, stale partial) is regenerated.
 * Fatal when the directory or file cannot be written.
 */
std::string ensureSpilledTrace(const std::string &name,
                               std::uint64_t target_accesses);

} // namespace workloads
} // namespace glider

#endif // GLIDER_WORKLOADS_REGISTRY_HH
