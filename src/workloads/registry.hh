/**
 * @file
 * Registry of named workloads.
 *
 * The paper evaluates 33 memory-intensive applications from SPEC
 * CPU2006, SPEC CPU2017, and GAP (Figure 11/12), a 23-benchmark subset
 * for online accuracy (Figure 10), and a 6-benchmark subset for
 * offline analysis (Table 2, Figures 4–6, 9, 14, 15). This registry
 * exposes the same names, each bound to a synthetic kernel whose
 * access structure imitates the named benchmark (see DESIGN.md for
 * the substitution rationale).
 */

#ifndef GLIDER_WORKLOADS_REGISTRY_HH
#define GLIDER_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "kernel.hh"

namespace glider {
namespace workloads {

/** Suite a workload belongs to, for Figure 11/12 suite averages. */
enum class Suite { Spec2006, Spec2017, Gap };

/** All workload names known to the registry. */
std::vector<std::string> allWorkloads();

/** The 33 names of the paper's Figure 11/12 single-core evaluation. */
std::vector<std::string> figure11Workloads();

/** The 23 names of the paper's Figure 10 online-accuracy study. */
std::vector<std::string> figure10Workloads();

/** The 6 offline-analysis names of Table 2 / Figures 4–6, 9, 14, 15. */
std::vector<std::string> offlineSubset();

/** Suite of a registered workload. Fatal on unknown names. */
Suite suiteOf(const std::string &name);

/**
 * Instantiate the kernel for @p name with the given access budget.
 * Fatal on unknown names.
 */
std::unique_ptr<Kernel> makeWorkload(const std::string &name,
                                     std::uint64_t target_accesses);

/**
 * Generate (and memoise within the process) the trace for @p name.
 * All benches share one generation per (name, length).
 */
const traces::Trace &cachedTrace(const std::string &name,
                                 std::uint64_t target_accesses);

} // namespace workloads
} // namespace glider

#endif // GLIDER_WORKLOADS_REGISTRY_HH
