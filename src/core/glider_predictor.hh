/**
 * @file
 * The Glider predictor (§4.4, Figure 8): PCHR + ISVM table + adaptive
 * training threshold, exposing the three-level prediction the
 * replacement policy maps to insertion RRPVs 0 / 2 / 7.
 */

#ifndef GLIDER_CORE_GLIDER_PREDICTOR_HH
#define GLIDER_CORE_GLIDER_PREDICTOR_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/simd.hh"
#include "isvm.hh"
#include "obs/metrics.hh"
#include "pc_history_register.hh"

namespace glider {
namespace core {

/** Configuration knobs of the Glider predictor. */
struct GliderConfig
{
    std::size_t pchr_size = 5;      //!< k unique PCs (paper: 5)
    std::size_t isvm_entries = 2048; //!< tracked PCs
    int confidence_threshold = 60;  //!< §4.4 prediction threshold
    bool adaptive_threshold = true; //!< dynamic training threshold
    int fixed_threshold = 30;       //!< used when adaptive is off
};

/**
 * Dynamic selection among the paper's fixed training-threshold set
 * {0, 30, 100, 300, 3000}. The paper does not spell out the
 * mechanism; we use epoch-based explore/exploit: each candidate is
 * trialled for one epoch of training events while its training
 * accuracy is measured, then the best candidate is used for a longer
 * exploitation phase before re-trialling. Deterministic.
 */
class AdaptiveThreshold
{
  public:
    /** Candidate thresholds from §4.4. */
    static constexpr int kCandidates[5] = {0, 30, 100, 300, 3000};

    /** Current training threshold. */
    int current() const { return kCandidates[active_]; }

    /** Times current() changed value across epoch boundaries. */
    std::uint64_t switches() const { return switches_; }

    /**
     * Complete explore/exploit state, exposed for checkpointing: a
     * restored predictor must resume the threshold schedule exactly
     * where the snapshot left it, or post-restore training diverges
     * from the uninterrupted run.
     */
    struct State
    {
        std::size_t active = 0;
        bool exploring = true;
        std::uint64_t events = 0;
        std::uint64_t correct = 0;
        std::uint64_t exploit_epochs_left = 0;
        std::array<double, 5> accuracy{};
        std::uint64_t switches = 0;
    };

    State
    state() const
    {
        State s;
        s.active = active_;
        s.exploring = exploring_;
        s.events = events_;
        s.correct = correct_;
        s.exploit_epochs_left = exploit_epochs_left_;
        for (std::size_t i = 0; i < 5; ++i)
            s.accuracy[i] = accuracy_[i];
        s.switches = switches_;
        return s;
    }

    void
    restore(const State &s)
    {
        active_ = s.active < 5 ? s.active : 0;
        exploring_ = s.exploring;
        events_ = s.events;
        correct_ = s.correct;
        exploit_epochs_left_ = s.exploit_epochs_left;
        for (std::size_t i = 0; i < 5; ++i)
            accuracy_[i] = s.accuracy[i];
        switches_ = s.switches;
    }

    /** Record one training event's correctness and advance epochs. */
    void
    record(bool prediction_correct)
    {
        int before = current();
        recordImpl(prediction_correct);
        if (current() != before)
            ++switches_;
    }

  private:
    void
    recordImpl(bool prediction_correct)
    {
        if (prediction_correct)
            ++correct_;
        ++events_;
        if (events_ < epochLength())
            return;
        // Epoch boundary: bank this candidate's accuracy.
        accuracy_[active_] =
            static_cast<double>(correct_) / static_cast<double>(events_);
        events_ = 0;
        correct_ = 0;
        if (exploring_) {
            if (++active_ >= 5) {
                // Trials done: exploit the best candidate.
                exploring_ = false;
                active_ = bestCandidate();
                exploit_epochs_left_ = kExploitEpochs;
            }
        } else if (--exploit_epochs_left_ == 0) {
            exploring_ = true;
            active_ = 0;
        }
    }

    static constexpr std::uint64_t kTrialEpoch = 512;
    static constexpr std::uint64_t kExploitEpochs = 64;

    std::uint64_t
    epochLength() const
    {
        return exploring_ ? kTrialEpoch : kTrialEpoch;
    }

    std::size_t
    bestCandidate() const
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < 5; ++i) {
            if (accuracy_[i] > accuracy_[best])
                best = i;
        }
        return best;
    }

    std::size_t active_ = 0;
    bool exploring_ = true;
    std::uint64_t events_ = 0;
    std::uint64_t correct_ = 0;
    std::uint64_t exploit_epochs_left_ = 0;
    double accuracy_[5] = {0, 0, 0, 0, 0};
    std::uint64_t switches_ = 0;
};

/** Three-level caching prediction (maps to RRPV 0 / 2 / 7). */
enum class GliderPrediction { FriendlyHigh, FriendlyLow, Averse };

/**
 * One element of a prediction batch. The feature comes either
 * pre-resolved (@p counts, e.g. the live PCHR feature or a cached
 * serving-side snapshot) or as a raw history to hash (@p history);
 * when @p counts is set, @p history is ignored.
 */
struct PredictRequest
{
    std::uint64_t pc = 0;  //!< load PC issuing the access
    std::uint8_t core = 0; //!< core whose ISVM partition to use
    std::span<const std::uint64_t> history{}; //!< PCHR contents
    const SlotCounts *counts = nullptr; //!< pre-resolved feature
};

/** One element of a prediction batch's output. */
struct Prediction
{
    int sum = 0; //!< raw ISVM decision sum
    GliderPrediction level = GliderPrediction::FriendlyLow;
};

/** The complete Glider predictor of Figure 8. */
class GliderPredictor
{
  public:
    explicit GliderPredictor(const GliderConfig &config = GliderConfig(),
                             unsigned cores = 1)
        : config_(config), table_(config.isvm_entries),
          pchr_(cores, PcHistoryRegister(config.pchr_size))
    {
    }

    /**
     * Observe an access: the PC enters the core's PCHR. Call once per
     * LLC access, *after* predicting/snapshotting for that access.
     */
    void
    observe(std::uint64_t pc, std::uint8_t core = 0)
    {
        pchr_[core].observe(pc);
    }

    /**
     * PCHR snapshot used as the feature for the current access.
     * Returned by reference (per-access path); invalidated by the
     * next observe() on the same core.
     */
    const opt::PcHistory &
    history(std::uint8_t core = 0) const
    {
        return pchr_[core].snapshot();
    }

    /**
     * Slot-count feature of the core's live PCHR. Maintained
     * incrementally by observe(); valid until the next observe() on
     * the same core (copy to retain).
     */
    const SlotCounts &
    historyCounts(std::uint8_t core = 0) const
    {
        return pchr_[core].slotCounts();
    }

    /**
     * Raw decision sum for (pc, PCHR of core). Hash-free: consumes
     * the incrementally maintained slot counts.
     */
    int
    decisionSum(std::uint64_t pc, std::uint8_t core = 0) const
    {
        return table_.forPc(pc, core).predictCounts(
            pchr_[core].slotCounts());
    }

    /** Raw decision sum for (pc, explicit history snapshot). */
    int
    decisionSumWith(std::uint64_t pc, const opt::PcHistory &history,
                    std::uint8_t core = 0) const
    {
        return table_.forPc(pc, core).predict(history);
    }

    /** Raw decision sum for (pc, pre-resolved feature). */
    int
    decisionSumCounts(std::uint64_t pc, const SlotCounts &counts,
                      std::uint8_t core = 0) const
    {
        return table_.forPc(pc, core).predictCounts(counts);
    }

    /** Map a decision sum to the three-level prediction of §4.4. */
    GliderPrediction
    classify(int sum) const
    {
        if (sum >= config_.confidence_threshold)
            return GliderPrediction::FriendlyHigh;
        if (sum < 0)
            return GliderPrediction::Averse;
        return GliderPrediction::FriendlyLow;
    }

    /** Three-level prediction against the core's live PCHR. */
    GliderPrediction
    predict(std::uint64_t pc, std::uint8_t core = 0) const
    {
        return classify(decisionSum(pc, core));
    }

    /** Three-level prediction against an explicit history snapshot. */
    GliderPrediction
    predictWith(std::uint64_t pc, const opt::PcHistory &history,
                std::uint8_t core = 0) const
    {
        return classify(decisionSumWith(pc, history, core));
    }

    /** Three-level prediction against a pre-resolved feature. */
    GliderPrediction
    predictCounts(std::uint64_t pc, const SlotCounts &counts,
                  std::uint8_t core = 0) const
    {
        return classify(decisionSumCounts(pc, counts, core));
    }

    /** Requests processed per predictMany gather chunk. */
    static constexpr std::size_t kBatchChunk = 64;

    /**
     * Batched prediction with an explicit SIMD backend: resolve every
     * request's weight row and slot-count feature, then compute the
     * 16-lane gathers + sums kBatchChunk at a time. Bit-identical to
     * calling predictWith per request, on every backend. Performs no
     * heap allocation (stack scratch only); @p out must be at least
     * as long as @p requests.
     */
    void
    predictManyWith(simd::Backend backend,
                    std::span<const PredictRequest> requests,
                    std::span<Prediction> out) const
    {
        GLIDER_ASSERT(out.size() >= requests.size());
        const std::int8_t *rows[kBatchChunk];
        alignas(64) std::uint8_t counts[kBatchChunk * kIsvmWeights];
        std::int32_t sums[kBatchChunk];
        for (std::size_t base = 0; base < requests.size();
             base += kBatchChunk) {
            std::size_t n =
                std::min(kBatchChunk, requests.size() - base);
            for (std::size_t i = 0; i < n; ++i) {
                const PredictRequest &req = requests[base + i];
                rows[i] =
                    table_.row(table_.rowIndexOf(req.pc, req.core));
                std::uint8_t *lane = counts + i * kIsvmWeights;
                if (req.counts != nullptr)
                    std::memcpy(lane, req.counts->data(),
                                kIsvmWeights);
                else
                    countSlotsInto(req.history, lane);
            }
            simd::dotRowsWith(backend, rows, counts, n, sums);
            for (std::size_t i = 0; i < n; ++i) {
                out[base + i].sum = sums[i];
                out[base + i].level = classify(sums[i]);
            }
        }
    }

    /** Batched prediction with the runtime-dispatched backend. */
    void
    predictMany(std::span<const PredictRequest> requests,
                std::span<Prediction> out) const
    {
        predictManyWith(simd::activeBackend(), requests, out);
    }

    /**
     * Train from an OPTgen label: the access at which @p history was
     * captured, issued by @p pc, should (@p opt_hit) or should not
     * have been cached. Each history PC is hashed exactly once — the
     * slot-count feature serves both the threshold check and the
     * weight update.
     */
    void
    train(std::uint64_t pc, std::uint8_t core,
          const opt::PcHistory &history, bool opt_hit)
    {
        IsvmView isvm = table_.forPc(pc, core);
        SlotCounts counts = countSlots(history);
        int sum = isvm.predictCounts(counts);
        bool was_friendly = sum >= 0;
        int threshold = config_.adaptive_threshold
            ? adaptive_.current()
            : config_.fixed_threshold;
        bool skip = opt_hit ? sum > threshold : sum < -threshold;
        if (skip) {
            ++train_skips_;
        } else {
            isvm.applyCounts(counts, opt_hit);
            ++train_updates_;
        }
        if (config_.adaptive_threshold)
            adaptive_.record(was_friendly == opt_hit);
    }

    /** Training events that moved weights / were threshold-skipped. */
    std::uint64_t trainUpdates() const { return train_updates_; }
    std::uint64_t trainSkips() const { return train_skips_; }

    const AdaptiveThreshold &adaptive() const { return adaptive_; }

    /**
     * Export training telemetry — update/skip counters, the live
     * threshold and its switch count, and the ISVM weight census —
     * into @p registry under @p prefix. Off the hot path.
     */
    void
    exportMetrics(obs::Registry &registry,
                  const std::string &prefix) const
    {
        registry.setCounter(prefix + ".train_updates", train_updates_);
        registry.setCounter(prefix + ".train_skips", train_skips_);
        int threshold = config_.adaptive_threshold
            ? adaptive_.current()
            : config_.fixed_threshold;
        registry.setGauge(prefix + ".threshold.current", threshold);
        registry.setCounter(prefix + ".threshold.switches",
                            adaptive_.switches());
        IsvmTable::WeightStats ws = table_.weightStats();
        registry.setCounter(prefix + ".isvm.weights_total", ws.total);
        registry.setCounter(prefix + ".isvm.weights_at_max", ws.at_max);
        registry.setCounter(prefix + ".isvm.weights_at_min", ws.at_min);
        registry.setCounter(prefix + ".isvm.weights_zero", ws.zero);
        registry.setGauge(prefix + ".isvm.saturation_fraction",
                          ws.saturationFraction());
        registry.setGauge(prefix + ".storage_bytes",
                          static_cast<double>(storageBytes()));
    }

    const GliderConfig &config() const { return config_; }
    const IsvmTable &table() const { return table_; }

    /** Mutable table access (checkpoint restore writes weight rows). */
    IsvmTable &table() { return table_; }

    /** Cores this predictor partitions PCHR/ISVM state across. */
    unsigned
    cores() const
    {
        return static_cast<unsigned>(pchr_.size());
    }

    /** Adaptive-threshold schedule state (checkpointing). */
    AdaptiveThreshold::State
    adaptiveState() const
    {
        return adaptive_.state();
    }

    /** Restore the adaptive-threshold schedule from a checkpoint. */
    void
    restoreAdaptive(const AdaptiveThreshold::State &s)
    {
        adaptive_.restore(s);
    }

    /** Restore the training counters from a checkpoint. */
    void
    restoreTrainCounters(std::uint64_t updates, std::uint64_t skips)
    {
        train_updates_ = updates;
        train_skips_ = skips;
    }

    /** Total predictor storage in bytes (Table 3). */
    std::size_t
    storageBytes() const
    {
        // ISVM table + one PCHR per core (k PCs at ~2 bytes of
        // hashed state each, §5.4 charges 0.1KB for the PCHR).
        return table_.storageBytes()
            + pchr_.size() * config_.pchr_size * sizeof(std::uint16_t);
    }

  private:
    GliderConfig config_;
    IsvmTable table_;
    std::vector<PcHistoryRegister> pchr_;
    AdaptiveThreshold adaptive_;
    std::uint64_t train_updates_ = 0;
    std::uint64_t train_skips_ = 0;
};

} // namespace core
} // namespace glider

#endif // GLIDER_CORE_GLIDER_PREDICTOR_HH
