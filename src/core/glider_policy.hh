/**
 * @file
 * The Glider cache replacement policy: the Hawkeye framework with the
 * ISVM-over-PCHR predictor of §4.4 in place of Hawkeye's per-PC
 * counters. Insertion priorities follow the paper exactly:
 * sum >= 60 -> RRPV 0, 0 <= sum < 60 -> RRPV 2, sum < 0 -> RRPV 7.
 */

#ifndef GLIDER_CORE_GLIDER_POLICY_HH
#define GLIDER_CORE_GLIDER_POLICY_HH

#include <array>

#include "cachesim/advice.hh"
#include "glider_predictor.hh"
#include "policies/opt_guided.hh"

namespace glider {
namespace core {

/** Glider replacement (the paper's contribution). */
class GliderPolicy : public policies::OptGuidedPolicy,
                     public sim::BatchAdviceProvider
{
  public:
    explicit GliderPolicy(const GliderConfig &config = GliderConfig())
        : config_(config)
    {
    }

    std::string name() const override { return "Glider"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        policies::OptGuidedPolicy::reset(geom);
        predictor_ = std::make_unique<GliderPredictor>(config_,
                                                       geom.cores);
    }

    /** Read access to the live predictor (for probes and tests). */
    const GliderPredictor &predictor() const { return *predictor_; }

    const sim::BatchAdviceProvider *
    adviceProvider() const override
    {
        return this;
    }

    /**
     * Batched advice against the live predictor (the serving-layer
     * query shape): each query is answered with the ISVM decision for
     * its PC under the core's *current* PCHR feature. Read-only and
     * allocation-free — chunked through predictMany's SIMD path with
     * stack scratch.
     */
    void
    serveAdviceBatch(std::span<const sim::AdviceQuery> queries,
                     std::span<sim::Advice> out) const override
    {
        GLIDER_ASSERT(predictor_ != nullptr);
        GLIDER_ASSERT(out.size() >= queries.size());
        constexpr std::size_t kChunk = GliderPredictor::kBatchChunk;
        std::array<PredictRequest, kChunk> requests;
        std::array<Prediction, kChunk> predictions;
        for (std::size_t base = 0; base < queries.size();
             base += kChunk) {
            std::size_t n = std::min(kChunk, queries.size() - base);
            for (std::size_t i = 0; i < n; ++i) {
                const sim::AdviceQuery &q = queries[base + i];
                requests[i].pc = q.pc;
                requests[i].core = q.core;
                requests[i].counts =
                    &predictor_->historyCounts(q.core);
            }
            predictor_->predictMany(
                std::span<const PredictRequest>(requests.data(), n),
                std::span<Prediction>(predictions.data(), n));
            for (std::size_t i = 0; i < n; ++i) {
                out[base + i].score = predictions[i].sum;
                switch (predictions[i].level) {
                  case GliderPrediction::FriendlyHigh:
                    out[base + i].level = sim::AdviceLevel::FriendlyHigh;
                    break;
                  case GliderPrediction::FriendlyLow:
                    out[base + i].level = sim::AdviceLevel::FriendlyLow;
                    break;
                  default:
                    out[base + i].level = sim::AdviceLevel::Averse;
                    break;
                }
            }
        }
    }

    void
    exportMetrics(obs::Registry &registry,
                  const std::string &prefix) const override
    {
        policies::OptGuidedPolicy::exportMetrics(registry, prefix);
        if (predictor_)
            predictor_->exportMetrics(registry, prefix + ".predictor");
    }

  protected:
    void
    observeAccess(const sim::ReplacementAccess &access) override
    {
        // Snapshot semantics: prediction and training feature for
        // this access both use the PCHR *before* it absorbs the
        // current PC — the control-flow context leading up to the
        // access — and the PCHR updates on every LLC access. The
        // copy-assign reuses snapshot_'s capacity (k is fixed), so
        // the warmed path stays allocation-free. The slot-count
        // feature snapshots alongside (a 16-byte copy), keeping the
        // per-access prediction hash-free.
        snapshot_ = predictor_->history(access.core);
        snapshot_counts_ = predictor_->historyCounts(access.core);
        predictor_->observe(access.pc, access.core);
    }

    Pred
    predictAccess(const sim::ReplacementAccess &access) override
    {
        switch (predictor_->predictCounts(access.pc, snapshot_counts_,
                                          access.core)) {
          case GliderPrediction::FriendlyHigh:
            return Pred::FriendlyHigh;
          case GliderPrediction::FriendlyLow:
            return Pred::FriendlyLow;
          default:
            return Pred::Averse;
        }
    }

    const opt::PcHistory &
    historySnapshot(const sim::ReplacementAccess &) override
    {
        return snapshot_;
    }

    void
    onTrainingEvent(const opt::TrainingEvent &event) override
    {
        predictor_->train(event.pc, event.core, event.history,
                          event.opt_hit);
    }

  private:
    GliderConfig config_;
    std::unique_ptr<GliderPredictor> predictor_;
    opt::PcHistory snapshot_;
    SlotCounts snapshot_counts_;
};

} // namespace core
} // namespace glider

#endif // GLIDER_CORE_GLIDER_POLICY_HH
