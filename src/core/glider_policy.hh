/**
 * @file
 * The Glider cache replacement policy: the Hawkeye framework with the
 * ISVM-over-PCHR predictor of §4.4 in place of Hawkeye's per-PC
 * counters. Insertion priorities follow the paper exactly:
 * sum >= 60 -> RRPV 0, 0 <= sum < 60 -> RRPV 2, sum < 0 -> RRPV 7.
 */

#ifndef GLIDER_CORE_GLIDER_POLICY_HH
#define GLIDER_CORE_GLIDER_POLICY_HH

#include "glider_predictor.hh"
#include "policies/opt_guided.hh"

namespace glider {
namespace core {

/** Glider replacement (the paper's contribution). */
class GliderPolicy : public policies::OptGuidedPolicy
{
  public:
    explicit GliderPolicy(const GliderConfig &config = GliderConfig())
        : config_(config)
    {
    }

    std::string name() const override { return "Glider"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        policies::OptGuidedPolicy::reset(geom);
        predictor_ = std::make_unique<GliderPredictor>(config_,
                                                       geom.cores);
    }

    /** Read access to the live predictor (for probes and tests). */
    const GliderPredictor &predictor() const { return *predictor_; }

    void
    exportMetrics(obs::Registry &registry,
                  const std::string &prefix) const override
    {
        policies::OptGuidedPolicy::exportMetrics(registry, prefix);
        if (predictor_)
            predictor_->exportMetrics(registry, prefix + ".predictor");
    }

  protected:
    void
    observeAccess(const sim::ReplacementAccess &access) override
    {
        // Snapshot semantics: prediction and training feature for
        // this access both use the PCHR *before* it absorbs the
        // current PC — the control-flow context leading up to the
        // access — and the PCHR updates on every LLC access. The
        // copy-assign reuses snapshot_'s capacity (k is fixed), so
        // the warmed path stays allocation-free.
        snapshot_ = predictor_->history(access.core);
        predictor_->observe(access.pc, access.core);
    }

    Pred
    predictAccess(const sim::ReplacementAccess &access) override
    {
        switch (predictor_->predictWith(access.pc, snapshot_,
                                        access.core)) {
          case GliderPrediction::FriendlyHigh:
            return Pred::FriendlyHigh;
          case GliderPrediction::FriendlyLow:
            return Pred::FriendlyLow;
          default:
            return Pred::Averse;
        }
    }

    const opt::PcHistory &
    historySnapshot(const sim::ReplacementAccess &) override
    {
        return snapshot_;
    }

    void
    onTrainingEvent(const opt::TrainingEvent &event) override
    {
        predictor_->train(event.pc, event.core, event.history,
                          event.opt_hit);
    }

  private:
    GliderConfig config_;
    std::unique_ptr<GliderPredictor> predictor_;
    opt::PcHistory snapshot_;
};

} // namespace core
} // namespace glider

#endif // GLIDER_CORE_GLIDER_POLICY_HH
