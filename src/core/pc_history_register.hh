/**
 * @file
 * The PC History Register (PCHR), §4.4: an unordered set of the last
 * k unique PCs seen by a core, modelled — as the paper specifies — as
 * a small LRU cache of PCs. The unordered-unique representation is
 * the heart of Glider's k-sparse feature: it captures an effective
 * control-flow history of ~30 PCs in only k = 5 elements, because
 * duplicates are collapsed and ordering is discarded (Observations
 * 1–3 of §4.2).
 */

#ifndef GLIDER_CORE_PC_HISTORY_REGISTER_HH
#define GLIDER_CORE_PC_HISTORY_REGISTER_HH

#include <cstdint>
#include <vector>

#include "common/lru_tracker.hh"
#include "isvm.hh"
#include "opt/optgen.hh"

namespace glider {
namespace core {

/** Unordered last-k-unique-PC register (one per core). */
class PcHistoryRegister
{
  public:
    /** @param k Number of unique PCs retained (paper default 5). */
    explicit PcHistoryRegister(std::size_t k = 5) : tracker_(k) {}

    /**
     * Observe one access: PC enters (or refreshes) the register. The
     * slot-count feature is maintained incrementally — one slot hash
     * for a new PC, none for a refresh — so predictions never rescan
     * the history.
     */
    void
    observe(std::uint64_t pc)
    {
        auto touch = tracker_.touchTracked(pc);
        if (!touch.inserted)
            return;
        if (touch.evicted)
            counts_.remove(isvmSlotOf(touch.victim));
        counts_.add(isvmSlotOf(pc));
    }

    /**
     * Current contents as a feature snapshot. Order within the
     * returned vector carries no meaning to the predictor. Returned
     * by reference — this sits on the per-access predictor path and a
     * by-value return allocated a vector copy per access; callers
     * that need to retain the snapshot across observe() copy-assign
     * into a reused buffer.
     */
    const opt::PcHistory &
    snapshot() const
    {
        return tracker_.entries();
    }

    /**
     * The register's contents as the dense ISVM feature: lane j holds
     * how many resident PCs hash to weight slot j. Kept in lockstep
     * with snapshot() by observe(); the predictor's per-access and
     * batched paths both consume it hash-free.
     */
    const SlotCounts &slotCounts() const { return counts_; }

    bool contains(std::uint64_t pc) const
    {
        return tracker_.contains(pc);
    }

    std::size_t size() const { return tracker_.size(); }
    std::size_t capacity() const { return tracker_.capacity(); }

    void
    clear()
    {
        tracker_.clear();
        counts_ = SlotCounts{};
    }

  private:
    LruTracker<std::uint64_t> tracker_;
    SlotCounts counts_;
};

} // namespace core
} // namespace glider

#endif // GLIDER_CORE_PC_HISTORY_REGISTER_HH
