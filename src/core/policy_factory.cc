#include "policy_factory.hh"

#include "common/logging.hh"
#include "core/policy_traits.hh"
#include "glider_policy.hh"
#include "verify/checked_policy.hh"
#include "policies/coalesce.hh"
#include "policies/frd.hh"
#include "policies/hawkeye.hh"
#include "policies/heuristics.hh"
#include "policies/lru.hh"
#include "policies/mpppb.hh"
#include "policies/mustache.hh"
#include "policies/random.hh"
#include "policies/rrip.hh"
#include "policies/sdbp.hh"
#include "policies/ship.hh"

namespace glider {
namespace core {

// Registration gate: every policy constructible through makePolicy
// must satisfy the full compile-time contract (see policy_traits.hh).
// Adding a policy below without noexcept hot methods or with a
// drifted signature fails right here, naming the concept.
static_assert(RegisteredPolicy<policies::LruPolicy>);
static_assert(RegisteredPolicy<policies::RandomPolicy>);
static_assert(RegisteredPolicy<policies::SrripPolicy>);
static_assert(RegisteredPolicy<policies::BrripPolicy>);
static_assert(RegisteredPolicy<policies::DrripPolicy>);
static_assert(RegisteredPolicy<policies::SdbpPolicy>);
static_assert(RegisteredPolicy<policies::ShipPolicy>);
static_assert(RegisteredPolicy<policies::ShipPPPolicy>);
static_assert(RegisteredPolicy<policies::MpppbPolicy>);
static_assert(RegisteredPolicy<policies::HawkeyePolicy>);
static_assert(RegisteredPolicy<GliderPolicy>);
// The policy zoo (ROADMAP bullet 3): reuse-distance regression,
// Markov lookahead, perceptron bypass, and the two cheap heuristics.
static_assert(RegisteredPolicy<policies::FrdPolicy>);
static_assert(RegisteredPolicy<policies::MustachePolicy>);
static_assert(RegisteredPolicy<policies::CoalescePolicy>);
static_assert(RegisteredPolicy<policies::EntropyAgePolicy>);
static_assert(RegisteredPolicy<policies::DecayCountPolicy>);

// The invariant checker is deliberately NOT a RegisteredPolicy: it
// reports protocol violations by throwing, so its hot methods cannot
// be noexcept.
static_assert(!PolicyHotPath<verify::CheckedPolicy>);

std::vector<std::string>
policyNames()
{
    return {"LRU",     "Random",   "SRRIP",      "BRRIP",
            "DRRIP",   "SDBP",     "SHiP",       "SHiP++",
            "MPPPB",   "Hawkeye",  "Glider",     "FRD",
            "MUSTACHE", "COALESCE", "EntropyAge", "DecayCount"};
}

std::vector<std::string>
paperLineup()
{
    return {"Hawkeye", "MPPPB", "SHiP++", "Glider"};
}

std::vector<std::string>
zooLineup()
{
    return {"FRD", "MUSTACHE", "COALESCE", "EntropyAge", "DecayCount"};
}

namespace {

std::unique_ptr<sim::ReplacementPolicy>
makeRawPolicy(const std::string &name)
{
    if (name == "LRU")
        return std::make_unique<policies::LruPolicy>();
    if (name == "Random")
        return std::make_unique<policies::RandomPolicy>();
    if (name == "SRRIP")
        return std::make_unique<policies::SrripPolicy>();
    if (name == "BRRIP")
        return std::make_unique<policies::BrripPolicy>();
    if (name == "DRRIP")
        return std::make_unique<policies::DrripPolicy>();
    if (name == "SDBP")
        return std::make_unique<policies::SdbpPolicy>();
    if (name == "SHiP")
        return std::make_unique<policies::ShipPolicy>();
    if (name == "SHiP++")
        return std::make_unique<policies::ShipPPPolicy>();
    if (name == "MPPPB")
        return std::make_unique<policies::MpppbPolicy>();
    if (name == "Hawkeye")
        return std::make_unique<policies::HawkeyePolicy>();
    if (name == "Glider")
        return std::make_unique<GliderPolicy>();
    if (name == "FRD")
        return std::make_unique<policies::FrdPolicy>();
    if (name == "MUSTACHE")
        return std::make_unique<policies::MustachePolicy>();
    if (name == "COALESCE")
        return std::make_unique<policies::CoalescePolicy>();
    if (name == "EntropyAge")
        return std::make_unique<policies::EntropyAgePolicy>();
    if (name == "DecayCount")
        return std::make_unique<policies::DecayCountPolicy>();
    GLIDER_FATAL("unknown policy: " + name);
}

} // namespace

std::unique_ptr<sim::ReplacementPolicy>
makePolicy(const std::string &name)
{
    std::unique_ptr<sim::ReplacementPolicy> policy = makeRawPolicy(name);
#ifdef GLIDER_CHECKED
    // Checked builds: every simulation driven through the factory
    // (benches, examples, tests) runs under full invariant checking.
    // True-LRU additionally gets reference-model victim verification.
    verify::CheckedPolicy::Options options;
    options.verify_lru = name == "LRU";
    policy = verify::checkedPolicy(std::move(policy), options);
#endif
    return policy;
}

} // namespace core
} // namespace glider
