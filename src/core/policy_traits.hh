#ifndef GLIDER_CORE_POLICY_TRAITS_HH
#define GLIDER_CORE_POLICY_TRAITS_HH

/**
 * @file
 * Compile-time contract every registered replacement policy must
 * satisfy, expressed as C++20 concepts and enforced by static_assert
 * in policy_factory.cc. The virtual interface in replacement.hh only
 * guarantees the signatures; this layer pins down the parts the
 * simulator *relies on* but the type system would otherwise let
 * drift:
 *
 *  - the hot protocol methods (victimWay/onHit/onEvict/onInsert) are
 *    noexcept on every concrete policy, so the per-access loop in
 *    sim::Cache carries no unwinding obligations. The base class
 *    stays potentially-throwing on purpose: verify::CheckedPolicy
 *    reports invariant violations by throwing, and a wrapper is not
 *    a registered policy.
 *  - victimWay takes SetView *by value* (zero-copy pointer+count) and
 *    returns std::uint32_t — a signature mismatch would silently
 *    declare a new overload instead of overriding.
 *  - the cold surface (name/reset/exportMetrics) stays callable with
 *    the exact factory-visible shapes.
 *
 * A policy that cannot meet the noexcept requirement (e.g. one that
 * legitimately reports errors by throwing) should not be registered
 * through core::makePolicy; wrap it the way verify::CheckedPolicy is
 * wrapped instead.
 */

#include <concepts>
#include <cstdint>
#include <string>
#include <type_traits>

#include "cachesim/replacement.hh"

namespace glider {
namespace core {

/** Hot-path protocol: exact signatures, all noexcept. */
template <typename P>
concept PolicyHotPath = requires(
    P &p, const sim::ReplacementAccess &access, sim::SetView lines,
    std::uint32_t way, const sim::LineView &victim) {
    { p.victimWay(access, lines) } noexcept
        -> std::same_as<std::uint32_t>;
    { p.onHit(access, way) } noexcept -> std::same_as<void>;
    { p.onEvict(access, way, victim) } noexcept -> std::same_as<void>;
    { p.onInsert(access, way) } noexcept -> std::same_as<void>;
};

/** Cold surface: naming, lifecycle, telemetry. */
template <typename P>
concept PolicyColdPath = requires(
    P &p, const P &cp, const sim::CacheGeometry &geom,
    obs::Registry &registry, const std::string &prefix) {
    { cp.name() } -> std::convertible_to<std::string>;
    { p.reset(geom) } -> std::same_as<void>;
    { cp.exportMetrics(registry, prefix) } -> std::same_as<void>;
};

/**
 * The full contract for a policy registered in core::makePolicy.
 * Checked via static_assert at the registration site so adding a
 * policy that violates it fails the build with the concept's name in
 * the diagnostic, not a miscompiled vtable at runtime.
 */
template <typename P>
concept RegisteredPolicy =
    std::derived_from<P, sim::ReplacementPolicy>
    && !std::is_abstract_v<P>
    && std::is_default_constructible_v<P>
    && PolicyHotPath<P> && PolicyColdPath<P>;

} // namespace core
} // namespace glider

#endif // GLIDER_CORE_POLICY_TRAITS_HH
