/**
 * @file
 * The Integer Support Vector Machine of §4.3/§4.4.
 *
 * Each tracked PC owns one ISVM of 16 signed 8-bit weights. A
 * prediction sums the weights selected by 4-bit hashes of the PCHR
 * contents; training applies the integer perceptron/hinge update
 * (±1 with a no-update threshold), which — per Fact 1 of §4.3 — is
 * exactly gradient descent on the hinge loss with learning rate 1/n
 * rescaled to integer arithmetic.
 */

#ifndef GLIDER_CORE_ISVM_HH
#define GLIDER_CORE_ISVM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/hash.hh"
#include "opt/optgen.hh"

namespace glider {
namespace core {

/** One PC's integer SVM: 16 weights indexed by hashed history PCs. */
class Isvm
{
  public:
    static constexpr std::size_t kWeights = 16;
    static constexpr int kWeightMax = 127; //!< 8-bit signed weights
    static constexpr int kWeightMin = -128;

    /** 4-bit hash selecting the weight slot for a history PC. */
    static std::uint32_t
    slotOf(std::uint64_t history_pc)
    {
        return static_cast<std::uint32_t>(hashBits(history_pc, 4));
    }

    /** Sum of the weights selected by @p history. */
    int
    predict(const opt::PcHistory &history) const
    {
        int sum = 0;
        for (auto pc : history)
            sum += weights_[slotOf(pc)];
        return sum;
    }

    /**
     * Integer hinge/perceptron update: move the selected weights
     * toward @p positive by 1, unless the current decision sum is
     * already confidently beyond @p threshold on the correct side
     * (the "do not update when above threshold" rule of §4.4).
     * @return true if weights moved (the threshold did not skip it).
     */
    bool
    train(const opt::PcHistory &history, bool positive, int threshold)
    {
        int sum = predict(history);
        if (positive && sum > threshold)
            return false;
        if (!positive && sum < -threshold)
            return false;
        for (auto pc : history) {
            int &w = weights_[slotOf(pc)];
            w += positive ? 1 : -1;
            if (w > kWeightMax)
                w = kWeightMax;
            if (w < kWeightMin)
                w = kWeightMin;
        }
        return true;
    }

    const std::array<int, kWeights> &weights() const { return weights_; }

  private:
    std::array<int, kWeights> weights_{};
};

/**
 * The ISVM Table of Figure 8: a direct-mapped structure holding one
 * ISVM per tracked PC (2048 PCs, hash-indexed).
 */
class IsvmTable
{
  public:
    explicit IsvmTable(std::size_t entries = 2048) : table_(entries) {}

    /** ISVM owned by (pc, core); core folds into the index hash. */
    Isvm &
    forPc(std::uint64_t pc, std::uint8_t core = 0)
    {
        return table_[indexOf(pc, core)];
    }

    const Isvm &
    forPc(std::uint64_t pc, std::uint8_t core = 0) const
    {
        return table_[indexOf(pc, core)];
    }

    std::size_t entries() const { return table_.size(); }

    /** Hardware budget of the table in bytes (Table 3 bookkeeping). */
    std::size_t
    storageBytes() const
    {
        return table_.size() * Isvm::kWeights; // 8-bit weights
    }

    /** Weight-population census (telemetry; full-table scan). */
    struct WeightStats
    {
        std::size_t total = 0;  //!< weights in the table
        std::size_t at_max = 0; //!< saturated at kWeightMax
        std::size_t at_min = 0; //!< saturated at kWeightMin
        std::size_t zero = 0;   //!< still (or back) at zero

        double
        saturationFraction() const
        {
            return total ? static_cast<double>(at_max + at_min)
                    / static_cast<double>(total)
                         : 0.0;
        }
    };

    WeightStats
    weightStats() const
    {
        WeightStats ws;
        ws.total = table_.size() * Isvm::kWeights;
        for (const auto &svm : table_) {
            for (int w : svm.weights()) {
                if (w >= Isvm::kWeightMax)
                    ++ws.at_max;
                else if (w <= Isvm::kWeightMin)
                    ++ws.at_min;
                else if (w == 0)
                    ++ws.zero;
            }
        }
        return ws;
    }

  private:
    std::size_t
    indexOf(std::uint64_t pc, std::uint8_t core) const
    {
        return static_cast<std::size_t>(
            hashInto(hashCombine(pc, core), table_.size()));
    }

    std::vector<Isvm> table_;
};

} // namespace core
} // namespace glider

#endif // GLIDER_CORE_ISVM_HH
