/**
 * @file
 * The Integer Support Vector Machine of §4.3/§4.4.
 *
 * Each tracked PC owns one ISVM of 16 signed 8-bit weights. A
 * prediction sums the weights selected by 4-bit hashes of the PCHR
 * contents; training applies the integer perceptron/hinge update
 * (±1 with a no-update threshold), which — per Fact 1 of §4.3 — is
 * exactly gradient descent on the hinge loss with learning rate 1/n
 * rescaled to integer arithmetic.
 *
 * Storage is structure-of-arrays: IsvmTable owns one contiguous,
 * 64-byte-aligned int8 weight plane (entries x 16), and Isvm views
 * are thin row pointers into it. The dense per-request feature is a
 * SlotCounts vector — counts[j] = how many history PCs hash to slot
 * j — so a prediction is a 16-lane u8 x s8 dot product, which the
 * batched path (GliderPredictor::predictMany) hands to the SIMD
 * kernels in common/simd.hh. Every history PC is hashed exactly once
 * per operation: countSlots() builds the feature and both the
 * decision sum and the weight update consume it.
 */

#ifndef GLIDER_CORE_ISVM_HH
#define GLIDER_CORE_ISVM_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/simd.hh"
#include "opt/optgen.hh"

namespace glider {
namespace core {

/** ISVM row layout: 16 saturating signed 8-bit weights. */
inline constexpr std::size_t kIsvmWeights = 16;
inline constexpr int kIsvmWeightMax = 127;
inline constexpr int kIsvmWeightMin = -128;

/**
 * Histories longer than this cannot be represented in a SlotCounts
 * byte vector (and would break the SIMD exactness bound); the PCHR
 * holds ~5 unique PCs, so the cap is far from every real
 * configuration.
 */
inline constexpr std::size_t kIsvmMaxHistory = simd::kMaxCountSum;

/**
 * Per-thread count of slot-hash invocations. The one-hash contract —
 * every history PC hashed exactly once per predict/train/observe —
 * is a correctness *and* performance invariant (the pre-PR-6
 * double-hash bug silently doubled the hot-path hash cost); tests pin
 * it by sampling this counter around predictor operations. A
 * thread_local increment costs ~1 cycle and keeps the counter
 * race-free without atomics.
 */
inline std::uint64_t &
isvmSlotHashCount()
{
    thread_local std::uint64_t count = 0;
    return count;
}

/** 4-bit hash selecting the weight slot for a history PC. */
inline std::uint32_t
isvmSlotOf(std::uint64_t history_pc)
{
    ++isvmSlotHashCount();
    return static_cast<std::uint32_t>(hashBits(history_pc, 4));
}

/**
 * Dense k-sparse feature: per-slot multiplicity of a history.
 * lane[j] counts the history PCs hashing to weight slot j, so a
 * decision sum is dot(weights, lane). 16 bytes, register-friendly,
 * and maintainable incrementally (the PCHR updates it per observe).
 */
struct alignas(16) SlotCounts
{
    std::array<std::uint8_t, kIsvmWeights> lane{};

    const std::uint8_t *data() const { return lane.data(); }

    void add(std::uint32_t slot) { ++lane[slot]; }
    void remove(std::uint32_t slot) { --lane[slot]; }

    bool
    operator==(const SlotCounts &other) const
    {
        return lane == other.lane;
    }
};

/**
 * Hash every history PC once into a packed 16-byte count row (the
 * batched path writes straight into its gather buffer).
 */
inline void
countSlotsInto(std::span<const std::uint64_t> history,
               std::uint8_t *lanes)
{
    GLIDER_ASSERT(history.size() <= kIsvmMaxHistory);
    std::memset(lanes, 0, kIsvmWeights);
    for (auto pc : history)
        ++lanes[isvmSlotOf(pc)];
}

/** Hash every history PC once into its slot-count feature. */
inline SlotCounts
countSlots(std::span<const std::uint64_t> history)
{
    SlotCounts counts;
    countSlotsInto(history, counts.lane.data());
    return counts;
}

/** Exact decision sum of one weight row against a feature. */
inline int
isvmDotRow(const std::int8_t *weights, const SlotCounts &counts)
{
    int sum = 0;
    for (std::size_t j = 0; j < kIsvmWeights; ++j)
        sum += static_cast<int>(counts.lane[j])
            * static_cast<int>(weights[j]);
    return sum;
}

/**
 * Unconditional saturating hinge step: move each selected weight by
 * ±its multiplicity, clamped to the 8-bit range. Per-step clamping
 * and clamp-after-sum agree because all contributions share a sign.
 */
inline void
isvmApplyRow(std::int8_t *weights, const SlotCounts &counts,
             bool positive)
{
    for (std::size_t j = 0; j < kIsvmWeights; ++j) {
        int delta = static_cast<int>(counts.lane[j]);
        if (delta == 0)
            continue;
        int w = static_cast<int>(weights[j])
            + (positive ? delta : -delta);
        if (w > kIsvmWeightMax)
            w = kIsvmWeightMax;
        if (w < kIsvmWeightMin)
            w = kIsvmWeightMin;
        weights[j] = static_cast<std::int8_t>(w);
    }
}

/**
 * Thresholded integer hinge/perceptron update (the "do not update
 * when above threshold" rule of §4.4) against a precomputed feature.
 * @return true if weights moved (the threshold did not skip it).
 */
inline bool
isvmTrainRow(std::int8_t *weights, const SlotCounts &counts,
             bool positive, int threshold)
{
    int sum = isvmDotRow(weights, counts);
    if (positive && sum > threshold)
        return false;
    if (!positive && sum < -threshold)
        return false;
    isvmApplyRow(weights, counts, positive);
    return true;
}

/** Read-only view over one PC's weight row in the SoA plane. */
class IsvmConstView
{
  public:
    explicit IsvmConstView(const std::int8_t *row) : w_(row) {}

    /** Sum of the weights selected by @p history. */
    int
    predict(const opt::PcHistory &history) const
    {
        return isvmDotRow(w_, countSlots(history));
    }

    /** Decision sum against a pre-resolved slot-count feature. */
    int
    predictCounts(const SlotCounts &counts) const
    {
        return isvmDotRow(w_, counts);
    }

    std::span<const std::int8_t, kIsvmWeights>
    weights() const
    {
        return std::span<const std::int8_t, kIsvmWeights>(w_,
                                                          kIsvmWeights);
    }

    const std::int8_t *data() const { return w_; }

  private:
    const std::int8_t *w_;
};

/** Mutable row view: adds the integer hinge/perceptron update. */
class IsvmView
{
  public:
    explicit IsvmView(std::int8_t *row) : w_(row) {}

    int
    predict(const opt::PcHistory &history) const
    {
        return isvmDotRow(w_, countSlots(history));
    }

    int
    predictCounts(const SlotCounts &counts) const
    {
        return isvmDotRow(w_, counts);
    }

    /** Thresholded update; hashes each history PC exactly once. */
    bool
    train(const opt::PcHistory &history, bool positive, int threshold)
    {
        return isvmTrainRow(w_, countSlots(history), positive,
                            threshold);
    }

    bool
    trainCounts(const SlotCounts &counts, bool positive, int threshold)
    {
        return isvmTrainRow(w_, counts, positive, threshold);
    }

    /** Unconditional saturating step (threshold already checked). */
    void
    applyCounts(const SlotCounts &counts, bool positive)
    {
        isvmApplyRow(w_, counts, positive);
    }

    std::span<const std::int8_t, kIsvmWeights>
    weights() const
    {
        return std::span<const std::int8_t, kIsvmWeights>(w_,
                                                          kIsvmWeights);
    }

    std::int8_t *data() { return w_; }

    operator IsvmConstView() const { return IsvmConstView(w_); }

  private:
    std::int8_t *w_;
};

/**
 * One PC's integer SVM as a standalone value (tests, microbenches,
 * single-predictor tools): owns its 16-byte row inline — the real
 * hardware budget of Table 3 — and exposes the same operations as
 * the table views.
 */
class Isvm
{
  public:
    static constexpr std::size_t kWeights = kIsvmWeights;
    static constexpr int kWeightMax = kIsvmWeightMax;
    static constexpr int kWeightMin = kIsvmWeightMin;

    /** 4-bit hash selecting the weight slot for a history PC. */
    static std::uint32_t
    slotOf(std::uint64_t history_pc)
    {
        return isvmSlotOf(history_pc);
    }

    int
    predict(const opt::PcHistory &history) const
    {
        return isvmDotRow(w_.data(), countSlots(history));
    }

    int
    predictCounts(const SlotCounts &counts) const
    {
        return isvmDotRow(w_.data(), counts);
    }

    bool
    train(const opt::PcHistory &history, bool positive, int threshold)
    {
        return isvmTrainRow(w_.data(), countSlots(history), positive,
                            threshold);
    }

    std::span<const std::int8_t, kIsvmWeights>
    weights() const
    {
        return std::span<const std::int8_t, kIsvmWeights>(w_.data(),
                                                          kIsvmWeights);
    }

    IsvmView view() { return IsvmView(w_.data()); }
    IsvmConstView view() const { return IsvmConstView(w_.data()); }

  private:
    alignas(16) std::array<std::int8_t, kIsvmWeights> w_{};
};

static_assert(sizeof(Isvm) == kIsvmWeights,
              "Isvm must cost exactly its 16 8-bit weights");

/**
 * The ISVM Table of Figure 8: a direct-mapped structure holding one
 * ISVM per tracked PC (2048 PCs, hash-indexed). Weights live in a
 * single contiguous 64-byte-aligned int8 plane (structure-of-arrays)
 * so telemetry scans and checkpointing are linear sweeps and the
 * batched predictor can gather rows for the SIMD kernels.
 */
class IsvmTable
{
  public:
    /** Plane alignment: one full cache line. */
    static constexpr std::size_t kPlaneAlign = 64;

    explicit IsvmTable(std::size_t entries = 2048) : entries_(entries)
    {
        GLIDER_ASSERT(entries_ > 0);
        // Power-of-two tables (the hardware-realistic shape, and the
        // paper's 2048) index with a mask instead of hashInto's
        // runtime modulo: mix64(x) % 2^k == mix64(x) & (2^k - 1), so
        // the fast path is bit-identical while dropping a 64-bit
        // division from every row lookup.
        if ((entries_ & (entries_ - 1)) == 0)
            index_mask_ = entries_ - 1;
        plane_.reset(static_cast<std::int8_t *>(::operator new[](
            entries_ * kIsvmWeights, std::align_val_t{kPlaneAlign})));
        std::memset(plane_.get(), 0, entries_ * kIsvmWeights);
    }

    /** Plane row index owned by (pc, core); core folds into the hash. */
    std::size_t
    rowIndexOf(std::uint64_t pc, std::uint8_t core) const
    {
        const std::uint64_t key = hashCombine(pc, core);
        if (index_mask_ != 0)
            return static_cast<std::size_t>(mix64(key) & index_mask_);
        return static_cast<std::size_t>(hashInto(key, entries_));
    }

    /** Raw weight row @p index (batched gather path). */
    const std::int8_t *
    row(std::size_t index) const
    {
        return plane_.get() + index * kIsvmWeights;
    }

    std::int8_t *
    row(std::size_t index)
    {
        return plane_.get() + index * kIsvmWeights;
    }

    /** ISVM owned by (pc, core), as a mutable row view. */
    IsvmView
    forPc(std::uint64_t pc, std::uint8_t core = 0)
    {
        return IsvmView(row(rowIndexOf(pc, core)));
    }

    IsvmConstView
    forPc(std::uint64_t pc, std::uint8_t core = 0) const
    {
        return IsvmConstView(row(rowIndexOf(pc, core)));
    }

    std::size_t entries() const { return entries_; }

    /** The whole weight plane as one linear span (telemetry, tests). */
    std::span<const std::int8_t>
    plane() const
    {
        return std::span<const std::int8_t>(plane_.get(),
                                            entries_ * kIsvmWeights);
    }

    /**
     * Hardware budget of the table in bytes (Table 3 bookkeeping);
     * with int8 storage this is also the actual simulator footprint.
     */
    std::size_t
    storageBytes() const
    {
        return entries_ * kIsvmWeights; // 8-bit weights
    }

    /** Weight-population census (telemetry; full-table scan). */
    struct WeightStats
    {
        std::size_t total = 0;  //!< weights in the table
        std::size_t at_max = 0; //!< saturated at kWeightMax
        std::size_t at_min = 0; //!< saturated at kWeightMin
        std::size_t zero = 0;   //!< still (or back) at zero

        double
        saturationFraction() const
        {
            return total ? static_cast<double>(at_max + at_min)
                    / static_cast<double>(total)
                         : 0.0;
        }
    };

    WeightStats
    weightStats() const
    {
        WeightStats ws;
        ws.total = entries_ * kIsvmWeights;
        for (std::int8_t w : plane()) {
            if (w >= kIsvmWeightMax)
                ++ws.at_max;
            else if (w <= kIsvmWeightMin)
                ++ws.at_min;
            else if (w == 0)
                ++ws.zero;
        }
        return ws;
    }

  private:
    struct PlaneDelete
    {
        void
        operator()(std::int8_t *p) const
        {
            ::operator delete[](p, std::align_val_t{kPlaneAlign});
        }
    };

    std::size_t entries_;
    std::uint64_t index_mask_ = 0; //!< entries-1 when entries is 2^k
    std::unique_ptr<std::int8_t[], PlaneDelete> plane_;
};

} // namespace core
} // namespace glider

#endif // GLIDER_CORE_ISVM_HH
