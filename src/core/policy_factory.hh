/**
 * @file
 * Name-based construction of every replacement policy in the repo —
 * the lineup of the paper's evaluation plus the extra baselines —
 * used by the benchmark harness and the examples.
 */

#ifndef GLIDER_CORE_POLICY_FACTORY_HH
#define GLIDER_CORE_POLICY_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "cachesim/replacement.hh"

namespace glider {
namespace core {

/** All constructible policy names. */
std::vector<std::string> policyNames();

/**
 * Construct a policy by name ("LRU", "Random", "SRRIP", "BRRIP",
 * "DRRIP", "SHiP", "SHiP++", "MPPPB", "Hawkeye", "Glider", "FRD",
 * "MUSTACHE", "COALESCE", "EntropyAge", "DecayCount").
 * Fatal on unknown names.
 */
std::unique_ptr<sim::ReplacementPolicy>
makePolicy(const std::string &name);

/** The paper's Figure 11–13 lineup: Hawkeye, MPPPB, SHiP++, Glider. */
std::vector<std::string> paperLineup();

/**
 * The policy zoo (ROADMAP bullet 3): FRD, MUSTACHE, COALESCE, and
 * the two cheap heuristic baselines — the lineup of the adversarial
 * scenario grid in fig11/fig12.
 */
std::vector<std::string> zooLineup();

} // namespace core
} // namespace glider

#endif // GLIDER_CORE_POLICY_FACTORY_HH
