#include "trace.hh"

#include <cstdio>
#include <cstring>

namespace glider {
namespace traces {

namespace {

constexpr char kMagic[8] = {'G', 'L', 'D', 'R', 'T', 'R', 'C', '1'};

struct FileRecord
{
    std::uint64_t pc;
    std::uint64_t address;
    std::uint8_t core;
    std::uint8_t is_write;
    std::uint8_t pad[6];
};

static_assert(sizeof(FileRecord) == 24, "file record must be packed");

} // namespace

Trace
Trace::slice(std::size_t first, std::size_t count) const
{
    Trace out(name_ + ".slice");
    if (first >= records_.size())
        return out;
    std::size_t last = first + count;
    if (last > records_.size())
        last = records_.size();
    for (std::size_t i = first; i < last; ++i)
        out.push(records_[i]);
    return out;
}

bool
Trace::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1;
    std::uint64_t n = records_.size();
    ok = ok && std::fwrite(&n, sizeof(n), 1, f) == 1;
    for (std::size_t i = 0; ok && i < records_.size(); ++i) {
        FileRecord fr{};
        fr.pc = records_[i].pc;
        fr.address = records_[i].address;
        fr.core = records_[i].core;
        fr.is_write = records_[i].is_write ? 1 : 0;
        ok = std::fwrite(&fr, sizeof(fr), 1, f) == 1;
    }
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

bool
Trace::load(const std::string &path, Trace &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char magic[8];
    bool ok = std::fread(magic, sizeof(magic), 1, f) == 1
        && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
    std::uint64_t n = 0;
    ok = ok && std::fread(&n, sizeof(n), 1, f) == 1;
    // Diagnose truncation and trailing garbage up front: the byte
    // count must be exactly header + n fixed-width records. A partial
    // final record (torn write, interrupted copy) or extra bytes past
    // the declared count both mean the file does not round-trip what
    // save() wrote.
    constexpr std::uint64_t kHeaderBytes =
        sizeof(kMagic) + sizeof(std::uint64_t);
    constexpr std::uint64_t kMaxRecords =
        (UINT64_MAX - kHeaderBytes) / sizeof(FileRecord);
    if (ok && n > kMaxRecords)
        ok = false;
    if (ok) {
        long here = std::ftell(f);
        ok = here >= 0 && std::fseek(f, 0, SEEK_END) == 0;
        long end = ok ? std::ftell(f) : -1;
        ok = ok && end >= 0
            && static_cast<std::uint64_t>(end)
                == kHeaderBytes + n * sizeof(FileRecord)
            && std::fseek(f, here, SEEK_SET) == 0;
    }
    out = Trace(path);
    for (std::uint64_t i = 0; ok && i < n; ++i) {
        FileRecord fr{};
        ok = std::fread(&fr, sizeof(fr), 1, f) == 1;
        if (ok)
            out.push(fr.pc, fr.address, fr.is_write != 0, fr.core);
    }
    std::fclose(f);
    return ok && out.size() == n;
}

} // namespace traces
} // namespace glider
