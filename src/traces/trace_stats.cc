#include "trace_stats.hh"

#include <cstdio>
#include <unordered_set>

namespace glider {
namespace traces {

TraceStats
computeStats(const Trace &trace)
{
    TraceStats s;
    s.name = trace.name();
    std::unordered_set<std::uint64_t> pcs;
    std::unordered_set<std::uint64_t> addrs;
    for (const auto &rec : trace) {
        ++s.accesses;
        pcs.insert(rec.pc);
        addrs.insert(blockAddr(rec.address));
    }
    s.unique_pcs = pcs.size();
    s.unique_addrs = addrs.size();
    if (s.unique_pcs)
        s.accesses_per_pc = static_cast<double>(s.accesses)
            / static_cast<double>(s.unique_pcs);
    if (s.unique_addrs)
        s.accesses_per_addr = static_cast<double>(s.accesses)
            / static_cast<double>(s.unique_addrs);
    return s;
}

namespace {

/** Format a count with K/M suffixes like the paper's Table 2. */
std::string
human(double v)
{
    char buf[32];
    if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

} // namespace

std::string
formatStatsRow(const TraceStats &s)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-14s %10s %8llu %10s %10s %10.1f",
                  s.name.c_str(),
                  human(static_cast<double>(s.accesses)).c_str(),
                  static_cast<unsigned long long>(s.unique_pcs),
                  human(static_cast<double>(s.unique_addrs)).c_str(),
                  human(s.accesses_per_pc).c_str(), s.accesses_per_addr);
    return buf;
}

} // namespace traces
} // namespace glider
