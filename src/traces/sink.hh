/**
 * @file
 * Destination interface for generated access streams.
 *
 * Workload kernels emit records through a TraceSink instead of a
 * concrete Trace, so the same deterministic kernel run can either
 * materialize in RAM (Trace) or stream straight to a compact on-disk
 * gtrace file (GtraceSink) with O(1) memory — the substrate of the
 * billion-access generate-once/stream-many path.
 */

#ifndef GLIDER_TRACES_SINK_HH
#define GLIDER_TRACES_SINK_HH

#include <cstdint>

#include "access.hh"

namespace glider {
namespace traces {

/**
 * Anything that accepts an ordered stream of access records. Kernels
 * only ever append and read back the running count (their access
 * budget), so the interface is exactly those two operations.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Append one access. */
    virtual void push(const AccessRecord &rec) = 0;

    /** Records appended so far. */
    virtual std::uint64_t size() const = 0;

    /** Append an access by fields. */
    void
    push(std::uint64_t pc, std::uint64_t address, bool is_write = false,
         std::uint8_t core = 0)
    {
        push(AccessRecord{pc, address, core, is_write});
    }
};

} // namespace traces
} // namespace glider

#endif // GLIDER_TRACES_SINK_HH
