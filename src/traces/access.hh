/**
 * @file
 * The fundamental unit of all simulation input: a single memory
 * access, identified by the program counter of the load/store that
 * issued it and the byte address it touched.
 */

#ifndef GLIDER_TRACES_ACCESS_HH
#define GLIDER_TRACES_ACCESS_HH

#include <cstdint>

namespace glider {
namespace traces {

/** Log2 of the cache block size; 64-byte blocks throughout (Table 1). */
constexpr unsigned kBlockBits = 6;

/** Byte address → block (line) address. */
inline std::uint64_t
blockAddr(std::uint64_t byte_addr)
{
    return byte_addr >> kBlockBits;
}

/**
 * One memory access. `pc` is a stable identifier for the static
 * load/store instruction (synthetic workloads assign one per call
 * site), `address` is the byte address accessed.
 */
struct AccessRecord
{
    std::uint64_t pc = 0;
    std::uint64_t address = 0;
    std::uint8_t core = 0;
    bool is_write = false;

    bool
    operator==(const AccessRecord &o) const
    {
        return pc == o.pc && address == o.address && core == o.core
            && is_write == o.is_write;
    }
};

} // namespace traces
} // namespace glider

#endif // GLIDER_TRACES_ACCESS_HH
