/**
 * @file
 * In-memory access traces with binary file round-tripping.
 *
 * A Trace is the interchange format between the workload generators,
 * the cache simulator, the Belady oracle, and the offline learning
 * pipeline.
 */

#ifndef GLIDER_TRACES_TRACE_HH
#define GLIDER_TRACES_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "access.hh"
#include "sink.hh"

namespace glider {
namespace traces {

/** A named, ordered sequence of memory accesses, held in RAM. */
class Trace : public TraceSink
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : name_(std::move(name)) {}

    /** Append one access. */
    void push(const AccessRecord &rec) override
    {
        records_.push_back(rec);
    }

    using TraceSink::push;

    /** Append an access by fields. */
    void
    push(std::uint64_t pc, std::uint64_t address, bool is_write = false,
         std::uint8_t core = 0)
    {
        records_.push_back(AccessRecord{pc, address, core, is_write});
    }

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    std::uint64_t size() const override { return records_.size(); }
    bool empty() const { return records_.empty(); }
    const AccessRecord &operator[](std::size_t i) const
    {
        return records_[i];
    }
    const std::vector<AccessRecord> &records() const { return records_; }

    auto begin() const { return records_.begin(); }
    auto end() const { return records_.end(); }

    /** Keep only the first @p n accesses. */
    void
    truncate(std::size_t n)
    {
        if (n < records_.size())
            records_.resize(n);
    }

    /** Sub-trace of records [first, first+count), clamped to size. */
    Trace slice(std::size_t first, std::size_t count) const;

    /**
     * Serialise to a binary file (little-endian, fixed-width records
     * behind a small magic/version header).
     * @return true on success.
     */
    bool save(const std::string &path) const;

    /**
     * Deserialise a trace previously written by save(). Rejects files
     * with a bad magic, a truncated header, fewer bytes than the
     * declared record count requires (including a partial final
     * record), or trailing bytes past the last record.
     */
    static bool load(const std::string &path, Trace &out);

  private:
    std::string name_;
    std::vector<AccessRecord> records_;
};

} // namespace traces
} // namespace glider

#endif // GLIDER_TRACES_TRACE_HH
