/**
 * @file
 * Process-wide cache of generated traces.
 *
 * Synthetic trace generation is the most expensive fixed cost of an
 * experiment sweep: at the default bench length a single workload is
 * tens of millions of RNG draws. TraceCache guarantees each
 * (name, accesses) trace is built exactly once per process and then
 * shared read-only by every policy and every harness that asks for
 * it — including concurrent askers on different worker threads.
 */

#ifndef GLIDER_TRACES_TRACE_CACHE_HH
#define GLIDER_TRACES_TRACE_CACHE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex> // std::once_flag / std::call_once
#include <string>
#include <utility>

#include "common/thread_annotations.hh"
#include "trace.hh"

namespace glider {
namespace traces {

/**
 * Thread-safe memoisation of trace generation, keyed by workload
 * name + access count. Concurrent get() calls for the same key block
 * until the single build finishes; distinct keys build in parallel
 * (the map lock is not held during generation). Returned references
 * stay valid until clear().
 */
class TraceCache
{
  public:
    /** Fills @p out with the trace for (name, accesses). */
    using Builder = std::function<void(const std::string &name,
                                       std::uint64_t accesses,
                                       Trace &out)>;

    explicit TraceCache(Builder builder) : builder_(std::move(builder)) {}

    /** The trace for (name, accesses), building it on first request. */
    const Trace &
    get(const std::string &name, std::uint64_t accesses)
    {
        Slot *slot;
        {
            LockGuard lock(mutex_);
            auto &entry = slots_[std::make_pair(name, accesses)];
            if (!entry)
                entry = std::make_unique<Slot>();
            slot = entry.get();
        }
        std::call_once(slot->once, [&] {
            builder_(name, accesses, slot->trace);
            if (slot->trace.name().empty())
                slot->trace.setName(name);
        });
        return slot->trace;
    }

    /** Number of distinct traces requested so far. */
    std::size_t
    size() const
    {
        LockGuard lock(mutex_);
        return slots_.size();
    }

    /**
     * Drop every cached trace, invalidating references previously
     * returned by get(). The caller must ensure no build is in
     * flight.
     */
    void
    clear()
    {
        LockGuard lock(mutex_);
        slots_.clear();
    }

  private:
    /** One cache entry; once-initialised so builds never repeat. */
    struct Slot
    {
        std::once_flag once;
        Trace trace;
    };

    Builder builder_;
    mutable Mutex mutex_;
    std::map<std::pair<std::string, std::uint64_t>,
             std::unique_ptr<Slot>>
        slots_ GLIDER_GUARDED_BY(mutex_);
};

} // namespace traces
} // namespace glider

#endif // GLIDER_TRACES_TRACE_CACHE_HH
