#include "gtrace.hh"

#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"

namespace glider {
namespace traces {

namespace {

constexpr char kMagic[8] = {'G', 'L', 'D', 'R', 'G', 'T', 'R', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kChunkMagic = 0x4B4E4843; // "CHNK"
constexpr std::uint32_t kEndMagic = 0x444E4547;   // "GEND"

/** FNV-1a 64 over a byte range. */
std::uint64_t
fnv1a(const std::uint8_t *p, std::uint64_t n)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (std::uint64_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

std::uint64_t
zigzagEncode(std::uint64_t cur, std::uint64_t prev)
{
    // Delta modulo 2^64, then zigzag so small jumps either way stay
    // small. C++20 guarantees the arithmetic right shift.
    auto d = static_cast<std::int64_t>(cur - prev);
    return (static_cast<std::uint64_t>(d) << 1)
        ^ static_cast<std::uint64_t>(d >> 63);
}

std::uint64_t
zigzagDecode(std::uint64_t z, std::uint64_t prev)
{
    std::uint64_t d = (z >> 1) ^ (0 - (z & 1));
    return prev + d;
}

/** Fixed-width little-endian field helpers for the framing. */
template <typename T>
bool
writeRaw(std::FILE *f, T v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

template <typename T>
bool
readRaw(const std::uint8_t *base, std::uint64_t bytes,
        std::uint64_t &off, T &out)
{
    if (off + sizeof(T) > bytes)
        return false;
    std::memcpy(&out, base + off, sizeof(T));
    off += sizeof(T);
    return true;
}

} // namespace

// ---------------------------------------------------------------- writer

GtraceWriter::~GtraceWriter()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
GtraceWriter::open(const std::string &path, const std::string &name,
                   std::uint32_t chunk_target)
{
    GLIDER_ASSERT(file_ == nullptr);
    GLIDER_ASSERT(chunk_target >= 1);
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        return false;
    chunk_target_ = chunk_target;
    // glider-lint: allow(hotpath-alloc) encode buffer sized once per file
    buf_.resize(static_cast<std::size_t>(chunk_target)
                * gtrace::kMaxRecordBytes);
    used_ = 0;
    ok_ = std::fwrite(kMagic, sizeof(kMagic), 1, file_) == 1
        && writeRaw(file_, kVersion)
        && writeRaw(file_,
                    static_cast<std::uint32_t>(name.size()))
        && (name.empty()
            || std::fwrite(name.data(), name.size(), 1, file_) == 1)
        && writeRaw(file_, chunk_target_)
        && writeRaw(file_, std::uint32_t{0});
    return ok_;
}

void
GtraceWriter::putVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        put8(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    put8(static_cast<std::uint8_t>(v));
}

void
GtraceWriter::push(const AccessRecord &rec)
{
    GLIDER_ASSERT(file_ != nullptr && !finished_);
    put8(static_cast<std::uint8_t>(rec.core << 1)
         | static_cast<std::uint8_t>(rec.is_write ? 1 : 0));
    putVarint(zigzagEncode(rec.pc, prev_pc_));
    putVarint(zigzagEncode(rec.address, prev_addr_));
    prev_pc_ = rec.pc;
    prev_addr_ = rec.address;
    ++pushed_;
    if (++chunk_records_ == chunk_target_)
        flushChunk();
}

void
GtraceWriter::flushChunk()
{
    if (chunk_records_ == 0)
        return;
    ok_ = ok_ && writeRaw(file_, kChunkMagic)
        && writeRaw(file_, chunk_records_)
        && writeRaw(file_, static_cast<std::uint64_t>(used_))
        && writeRaw(file_, fnv1a(buf_.data(), used_))
        && std::fwrite(buf_.data(), 1, used_, file_) == used_;
    ++chunk_count_;
    chunk_records_ = 0;
    used_ = 0;
    // Chunks decode independently: the first record of the next chunk
    // is a delta from (0, 0) again.
    prev_pc_ = 0;
    prev_addr_ = 0;
}

bool
GtraceWriter::finish()
{
    if (file_ == nullptr || finished_)
        return false;
    finished_ = true;
    flushChunk();
    ok_ = ok_ && writeRaw(file_, kEndMagic)
        && writeRaw(file_, std::uint32_t{0})
        && writeRaw(file_, pushed_) && writeRaw(file_, chunk_count_);
    bool closed = std::fclose(file_) == 0;
    file_ = nullptr;
    return ok_ && closed;
}

// ---------------------------------------------------------------- reader

StreamingTrace::~StreamingTrace() { close(); }

StreamingTrace::StreamingTrace(StreamingTrace &&other) noexcept
{
    *this = std::move(other);
}

StreamingTrace &
StreamingTrace::operator=(StreamingTrace &&other) noexcept
{
    if (this != &other) {
        close();
        path_ = std::move(other.path_);
        name_ = std::move(other.name_);
        base_ = other.base_;
        map_bytes_ = other.map_bytes_;
        total_records_ = other.total_records_;
        chunk_target_ = other.chunk_target_;
        max_chunk_records_ = other.max_chunk_records_;
        chunks_ = std::move(other.chunks_);
        other.base_ = nullptr;
        other.map_bytes_ = 0;
    }
    return *this;
}

void
StreamingTrace::close()
{
    if (base_ != nullptr) {
        ::munmap(const_cast<std::uint8_t *>(base_), map_bytes_);
        base_ = nullptr;
        map_bytes_ = 0;
    }
    chunks_.clear();
    total_records_ = 0;
}

namespace {

bool
fail(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = what;
    return false;
}

} // namespace

// glider-lint: allow(hotpath-transitive) open() is per-trace setup
// (mmap + header validation), run once before the decode loop; its
// error strings never materialize on the per-record path.
bool
StreamingTrace::open(const std::string &path, std::string *error)
{
    close();
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail(error, "cannot open " + path);
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return fail(error, "cannot stat " + path);
    }
    auto bytes = static_cast<std::uint64_t>(st.st_size);
    if (bytes == 0) {
        ::close(fd);
        return fail(error, path + ": empty file");
    }
    void *map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        return fail(error, "cannot mmap " + path);
    base_ = static_cast<const std::uint8_t *>(map);
    map_bytes_ = bytes;
    ::madvise(map, bytes, MADV_SEQUENTIAL);

    // Header.
    std::uint64_t off = 0;
    if (bytes < sizeof(kMagic)
        || std::memcmp(base_, kMagic, sizeof(kMagic)) != 0) {
        close();
        return fail(error, path + ": bad magic (not a gtrace file)");
    }
    off = sizeof(kMagic);
    std::uint32_t version = 0;
    std::uint32_t name_len = 0;
    if (!readRaw(base_, bytes, off, version)
        || !readRaw(base_, bytes, off, name_len)) {
        close();
        return fail(error, path + ": truncated header");
    }
    if (version != kVersion) {
        close();
        return fail(error,
                    path + ": unsupported gtrace version "
                        + std::to_string(version));
    }
    if (off + name_len > bytes) {
        close();
        return fail(error, path + ": truncated trace name");
    }
    // glider-lint: allow(hotpath-alloc) header parse, once per open
    name_.assign(reinterpret_cast<const char *>(base_) + off, name_len);
    off += name_len;
    std::uint32_t reserved = 0;
    if (!readRaw(base_, bytes, off, chunk_target_)
        || !readRaw(base_, bytes, off, reserved)
        || chunk_target_ == 0) {
        close();
        return fail(error, path + ": truncated or corrupt header");
    }

    // Chunk index: walk the framing without touching payloads.
    std::uint64_t total = 0;
    // glider-lint: allow(hotpath-alloc) index built once per open
    chunks_.reserve(static_cast<std::size_t>(bytes / 64 + 1));
    for (;;) {
        std::uint32_t marker = 0;
        if (!readRaw(base_, bytes, off, marker)) {
            close();
            return fail(error,
                        path + ": truncated where a chunk or trailer "
                               "marker was expected");
        }
        if (marker == kEndMagic)
            break;
        if (marker != kChunkMagic) {
            close();
            return fail(error, path + ": corrupt chunk marker");
        }
        ChunkRef ref;
        if (!readRaw(base_, bytes, off, ref.records)
            || !readRaw(base_, bytes, off, ref.payload_bytes)
            || !readRaw(base_, bytes, off, ref.checksum)) {
            close();
            return fail(error, path + ": truncated chunk header");
        }
        if (ref.records == 0 || ref.records > chunk_target_
            || ref.payload_bytes
                > static_cast<std::uint64_t>(ref.records)
                    * gtrace::kMaxRecordBytes
            || off + ref.payload_bytes > bytes) {
            close();
            return fail(error,
                        path + ": chunk bounds exceed the file "
                               "(truncated or corrupt)");
        }
        ref.payload_offset = off;
        off += ref.payload_bytes;
        total += ref.records;
        if (ref.records > max_chunk_records_)
            max_chunk_records_ = ref.records;
        // glider-lint: allow(hotpath-alloc) index built once per open
        chunks_.push_back(ref);
    }

    // Trailer.
    std::uint32_t t_reserved = 0;
    std::uint64_t t_records = 0;
    std::uint64_t t_chunks = 0;
    if (!readRaw(base_, bytes, off, t_reserved)
        || !readRaw(base_, bytes, off, t_records)
        || !readRaw(base_, bytes, off, t_chunks)) {
        close();
        return fail(error, path + ": truncated trailer");
    }
    if (off != bytes) {
        close();
        return fail(error, path + ": trailing bytes after the trailer");
    }
    if (t_records != total || t_chunks != chunks_.size()) {
        close();
        return fail(error,
                    path + ": trailer totals disagree with the chunks "
                           "(truncated or corrupt)");
    }
    total_records_ = total;
    path_ = path;
    return true;
}

// glider-lint: allow(hotpath-transitive) corruption exits: the
// throws below fire only on checksum/decode failure, never on the
// steady-state decode path, and a torn trace must abort the run.
std::size_t
StreamingTrace::readChunk(std::size_t idx, AccessRecord *out,
                          std::size_t cap) const
{
    GLIDER_ASSERT(isOpen() && idx < chunks_.size());
    const ChunkRef &ref = chunks_[idx];
    if (cap < ref.records)
        throw std::runtime_error(path_ + ": decode buffer too small");
    const std::uint8_t *p = base_ + ref.payload_offset;
    if (fnv1a(p, ref.payload_bytes) != ref.checksum) {
        throw std::runtime_error(path_ + ": chunk "
                                 + std::to_string(idx)
                                 + " checksum mismatch (corrupt)");
    }
    std::uint64_t pos = 0;
    std::uint64_t prev_pc = 0;
    std::uint64_t prev_addr = 0;
    auto varint = [&](std::uint64_t &v) {
        v = 0;
        unsigned shift = 0;
        for (;;) {
            if (pos >= ref.payload_bytes || shift > 63)
                return false;
            std::uint8_t b = p[pos++];
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if ((b & 0x80) == 0)
                return true;
            shift += 7;
        }
    };
    for (std::uint32_t i = 0; i < ref.records; ++i) {
        if (pos >= ref.payload_bytes) {
            throw std::runtime_error(path_ + ": chunk "
                                     + std::to_string(idx)
                                     + " payload underruns its "
                                       "record count");
        }
        std::uint8_t flags = p[pos++];
        std::uint64_t zpc = 0;
        std::uint64_t zaddr = 0;
        if (!varint(zpc) || !varint(zaddr)) {
            throw std::runtime_error(path_ + ": chunk "
                                     + std::to_string(idx)
                                     + " malformed varint");
        }
        prev_pc = zigzagDecode(zpc, prev_pc);
        prev_addr = zigzagDecode(zaddr, prev_addr);
        out[i] = AccessRecord{prev_pc, prev_addr,
                              static_cast<std::uint8_t>(flags >> 1),
                              (flags & 1) != 0};
    }
    if (pos != ref.payload_bytes) {
        throw std::runtime_error(path_ + ": chunk "
                                 + std::to_string(idx)
                                 + " has bytes past its last record");
    }
    return ref.records;
}

void
StreamingTrace::dropChunkPages(std::size_t idx) const
{
    GLIDER_ASSERT(isOpen() && idx < chunks_.size());
    const ChunkRef &ref = chunks_[idx];
    static const auto page =
        static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    std::uint64_t lo = ref.payload_offset / page * page;
    std::uint64_t hi = ref.payload_offset + ref.payload_bytes;
    hi = hi / page * page; // keep the page the next chunk starts on
    if (hi > lo) {
        ::madvise(const_cast<std::uint8_t *>(base_ + lo), hi - lo,
                  MADV_DONTNEED);
    }
}

} // namespace traces
} // namespace glider
