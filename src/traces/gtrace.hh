/**
 * @file
 * gtrace v1: the compact on-disk trace format behind billion-access
 * streaming simulation.
 *
 * An in-memory Trace costs ~24 bytes per access; at the paper's
 * multi-billion-access trace lengths that is tens of gigabytes per
 * workload. gtrace stores the same stream in a few bytes per access
 * by delta-encoding PCs and addresses (consecutive accesses are
 * overwhelmingly near each other in both spaces) and never requires
 * more than one chunk of decoded records in memory at a time.
 *
 * File layout (all integers little-endian):
 *
 *   FileHeader
 *     magic         8 bytes  "GLDRGTR1"
 *     version       u32      1
 *     name_len      u32      trace-name byte count
 *     name          name_len bytes (no terminator)
 *     chunk_target  u32      records per full chunk at write time
 *     reserved      u32      0
 *   Chunk (repeated; zero or more)
 *     chunk_magic   u32      0x4B4E4843 ("CHNK")
 *     records       u32      records in this chunk (1..chunk_target)
 *     payload_bytes u64      encoded byte count
 *     checksum      u64      FNV-1a 64 over the payload bytes
 *     payload       payload_bytes bytes
 *   Trailer
 *     end_magic     u32      0x444E4547 ("GEND")
 *     reserved      u32      0
 *     total_records u64      sum of chunk record counts
 *     chunk_count   u64      number of chunks
 *
 * Payload encoding, per record, in order:
 *     flags    1 byte        core << 1 | is_write
 *     pc       zigzag varint delta vs. previous record's pc
 *     address  zigzag varint delta vs. previous record's address
 * Deltas reset to (0, 0) at every chunk start, so each chunk decodes
 * independently — the property chunk-sliced streaming and random
 * chunk access both rely on. Deltas are computed modulo 2^64, so any
 * jump (including > 4 GiB in either direction) round-trips exactly.
 *
 * The reader mmaps the file and decodes one chunk at a time into a
 * caller-provided buffer; consumed pages can be dropped with
 * dropChunkPages() so sequential replay keeps resident memory O(1)
 * in trace length.
 */

#ifndef GLIDER_TRACES_GTRACE_HH
#define GLIDER_TRACES_GTRACE_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "access.hh"
#include "sink.hh"

namespace glider {
namespace traces {

namespace gtrace {

/** Records per chunk unless the writer is told otherwise. */
constexpr std::uint32_t kDefaultChunkRecords = 1u << 16;

/** Worst-case encoded bytes per record (flags + two 10-byte varints). */
constexpr std::size_t kMaxRecordBytes = 21;

} // namespace gtrace

/**
 * Streaming gtrace writer: push records, get a chunked, checksummed
 * file. Memory use is one encode buffer (chunk_target records' worst
 * case), independent of how many records pass through.
 */
class GtraceWriter
{
  public:
    GtraceWriter() = default;
    ~GtraceWriter();

    GtraceWriter(const GtraceWriter &) = delete;
    GtraceWriter &operator=(const GtraceWriter &) = delete;

    /**
     * Create @p path and write the file header. @p name is the trace
     * name embedded in the file (the workload name, so streamed
     * results label rows identically to in-memory ones).
     */
    bool open(const std::string &path, const std::string &name,
              std::uint32_t chunk_target = gtrace::kDefaultChunkRecords);

    /** Append one record (buffered; flushed at chunk boundaries). */
    void push(const AccessRecord &rec);

    /** Records pushed so far. */
    std::uint64_t pushed() const { return pushed_; }

    /** False after any write error; finish() will fail. */
    bool ok() const { return file_ != nullptr && ok_; }

    /**
     * Flush the final partial chunk, write the trailer, and close.
     * @return true when every byte reached the file.
     */
    bool finish();

  private:
    void flushChunk();
    void put8(std::uint8_t b) { buf_[used_++] = b; }
    void putVarint(std::uint64_t v);

    std::FILE *file_ = nullptr;
    std::vector<std::uint8_t> buf_; //!< encode buffer, sized at open
    std::size_t used_ = 0;          //!< encoded bytes in buf_
    std::uint32_t chunk_target_ = gtrace::kDefaultChunkRecords;
    std::uint32_t chunk_records_ = 0;
    std::uint64_t chunk_count_ = 0;
    std::uint64_t pushed_ = 0;
    std::uint64_t prev_pc_ = 0;
    std::uint64_t prev_addr_ = 0;
    bool ok_ = false;
    bool finished_ = false;
};

/** TraceSink adapter: kernels generate straight to disk through it. */
class GtraceSink final : public TraceSink
{
  public:
    explicit GtraceSink(GtraceWriter &writer) : writer_(&writer) {}

    void push(const AccessRecord &rec) override { writer_->push(rec); }
    using TraceSink::push;
    std::uint64_t size() const override { return writer_->pushed(); }

  private:
    GtraceWriter *writer_;
};

/**
 * mmap-backed gtrace reader. open() validates the framing end to end
 * (magic, version, chunk bounds, trailer totals) and builds a chunk
 * index; readChunk() verifies the chunk checksum and decodes into a
 * caller buffer. Only decoded data is ever materialized, one chunk at
 * a time.
 */
class StreamingTrace
{
  public:
    StreamingTrace() = default;
    ~StreamingTrace();

    StreamingTrace(const StreamingTrace &) = delete;
    StreamingTrace &operator=(const StreamingTrace &) = delete;
    StreamingTrace(StreamingTrace &&other) noexcept;
    StreamingTrace &operator=(StreamingTrace &&other) noexcept;

    /**
     * Map @p path and validate its structure. On failure returns
     * false and (when @p error is non-null) describes what was wrong
     * — bad magic, truncated chunk, trailer mismatch, and so on.
     */
    bool open(const std::string &path, std::string *error = nullptr);

    bool isOpen() const { return base_ != nullptr; }
    const std::string &name() const { return name_; }
    const std::string &path() const { return path_; }

    /** Total records across all chunks (from the verified trailer). */
    std::uint64_t size() const { return total_records_; }
    std::size_t chunkCount() const { return chunks_.size(); }

    /** Records in chunk @p idx. */
    std::uint32_t chunkRecords(std::size_t idx) const
    {
        return chunks_[idx].records;
    }

    /** Largest chunk record count — the decode-buffer capacity. */
    std::uint32_t maxChunkRecords() const { return max_chunk_records_; }

    /** Mapped file size in bytes. */
    std::uint64_t fileBytes() const { return map_bytes_; }

    /**
     * Decode chunk @p idx into @p out (capacity @p cap records).
     * @return the record count. Throws std::runtime_error on a
     * checksum mismatch, malformed payload, or insufficient capacity.
     */
    std::size_t readChunk(std::size_t idx, AccessRecord *out,
                          std::size_t cap) const;

    /**
     * Tell the kernel chunk @p idx's pages will not be re-read soon.
     * Sequential replay calls this on consumed chunks so resident
     * memory stays O(1); dropped pages transparently refault if a
     * rewind revisits them.
     */
    void dropChunkPages(std::size_t idx) const;

  private:
    struct ChunkRef
    {
        std::uint64_t payload_offset = 0;
        std::uint64_t payload_bytes = 0;
        std::uint64_t checksum = 0;
        std::uint32_t records = 0;
    };

    void close();

    std::string path_;
    std::string name_;
    const std::uint8_t *base_ = nullptr;
    std::uint64_t map_bytes_ = 0;
    std::uint64_t total_records_ = 0;
    std::uint32_t chunk_target_ = 0;
    std::uint32_t max_chunk_records_ = 0;
    std::vector<ChunkRef> chunks_;
};

} // namespace traces
} // namespace glider

#endif // GLIDER_TRACES_GTRACE_HH
