/**
 * @file
 * Trace summary statistics — the columns of the paper's Table 2:
 * number of accesses, unique PCs, unique block addresses, mean
 * accesses per PC, and mean accesses per address.
 */

#ifndef GLIDER_TRACES_TRACE_STATS_HH
#define GLIDER_TRACES_TRACE_STATS_HH

#include <cstdint>
#include <string>

#include "trace.hh"

namespace glider {
namespace traces {

/** Aggregate statistics for one trace (Table 2 row). */
struct TraceStats
{
    std::string name;
    std::uint64_t accesses = 0;
    std::uint64_t unique_pcs = 0;
    std::uint64_t unique_addrs = 0; //!< unique 64B block addresses
    double accesses_per_pc = 0.0;
    double accesses_per_addr = 0.0;
};

/** Compute Table 2 statistics for @p trace. */
TraceStats computeStats(const Trace &trace);

/** Render a Table 2-style row ("mcf  19.9M  650  0.87M  30K  22.9"). */
std::string formatStatsRow(const TraceStats &s);

} // namespace traces
} // namespace glider

#endif // GLIDER_TRACES_TRACE_STATS_HH
