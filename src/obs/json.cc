#include "json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace glider {
namespace obs {
namespace json {

namespace {

[[noreturn]] void
typeError(const char *want, Value::Kind got)
{
    static const char *names[] = {"null",   "bool",  "int",   "double",
                                  "string", "array", "object"};
    throw std::runtime_error(std::string("json: expected ") + want
                             + ", have "
                             + names[static_cast<int>(got)]);
}

/** Shortest round-trippable representation of a finite double. */
std::string
formatDouble(double d)
{
    if (!std::isfinite(d)) {
        // JSON has no inf/nan; serialize as null per common practice.
        return "null";
    }
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), d);
    std::string s(buf, res.ptr);
    // Keep a decimal point or exponent so the value parses back as a
    // Double, not an Int.
    if (s.find_first_of(".eE") == std::string::npos)
        s += ".0";
    return s;
}

} // namespace

bool
Value::boolean() const
{
    if (kind_ != Kind::Bool)
        typeError("bool", kind_);
    return bool_;
}

std::int64_t
Value::integer() const
{
    if (kind_ != Kind::Int)
        typeError("int", kind_);
    return int_;
}

double
Value::number() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    if (kind_ != Kind::Double)
        typeError("number", kind_);
    return double_;
}

const std::string &
Value::str() const
{
    if (kind_ != Kind::String)
        typeError("string", kind_);
    return string_;
}

void
Value::push(Value v)
{
    if (kind_ != Kind::Array)
        typeError("array", kind_);
    array_.push_back(std::move(v));
}

std::size_t
Value::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    typeError("array or object", kind_);
}

const Value &
Value::at(std::size_t i) const
{
    if (kind_ != Kind::Array)
        typeError("array", kind_);
    if (i >= array_.size())
        throw std::runtime_error("json: array index out of range");
    return array_[i];
}

Value &
Value::operator[](const std::string &key)
{
    if (kind_ != Kind::Object)
        typeError("object", kind_);
    for (auto &[k, v] : object_) {
        if (k == key)
            return v;
    }
    object_.emplace_back(key, Value());
    return object_.back().second;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        typeError("object", kind_);
    for (const auto &[k, v] : object_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (kind_ != Kind::Object)
        typeError("object", kind_);
    return object_;
}

bool
Value::operator==(const Value &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == other.bool_;
      case Kind::Int:
        return int_ == other.int_;
      case Kind::Double:
        return double_ == other.double_;
      case Kind::String:
        return string_ == other.string_;
      case Kind::Array:
        return array_ == other.array_;
      case Kind::Object:
        return object_ == other.object_;
    }
    return false;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::Int: {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof(buf), int_);
        out.append(buf, res.ptr);
        return;
      }
      case Kind::Double:
        out += formatDouble(double_);
        return;
      case Kind::String:
        out += '"';
        out += escape(string_);
        out += '"';
        return;
      case Kind::Array:
        if (array_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        return;
      case Kind::Object:
        if (object_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += escape(object_[i].first);
            out += "\":";
            if (indent > 0)
                out += ' ';
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        return;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over a string view of the document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    document()
    {
        Value v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("json parse error at offset "
                                 + std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    value()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return Value(string());
          case 't':
            if (!consume("true"))
                fail("bad literal");
            return Value(true);
          case 'f':
            if (!consume("false"))
                fail("bad literal");
            return Value(false);
          case 'n':
            if (!consume("null"))
                fail("bad literal");
            return Value();
          default:
            return numberValue();
        }
    }

    Value
    object()
    {
        expect('{');
        Value out = Value::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        for (;;) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            out[key] = value();
            skipWs();
            char c = peek();
            ++pos_;
            if (c == '}')
                return out;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Value
    array()
    {
        expect('[');
        Value out = Value::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        for (;;) {
            out.push(value());
            skipWs();
            char c = peek();
            ++pos_;
            if (c == ']')
                return out;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode the code point (BMP only; surrogate
                // pairs are not produced by our own serializer).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80
                                             | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    Value
    numberValue()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool is_double = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+'
                       || c == '-') {
                is_double = is_double || c == '.' || c == 'e'
                    || c == 'E';
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
            fail("bad number");
        std::string tok = text_.substr(start, pos_ - start);
        if (!is_double) {
            std::int64_t i = 0;
            auto res = std::from_chars(tok.data(),
                                       tok.data() + tok.size(), i);
            if (res.ec == std::errc()
                && res.ptr == tok.data() + tok.size())
                return Value(i);
            // Out-of-range integer: fall through to double.
        }
        char *end = nullptr;
        double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail("bad number");
        return Value(d);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
Value::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace json
} // namespace obs
} // namespace glider
