#include "bench_report.hh"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/env_registry.hh"
#include "common/logging.hh"

namespace glider {
namespace obs {

const char *
directionName(Direction d)
{
    switch (d) {
      case Direction::HigherBetter:
        return "higher_better";
      case Direction::LowerBetter:
        return "lower_better";
      case Direction::Info:
        break;
    }
    return "info";
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void
BenchReport::config(const std::string &key, json::Value value)
{
    config_[key] = std::move(value);
}

void
BenchReport::metric(const std::string &name, double value,
                    const std::string &unit, Direction direction,
                    double tolerance)
{
    json::Value m = json::Value::object();
    m["value"] = value;
    if (!unit.empty())
        m["unit"] = unit;
    m["direction"] = directionName(direction);
    if (tolerance >= 0.0)
        m["tolerance"] = tolerance;
    metrics_[name] = std::move(m);
}

void
BenchReport::quarantine(const std::string &cell,
                        const std::string &error, int attempts)
{
    degraded_ = true;
    json::Value q = json::Value::object();
    q["cell"] = cell;
    q["error"] = error;
    q["attempts"] = attempts;
    quarantined_.push(std::move(q));
}

void
BenchReport::attach(const std::string &key, json::Value value)
{
    extra_[key] = std::move(value);
}

void
BenchReport::attachRegistry(const std::string &key, const Registry &reg)
{
    extra_[key] = reg.toJson();
}

json::Value
BenchReport::toJson() const
{
    json::Value out = json::Value::object();
    out["schema"] = "glider-bench";
    out["schema_version"] = kSchemaVersion;
    out["bench"] = name_;
    out["config"] = config_;
    out["metrics"] = metrics_;
    out["degraded"] = degraded_;
    if (quarantined_.size() > 0)
        out["quarantined_cells"] = quarantined_;
    if (extra_.size() > 0)
        out["extra"] = extra_;
    return out;
}

std::string
BenchReport::outputDir()
{
    return env::str(env::Knob::BenchDir);
}

std::string
BenchReport::write() const
{
    if (!env::flag(env::Knob::BenchJson))
        return "";
    std::string dir = outputDir();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec); // best effort
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        GLIDER_WARN("BenchReport: cannot open " + path
                    + " for writing");
        return "";
    }
    std::string doc = toJson().dump();
    doc += '\n';
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    bool closed = std::fclose(f) == 0;
    if (n != doc.size() || !closed) {
        GLIDER_WARN("BenchReport: short write to " + path);
        return "";
    }
    std::printf("[bench json] wrote %s\n", path.c_str());
    return path;
}

} // namespace obs
} // namespace glider
