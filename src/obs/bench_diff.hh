/**
 * @file
 * Comparator for two BENCH_*.json documents (see bench_report.hh):
 * per-metric deltas with per-metric or global failure tolerances.
 * The CI perf-regression gate is `tools/bench_diff baseline current`;
 * this header is the library half so tests can inject regressions
 * and assert the verdict directly.
 */

#ifndef GLIDER_OBS_BENCH_DIFF_HH
#define GLIDER_OBS_BENCH_DIFF_HH

#include <string>
#include <vector>

#include "bench_report.hh"
#include "json.hh"

namespace glider {
namespace obs {

/** Comparator knobs. */
struct DiffOptions
{
    /** Allowed relative change for metrics without their own. */
    double default_tolerance = 0.10;
    /** A gated baseline metric missing from current fails the diff. */
    bool fail_on_missing = true;
};

/** One metric's comparison. */
struct MetricDelta
{
    std::string name;
    double baseline = 0.0;
    double current = 0.0;
    double change = 0.0; //!< (current - baseline) / |baseline|
    double tolerance = 0.0;
    Direction direction = Direction::Info;
    bool gated = false;     //!< direction != Info and baseline != 0
    bool regressed = false; //!< beyond tolerance in the bad direction
};

/** Full comparison of two bench documents. */
struct DiffResult
{
    std::vector<MetricDelta> deltas;
    std::vector<std::string> missing; //!< in baseline, not in current
    std::vector<std::string> added;   //!< in current, not in baseline
    bool pass = true;

    std::size_t regressions() const;
};

/**
 * Compare two parsed bench documents.
 * @throws std::runtime_error if either document is not a
 * glider-bench schema-version-1 report or the bench names differ.
 */
DiffResult diffReports(const json::Value &baseline,
                       const json::Value &current,
                       const DiffOptions &opts = DiffOptions());

/** Human-readable table of a DiffResult for CLI / log output. */
std::string formatDiff(const DiffResult &result);

} // namespace obs
} // namespace glider

#endif // GLIDER_OBS_BENCH_DIFF_HH
