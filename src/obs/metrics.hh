/**
 * @file
 * Lightweight metrics: Counter, Gauge, Histogram (fixed-bucket with
 * percentiles), ScopedTimer, and a hierarchical Registry with a
 * schema-versioned JSON export.
 *
 * All metric types are safe for concurrent recording (relaxed
 * atomics), so harness workers can hammer a shared registry. Reads
 * taken while writers are active are approximate snapshots, which is
 * the usual contract for telemetry.
 *
 * Hot-path instrumentation uses the HotCounter/HotHistogram aliases:
 * with -DGLIDER_METRICS=ON they are the real metric types, in default
 * builds they are empty no-op structs that the optimizer deletes —
 * the same compile-time pattern as GLIDER_CHECKED, so the simulator's
 * per-access cost is untouched unless telemetry is asked for.
 */

#ifndef GLIDER_OBS_METRICS_HH
#define GLIDER_OBS_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "json.hh"

namespace glider {
namespace obs {

/** Monotonic event counter. */
class Counter
{
  public:
    void
    inc(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Overwrite the count — for snapshot exports and resets only. */
    void
    set(std::uint64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Point-in-time scalar (occupancy, rate, configuration value). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(double delta)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed))
            ;
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram over [lo, hi): @p buckets equal-width bins
 * plus an overflow bin for samples >= hi (samples below lo clamp into
 * the first bin). Tracks exact count/sum/min/max alongside the bins,
 * so mean and extreme values do not suffer bucket quantization.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void record(double x);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const;
    double min() const; //!< 0 when empty
    double max() const; //!< 0 when empty

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    std::size_t buckets() const { return nbuckets_; }
    std::uint64_t bucketCount(std::size_t i) const;
    std::uint64_t overflow() const; //!< samples recorded >= hi
    double binLow(std::size_t i) const;

    /**
     * Value below which @p q percent of samples fall, interpolated
     * within the containing bucket. Edge cases: 0 on an empty
     * histogram; a percentile landing in the overflow bucket returns
     * the exact observed max.
     */
    double percentile(double q) const;

    /** Add @p other's samples; shapes must match exactly (throws). */
    void merge(const Histogram &other);

    /** Export as a JSON leaf (count/min/max/mean/p50/p95/p99/bins). */
    json::Value toJson() const;

  private:
    double lo_;
    double hi_;
    double width_; //!< per-bucket width
    std::size_t nbuckets_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_; //!< +overflow
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/**
 * Hierarchical metric registry. Metric names are dot-separated paths
 * ("llc.hits", "harness.pool.peak_queue_depth"); the JSON export
 * nests on the dots. Registration is mutex-guarded and idempotent
 * (same name + same type returns the existing metric); recording
 * through the returned references is lock-free. Returned references
 * stay valid for the registry's lifetime.
 */
class Registry
{
  public:
    static constexpr int kSchemaVersion = 1;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name, double lo, double hi,
                         std::size_t buckets);
    /** String annotation leaf (policy name, build flavor, ...). */
    void label(const std::string &name, std::string value);

    /** Snapshot helpers for component export paths. */
    void
    setCounter(const std::string &name, std::uint64_t v)
    {
        counter(name).set(v);
    }
    void
    setGauge(const std::string &name, double v)
    {
        gauge(name).set(v);
    }

    bool has(const std::string &name) const;
    std::vector<std::string> names() const;

    /**
     * Schema-versioned export:
     * {"schema": "glider-metrics", "schema_version": 1,
     *  "metrics": {<tree nested on the dotted names>}}.
     * @throws std::runtime_error if one metric's path is a prefix of
     * another's (a leaf cannot also be a subtree).
     */
    json::Value toJson() const;

  private:
    struct Entry
    {
        // Exactly one is set; unique_ptr keeps addresses stable.
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::unique_ptr<std::string> label;
    };

    mutable Mutex mutex_;
    std::map<std::string, Entry> entries_ GLIDER_GUARDED_BY(mutex_);
};

/**
 * Records the wall time of a scope into a Histogram (scaled seconds;
 * the default scale 1e6 records microseconds) and/or accumulates
 * nanoseconds into a Counter. stop() ends timing early and returns
 * elapsed seconds; the destructor is then a no-op.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &hist, double scale = 1e6)
        : hist_(&hist), scale_(scale), start_(now())
    {
    }

    explicit ScopedTimer(Counter &total_ns)
        : total_ns_(&total_ns), start_(now())
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer() { stop(); }

    double
    stop()
    {
        if (done_)
            return elapsed_;
        done_ = true;
        elapsed_ = std::chrono::duration<double>(now() - start_).count();
        if (hist_)
            hist_->record(elapsed_ * scale_);
        if (total_ns_)
            total_ns_->inc(static_cast<std::uint64_t>(elapsed_ * 1e9));
        return elapsed_;
    }

  private:
    static std::chrono::steady_clock::time_point
    now()
    {
        return std::chrono::steady_clock::now();
    }

    Histogram *hist_ = nullptr;
    Counter *total_ns_ = nullptr;
    double scale_ = 1.0;
    std::chrono::steady_clock::time_point start_;
    bool done_ = false;
    double elapsed_ = 0.0;
};

#if defined(GLIDER_METRICS) && GLIDER_METRICS
inline constexpr bool kMetricsEnabled = true;
using HotCounter = Counter;
using HotHistogram = Histogram;
#else
inline constexpr bool kMetricsEnabled = false;

/** No-op stand-in for Counter on unmetered hot paths. */
struct HotCounter
{
    void inc(std::uint64_t = 1) {}
    std::uint64_t value() const { return 0; }
    void set(std::uint64_t) {}
};

/** No-op stand-in for Histogram on unmetered hot paths. */
struct HotHistogram
{
    HotHistogram(double, double, std::size_t) {}
    void record(double) {}
    std::uint64_t count() const { return 0; }
};
#endif

} // namespace obs
} // namespace glider

#endif // GLIDER_OBS_METRICS_HH
