#include "metrics.hh"

#include <stdexcept>

namespace glider {
namespace obs {

namespace {

/** Relaxed atomic min/max via CAS. */
void
atomicMin(std::atomic<double> &slot, double x)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (x < cur
           && !slot.compare_exchange_weak(cur, x,
                                          std::memory_order_relaxed))
        ;
}

void
atomicMax(std::atomic<double> &slot, double x)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (x > cur
           && !slot.compare_exchange_weak(cur, x,
                                          std::memory_order_relaxed))
        ;
}

void
atomicAdd(std::atomic<double> &slot, double x)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(cur, cur + x,
                                       std::memory_order_relaxed))
        ;
}

} // namespace

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), nbuckets_(buckets)
{
    if (!(hi > lo) || buckets == 0)
        throw std::invalid_argument(
            "Histogram: need hi > lo and buckets >= 1");
    width_ = (hi_ - lo_) / static_cast<double>(nbuckets_);
    counts_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(nbuckets_ + 1);
    for (std::size_t i = 0; i <= nbuckets_; ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::record(double x)
{
    std::size_t bin;
    if (x >= hi_) {
        bin = nbuckets_; // overflow
    } else if (x < lo_) {
        bin = 0; // clamp below range into the first bucket
    } else {
        bin = static_cast<std::size_t>((x - lo_) / width_);
        if (bin >= nbuckets_)
            bin = nbuckets_ - 1; // floating-point edge at hi
    }
    counts_[bin].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, x);
    atomicMin(min_, x);
    atomicMax(max_, x);
}

double
Histogram::mean() const
{
    std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
}

double
Histogram::min() const
{
    return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double
Histogram::max() const
{
    return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    if (i >= nbuckets_)
        throw std::out_of_range("Histogram::bucketCount");
    return counts_[i].load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::overflow() const
{
    return counts_[nbuckets_].load(std::memory_order_relaxed);
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::percentile(double q) const
{
    std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 100.0)
        q = 100.0;
    double target = q / 100.0 * static_cast<double>(total);
    double cum = 0.0;
    for (std::size_t b = 0; b < nbuckets_; ++b) {
        auto c = static_cast<double>(
            counts_[b].load(std::memory_order_relaxed));
        if (c > 0.0 && target <= cum + c) {
            double frac = (target - cum) / c;
            double v = binLow(b) + frac * width_;
            // Never report beyond the exactly-tracked extremes.
            double mn = min_.load(std::memory_order_relaxed);
            double mx = max_.load(std::memory_order_relaxed);
            if (v < mn)
                v = mn;
            if (v > mx)
                v = mx;
            return v;
        }
        cum += c;
    }
    // Falls in the overflow bucket: the exact max is the best answer.
    return max_.load(std::memory_order_relaxed);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.lo_ != lo_ || other.hi_ != hi_
        || other.nbuckets_ != nbuckets_)
        throw std::invalid_argument(
            "Histogram::merge: shape mismatch");
    if (other.count() == 0)
        return;
    for (std::size_t i = 0; i <= nbuckets_; ++i)
        counts_[i].fetch_add(
            other.counts_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    atomicAdd(sum_, other.sum());
    atomicMin(min_, other.min_.load(std::memory_order_relaxed));
    atomicMax(max_, other.max_.load(std::memory_order_relaxed));
}

json::Value
Histogram::toJson() const
{
    json::Value out = json::Value::object();
    out["type"] = "histogram";
    out["count"] = count();
    out["min"] = min();
    out["max"] = max();
    out["mean"] = mean();
    out["p50"] = percentile(50.0);
    out["p95"] = percentile(95.0);
    out["p99"] = percentile(99.0);
    out["lo"] = lo_;
    out["hi"] = hi_;
    json::Value bins = json::Value::array();
    for (std::size_t i = 0; i < nbuckets_; ++i)
        bins.push(bucketCount(i));
    out["buckets"] = std::move(bins);
    out["overflow"] = overflow();
    return out;
}

Counter &
Registry::counter(const std::string &name)
{
    LockGuard lock(mutex_);
    Entry &e = entries_[name];
    if (e.gauge || e.histogram || e.label)
        throw std::invalid_argument("Registry: '" + name
                                    + "' already registered with a "
                                      "different type");
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
Registry::gauge(const std::string &name)
{
    LockGuard lock(mutex_);
    Entry &e = entries_[name];
    if (e.counter || e.histogram || e.label)
        throw std::invalid_argument("Registry: '" + name
                                    + "' already registered with a "
                                      "different type");
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
Registry::histogram(const std::string &name, double lo, double hi,
                    std::size_t buckets)
{
    LockGuard lock(mutex_);
    Entry &e = entries_[name];
    if (e.counter || e.gauge || e.label)
        throw std::invalid_argument("Registry: '" + name
                                    + "' already registered with a "
                                      "different type");
    if (!e.histogram)
        e.histogram = std::make_unique<Histogram>(lo, hi, buckets);
    else if (e.histogram->lo() != lo || e.histogram->hi() != hi
             || e.histogram->buckets() != buckets)
        throw std::invalid_argument("Registry: histogram '" + name
                                    + "' re-registered with a "
                                      "different shape");
    return *e.histogram;
}

void
Registry::label(const std::string &name, std::string value)
{
    LockGuard lock(mutex_);
    Entry &e = entries_[name];
    if (e.counter || e.gauge || e.histogram)
        throw std::invalid_argument("Registry: '" + name
                                    + "' already registered with a "
                                      "different type");
    e.label = std::make_unique<std::string>(std::move(value));
}

bool
Registry::has(const std::string &name) const
{
    LockGuard lock(mutex_);
    return entries_.count(name) != 0;
}

std::vector<std::string>
Registry::names() const
{
    LockGuard lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

json::Value
Registry::toJson() const
{
    LockGuard lock(mutex_);
    json::Value metrics = json::Value::object();
    for (const auto &[name, entry] : entries_) {
        // Walk/create the object spine named by the dotted prefix.
        json::Value *node = &metrics;
        std::size_t start = 0;
        for (;;) {
            std::size_t dot = name.find('.', start);
            std::string part = name.substr(
                start, dot == std::string::npos ? std::string::npos
                                                : dot - start);
            json::Value &child = (*node)[part];
            if (dot == std::string::npos) {
                if (!child.isNull())
                    throw std::runtime_error(
                        "Registry::toJson: '" + name
                        + "' conflicts with a nested subtree");
                if (entry.counter)
                    child = json::Value(entry.counter->value());
                else if (entry.gauge)
                    child = json::Value(entry.gauge->value());
                else if (entry.histogram)
                    child = entry.histogram->toJson();
                else
                    child = json::Value(*entry.label);
                break;
            }
            if (child.isNull())
                child = json::Value::object();
            else if (!child.isObject())
                throw std::runtime_error(
                    "Registry::toJson: '" + name
                    + "' nests inside a non-object leaf");
            node = &child;
            start = dot + 1;
        }
    }
    json::Value out = json::Value::object();
    out["schema"] = "glider-metrics";
    out["schema_version"] = kSchemaVersion;
    out["metrics"] = std::move(metrics);
    return out;
}

} // namespace obs
} // namespace glider
