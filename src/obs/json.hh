/**
 * @file
 * Minimal JSON document model shared by the metrics registry, the
 * bench-report writer, and tools/bench_diff: an ordered tree of
 * values with a serializer (correct string escaping, round-trippable
 * numbers) and a strict recursive-descent parser. No external
 * dependency; this is the one place in the repo that builds or reads
 * JSON, replacing the hand-concatenated printf JSON the benches used
 * to emit.
 */

#ifndef GLIDER_OBS_JSON_HH
#define GLIDER_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace glider {
namespace obs {
namespace json {

/**
 * One JSON value. Objects preserve insertion order so serialized
 * reports read in the order they were built (lookup is linear, which
 * is fine for report-sized documents).
 */
class Value
{
  public:
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    Value() : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(int i) : kind_(Kind::Int), int_(i) {}
    Value(std::int64_t i) : kind_(Kind::Int), int_(i) {}
    Value(std::uint64_t i)
        : kind_(Kind::Int), int_(static_cast<std::int64_t>(i))
    {
    }
    Value(double d) : kind_(Kind::Double), double_(d) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), string_(s) {}

    static Value array() { return Value(Kind::Array); }
    static Value object() { return Value(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; throw std::runtime_error on kind mismatch. */
    bool boolean() const;
    std::int64_t integer() const;
    double number() const; //!< Int or Double, widened to double
    const std::string &str() const;

    /** Array element access/append. */
    void push(Value v);
    std::size_t size() const; //!< array elements or object members
    const Value &at(std::size_t i) const;

    /** Object member access: inserts a Null member when absent. */
    Value &operator[](const std::string &key);
    /** Object member lookup; nullptr when absent. */
    const Value *find(const std::string &key) const;
    const std::vector<std::pair<std::string, Value>> &members() const;

    /** Deep structural equality (Int and Double never compare equal). */
    bool operator==(const Value &other) const;
    bool operator!=(const Value &other) const
    {
        return !(*this == other);
    }

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 2) const;

    /**
     * Parse a complete JSON document (trailing garbage rejected).
     * @throws std::runtime_error with offset context on bad input.
     */
    static Value parse(const std::string &text);

  private:
    explicit Value(Kind kind) : kind_(kind) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;
};

/** JSON string escaping ("\"" -> "\\\"", control chars -> \uXXXX). */
std::string escape(const std::string &s);

} // namespace json
} // namespace obs
} // namespace glider

#endif // GLIDER_OBS_JSON_HH
