#include "bench_diff.hh"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace glider {
namespace obs {

namespace {

/** Validate the envelope and return the "metrics" object. */
const json::Value &
metricsOf(const json::Value &doc, const char *which)
{
    if (!doc.isObject())
        throw std::runtime_error(std::string(which)
                                 + ": not a JSON object");
    const json::Value *schema = doc.find("schema");
    if (!schema || !schema->isString()
        || schema->str() != "glider-bench")
        throw std::runtime_error(std::string(which)
                                 + ": not a glider-bench document");
    const json::Value *version = doc.find("schema_version");
    if (!version || !version->isNumber()
        || version->integer() != BenchReport::kSchemaVersion)
        throw std::runtime_error(
            std::string(which) + ": unsupported schema_version");
    const json::Value *metrics = doc.find("metrics");
    if (!metrics || !metrics->isObject())
        throw std::runtime_error(std::string(which)
                                 + ": missing metrics object");
    return *metrics;
}

Direction
parseDirection(const json::Value &metric)
{
    const json::Value *d = metric.find("direction");
    if (!d || !d->isString())
        return Direction::Info;
    if (d->str() == "higher_better")
        return Direction::HigherBetter;
    if (d->str() == "lower_better")
        return Direction::LowerBetter;
    return Direction::Info;
}

double
metricValue(const json::Value &metric, const std::string &name)
{
    const json::Value *v = metric.find("value");
    if (!v || !v->isNumber())
        throw std::runtime_error("metric '" + name
                                 + "' has no numeric value");
    return v->number();
}

} // namespace

std::size_t
DiffResult::regressions() const
{
    std::size_t n = 0;
    for (const auto &d : deltas)
        n += d.regressed ? 1 : 0;
    return n;
}

DiffResult
diffReports(const json::Value &baseline, const json::Value &current,
            const DiffOptions &opts)
{
    const json::Value &base_metrics = metricsOf(baseline, "baseline");
    const json::Value &cur_metrics = metricsOf(current, "current");

    const json::Value *base_name = baseline.find("bench");
    const json::Value *cur_name = current.find("bench");
    if (base_name && cur_name && base_name->isString()
        && cur_name->isString() && base_name->str() != cur_name->str())
        throw std::runtime_error("bench name mismatch: baseline '"
                                 + base_name->str() + "' vs current '"
                                 + cur_name->str() + "'");

    DiffResult out;
    for (const auto &[name, base_metric] : base_metrics.members()) {
        Direction dir = parseDirection(base_metric);
        const json::Value *cur_metric = cur_metrics.find(name);
        if (!cur_metric) {
            out.missing.push_back(name);
            if (opts.fail_on_missing && dir != Direction::Info)
                out.pass = false;
            continue;
        }

        MetricDelta d;
        d.name = name;
        d.baseline = metricValue(base_metric, name);
        d.current = metricValue(*cur_metric, name);
        d.direction = dir;
        const json::Value *tol = base_metric.find("tolerance");
        d.tolerance = tol && tol->isNumber() ? tol->number()
                                             : opts.default_tolerance;
        if (d.baseline != 0.0)
            d.change = (d.current - d.baseline) / std::fabs(d.baseline);
        else
            d.change = d.current == 0.0 ? 0.0
                                        : std::numeric_limits<
                                              double>::infinity();
        // A zero baseline has no meaningful relative change; report
        // it but never gate on it.
        d.gated = dir != Direction::Info && d.baseline != 0.0;
        if (d.gated) {
            if (dir == Direction::HigherBetter)
                d.regressed = d.change < -d.tolerance;
            else
                d.regressed = d.change > d.tolerance;
        }
        if (d.regressed)
            out.pass = false;
        out.deltas.push_back(std::move(d));
    }

    for (const auto &[name, metric] : cur_metrics.members()) {
        (void)metric;
        if (!base_metrics.find(name))
            out.added.push_back(name);
    }
    return out;
}

std::string
formatDiff(const DiffResult &result)
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "%-52s %14s %14s %9s %7s  %s\n",
                  "metric", "baseline", "current", "change", "tol",
                  "verdict");
    out += line;
    for (const auto &d : result.deltas) {
        const char *verdict = d.regressed
            ? "REGRESSED"
            : (d.gated ? "ok" : "info");
        std::snprintf(line, sizeof(line),
                      "%-52s %14.4g %14.4g %+8.1f%% %6.0f%%  %s\n",
                      d.name.c_str(), d.baseline, d.current,
                      100.0 * d.change, 100.0 * d.tolerance, verdict);
        out += line;
    }
    for (const auto &name : result.missing) {
        std::snprintf(line, sizeof(line),
                      "%-52s missing from current run\n", name.c_str());
        out += line;
    }
    for (const auto &name : result.added) {
        std::snprintf(line, sizeof(line),
                      "%-52s new (not in baseline)\n", name.c_str());
        out += line;
    }
    std::snprintf(line, sizeof(line),
                  "%zu metric(s) compared, %zu regression(s), "
                  "%zu missing -> %s\n",
                  result.deltas.size(), result.regressions(),
                  result.missing.size(),
                  result.pass ? "PASS" : "FAIL");
    out += line;
    return out;
}

} // namespace obs
} // namespace glider
