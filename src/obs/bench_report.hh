/**
 * @file
 * Machine-readable bench artifacts: every bench binary builds a
 * BenchReport alongside its human-readable table and writes it as
 * BENCH_<name>.json, the schema-versioned trajectory format that
 * tools/bench_diff and the CI perf-regression gate consume.
 *
 * Schema (version 1):
 * {
 *   "schema": "glider-bench",
 *   "schema_version": 1,
 *   "bench": "<name>",
 *   "config": { <env knobs and bench parameters> },
 *   "metrics": {
 *     "<metric name>": {
 *       "value": <number>,
 *       "unit": "<string>",                  // optional
 *       "direction": "higher_better" | "lower_better" | "info",
 *       "tolerance": <fraction>              // optional, see below
 *     }, ...
 *   },
 *   "degraded": <bool>,                      // any cell quarantined
 *   "quarantined_cells": [                   // present when degraded
 *     { "cell": "<key>", "error": "<what>", "attempts": <n> }, ...
 *   ],
 *   "extra": { <free-form attachments, e.g. a Registry export> }
 * }
 *
 * "degraded" distinguishes partial results from clean runs by
 * machine: a sweep that quarantined cells still writes its artifact,
 * but consumers (and humans) can see exactly which rows are missing
 * and why.
 *
 * "direction" tells bench_diff which way a change is a regression;
 * "info" metrics are reported but never gate. "tolerance" is the
 * per-metric allowed relative change; when absent the comparator's
 * default (10%) applies. Benches stamp generous tolerances on
 * absolute wall-clock metrics (machine-dependent) and tight ones on
 * ratios, so one committed baseline gates on any runner.
 */

#ifndef GLIDER_OBS_BENCH_REPORT_HH
#define GLIDER_OBS_BENCH_REPORT_HH

#include <string>

#include "json.hh"
#include "metrics.hh"

namespace glider {
namespace obs {

/** How bench_diff should interpret a metric's movement. */
enum class Direction { Info, HigherBetter, LowerBetter };

const char *directionName(Direction d);

/** One bench binary's machine-readable result document. */
class BenchReport
{
  public:
    static constexpr int kSchemaVersion = 1;

    /** @param name Bench name; the artifact is BENCH_<name>.json. */
    explicit BenchReport(std::string name);

    /** Record a configuration knob under "config". */
    void config(const std::string &key, json::Value value);

    /**
     * Record one metric. @p tolerance < 0 means "use the comparator
     * default"; the field is then omitted from the JSON.
     */
    void metric(const std::string &name, double value,
                const std::string &unit = "",
                Direction direction = Direction::Info,
                double tolerance = -1.0);

    /**
     * Record one quarantined sweep cell and mark the report degraded:
     * the artifact carries partial results.
     */
    void quarantine(const std::string &cell, const std::string &error,
                    int attempts);

    /** Explicitly set the degraded flag (quarantine() implies it). */
    void markDegraded(bool degraded) { degraded_ = degraded; }

    bool degraded() const { return degraded_; }

    /** Attach a free-form document section under "extra". */
    void attach(const std::string &key, json::Value value);

    /** Attach a Registry export under "extra".<key>. */
    void attachRegistry(const std::string &key, const Registry &reg);

    const std::string &name() const { return name_; }
    json::Value toJson() const;

    /**
     * Write BENCH_<name>.json into outputDir(). Disabled by
     * GLIDER_BENCH_JSON=0. Failures warn and return ""; success
     * returns the path written.
     */
    std::string write() const;

    /** Artifact directory: $GLIDER_BENCH_DIR, default ".". */
    static std::string outputDir();

  private:
    std::string name_;
    json::Value config_ = json::Value::object();
    json::Value metrics_ = json::Value::object();
    json::Value extra_ = json::Value::object();
    json::Value quarantined_ = json::Value::array();
    bool degraded_ = false;
};

} // namespace obs
} // namespace glider

#endif // GLIDER_OBS_BENCH_REPORT_HH
