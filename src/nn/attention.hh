/**
 * @file
 * Scaled dot-product attention (Eq. 3 of the paper, after Vaswani et
 * al.): for a target hidden state h_t and source states h_1..h_S,
 *
 *     a_t(s) = softmax_s( f * (h_t . h_s) ),   c_t = sum_s a_t(s) h_s
 *
 * The scaling factor f is the interpretability dial of §4.2: raising
 * it forces the attention distribution toward sparsity, exposing the
 * few source accesses that drive each decision (Figures 4/5).
 * Dot-product attention has no learnable parameters.
 */

#ifndef GLIDER_NN_ATTENTION_HH
#define GLIDER_NN_ATTENTION_HH

#include <vector>

#include "tensor.hh"

namespace glider {
namespace nn {

/** Cached state for one attention application. */
struct AttentionCache
{
    std::vector<float> weights; //!< a_t(s), post-softmax
};

/** Parameter-free scaled dot-product attention over source states. */
class ScaledDotAttention
{
  public:
    /** @param scale The scaling factor f (paper sweeps 1..5). */
    explicit ScaledDotAttention(float scale = 1.0f) : scale_(scale) {}

    float scale() const { return scale_; }
    void setScale(float s) { scale_ = s; }

    /**
     * Compute the context vector for target @p h_t over @p sources.
     * @param sources S source hidden states, each @p dim floats.
     * @param h_t Target hidden state (@p dim floats).
     * @param context Out: c_t (@p dim floats, overwritten).
     * @param cache Out: attention weights for backward/analysis.
     */
    void
    forward(const std::vector<const float *> &sources, const float *h_t,
            std::size_t dim, float *context, AttentionCache &cache) const
    {
        std::size_t S = sources.size();
        cache.weights.assign(S, 0.0f);
        for (std::size_t s = 0; s < S; ++s)
            cache.weights[s] = scale_ * dot(h_t, sources[s], dim);
        softmaxInPlace(cache.weights.data(), S);
        for (std::size_t j = 0; j < dim; ++j)
            context[j] = 0.0f;
        for (std::size_t s = 0; s < S; ++s) {
            float a = cache.weights[s];
            const float *hs = sources[s];
            for (std::size_t j = 0; j < dim; ++j)
                context[j] += a * hs[j];
        }
    }

    /**
     * Backward: accumulate gradients into the target and source
     * hidden states given dL/dcontext.
     * @param d_sources Gradient accumulators matching @p sources.
     * @param d_ht Gradient accumulator for the target state.
     */
    void
    backward(const std::vector<const float *> &sources, const float *h_t,
             std::size_t dim, const float *d_context,
             const AttentionCache &cache,
             const std::vector<float *> &d_sources, float *d_ht) const
    {
        std::size_t S = sources.size();
        GLIDER_ASSERT(cache.weights.size() == S);
        GLIDER_ASSERT(d_sources.size() == S);

        // dL/da_s = dc . h_s ; plus the direct path dh_s += a_s dc.
        std::vector<float> da(S, 0.0f);
        for (std::size_t s = 0; s < S; ++s) {
            da[s] = dot(d_context, sources[s], dim);
            float a = cache.weights[s];
            float *dhs = d_sources[s];
            for (std::size_t j = 0; j < dim; ++j)
                dhs[j] += a * d_context[j];
        }
        // Softmax backward: dscore_s = a_s (da_s - sum_k a_k da_k).
        float mix = 0.0f;
        for (std::size_t s = 0; s < S; ++s)
            mix += cache.weights[s] * da[s];
        for (std::size_t s = 0; s < S; ++s) {
            float dscore = cache.weights[s] * (da[s] - mix) * scale_;
            const float *hs = sources[s];
            float *dhs = d_sources[s];
            for (std::size_t j = 0; j < dim; ++j) {
                d_ht[j] += dscore * hs[j];
                dhs[j] += dscore * h_t[j];
            }
        }
    }

  private:
    float scale_;
};

} // namespace nn
} // namespace glider

#endif // GLIDER_NN_ATTENTION_HH
