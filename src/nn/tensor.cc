#include "tensor.hh"

#include <algorithm>
#include <cmath>

namespace glider {
namespace nn {

void
matvecAccum(const Tensor &w, const float *x, float *y)
{
    std::size_t m = w.rows();
    std::size_t n = w.cols();
    for (std::size_t i = 0; i < m; ++i) {
        const float *wi = w.row(i);
        float acc = 0.0f;
        for (std::size_t j = 0; j < n; ++j)
            acc += wi[j] * x[j];
        y[i] += acc;
    }
}

void
matvecBackward(const Tensor &w, const float *x, const float *dy,
               Tensor &dw, float *dx)
{
    std::size_t m = w.rows();
    std::size_t n = w.cols();
    GLIDER_ASSERT(dw.rows() == m && dw.cols() == n);
    for (std::size_t i = 0; i < m; ++i) {
        const float *wi = w.row(i);
        float *dwi = dw.row(i);
        float g = dy[i];
        for (std::size_t j = 0; j < n; ++j) {
            dwi[j] += g * x[j];
            if (dx)
                dx[j] += g * wi[j];
        }
    }
}

float
dot(const float *a, const float *b, std::size_t n)
{
    float acc = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

void
softmaxInPlace(float *x, std::size_t n)
{
    if (n == 0)
        return;
    float mx = *std::max_element(x, x + n);
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = std::exp(x[i] - mx);
        sum += x[i];
    }
    for (std::size_t i = 0; i < n; ++i)
        x[i] /= sum;
}

} // namespace nn
} // namespace glider
