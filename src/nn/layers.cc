#include "layers.hh"

#include <cmath>

namespace glider {
namespace nn {

namespace {

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

LstmCell::LstmCell(std::size_t in_dim, std::size_t hidden, Rng &rng)
    : in_dim_(in_dim), hidden_(hidden),
      wx_(Tensor::xavier(4 * hidden, in_dim, rng)),
      wh_(Tensor::xavier(4 * hidden, hidden, rng)),
      b_(Tensor(1, 4 * hidden))
{
    // Forget-gate bias at 1 so early training does not forget
    // everything (slot order: [i, f, g, o]).
    for (std::size_t j = 0; j < hidden; ++j)
        b_.value.data()[hidden + j] = 1.0f;
}

void
LstmCell::forwardStep(const float *x, const float *h_prev,
                      const float *c_prev, float *h, float *c,
                      LstmStepCache &cache) const
{
    std::size_t H = hidden_;
    cache.x.assign(x, x + in_dim_);
    cache.h_prev.assign(h_prev, h_prev + H);
    cache.c_prev.assign(c_prev, c_prev + H);
    cache.gates.assign(4 * H, 0.0f);
    cache.c.assign(H, 0.0f);
    cache.tanh_c.assign(H, 0.0f);

    float *pre = cache.gates.data();
    for (std::size_t j = 0; j < 4 * H; ++j)
        pre[j] = b_.value.data()[j];
    matvecAccum(wx_.value, x, pre);
    matvecAccum(wh_.value, h_prev, pre);

    for (std::size_t j = 0; j < H; ++j) {
        float i_g = sigmoid(pre[j]);
        float f_g = sigmoid(pre[H + j]);
        float g_g = std::tanh(pre[2 * H + j]);
        float o_g = sigmoid(pre[3 * H + j]);
        pre[j] = i_g;
        pre[H + j] = f_g;
        pre[2 * H + j] = g_g;
        pre[3 * H + j] = o_g;
        float cj = f_g * c_prev[j] + i_g * g_g;
        cache.c[j] = cj;
        float tc = std::tanh(cj);
        cache.tanh_c[j] = tc;
        c[j] = cj;
        h[j] = o_g * tc;
    }
}

void
LstmCell::backwardStep(const LstmStepCache &cache, const float *dh,
                       float *dc, float *dx, float *dh_prev)
{
    std::size_t H = hidden_;
    const float *g = cache.gates.data();
    std::vector<float> dpre(4 * H, 0.0f);

    for (std::size_t j = 0; j < H; ++j) {
        float i_g = g[j];
        float f_g = g[H + j];
        float g_g = g[2 * H + j];
        float o_g = g[3 * H + j];
        float tc = cache.tanh_c[j];

        // h = o * tanh(c): fold dh into the cell-state chain.
        float dcj = dc[j] + dh[j] * o_g * (1.0f - tc * tc);
        float do_g = dh[j] * tc;

        float di_g = dcj * g_g;
        float df_g = dcj * cache.c_prev[j];
        float dg_g = dcj * i_g;
        dc[j] = dcj * f_g; // becomes d c_prev

        // Through the gate nonlinearities (sigmoid / tanh).
        dpre[j] = di_g * i_g * (1.0f - i_g);
        dpre[H + j] = df_g * f_g * (1.0f - f_g);
        dpre[2 * H + j] = dg_g * (1.0f - g_g * g_g);
        dpre[3 * H + j] = do_g * o_g * (1.0f - o_g);
    }

    matvecBackward(wx_.value, cache.x.data(), dpre.data(), wx_.grad, dx);
    matvecBackward(wh_.value, cache.h_prev.data(), dpre.data(), wh_.grad,
                   dh_prev);
    for (std::size_t j = 0; j < 4 * H; ++j)
        b_.grad.data()[j] += dpre[j];
}

} // namespace nn
} // namespace glider
