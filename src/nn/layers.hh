/**
 * @file
 * Layers of the offline caching model: embedding, linear, and the
 * LSTM cell, each with explicit forward/backward and parameter
 * enumeration for the optimizer.
 */

#ifndef GLIDER_NN_LAYERS_HH
#define GLIDER_NN_LAYERS_HH

#include <cstdint>
#include <vector>

#include "tensor.hh"

namespace glider {
namespace nn {

/** Lookup table turning categorical ids (PCs) into dense vectors. */
class Embedding
{
  public:
    Embedding(std::size_t vocab, std::size_t dim, Rng &rng)
        : weight_(Tensor::xavier(vocab, dim, rng)), dim_(dim)
    {
    }

    std::size_t dim() const { return dim_; }
    std::size_t vocab() const { return weight_.value.rows(); }

    /** Row view of the embedding for id @p id. */
    const float *
    forward(std::size_t id) const
    {
        GLIDER_ASSERT(id < weight_.value.rows());
        return weight_.value.row(id);
    }

    /** Accumulate gradient @p dvec into row @p id. */
    void
    backward(std::size_t id, const float *dvec)
    {
        float *g = weight_.grad.row(id);
        for (std::size_t j = 0; j < dim_; ++j)
            g[j] += dvec[j];
    }

    std::vector<Param *> params() { return {&weight_}; }

  private:
    Param weight_;
    std::size_t dim_;
};

/** Fully-connected layer y = W x + b. */
class Linear
{
  public:
    Linear(std::size_t in, std::size_t out, Rng &rng)
        : w_(Tensor::xavier(out, in, rng)), b_(Tensor(1, out))
    {
    }

    std::size_t inDim() const { return w_.value.cols(); }
    std::size_t outDim() const { return w_.value.rows(); }

    /** y (out) = W x + b. @p y is overwritten. */
    void
    forward(const float *x, float *y) const
    {
        for (std::size_t i = 0; i < outDim(); ++i)
            y[i] = b_.value.data()[i];
        matvecAccum(w_.value, x, y);
    }

    /** Accumulate parameter grads and (optionally) input grads. */
    void
    backward(const float *x, const float *dy, float *dx)
    {
        matvecBackward(w_.value, x, dy, w_.grad, dx);
        for (std::size_t i = 0; i < outDim(); ++i)
            b_.grad.data()[i] += dy[i];
    }

    std::vector<Param *> params() { return {&w_, &b_}; }

  private:
    Param w_;
    Param b_;
};

/** Cached activations for one LSTM time step (needed by backward). */
struct LstmStepCache
{
    std::vector<float> x;      //!< input
    std::vector<float> h_prev; //!< previous hidden
    std::vector<float> c_prev; //!< previous cell
    std::vector<float> gates;  //!< post-activation [i, f, g, o]
    std::vector<float> c;      //!< new cell
    std::vector<float> tanh_c; //!< tanh(c)
};

/**
 * Standard LSTM cell (Hochreiter & Schmidhuber) with the common
 * [input, forget, cell, output] gate packing. The forget-gate bias
 * is initialised to 1 (standard practice for trainability).
 */
class LstmCell
{
  public:
    LstmCell(std::size_t in_dim, std::size_t hidden, Rng &rng);

    std::size_t inDim() const { return in_dim_; }
    std::size_t hidden() const { return hidden_; }

    /**
     * One step: consumes x, (h_prev, c_prev); produces (h, c) and a
     * cache used by backwardStep.
     */
    void forwardStep(const float *x, const float *h_prev,
                     const float *c_prev, float *h, float *c,
                     LstmStepCache &cache) const;

    /**
     * Backward through one step.
     * @param dh Gradient wrt this step's hidden output.
     * @param dc In/out: gradient wrt the cell state (accumulates the
     *        chain from later steps; on return, wrt c_prev).
     * @param dx Out: gradient wrt the input (accumulated).
     * @param dh_prev Out: gradient wrt the previous hidden
     *        (accumulated).
     */
    void backwardStep(const LstmStepCache &cache, const float *dh,
                      float *dc, float *dx, float *dh_prev);

    std::vector<Param *> params() { return {&wx_, &wh_, &b_}; }

  private:
    std::size_t in_dim_;
    std::size_t hidden_;
    Param wx_; //!< 4H x in
    Param wh_; //!< 4H x H
    Param b_;  //!< 1 x 4H
};

} // namespace nn
} // namespace glider

#endif // GLIDER_NN_LAYERS_HH
