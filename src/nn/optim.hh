/**
 * @file
 * Optimizers for the offline models: plain SGD and Adam (the paper's
 * Table 5 optimizer, lr 0.001).
 */

#ifndef GLIDER_NN_OPTIM_HH
#define GLIDER_NN_OPTIM_HH

#include <cmath>
#include <unordered_map>
#include <vector>

#include "tensor.hh"

namespace glider {
namespace nn {

/** Optimizer interface: consume gradients, update values. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Apply one update from the accumulated grads, then zero them. */
    virtual void step(const std::vector<Param *> &params) = 0;
};

/** Stochastic gradient descent. */
class Sgd : public Optimizer
{
  public:
    explicit Sgd(float lr) : lr_(lr) {}

    void
    step(const std::vector<Param *> &params) override
    {
        for (Param *p : params) {
            float *v = p->value.data();
            float *g = p->grad.data();
            for (std::size_t i = 0; i < p->value.size(); ++i)
                v[i] -= lr_ * g[i];
            p->zeroGrad();
        }
    }

  private:
    float lr_;
};

/** Adam (Kingma & Ba) with bias correction. */
class Adam : public Optimizer
{
  public:
    explicit Adam(float lr = 0.001f, float beta1 = 0.9f,
                  float beta2 = 0.999f, float eps = 1e-8f)
        : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
    {
    }

    void
    step(const std::vector<Param *> &params) override
    {
        ++t_;
        float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
        float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
        for (Param *p : params) {
            State &s = state_[p];
            if (s.m.size() != p->value.size()) {
                s.m.assign(p->value.size(), 0.0f);
                s.v.assign(p->value.size(), 0.0f);
            }
            float *val = p->value.data();
            float *g = p->grad.data();
            for (std::size_t i = 0; i < p->value.size(); ++i) {
                s.m[i] = beta1_ * s.m[i] + (1.0f - beta1_) * g[i];
                s.v[i] = beta2_ * s.v[i] + (1.0f - beta2_) * g[i] * g[i];
                float mhat = s.m[i] / bc1;
                float vhat = s.v[i] / bc2;
                val[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
            }
            p->zeroGrad();
        }
    }

  private:
    struct State
    {
        std::vector<float> m;
        std::vector<float> v;
    };

    float lr_;
    float beta1_;
    float beta2_;
    float eps_;
    std::uint64_t t_ = 0;
    std::unordered_map<Param *, State> state_;
};

/** Binary cross-entropy on a single logit. @return loss. */
inline float
bceWithLogit(float logit, bool label, float &dlogit)
{
    float p = 1.0f / (1.0f + std::exp(-logit));
    dlogit = p - (label ? 1.0f : 0.0f);
    float eps = 1e-7f;
    return label ? -std::log(p + eps) : -std::log(1.0f - p + eps);
}

} // namespace nn
} // namespace glider

#endif // GLIDER_NN_OPTIM_HH
