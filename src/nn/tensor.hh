/**
 * @file
 * A minimal dense 2-D float tensor for the offline learning models.
 *
 * The paper's offline model (embedding 128 -> 1-layer LSTM 128 ->
 * scaled attention -> binary output, Table 5) is small enough that a
 * straightforward row-major CPU tensor with explicit loops trains it
 * in seconds; no BLAS or autograd framework is needed, and the
 * hand-written backward passes are themselves exercised by
 * finite-difference tests.
 */

#ifndef GLIDER_NN_TENSOR_HH
#define GLIDER_NN_TENSOR_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace glider {
namespace nn {

/** Row-major 2-D float tensor (vectors are 1xN or Nx1 as convenient). */
class Tensor
{
  public:
    Tensor() = default;

    Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {
    }

    /** Xavier/Glorot-uniform initialisation. */
    static Tensor
    xavier(std::size_t rows, std::size_t cols, Rng &rng)
    {
        Tensor t(rows, cols);
        float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
        for (auto &v : t.data_) {
            v = static_cast<float>(rng.uniform() * 2.0 - 1.0) * limit;
        }
        return t;
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &
    operator()(std::size_t r, std::size_t c)
    {
        GLIDER_ASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float
    operator()(std::size_t r, std::size_t c) const
    {
        GLIDER_ASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float *row(std::size_t r) { return &data_[r * cols_]; }
    const float *row(std::size_t r) const { return &data_[r * cols_]; }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

    bool
    sameShape(const Tensor &o) const
    {
        return rows_ == o.rows_ && cols_ == o.cols_;
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** A learnable parameter: value plus accumulated gradient. */
struct Param
{
    Tensor value;
    Tensor grad;

    Param() = default;
    explicit Param(Tensor v) : value(std::move(v))
    {
        grad = Tensor(value.rows(), value.cols());
    }

    void zeroGrad() { grad.zero(); }
};

/** y += W x (W: m x n, x: n, y: m). Raw float spans for hot loops. */
void matvecAccum(const Tensor &w, const float *x, float *y);

/** Backward of y = W x: dW += dy xT, dx += WT dy. */
void matvecBackward(const Tensor &w, const float *x, const float *dy,
                    Tensor &dw, float *dx);

/** Dot product of two n-length spans. */
float dot(const float *a, const float *b, std::size_t n);

/** In-place numerically-stable softmax over @p n entries. */
void softmaxInPlace(float *x, std::size_t n);

} // namespace nn
} // namespace glider

#endif // GLIDER_NN_TENSOR_HH
