#include "simple_models.hh"

#include "common/logging.hh"

namespace glider {
namespace offline {

OfflineHawkeye::OfflineHawkeye(std::size_t vocab)
    : counters_(vocab, kMax / 2 + 1)
{
}

bool
OfflineHawkeye::predict(std::uint32_t pc_id) const
{
    return counters_[pc_id] > kMax / 2;
}

void
OfflineHawkeye::trainEpoch(const OfflineDataset &ds)
{
    auto [lo, hi] = ds.trainRange();
    for (std::size_t i = lo; i < hi; ++i) {
        int &c = counters_[ds.accesses[i].pc_id];
        if (ds.accesses[i].label)
            c = c < kMax ? c + 1 : kMax;
        else
            c = c > 0 ? c - 1 : 0;
    }
}

double
OfflineHawkeye::evaluate(const OfflineDataset &ds)
{
    auto [lo, hi] = ds.testRange();
    if (lo == hi)
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = lo; i < hi; ++i) {
        bool pred = predict(ds.accesses[i].pc_id);
        correct += pred == (ds.accesses[i].label != 0);
    }
    return static_cast<double>(correct) / static_cast<double>(hi - lo);
}

OfflinePerceptron::OfflinePerceptron(std::size_t vocab,
                                     std::size_t history, float lr)
    : vocab_(vocab), history_(history), lr_(lr),
      weights_(vocab * history, 0.0f), bias_per_pc_(vocab, 0.0f)
{
    GLIDER_ASSERT(history >= 1);
}

float
OfflinePerceptron::scoreAndMaybeTrain(const OfflineDataset &ds,
                                      std::size_t lo, std::size_t hi,
                                      bool train, std::size_t &correct)
{
    // The ordered history is rebuilt from the stream start so that
    // test-range contexts are well-formed.
    std::deque<std::uint32_t> hist;
    correct = 0;
    float loss = 0.0f;
    for (std::size_t i = 0; i < hi; ++i) {
        std::uint32_t pc = ds.accesses[i].pc_id;
        if (i >= lo) {
            float sum = bias_per_pc_[pc];
            for (std::size_t p = 0; p < history_ && p < hist.size(); ++p)
                sum += weights_[p * vocab_ + hist[p]];
            bool label = ds.accesses[i].label != 0;
            float y = label ? 1.0f : -1.0f;
            correct += (sum >= 0.0f) == label;
            float margin = y * sum;
            if (margin < 1.0f) {
                loss += 1.0f - margin;
                if (train) {
                    bias_per_pc_[pc] += lr_ * y;
                    for (std::size_t p = 0;
                         p < history_ && p < hist.size(); ++p) {
                        weights_[p * vocab_ + hist[p]] += lr_ * y;
                    }
                }
            }
        }
        hist.push_front(pc);
        if (hist.size() > history_)
            hist.pop_back();
    }
    return loss;
}

void
OfflinePerceptron::trainEpoch(const OfflineDataset &ds)
{
    std::size_t correct = 0;
    auto [lo, hi] = ds.trainRange();
    scoreAndMaybeTrain(ds, lo, hi, true, correct);
}

double
OfflinePerceptron::evaluate(const OfflineDataset &ds)
{
    std::size_t correct = 0;
    auto [lo, hi] = ds.testRange();
    if (lo == hi)
        return 0.0;
    scoreAndMaybeTrain(ds, lo, hi, false, correct);
    return static_cast<double>(correct) / static_cast<double>(hi - lo);
}

OfflineIsvm::OfflineIsvm(std::size_t vocab, std::size_t k, float lr)
    : vocab_(vocab), k_(k), lr_(lr), weights_(vocab * vocab, 0.0f),
      bias_(vocab, 0.0f)
{
    GLIDER_ASSERT(k >= 1);
}

float
OfflineIsvm::run(const OfflineDataset &ds, std::size_t lo,
                 std::size_t hi, bool train, std::size_t &correct)
{
    LruTracker<std::uint32_t> pchr(k_);
    correct = 0;
    float loss = 0.0f;
    for (std::size_t i = 0; i < hi; ++i) {
        std::uint32_t pc = ds.accesses[i].pc_id;
        if (i >= lo) {
            // k-sparse unordered feature: presence of each history PC.
            const float *w = &weights_[pc * vocab_];
            float sum = bias_[pc];
            for (auto h : pchr.entries())
                sum += w[h];
            bool label = ds.accesses[i].label != 0;
            float y = label ? 1.0f : -1.0f;
            correct += (sum >= 0.0f) == label;
            float margin = y * sum;
            if (margin < 1.0f) {
                loss += 1.0f - margin;
                if (train) {
                    bias_[pc] += lr_ * y;
                    float *wt = &weights_[pc * vocab_];
                    for (auto h : pchr.entries())
                        wt[h] += lr_ * y;
                }
            }
        }
        pchr.touch(pc);
    }
    return loss;
}

void
OfflineIsvm::trainEpoch(const OfflineDataset &ds)
{
    std::size_t correct = 0;
    auto [lo, hi] = ds.trainRange();
    run(ds, lo, hi, true, correct);
}

double
OfflineIsvm::evaluate(const OfflineDataset &ds)
{
    std::size_t correct = 0;
    auto [lo, hi] = ds.testRange();
    if (lo == hi)
        return 0.0;
    run(ds, lo, hi, false, correct);
    return static_cast<double>(correct) / static_cast<double>(hi - lo);
}

} // namespace offline
} // namespace glider
