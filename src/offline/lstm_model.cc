#include "lstm_model.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace glider {
namespace offline {

/** Reusable per-slice buffers (avoids re-allocating every slice). */
struct AttentionLstmModel::Workspace
{
    std::vector<std::vector<float>> h;  //!< T x H hidden states
    std::vector<std::vector<float>> c;  //!< T x H cell states
    std::vector<nn::LstmStepCache> lstm_cache;
    std::vector<std::vector<float>> dh; //!< T x H hidden grads

    struct TargetCache
    {
        std::size_t t = 0;
        nn::AttentionCache attn;
        std::vector<float> ctx;
        std::vector<float> z; //!< [ctx ; h_t]
        float dlogit = 0.0f;
    };
    std::vector<TargetCache> targets;
};

AttentionLstmModel::AttentionLstmModel(std::size_t vocab,
                                       const LstmConfig &config)
    : vocab_(vocab), config_(config), rng_(config.seed),
      embed_(vocab, config.embedding, rng_),
      lstm_(config.embedding, config.hidden, rng_),
      attention_(config.attention_scale),
      output_(2 * config.hidden, 1, rng_), adam_(config.lr),
      ws_(std::make_unique<Workspace>())
{
    GLIDER_ASSERT(vocab >= 1);
    GLIDER_ASSERT(config.seq_n >= 1);
}

AttentionLstmModel::~AttentionLstmModel() = default;

std::size_t
AttentionLstmModel::parameterCount() const
{
    std::size_t e = vocab_ * config_.embedding;
    std::size_t h = config_.hidden;
    std::size_t lstm = 4 * h * config_.embedding + 4 * h * h + 4 * h;
    std::size_t out = 2 * h + 1;
    return e + lstm + out;
}

std::vector<std::size_t>
AttentionLstmModel::sliceStarts(std::size_t lo, std::size_t hi) const
{
    std::size_t T = 2 * config_.seq_n;
    std::vector<std::size_t> starts;
    if (hi < lo + T)
        return starts;
    for (std::size_t s = lo; s + T <= hi; s += config_.seq_n)
        starts.push_back(s);
    return starts;
}

std::size_t
AttentionLstmModel::runSlice(const OfflineDataset &ds, std::size_t start,
                             bool train, std::size_t &scored,
                             std::vector<AttentionRecord> *capture,
                             std::size_t slice_index,
                             const std::vector<std::uint32_t>
                                 *id_override)
{
    const std::size_t N = config_.seq_n;
    const std::size_t T = 2 * N;
    const std::size_t H = config_.hidden;
    Workspace &ws = *ws_;

    auto idAt = [&](std::size_t j) {
        return id_override ? (*id_override)[j]
                           : ds.accesses[start + j].pc_id;
    };

    // --- Forward: embedding + LSTM over the whole slice.
    if (ws.h.size() != T) {
        ws.h.assign(T, std::vector<float>(H, 0.0f));
        ws.c.assign(T, std::vector<float>(H, 0.0f));
        ws.lstm_cache.assign(T, nn::LstmStepCache{});
        ws.dh.assign(T, std::vector<float>(H, 0.0f));
    }
    std::vector<float> zeros(H, 0.0f);
    for (std::size_t t = 0; t < T; ++t) {
        const float *x = embed_.forward(idAt(t));
        const float *h_prev = t ? ws.h[t - 1].data() : zeros.data();
        const float *c_prev = t ? ws.c[t - 1].data() : zeros.data();
        lstm_.forwardStep(x, h_prev, c_prev, ws.h[t].data(),
                          ws.c[t].data(), ws.lstm_cache[t]);
    }

    // --- Attention + output for each scored target.
    // The shuffled-history protocol (Figure 6) scores only the final
    // position; normal runs score the whole second half.
    std::size_t first_target = id_override ? T - 1 : N;
    std::size_t correct = 0;
    scored = 0;
    ws.targets.clear();
    for (std::size_t t = first_target; t < T; ++t) {
        Workspace::TargetCache tc;
        tc.t = t;
        std::vector<const float *> sources;
        sources.reserve(t);
        for (std::size_t s = 0; s < t; ++s)
            sources.push_back(ws.h[s].data());
        tc.ctx.assign(H, 0.0f);
        attention_.forward(sources, ws.h[t].data(), H, tc.ctx.data(),
                           tc.attn);
        tc.z.assign(2 * H, 0.0f);
        std::copy(tc.ctx.begin(), tc.ctx.end(), tc.z.begin());
        std::copy(ws.h[t].begin(), ws.h[t].end(), tc.z.begin() + H);
        float logit = 0.0f;
        output_.forward(tc.z.data(), &logit);

        bool label = ds.accesses[start + t].label != 0;
        bool pred = logit >= 0.0f;
        ++scored;
        bool right = pred == label;
        correct += right;

        if (capture) {
            AttentionRecord rec;
            rec.slice = slice_index;
            rec.target = t;
            rec.target_pc = idAt(t);
            rec.weights = tc.attn.weights;
            rec.source_pcs.reserve(t);
            for (std::size_t s = 0; s < t; ++s)
                rec.source_pcs.push_back(idAt(s));
            rec.correct = right;
            capture->push_back(std::move(rec));
        }

        if (train) {
            nn::bceWithLogit(logit, label, tc.dlogit);
            ws.targets.push_back(std::move(tc));
        }
    }

    if (!train)
        return correct;

    // --- Backward.
    for (auto &row : ws.dh)
        std::fill(row.begin(), row.end(), 0.0f);

    std::vector<float> dz(2 * H, 0.0f);
    for (auto &tc : ws.targets) {
        std::fill(dz.begin(), dz.end(), 0.0f);
        output_.backward(tc.z.data(), &tc.dlogit, dz.data());
        // Split dz back into d_context and d_hidden.
        std::vector<const float *> sources;
        std::vector<float *> d_sources;
        sources.reserve(tc.t);
        d_sources.reserve(tc.t);
        for (std::size_t s = 0; s < tc.t; ++s) {
            sources.push_back(ws.h[s].data());
            d_sources.push_back(ws.dh[s].data());
        }
        attention_.backward(sources, ws.h[tc.t].data(), H, dz.data(),
                            tc.attn, d_sources, ws.dh[tc.t].data());
        for (std::size_t j = 0; j < H; ++j)
            ws.dh[tc.t][j] += dz[H + j];
    }

    // Backward through time.
    std::vector<float> dc(H, 0.0f);
    std::vector<float> dh_carry(H, 0.0f);
    std::vector<float> dh_prev(H, 0.0f);
    std::vector<float> dx(config_.embedding, 0.0f);
    for (std::size_t t = T; t-- > 0;) {
        std::vector<float> dh_total(H);
        for (std::size_t j = 0; j < H; ++j)
            dh_total[j] = ws.dh[t][j] + dh_carry[j];
        std::fill(dh_prev.begin(), dh_prev.end(), 0.0f);
        std::fill(dx.begin(), dx.end(), 0.0f);
        lstm_.backwardStep(ws.lstm_cache[t], dh_total.data(), dc.data(),
                           dx.data(), dh_prev.data());
        embed_.backward(idAt(t), dx.data());
        dh_carry = dh_prev;
    }

    std::vector<nn::Param *> params;
    for (auto *p : embed_.params())
        params.push_back(p);
    for (auto *p : lstm_.params())
        params.push_back(p);
    for (auto *p : output_.params())
        params.push_back(p);
    adam_.step(params);
    return correct;
}

void
AttentionLstmModel::trainEpoch(const OfflineDataset &ds)
{
    auto [lo, hi] = ds.trainRange();
    auto starts = sliceStarts(lo, hi);
    // Budget: spread the sampled slices evenly over the train range.
    std::size_t budget = config_.max_train_slices;
    std::size_t stride =
        starts.size() > budget ? starts.size() / budget : 1;
    for (std::size_t i = 0; i < starts.size(); i += stride) {
        std::size_t scored = 0;
        runSlice(ds, starts[i], true, scored, nullptr, i, nullptr);
    }
}

double
AttentionLstmModel::evaluate(const OfflineDataset &ds)
{
    auto [lo, hi] = ds.testRange();
    auto starts = sliceStarts(lo, hi);
    if (starts.empty())
        return 0.0;
    std::size_t budget = config_.max_test_slices;
    std::size_t stride =
        starts.size() > budget ? starts.size() / budget : 1;
    std::size_t correct = 0, scored = 0;
    for (std::size_t i = 0; i < starts.size(); i += stride) {
        std::size_t s = 0;
        correct += runSlice(ds, starts[i], false, s, nullptr, i, nullptr);
        scored += s;
    }
    return scored ? static_cast<double>(correct)
            / static_cast<double>(scored)
                  : 0.0;
}

double
AttentionLstmModel::evaluateShuffled(const OfflineDataset &ds,
                                     std::uint64_t seed)
{
    auto [lo, hi] = ds.testRange();
    auto starts = sliceStarts(lo, hi);
    if (starts.empty())
        return 0.0;
    Rng rng(seed);
    const std::size_t T = 2 * config_.seq_n;
    std::size_t budget = config_.max_test_slices;
    std::size_t stride =
        starts.size() > budget ? starts.size() / budget : 1;
    std::size_t correct = 0, scored = 0;
    std::vector<std::uint32_t> ids(T);
    for (std::size_t i = 0; i < starts.size(); i += stride) {
        for (std::size_t j = 0; j < T; ++j)
            ids[j] = ds.accesses[starts[i] + j].pc_id;
        // Fisher-Yates over everything before the final target.
        for (std::size_t j = T - 1; j-- > 1;)
            std::swap(ids[j], ids[rng.below(j + 1)]);
        std::size_t s = 0;
        correct += runSlice(ds, starts[i], false, s, nullptr, i, &ids);
        scored += s;
    }
    return scored ? static_cast<double>(correct)
            / static_cast<double>(scored)
                  : 0.0;
}

std::vector<AttentionRecord>
AttentionLstmModel::captureAttention(const OfflineDataset &ds,
                                     std::size_t max_records)
{
    auto [lo, hi] = ds.testRange();
    auto starts = sliceStarts(lo, hi);
    std::vector<AttentionRecord> records;
    for (std::size_t i = 0; i < starts.size(); ++i) {
        std::size_t scored = 0;
        runSlice(ds, starts[i], false, scored, &records, i, nullptr);
        if (records.size() >= max_records)
            break;
    }
    if (records.size() > max_records)
        records.resize(max_records);
    return records;
}

std::vector<TargetPcReport>
AttentionLstmModel::perTargetPcReport(const OfflineDataset &ds,
                                      const std::vector<std::uint32_t>
                                          &target_pcs)
{
    auto records = captureAttention(ds, SIZE_MAX);
    std::vector<TargetPcReport> out;
    for (auto tpc : target_pcs) {
        TargetPcReport rep;
        rep.target_pc = tpc;
        std::size_t correct = 0;
        std::map<std::uint32_t, std::size_t> anchor_votes;
        for (const auto &rec : records) {
            if (rec.target_pc != tpc || rec.weights.empty())
                continue;
            ++rep.samples;
            correct += rec.correct;
            std::size_t best = 0;
            for (std::size_t s = 1; s < rec.weights.size(); ++s) {
                if (rec.weights[s] > rec.weights[best])
                    best = s;
            }
            ++anchor_votes[rec.source_pcs[best]];
        }
        if (rep.samples) {
            rep.accuracy = static_cast<double>(correct)
                / static_cast<double>(rep.samples);
            rep.anchor_pc =
                std::max_element(anchor_votes.begin(), anchor_votes.end(),
                                 [](const auto &a, const auto &b) {
                                     return a.second < b.second;
                                 })
                    ->first;
        }
        out.push_back(rep);
    }
    return out;
}

} // namespace offline
} // namespace glider
