/**
 * @file
 * Offline dataset construction (§5.1 "Settings for Offline
 * Evaluation"): run a workload trace through L1/L2 to get the LLC
 * access stream, label every access with Belady's decision, map PCs
 * to a dense vocabulary, and split 75%/25% train/test in stream
 * order.
 */

#ifndef GLIDER_OFFLINE_DATASET_HH
#define GLIDER_OFFLINE_DATASET_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "traces/trace.hh"

namespace glider {
namespace offline {

/** One labelled LLC access. */
struct LabeledAccess
{
    std::uint32_t pc_id = 0; //!< dense vocabulary id
    std::uint8_t label = 0;  //!< 1 = OPT caches it (cache-friendly)
};

/** A labelled LLC stream with its PC vocabulary and split point. */
struct OfflineDataset
{
    std::vector<LabeledAccess> accesses; //!< full stream, in order
    std::size_t train_end = 0;           //!< accesses[0, train_end)
    std::vector<std::uint64_t> id_to_pc; //!< vocabulary
    double opt_hit_rate = 0.0;           //!< MIN hit rate on the stream

    std::size_t vocab() const { return id_to_pc.size(); }

    /** Train portion view. */
    std::pair<std::size_t, std::size_t>
    trainRange() const
    {
        return {0, train_end};
    }

    /** Test portion view. */
    std::pair<std::size_t, std::size_t>
    testRange() const
    {
        return {train_end, accesses.size()};
    }
};

/**
 * Build the offline dataset for @p cpu_trace with the Table 1
 * geometry (labels from exact Belady MIN on the LLC stream).
 * @param split Train fraction (paper: 0.75).
 */
OfflineDataset buildDataset(const traces::Trace &cpu_trace,
                            double split = 0.75);

/**
 * Fraction of accesses whose label matches the majority label —
 * the accuracy a constant predictor would get; useful context for
 * interpreting model accuracies.
 */
double majorityBaseline(const OfflineDataset &ds);

} // namespace offline
} // namespace glider

#endif // GLIDER_OFFLINE_DATASET_HH
