#include "dataset.hh"

#include "cachesim/cache_config.hh"
#include "common/logging.hh"
#include "opt/belady.hh"
#include "opt/llc_stream.hh"

namespace glider {
namespace offline {

OfflineDataset
buildDataset(const traces::Trace &cpu_trace, double split)
{
    GLIDER_ASSERT(split > 0.0 && split < 1.0);
    sim::HierarchyConfig cfg;
    traces::Trace llc = opt::extractLlcStream(cpu_trace, cfg);
    opt::BeladyResult belady = opt::simulateBelady(
        llc, cfg.llc.sets(), cfg.llc.ways);

    OfflineDataset ds;
    ds.accesses.reserve(llc.size());
    ds.opt_hit_rate = belady.hitRate();

    std::unordered_map<std::uint64_t, std::uint32_t> pc_ids;
    for (std::size_t i = 0; i < llc.size(); ++i) {
        auto [it, fresh] = pc_ids.try_emplace(
            llc[i].pc, static_cast<std::uint32_t>(ds.id_to_pc.size()));
        if (fresh)
            ds.id_to_pc.push_back(llc[i].pc);
        ds.accesses.push_back(
            LabeledAccess{it->second, belady.labels[i]});
    }
    ds.train_end = static_cast<std::size_t>(
        split * static_cast<double>(ds.accesses.size()));
    return ds;
}

double
majorityBaseline(const OfflineDataset &ds)
{
    auto [lo, hi] = ds.testRange();
    if (lo == hi)
        return 0.0;
    std::size_t ones = 0;
    for (std::size_t i = lo; i < hi; ++i)
        ones += ds.accesses[i].label;
    double frac = static_cast<double>(ones)
        / static_cast<double>(hi - lo);
    return frac > 0.5 ? frac : 1.0 - frac;
}

} // namespace offline
} // namespace glider
