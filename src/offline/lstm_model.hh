/**
 * @file
 * The attention-based LSTM caching model of §4.1 (Figure 3):
 * embedding -> 1-layer LSTM -> scaled dot-product attention ->
 * binary caching decision per time step.
 *
 * Sequence protocol (§4.1): the labelled LLC stream is sliced into
 * sequences of length 2N overlapping by N; the first N accesses are
 * warmup context and predictions/losses are taken only for the
 * second half. Trained with Adam on binary cross-entropy against the
 * Belady labels.
 *
 * The class also exposes the analysis hooks the paper's
 * interpretability study needs: attention-weight capture (Figures
 * 4/5), accuracy under shuffled histories (Figure 6, Observation 3),
 * and per-target-PC accuracy with anchor-PC attribution (Table 4).
 */

#ifndef GLIDER_OFFLINE_LSTM_MODEL_HH
#define GLIDER_OFFLINE_LSTM_MODEL_HH

#include <memory>
#include <vector>

#include "dataset.hh"
#include "nn/attention.hh"
#include "nn/layers.hh"
#include "nn/optim.hh"
#include "simple_models.hh"

namespace glider {
namespace offline {

/** Hyper-parameters (Table 5; dims shrinkable for bench runtime). */
struct LstmConfig
{
    std::size_t embedding = 128; //!< embedding size (Table 5: 128)
    std::size_t hidden = 128;    //!< network size (Table 5: 128)
    std::size_t seq_n = 30;      //!< N: predicted half-length
    float attention_scale = 1.0f; //!< f of Eq. 3
    float lr = 0.001f;            //!< Adam learning rate (Table 5)
    std::uint64_t seed = 1234;
    std::size_t max_train_slices = 2000; //!< runtime budget cap
    std::size_t max_test_slices = 600;
};

/** One captured attention-weight vector (Figures 4/5). */
struct AttentionRecord
{
    std::size_t slice = 0;       //!< slice index within the stream
    std::size_t target = 0;      //!< target position within the slice
    std::uint32_t target_pc = 0; //!< vocabulary id of the target
    /** weights[s] for sources s = 0..target-1 (slice positions). */
    std::vector<float> weights;
    /** vocabulary ids of the source positions. */
    std::vector<std::uint32_t> source_pcs;
    bool correct = false; //!< did the model get this target right
};

/** Accuracy per target PC, with the strongest-attention source PC. */
struct TargetPcReport
{
    std::uint32_t target_pc = 0;
    std::uint32_t anchor_pc = 0; //!< modal argmax-attention source
    std::size_t samples = 0;
    double accuracy = 0.0;
};

/** The attention-based LSTM model. */
class AttentionLstmModel : public OfflineModel
{
  public:
    AttentionLstmModel(std::size_t vocab, const LstmConfig &config);
    ~AttentionLstmModel() override;

    std::string name() const override { return "Attention LSTM"; }

    /** One Adam pass over (a budgeted sample of) the train slices. */
    void trainEpoch(const OfflineDataset &ds) override;

    /** Accuracy over the test slices' predicted halves. */
    double evaluate(const OfflineDataset &ds) override;

    /**
     * Figure 6: accuracy when each test slice's history (everything
     * before the final target) is randomly shuffled; only the final
     * target of each slice is scored, per the paper's protocol.
     */
    double evaluateShuffled(const OfflineDataset &ds,
                            std::uint64_t seed = 99);

    /** Capture attention weights over test slices (Figures 4/5). */
    std::vector<AttentionRecord>
    captureAttention(const OfflineDataset &ds,
                     std::size_t max_records = 4096);

    /** Table 4: per-target-PC accuracy and anchor attribution. */
    std::vector<TargetPcReport>
    perTargetPcReport(const OfflineDataset &ds,
                      const std::vector<std::uint32_t> &target_pcs);

    const LstmConfig &config() const { return config_; }

    /** Parameter count (Table 3 model-size bookkeeping). */
    std::size_t parameterCount() const;

  private:
    struct Workspace;

    /** Slice starts covering [lo, hi), overlapping by N. */
    std::vector<std::size_t> sliceStarts(std::size_t lo,
                                         std::size_t hi) const;

    /**
     * Run one slice. When @p train, backprop + Adam step. Returns
     * correct predictions in the scored half; fills optional capture.
     */
    std::size_t runSlice(const OfflineDataset &ds, std::size_t start,
                         bool train, std::size_t &scored,
                         std::vector<AttentionRecord> *capture,
                         std::size_t slice_index,
                         const std::vector<std::uint32_t> *id_override);

    std::size_t vocab_;
    LstmConfig config_;
    Rng rng_;
    nn::Embedding embed_;
    nn::LstmCell lstm_;
    nn::ScaledDotAttention attention_;
    nn::Linear output_; //!< [context ; hidden] -> 1 logit
    nn::Adam adam_;
    std::unique_ptr<Workspace> ws_;
};

} // namespace offline
} // namespace glider

#endif // GLIDER_OFFLINE_LSTM_MODEL_HH
