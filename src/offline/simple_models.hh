/**
 * @file
 * The three non-deep offline baselines of §5.2 / Figures 9, 14, 15:
 *
 *  - OfflineHawkeye: per-PC saturating counters (the Hawkeye
 *    predictor trained on oracle labels);
 *  - OfflinePerceptron: a linear model over an *ordered* history of
 *    the last h PCs with duplicates (the Teran et al. representation,
 *    re-labelled from Belady as the paper describes), trained with
 *    hinge loss;
 *  - OfflineIsvm: Glider's SVM over the k-sparse *unordered unique*
 *    PC history, hinge loss, exact (unhashed) per-PC feature weights
 *    as in §4.3's formulation x in {0,1}^u.
 *
 * All three share the streaming evaluation protocol: train over the
 * train range (one pass per epoch, in stream order), then freeze and
 * score accuracy over the test range.
 */

#ifndef GLIDER_OFFLINE_SIMPLE_MODELS_HH
#define GLIDER_OFFLINE_SIMPLE_MODELS_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/lru_tracker.hh"
#include "dataset.hh"

namespace glider {
namespace offline {

/** Streaming offline binary predictor over a labelled LLC stream. */
class OfflineModel
{
  public:
    virtual ~OfflineModel() = default;

    virtual std::string name() const = 0;

    /** One pass over the training range (stream order). */
    virtual void trainEpoch(const OfflineDataset &ds) = 0;

    /** Frozen accuracy over the test range. */
    virtual double evaluate(const OfflineDataset &ds) = 0;
};

/** Per-PC 5-bit counters trained from oracle labels. */
class OfflineHawkeye : public OfflineModel
{
  public:
    explicit OfflineHawkeye(std::size_t vocab);

    std::string name() const override { return "Hawkeye"; }
    void trainEpoch(const OfflineDataset &ds) override;
    double evaluate(const OfflineDataset &ds) override;

    bool predict(std::uint32_t pc_id) const;

  private:
    std::vector<int> counters_;
    static constexpr int kMax = 31;
};

/**
 * Linear hinge-loss model over an ordered PC history with
 * duplicates: weight tables indexed by (position, pc).
 */
class OfflinePerceptron : public OfflineModel
{
  public:
    /**
     * @param vocab PC vocabulary size.
     * @param history Ordered history length (paper default 3).
     * @param lr Hinge-loss step size.
     */
    OfflinePerceptron(std::size_t vocab, std::size_t history = 3,
                      float lr = 0.05f);

    std::string name() const override { return "Perceptron"; }
    void trainEpoch(const OfflineDataset &ds) override;
    double evaluate(const OfflineDataset &ds) override;

  private:
    float scoreAndMaybeTrain(const OfflineDataset &ds, std::size_t lo,
                             std::size_t hi, bool train,
                             std::size_t &correct);

    std::size_t vocab_;
    std::size_t history_;
    float lr_;
    /** weights_[pos * vocab + pc]: ordered-position weight tables. */
    std::vector<float> weights_;
    std::vector<float> bias_per_pc_; //!< current-PC weight
};

/**
 * Glider's offline ISVM: one SVM per current PC over the k-sparse
 * unordered-unique history feature, hinge loss.
 */
class OfflineIsvm : public OfflineModel
{
  public:
    /**
     * @param vocab PC vocabulary size.
     * @param k Unique-PC history length (paper default 5).
     * @param lr Hinge-loss step size (paper: 0.001-scale sweeps).
     */
    OfflineIsvm(std::size_t vocab, std::size_t k = 5, float lr = 0.1f);

    std::string name() const override { return "Offline ISVM"; }
    void trainEpoch(const OfflineDataset &ds) override;
    double evaluate(const OfflineDataset &ds) override;

  private:
    float run(const OfflineDataset &ds, std::size_t lo, std::size_t hi,
              bool train, std::size_t &correct);

    std::size_t vocab_;
    std::size_t k_;
    float lr_;
    /** weights_[cur_pc * vocab + hist_pc]: exact k-sparse weights. */
    std::vector<float> weights_;
    std::vector<float> bias_; //!< per-current-PC bias
};

} // namespace offline
} // namespace glider

#endif // GLIDER_OFFLINE_SIMPLE_MODELS_HH
