#include "opt_guided.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace glider {
namespace policies {

void
OptGuidedPolicy::reset(const sim::CacheGeometry &geom)
{
    geom_ = geom;
    // Keep the sampled-set ratio constant (1/32 of sets, CRC2-like):
    // a shared multi-core LLC has 4x the sets, and sampling a fixed
    // 64 would train the predictor 4x slower than single-core.
    std::uint64_t sampled = geom.sets / 32;
    if (sampled < 64)
        sampled = 64;
    sampler_ = std::make_unique<opt::OptGenSampler>(geom.sets, geom.ways,
                                                    sampled);
    accuracy_ = PredictorAccuracy{};
    per_pc_accuracy_.clear();
    rrpv_.assign(geom.sets * geom.ways, kMaxRrpv);
    line_pc_.assign(geom.sets * geom.ways, 0);
    line_core_.assign(geom.sets * geom.ways, 0);
    line_friendly_.assign(geom.sets * geom.ways, 0);
}

void
OptGuidedPolicy::handleEvent(const opt::TrainingEvent &event)
{
    if (event.prediction_valid) {
        ++accuracy_.events;
        auto &per_pc = per_pc_accuracy_[event.pc];
        ++per_pc.events;
        if (event.opt_hit == event.predicted_friendly) {
            ++accuracy_.correct;
            ++per_pc.correct;
        }
    }
    onTrainingEvent(event);
}

void
OptGuidedPolicy::sample(const sim::ReplacementAccess &access,
                        Pred prediction)
{
    if (!sampler_->isSampled(access.set))
        return;
    bool predicted_friendly = prediction != Pred::Averse;
    auto ev = sampler_->access(access.set, access.block_addr, access.pc,
                               access.core, historySnapshot(access),
                               predicted_friendly, true);
    if (ev)
        handleEvent(*ev);
    while (auto expired = sampler_->popExpired())
        handleEvent(*expired);
}

std::uint32_t
OptGuidedPolicy::victimWay(const sim::ReplacementAccess &access,
                           sim::SetView lines) noexcept
{
    std::uint8_t *row = &rrpv_[access.set * geom_.ways];
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        if (!lines[w].valid)
            return w;
    }
    // Cache-averse lines go first...
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        if (row[w] >= kMaxRrpv)
            return w;
    }
    // ...otherwise the oldest cache-friendly line; the predictor was
    // wrong about it, so the inserting context is detrained.
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < geom_.ways; ++w) {
        if (row[w] > row[victim])
            victim = w;
    }
    std::size_t idx = access.set * geom_.ways + victim;
    if (line_friendly_[idx])
        onFriendlyEviction(line_pc_[idx], line_core_[idx]);
    return victim;
}

void
OptGuidedPolicy::onHit(const sim::ReplacementAccess &access,
                       std::uint32_t way) noexcept
{
    observeAccess(access);
    Pred pred = predictAccess(access);
    sample(access, pred);

    std::size_t idx = access.set * geom_.ways + way;
    line_pc_[idx] = access.pc;
    line_core_[idx] = access.core;
    line_friendly_[idx] = pred != Pred::Averse;
    rrpv_[idx] = pred == Pred::Averse ? kMaxRrpv : 0;
}

void
OptGuidedPolicy::onEvict(const sim::ReplacementAccess &, std::uint32_t,
                         const sim::LineView &) noexcept
{
}

void
OptGuidedPolicy::onInsert(const sim::ReplacementAccess &access,
                          std::uint32_t way) noexcept
{
    observeAccess(access);
    Pred pred = predictAccess(access);
    sample(access, pred);

    std::uint8_t *row = &rrpv_[access.set * geom_.ways];
    std::size_t idx = access.set * geom_.ways + way;
    line_pc_[idx] = access.pc;
    line_core_[idx] = access.core;
    line_friendly_[idx] = pred != Pred::Averse;

    switch (pred) {
      case Pred::Averse:
        row[way] = kMaxRrpv;
        return;
      case Pred::FriendlyLow:
        row[way] = 2;
        break;
      case Pred::FriendlyHigh:
        row[way] = 0;
        break;
    }
    // A friendly insertion ages the other friendly lines so that
    // "oldest friendly" approximates LRU order among friendly lines
    // (the Hawkeye aging rule; saturates below the averse level).
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        std::size_t other = access.set * geom_.ways + w;
        if (w != way && line_friendly_[other]
            && row[w] < kMaxRrpv - 1) {
            ++row[w];
        }
    }
}

void
OptGuidedPolicy::onFriendlyEviction(std::uint64_t, std::uint8_t)
{
}

const opt::PcHistory &
OptGuidedPolicy::historySnapshot(const sim::ReplacementAccess &)
{
    // Predictors without a history feature (Hawkeye) share one empty
    // snapshot; allocated once, never mutated.
    static const opt::PcHistory kEmpty;
    return kEmpty;
}

void
OptGuidedPolicy::exportMetrics(obs::Registry &registry,
                               const std::string &prefix) const
{
    registry.setCounter(prefix + ".accuracy.events", accuracy_.events);
    registry.setCounter(prefix + ".accuracy.correct",
                        accuracy_.correct);
    registry.setGauge(prefix + ".accuracy.online",
                      accuracy_.accuracy());
    registry.setCounter(prefix + ".tracked_pcs",
                        per_pc_accuracy_.size());
    if (sampler_) {
        opt::OptGenSet::Stats s = sampler_->stats();
        registry.setCounter(prefix + ".optgen.sampled_sets",
                            sampler_->sampledSets());
        registry.setCounter(prefix + ".optgen.hit_intervals",
                            s.hit_intervals);
        registry.setCounter(prefix + ".optgen.miss_intervals",
                            s.miss_intervals);
        registry.setCounter(prefix + ".optgen.expired_negatives",
                            s.expired_negatives);
        registry.setCounter(prefix + ".optgen.capacity_evictions",
                            s.capacity_evictions);
        registry.setGauge(prefix + ".optgen.occupancy_utilization",
                          sampler_->occupancyUtilization());
    }
}

} // namespace policies
} // namespace glider
