/**
 * @file
 * MUSTACHE-style multi-step-ahead eviction (after Quislant et al.,
 * "MUSTACHE: Multi-Step-Ahead Predictions for Cache Eviction", 2022;
 * see PAPERS.md). A first-order Markov successor table learns, per
 * block, which block the program touches next. At eviction time the
 * policy rolls the chain forward K steps from the missing block and
 * protects any resident line the chain predicts will be needed soon;
 * the victim is the least-recently-used line outside that predicted
 * window.
 *
 * Storage: a 64K-entry successor table (8B each, direct-mapped by
 * block hash) plus one per-line recency word and a small per-core
 * last-block register; all preallocated in reset().
 */

#ifndef GLIDER_POLICIES_MUSTACHE_HH
#define GLIDER_POLICIES_MUSTACHE_HH

#include <array>
#include <vector>

#include "cachesim/replacement.hh"
#include "common/hash.hh"

namespace glider {
namespace policies {

/** Markov-chain lookahead eviction. */
class MustachePolicy : public sim::ReplacementPolicy
{
  public:
    std::string name() const override { return "MUSTACHE"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        geom_ = geom;
        clock_ = 0;
        succ_.assign(kSuccEntries, 0);
        last_touch_.assign(geom.sets * geom.ways, 0);
        last_block_.fill(0);
    }

    std::uint32_t
    victimWay(const sim::ReplacementAccess &access,
              sim::SetView lines) noexcept override
    {
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (!lines[w].valid)
                return w;
        }
        // Roll the successor chain K steps ahead of the missing
        // block and protect resident lines the chain names.
        std::uint32_t protected_mask = 0;
        std::uint64_t cur = access.block_addr;
        for (std::uint32_t step = 0; step < kLookahead; ++step) {
            cur = succ_[slotOf(cur)];
            if (cur == 0)
                break;
            for (std::uint32_t w = 0; w < geom_.ways; ++w) {
                if (lines[w].block_addr == cur)
                    protected_mask |= 1u << (w & 31);
            }
        }
        // LRU among the unprotected lines; plain LRU when the chain
        // claims the whole set (stale chains must not block eviction).
        std::size_t base = access.set * geom_.ways;
        std::uint32_t victim = 0;
        std::uint64_t oldest = ~0ull;
        bool found = false;
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (protected_mask & (1u << (w & 31)))
                continue;
            if (last_touch_[base + w] < oldest) {
                oldest = last_touch_[base + w];
                victim = w;
                found = true;
            }
        }
        if (found)
            return victim;
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (last_touch_[base + w] < oldest) {
                oldest = last_touch_[base + w];
                victim = w;
            }
        }
        return victim;
    }

    void
    onHit(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        last_touch_[access.set * geom_.ways + way] = ++clock_;
        observe(access);
    }

    void
    onEvict(const sim::ReplacementAccess &, std::uint32_t,
            const sim::LineView &) noexcept override
    {
    }

    void
    onInsert(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        last_touch_[access.set * geom_.ways + way] = ++clock_;
        observe(access);
    }

  private:
    static constexpr std::size_t kSuccEntries = 64 * 1024;
    static constexpr std::uint32_t kLookahead = 8;

    static std::size_t
    slotOf(std::uint64_t block)
    {
        return static_cast<std::size_t>(hashInto(block, kSuccEntries));
    }

    /** Record block-to-block succession, per core. */
    void
    observe(const sim::ReplacementAccess &access)
    {
        std::uint64_t prev = last_block_[access.core];
        if (prev != 0 && prev != access.block_addr)
            succ_[slotOf(prev)] = access.block_addr;
        last_block_[access.core] = access.block_addr;
    }

    sim::CacheGeometry geom_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> succ_;       //!< Markov successor table
    std::vector<std::uint64_t> last_touch_; //!< per-line recency
    std::array<std::uint64_t, 256> last_block_{}; //!< per-core chain head
};

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_MUSTACHE_HH
