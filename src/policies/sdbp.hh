/**
 * @file
 * SDBP — Sampling Dead Block Prediction (Khan, Tian & Jiménez,
 * MICRO'10), one of the learning-based predecessors the paper's
 * related-work section discusses. A small set of sampled sets feeds
 * a skewed table of saturating counters indexed by the PC of the
 * last access to a block; blocks predicted dead are made eviction
 * candidates (here: inserted/demoted to distant RRPV).
 */

#ifndef GLIDER_POLICIES_SDBP_HH
#define GLIDER_POLICIES_SDBP_HH

#include <vector>

#include "common/hash.hh"
#include "common/saturating_counter.hh"
#include "rrip.hh"

namespace glider {
namespace policies {

/** Sampling dead-block predictor replacement. */
class SdbpPolicy : public RrpvBase
{
  public:
    std::string name() const override { return "SDBP"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        RrpvBase::reset(geom);
        for (auto &t : tables_)
            t.assign(kTableEntries, SaturatingCounter(2, 1));
        sampler_.assign(kSamplerSets * kSamplerWays, SamplerEntry{});
        sampler_stride_ = geom.sets / kSamplerSets;
        if (sampler_stride_ == 0)
            sampler_stride_ = 1;
    }

    void
    onHit(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        maybeSample(access);
        // A predicted-dead block that hits is revived.
        rowFor(access.set)[way] = deadPredicted(access.pc)
            ? kMaxRrpv - 1
            : 0;
    }

    void
    onInsert(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        maybeSample(access);
        rowFor(access.set)[way] = deadPredicted(access.pc)
            ? kMaxRrpv
            : kMaxRrpv - 1;
    }

  private:
    struct SamplerEntry
    {
        std::uint64_t block = 0;
        std::uint64_t last_pc = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    static constexpr std::size_t kSamplerSets = 32;
    static constexpr std::size_t kSamplerWays = 12;
    static constexpr std::size_t kTables = 3; //!< skewed prediction
    static constexpr std::size_t kTableEntries = 4096;

    std::size_t
    tableIndex(std::size_t t, std::uint64_t pc) const
    {
        return static_cast<std::size_t>(
            hashInto(hashCombine(pc, 0x9E37 + t), kTableEntries));
    }

    /** Majority vote of the skewed tables. */
    bool
    deadPredicted(std::uint64_t pc) const
    {
        int votes = 0;
        for (std::size_t t = 0; t < kTables; ++t)
            votes += tables_[t][tableIndex(t, pc)].msb();
        return votes * 2 > static_cast<int>(kTables);
    }

    void
    train(std::uint64_t pc, bool dead)
    {
        for (std::size_t t = 0; t < kTables; ++t) {
            auto &c = tables_[t][tableIndex(t, pc)];
            if (dead)
                c.increment();
            else
                c.decrement();
        }
    }

    /** Run the dedicated sampler for sampled sets. */
    void
    maybeSample(const sim::ReplacementAccess &access)
    {
        if (access.set % sampler_stride_ != 0)
            return;
        std::size_t sset = (access.set / sampler_stride_) % kSamplerSets;
        SamplerEntry *row = &sampler_[sset * kSamplerWays];
        ++clock_;

        for (std::size_t w = 0; w < kSamplerWays; ++w) {
            if (row[w].valid && row[w].block == access.block_addr) {
                // Reused: the previous access was not the last touch.
                train(row[w].last_pc, false);
                row[w].last_pc = access.pc;
                row[w].lru = clock_;
                return;
            }
        }
        // Miss in the sampler: evict LRU entry; its last toucher is
        // now known to have been the final access — a dead block.
        std::size_t victim = 0;
        for (std::size_t w = 0; w < kSamplerWays; ++w) {
            if (!row[w].valid) {
                victim = w;
                break;
            }
            if (row[w].lru < row[victim].lru)
                victim = w;
        }
        if (row[victim].valid)
            train(row[victim].last_pc, true);
        row[victim] = SamplerEntry{access.block_addr, access.pc, clock_,
                                   true};
    }

    std::vector<SaturatingCounter> tables_[kTables];
    std::vector<SamplerEntry> sampler_;
    std::uint64_t sampler_stride_ = 1;
    std::uint64_t clock_ = 0;
};

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_SDBP_HH
