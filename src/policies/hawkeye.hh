/**
 * @file
 * Hawkeye (Jain & Lin, ISCA'16; CRC2 winner): the OPTgen framework
 * with a per-PC table of saturating counters as the predictor. The
 * paper's previous state of the art and the baseline Glider improves
 * on by replacing exactly this predictor.
 */

#ifndef GLIDER_POLICIES_HAWKEYE_HH
#define GLIDER_POLICIES_HAWKEYE_HH

#include <vector>

#include "common/hash.hh"
#include "common/saturating_counter.hh"
#include "opt_guided.hh"

namespace glider {
namespace policies {

/** Hawkeye: per-PC 5-bit counters trained by OPTgen. */
class HawkeyePolicy : public OptGuidedPolicy
{
  public:
    std::string name() const override { return "Hawkeye"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        OptGuidedPolicy::reset(geom);
        counters_.assign(kEntries,
                         SaturatingCounter(kBits, (1u << kBits) / 2));
    }

    /** Predictor verdict for a (PC, core) context. */
    bool
    isFriendly(std::uint64_t pc, std::uint8_t core) const
    {
        return counters_[indexOf(pc, core)].msb();
    }

  protected:
    Pred
    predictAccess(const sim::ReplacementAccess &access) override
    {
        // Hawkeye's prediction is binary: friendly lines insert at
        // RRPV 0, averse lines at RRPV 7 (no medium level).
        const auto &c = counters_[indexOf(access.pc, access.core)];
        return c.msb() ? Pred::FriendlyHigh : Pred::Averse;
    }

    void
    onTrainingEvent(const opt::TrainingEvent &event) override
    {
        auto &c = counters_[indexOf(event.pc, event.core)];
        if (event.opt_hit)
            c.increment();
        else
            c.decrement();
    }

    void
    onFriendlyEviction(std::uint64_t line_pc, std::uint8_t core) override
    {
        counters_[indexOf(line_pc, core)].decrement();
    }

  private:
    static constexpr std::size_t kEntries = 2048;
    static constexpr unsigned kBits = 5;

    static std::size_t
    indexOf(std::uint64_t pc, std::uint8_t core)
    {
        // Per-core behaviour separation on shared LLCs, as the CRC2
        // implementation does by folding the core id into the hash.
        return static_cast<std::size_t>(
            hashInto(hashCombine(pc, core), kEntries));
    }

    std::vector<SaturatingCounter> counters_;
};

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_HAWKEYE_HH
