/**
 * @file
 * Random replacement — a sanity-check baseline (not in the paper's
 * comparison set, but useful for calibrating the simulator and for
 * the test suite's invariants).
 */

#ifndef GLIDER_POLICIES_RANDOM_HH
#define GLIDER_POLICIES_RANDOM_HH

#include "cachesim/replacement.hh"
#include "common/rng.hh"

namespace glider {
namespace policies {

/** Uniformly random victim selection. */
class RandomPolicy : public sim::ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 42) : rng_(seed) {}

    std::string name() const override { return "Random"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        geom_ = geom;
    }

    std::uint32_t
    victimWay(const sim::ReplacementAccess &, sim::SetView lines)
        noexcept override
    {
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (!lines[w].valid)
                return w;
        }
        return static_cast<std::uint32_t>(rng_.below(geom_.ways));
    }

    void onHit(const sim::ReplacementAccess &, std::uint32_t)
        noexcept override
    {
    }
    void onEvict(const sim::ReplacementAccess &, std::uint32_t,
                 const sim::LineView &) noexcept override
    {
    }
    void onInsert(const sim::ReplacementAccess &, std::uint32_t)
        noexcept override
    {
    }

  private:
    sim::CacheGeometry geom_;
    Rng rng_;
};

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_RANDOM_HH
