/**
 * @file
 * LRU baseline for the LLC — the normalisation baseline of every
 * figure in the paper's evaluation. The mechanism is the same
 * true-LRU used by the private levels.
 */

#ifndef GLIDER_POLICIES_LRU_HH
#define GLIDER_POLICIES_LRU_HH

#include "cachesim/basic_lru.hh"

namespace glider {
namespace policies {

/** True-LRU replacement (Table/Figure baseline). */
using LruPolicy = sim::BasicLruPolicy;

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_LRU_HH
