/**
 * @file
 * The RRIP family (Jaleel et al., ISCA'10): SRRIP, BRRIP, and
 * set-dueling DRRIP. These are the heuristic ancestors of the
 * championship policies and provide the RRPV machinery (3-bit
 * re-reference prediction values) that SHiP, Hawkeye, and Glider all
 * build on.
 */

#ifndef GLIDER_POLICIES_RRIP_HH
#define GLIDER_POLICIES_RRIP_HH

#include <vector>

#include "cachesim/replacement.hh"
#include "common/rng.hh"

namespace glider {
namespace policies {

/** Maximum RRPV with the 3-bit counters used throughout the repo. */
constexpr std::uint8_t kMaxRrpv = 7;

/** Shared RRPV array + victim scan used by the whole RRIP family. */
class RrpvBase : public sim::ReplacementPolicy
{
  public:
    void
    reset(const sim::CacheGeometry &geom) override
    {
        geom_ = geom;
        rrpv_.assign(geom.sets * geom.ways, kMaxRrpv);
    }

    std::uint32_t
    victimWay(const sim::ReplacementAccess &access,
              sim::SetView lines) noexcept override
    {
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (!lines[w].valid)
                return w;
        }
        std::uint8_t *row = rowFor(access.set);
        for (;;) {
            for (std::uint32_t w = 0; w < geom_.ways; ++w) {
                if (row[w] >= kMaxRrpv)
                    return w;
            }
            for (std::uint32_t w = 0; w < geom_.ways; ++w)
                ++row[w];
        }
    }

    void
    onHit(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        rowFor(access.set)[way] = 0;
    }

    void
    onEvict(const sim::ReplacementAccess &, std::uint32_t,
            const sim::LineView &) noexcept override
    {
    }

  protected:
    std::uint8_t *rowFor(std::uint64_t set)
    {
        return &rrpv_[set * geom_.ways];
    }

    sim::CacheGeometry geom_;
    std::vector<std::uint8_t> rrpv_;
};

/** Static RRIP: insert at long re-reference interval (max-1). */
class SrripPolicy : public RrpvBase
{
  public:
    std::string name() const override { return "SRRIP"; }

    void
    onInsert(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        rowFor(access.set)[way] = kMaxRrpv - 1;
    }
};

/** Bimodal RRIP: insert at distant, occasionally at long. */
class BrripPolicy : public RrpvBase
{
  public:
    explicit BrripPolicy(std::uint64_t seed = 7) : rng_(seed) {}

    std::string name() const override { return "BRRIP"; }

    void
    onInsert(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        rowFor(access.set)[way] =
            rng_.chance(1.0 / 32.0) ? kMaxRrpv - 1 : kMaxRrpv;
    }

  private:
    Rng rng_;
};

/**
 * Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion with a
 * 10-bit policy-selection counter.
 */
class DrripPolicy : public RrpvBase
{
  public:
    explicit DrripPolicy(std::uint64_t seed = 7) : rng_(seed) {}

    std::string name() const override { return "DRRIP"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        RrpvBase::reset(geom);
        psel_ = kPselMax / 2;
    }

    std::uint32_t
    victimWay(const sim::ReplacementAccess &access,
              sim::SetView lines) noexcept override
    {
        // A miss in a leader set votes against that leader's policy.
        switch (leaderKind(access.set)) {
          case Leader::Srrip:
            if (psel_ < kPselMax)
                ++psel_;
            break;
          case Leader::Brrip:
            if (psel_ > 0)
                --psel_;
            break;
          case Leader::Follower:
            break;
        }
        return RrpvBase::victimWay(access, lines);
    }

    void
    onInsert(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        bool use_brrip;
        switch (leaderKind(access.set)) {
          case Leader::Srrip:
            use_brrip = false;
            break;
          case Leader::Brrip:
            use_brrip = true;
            break;
          default:
            use_brrip = psel_ < kPselMax / 2;
            break;
        }
        std::uint8_t insert = kMaxRrpv - 1;
        if (use_brrip && !rng_.chance(1.0 / 32.0))
            insert = kMaxRrpv;
        rowFor(access.set)[way] = insert;
    }

  private:
    enum class Leader { Srrip, Brrip, Follower };

    static constexpr std::uint32_t kPselMax = 1023;

    /**
     * 32 SRRIP leaders and 32 BRRIP leaders spread over the sets; on
     * caches with fewer than 128 sets the leader spacing is clamped
     * so followers always exist.
     */
    Leader
    leaderKind(std::uint64_t set) const
    {
        std::uint64_t region = geom_.sets / 64;
        if (region < 2)
            region = 2;
        if (set % region == 0) {
            return (set / region) % 2 == 0 ? Leader::Srrip
                                           : Leader::Brrip;
        }
        return Leader::Follower;
    }

    std::uint32_t psel_ = kPselMax / 2;
    Rng rng_;
};

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_RRIP_HH
