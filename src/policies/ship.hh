/**
 * @file
 * SHiP (Wu et al., MICRO'11) and SHiP++ (Young et al., CRC2'17):
 * signature-based hit prediction. A per-line PC signature indexes a
 * table of saturating counters (the SHCT) that learns whether lines
 * inserted by that signature tend to be re-referenced. SHiP++ is the
 * CRC2 second-place finisher the paper compares against; relative to
 * SHiP it trains the SHCT more aggressively and promotes
 * high-confidence signatures to the nearest insertion position.
 */

#ifndef GLIDER_POLICIES_SHIP_HH
#define GLIDER_POLICIES_SHIP_HH

#include <vector>

#include "common/hash.hh"
#include "common/saturating_counter.hh"
#include "rrip.hh"

namespace glider {
namespace policies {

/** Common SHCT + per-line signature machinery for SHiP variants. */
class ShipBase : public RrpvBase
{
  public:
    void
    reset(const sim::CacheGeometry &geom) override
    {
        RrpvBase::reset(geom);
        shct_.assign(kShctEntries, SaturatingCounter(3, 1));
        line_sig_.assign(geom.sets * geom.ways, 0);
        line_reused_.assign(geom.sets * geom.ways, 0);
    }

    void
    onHit(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        RrpvBase::onHit(access, way);
        std::size_t idx = access.set * geom_.ways + way;
        if (!line_reused_[idx]) {
            line_reused_[idx] = 1;
            shct_[line_sig_[idx]].increment();
        } else if (trainOnEveryHit()) {
            shct_[line_sig_[idx]].increment();
        }
    }

    void
    onEvict(const sim::ReplacementAccess &access, std::uint32_t way,
            const sim::LineView &) noexcept override
    {
        std::size_t idx = access.set * geom_.ways + way;
        if (!line_reused_[idx])
            shct_[line_sig_[idx]].decrement();
    }

    void
    onInsert(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        std::size_t idx = access.set * geom_.ways + way;
        std::uint32_t sig = signature(access.pc);
        line_sig_[idx] = sig;
        line_reused_[idx] = 0;
        rowFor(access.set)[way] = insertionRrpv(shct_[sig]);
    }

  protected:
    static constexpr std::size_t kShctEntries = 16 * 1024;

    /** 14-bit PC signature. */
    static std::uint32_t
    signature(std::uint64_t pc)
    {
        return static_cast<std::uint32_t>(hashBits(pc, 14));
    }

    /** Variant hook: insertion position from the signature counter. */
    virtual std::uint8_t insertionRrpv(const SaturatingCounter &c) const
        = 0;
    /** Variant hook: SHiP++ keeps training past the first reuse. */
    virtual bool trainOnEveryHit() const { return false; }

    std::vector<SaturatingCounter> shct_;
    std::vector<std::uint32_t> line_sig_;
    std::vector<std::uint8_t> line_reused_;
};

/** Original SHiP: distant insertion for never-reused signatures. */
class ShipPolicy : public ShipBase
{
  public:
    std::string name() const override { return "SHiP"; }

  protected:
    std::uint8_t
    insertionRrpv(const SaturatingCounter &c) const override
    {
        return c.value() == 0 ? kMaxRrpv : kMaxRrpv - 1;
    }
};

/** SHiP++: three-level insertion and continued SHCT training. */
class ShipPPPolicy : public ShipBase
{
  public:
    std::string name() const override { return "SHiP++"; }

  protected:
    std::uint8_t
    insertionRrpv(const SaturatingCounter &c) const override
    {
        if (c.value() == 0)
            return kMaxRrpv;
        if (c.saturatedHigh())
            return 0;
        return kMaxRrpv - 1;
    }

    bool trainOnEveryHit() const override { return true; }
};

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_SHIP_HH
