/**
 * @file
 * The Hawkeye framework (Jain & Lin, ISCA'16): an LLC replacement
 * skeleton that learns from OPTgen's reconstruction of Belady's
 * decisions on sampled sets. Hawkeye instantiates it with a per-PC
 * counter predictor; Glider (src/core) replaces only the predictor
 * with its ISVM over an unordered PC history — everything else
 * (sampler, OPTgen, insertion priorities, aging, eviction order) is
 * shared, mirroring how the paper "replaces the predictor module of
 * Hawkeye, keeping other modules the same" (§5.4).
 */

#ifndef GLIDER_POLICIES_OPT_GUIDED_HH
#define GLIDER_POLICIES_OPT_GUIDED_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "cachesim/replacement.hh"
#include "opt/optgen.hh"
#include "rrip.hh"

namespace glider {
namespace policies {

/** Online-accuracy counters for Figure 10. */
struct PredictorAccuracy
{
    std::uint64_t events = 0;  //!< OPTgen-labelled predictions
    std::uint64_t correct = 0; //!< predictions matching OPT

    double
    accuracy() const
    {
        return events ? static_cast<double>(correct)
                / static_cast<double>(events)
                      : 0.0;
    }
};

/**
 * Base class implementing the OPTgen-trained replacement framework.
 * Subclasses supply the predictor (predictAccess / onTrainingEvent /
 * historySnapshot).
 */
class OptGuidedPolicy : public sim::ReplacementPolicy
{
  public:
    /** Insertion confidence levels (§4.4's RRPV 0 / 2 / 7 buckets). */
    enum class Pred { FriendlyHigh, FriendlyLow, Averse };

    void reset(const sim::CacheGeometry &geom) override;
    std::uint32_t victimWay(const sim::ReplacementAccess &access,
                            sim::SetView lines) noexcept override;
    void onHit(const sim::ReplacementAccess &access,
               std::uint32_t way) noexcept override;
    void onEvict(const sim::ReplacementAccess &access, std::uint32_t way,
                 const sim::LineView &victim) noexcept override;
    void onInsert(const sim::ReplacementAccess &access,
                  std::uint32_t way) noexcept override;

    /** Online predictor accuracy vs OPTgen (Figure 10). */
    const PredictorAccuracy &predictorAccuracy() const
    {
        return accuracy_;
    }

    /** Per-PC accuracy breakdown (Table 4 / diagnostics). */
    const std::unordered_map<std::uint64_t, PredictorAccuracy> &
    perPcAccuracy() const
    {
        return per_pc_accuracy_;
    }

    /**
     * Export framework telemetry — online accuracy, tracked-PC count,
     * and the OPTgen sampler's label/occupancy stats — under
     * @p prefix. Subclass overrides should call this base first.
     */
    void exportMetrics(obs::Registry &registry,
                       const std::string &prefix) const override;

  protected:
    /** Predict the caching priority of @p access. */
    virtual Pred predictAccess(const sim::ReplacementAccess &access) = 0;

    /** An OPTgen label arrived: train the predictor. */
    virtual void onTrainingEvent(const opt::TrainingEvent &event) = 0;

    /**
     * The predictor was wrong about an evicted cache-friendly line;
     * Hawkeye detrains the inserting context. Default: no-op.
     */
    virtual void onFriendlyEviction(std::uint64_t line_pc,
                                    std::uint8_t core);

    /**
     * Control-flow history to store with sampled accesses. Returned
     * by reference — this is called per sampled access and a by-value
     * return put a vector copy on the hot path; the referent must
     * stay valid until the next access.
     */
    virtual const opt::PcHistory &historySnapshot(
        const sim::ReplacementAccess &);

    /** Called once per LLC access, before prediction (PCHR update). */
    virtual void observeAccess(const sim::ReplacementAccess &) {}

    sim::CacheGeometry geom_;

  private:
    /** Run the sampler/trainer pipeline for one access. */
    void sample(const sim::ReplacementAccess &access, Pred prediction);
    void handleEvent(const opt::TrainingEvent &event);

    std::unique_ptr<opt::OptGenSampler> sampler_;
    PredictorAccuracy accuracy_;
    std::unordered_map<std::uint64_t, PredictorAccuracy>
        per_pc_accuracy_;
    std::vector<std::uint8_t> rrpv_;
    std::vector<std::uint64_t> line_pc_;
    std::vector<std::uint8_t> line_core_;
    std::vector<std::uint8_t> line_friendly_;
};

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_OPT_GUIDED_HH
