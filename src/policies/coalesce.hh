/**
 * @file
 * COALESCE-style bypass policy (see SNIPPETS.md snippet 2): a hashed
 * perceptron over PC features decides, on each LLC miss, whether the
 * incoming line is worth caching at all; lines predicted reuse-less
 * are bypassed. A ghost buffer — a Bloom filter over recently
 * discarded blocks — catches the mistakes: a miss whose block sits
 * in the ghost filter means a bypass/eviction threw away a line the
 * program wanted back, which trains the perceptron toward caching.
 * Lines that are cached insert at SRRIP positions scaled by the
 * perceptron's confidence.
 *
 * Storage: three 4K-entry int8 weight tables (one per PC hash), a
 * 64K-bit ghost Bloom filter (epoch-cleared to bound staleness), and
 * two per-line bytes; all preallocated in reset().
 */

#ifndef GLIDER_POLICIES_COALESCE_HH
#define GLIDER_POLICIES_COALESCE_HH

#include <vector>

#include "common/hash.hh"
#include "rrip.hh"

namespace glider {
namespace policies {

/** Hashed-perceptron bypass with a ghost-buffer Bloom filter. */
class CoalescePolicy : public RrpvBase
{
  public:
    std::string name() const override { return "COALESCE"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        RrpvBase::reset(geom);
        for (auto &t : weights_)
            t.assign(kWeightEntries, 0);
        bloom_.assign(kBloomBits / 64, 0);
        ghost_fill_ = 0;
        line_pc_.assign(geom.sets * geom.ways, 0);
        line_reused_.assign(geom.sets * geom.ways, 0);
    }

    std::uint32_t
    victimWay(const sim::ReplacementAccess &access,
              sim::SetView lines) noexcept override
    {
        // Ghost hit: this block was recently bypassed or evicted and
        // the program came back for it — a caching mistake. Train
        // the requesting PC toward caching.
        if (ghostContains(access.block_addr))
            train(access.pc, +1);
        if (predictSum(access.pc) < kBypassThreshold) {
            // Predicted reuse-less: skip insertion, but remember the
            // block so a near-term re-miss can veto the prediction.
            ghostAdd(access.block_addr);
            train(access.pc, -1);
            return geom_.ways; // bypass sentinel
        }
        return RrpvBase::victimWay(access, lines);
    }

    void
    onHit(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        RrpvBase::onHit(access, way);
        std::size_t idx = access.set * geom_.ways + way;
        if (!line_reused_[idx]) {
            line_reused_[idx] = 1;
            train(line_pc_[idx], +1);
        }
    }

    void
    onEvict(const sim::ReplacementAccess &access, std::uint32_t way,
            const sim::LineView &victim) noexcept override
    {
        // Every discarded block enters the ghost buffer; dead-on-
        // arrival lines additionally train their inserting PC down.
        ghostAdd(victim.block_addr);
        std::size_t idx = access.set * geom_.ways + way;
        if (!line_reused_[idx])
            train(line_pc_[idx], -1);
    }

    void
    onInsert(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        std::size_t idx = access.set * geom_.ways + way;
        line_pc_[idx] = access.pc;
        line_reused_[idx] = 0;
        int sum = predictSum(access.pc);
        std::uint8_t insert = kMaxRrpv - 1;
        if (sum >= kConfidentThreshold)
            insert = 0; // confident reuse: protect immediately
        else if (sum < 0)
            insert = kMaxRrpv; // cached on the benefit of the doubt
        rowFor(access.set)[way] = insert;
    }

  private:
    static constexpr std::size_t kTables = 3;
    static constexpr std::size_t kWeightEntries = 4096;
    static constexpr std::size_t kBloomBits = 64 * 1024;
    static constexpr std::uint64_t kGhostEpoch = 8192;
    static constexpr int kBypassThreshold = -6;
    static constexpr int kConfidentThreshold = 6;
    static constexpr int kWeightMax = 31;
    static constexpr int kWeightMin = -32;

    std::size_t
    weightIndex(std::size_t t, std::uint64_t pc) const
    {
        return static_cast<std::size_t>(
            hashInto(hashCombine(pc, 0xC0A1 + t), kWeightEntries));
    }

    int
    predictSum(std::uint64_t pc) const
    {
        int sum = 0;
        for (std::size_t t = 0; t < kTables; ++t)
            sum += weights_[t][weightIndex(t, pc)];
        return sum;
    }

    /** Saturating perceptron update across the hashed tables. */
    void
    train(std::uint64_t pc, int dir)
    {
        for (std::size_t t = 0; t < kTables; ++t) {
            auto &w = weights_[t][weightIndex(t, pc)];
            int next = w + dir;
            if (next >= kWeightMin && next <= kWeightMax)
                w = static_cast<std::int8_t>(next);
        }
    }

    void
    ghostAdd(std::uint64_t block)
    {
        // Epoch clear: after kGhostEpoch inserts the filter is dense
        // enough that stale ghosts would dominate; start over.
        if (++ghost_fill_ > kGhostEpoch) {
            for (auto &word : bloom_)
                word = 0;
            ghost_fill_ = 0;
        }
        std::uint64_t h1 = mix64(block);
        std::uint64_t h2 = mix64(block ^ 0x9E3779B97F4A7C15ull);
        bloom_[(h1 % kBloomBits) / 64] |= 1ull << (h1 % 64);
        bloom_[(h2 % kBloomBits) / 64] |= 1ull << (h2 % 64);
    }

    bool
    ghostContains(std::uint64_t block) const
    {
        std::uint64_t h1 = mix64(block);
        std::uint64_t h2 = mix64(block ^ 0x9E3779B97F4A7C15ull);
        return (bloom_[(h1 % kBloomBits) / 64] >> (h1 % 64) & 1)
            && (bloom_[(h2 % kBloomBits) / 64] >> (h2 % 64) & 1);
    }

    std::vector<std::int8_t> weights_[kTables];
    std::vector<std::uint64_t> bloom_; //!< ghost-buffer bit words
    std::uint64_t ghost_fill_ = 0;
    std::vector<std::uint64_t> line_pc_;
    std::vector<std::uint8_t> line_reused_;
};

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_COALESCE_HH
