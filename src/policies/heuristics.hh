/**
 * @file
 * Two cheap heuristic baselines for the policy zoo (ROADMAP bullet
 * 3), sized to cost a few bytes per set/line so the learning-based
 * policies have non-trivial but inexpensive opponents:
 *
 *  - EntropyAge: entropy-guided adaptive aging. A per-set shift
 *    register of 4-bit PC hashes estimates access-stream entropy;
 *    high entropy (many distinct PCs — scans, chaotic interleavings)
 *    inserts lines at distant RRPV so they age out fast, low entropy
 *    (a tight loop) inserts near.
 *
 *  - DecayCount: decayed adaptive counting. Per-line saturating hit
 *    counters with lazy epoch-based halving; the victim is the line
 *    with the lowest decayed count, ties broken toward the oldest.
 *    Frequency with forgetting — an LFU that survives phase changes.
 */

#ifndef GLIDER_POLICIES_HEURISTICS_HH
#define GLIDER_POLICIES_HEURISTICS_HH

#include <vector>

#include "cachesim/replacement.hh"
#include "common/hash.hh"
#include "rrip.hh"

namespace glider {
namespace policies {

/** Entropy-guided adaptive aging over the RRIP machinery. */
class EntropyAgePolicy : public RrpvBase
{
  public:
    std::string name() const override { return "EntropyAge"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        RrpvBase::reset(geom);
        history_.assign(geom.sets, 0);
    }

    std::uint32_t
    victimWay(const sim::ReplacementAccess &access,
              sim::SetView lines) noexcept override
    {
        observe(access);
        return RrpvBase::victimWay(access, lines);
    }

    void
    onHit(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        observe(access);
        RrpvBase::onHit(access, way);
    }

    void
    onInsert(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        // 16-nibble window: distinct PC hashes approximate the
        // stream's entropy. Few distinct PCs => loop-like reuse,
        // protect; many => scan-like churn, age out fast.
        unsigned distinct = distinctNibbles(history_[access.set]);
        std::uint8_t insert = kMaxRrpv - 1;
        if (distinct >= 12)
            insert = kMaxRrpv;
        else if (distinct <= 4)
            insert = 1;
        rowFor(access.set)[way] = insert;
    }

  private:
    /** Shift the access's 4-bit PC hash into the set's window. */
    void
    observe(const sim::ReplacementAccess &access)
    {
        history_[access.set] = history_[access.set] << 4
            | hashBits(access.pc, 4);
    }

    static unsigned
    distinctNibbles(std::uint64_t window)
    {
        std::uint32_t present = 0;
        for (int i = 0; i < 16; ++i) {
            present |= 1u << (window & 0xF);
            window >>= 4;
        }
        unsigned count = 0;
        while (present) {
            present &= present - 1;
            ++count;
        }
        return count;
    }

    std::vector<std::uint64_t> history_; //!< per-set PC-nibble window
};

/** Decayed adaptive counting: LFU with lazy epoch halving. */
class DecayCountPolicy : public sim::ReplacementPolicy
{
  public:
    std::string name() const override { return "DecayCount"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        geom_ = geom;
        clock_ = 0;
        count_.assign(geom.sets * geom.ways, 0);
        last_touch_.assign(geom.sets * geom.ways, 0);
        set_epoch_.assign(geom.sets, 0);
    }

    std::uint32_t
    victimWay(const sim::ReplacementAccess &access,
              sim::SetView lines) noexcept override
    {
        decaySet(access.set);
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (!lines[w].valid)
                return w;
        }
        std::size_t base = access.set * geom_.ways;
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < geom_.ways; ++w) {
            std::size_t i = base + w;
            std::size_t v = base + victim;
            if (count_[i] < count_[v]
                || (count_[i] == count_[v]
                    && last_touch_[i] < last_touch_[v])) {
                victim = w;
            }
        }
        return victim;
    }

    void
    onHit(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        std::size_t idx = access.set * geom_.ways + way;
        if (count_[idx] < kCountMax)
            ++count_[idx];
        last_touch_[idx] = ++clock_;
    }

    void
    onEvict(const sim::ReplacementAccess &, std::uint32_t,
            const sim::LineView &) noexcept override
    {
    }

    void
    onInsert(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        std::size_t idx = access.set * geom_.ways + way;
        count_[idx] = 1;
        last_touch_[idx] = ++clock_;
    }

  private:
    static constexpr std::uint8_t kCountMax = 63;
    static constexpr std::uint64_t kEpochShift = 13; //!< 8192 accesses

    /** Lazy decay: halve the set's counters once per elapsed epoch. */
    void
    decaySet(std::uint64_t set)
    {
        std::uint64_t epoch = clock_ >> kEpochShift;
        std::uint64_t behind = epoch - set_epoch_[set];
        if (behind == 0)
            return;
        if (behind > 6)
            behind = 6; // counters are 6 bits: further shifts zero them
        std::size_t base = set * geom_.ways;
        for (std::uint32_t w = 0; w < geom_.ways; ++w)
            count_[base + w] = static_cast<std::uint8_t>(
                count_[base + w] >> behind);
        set_epoch_[set] = epoch;
    }

    sim::CacheGeometry geom_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint8_t> count_;       //!< per-line decayed count
    std::vector<std::uint64_t> last_touch_; //!< per-line recency
    std::vector<std::uint64_t> set_epoch_;  //!< per-set decay epoch
};

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_HEURISTICS_HH
