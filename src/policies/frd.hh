/**
 * @file
 * FRD — forward-reuse-distance predictor policy, after "Learning
 * Forward Reuse Distance" (Yang et al., 2020; see PAPERS.md). Where
 * Hawkeye classifies PCs into binary friendly/averse, FRD regresses
 * the *distance* to a line's next use: a per-PC EWMA of observed
 * forward reuse distances (in LLC accesses) predicts, at insertion
 * or promotion time, when the line will be touched again. Eviction
 * is Belady-style over the predictions — the line whose predicted
 * next use is furthest away goes first, and a line already far past
 * its predicted reuse is treated as dead.
 *
 * Storage: a 4K-entry hashed PC table (8B each) plus three per-line
 * words; everything is preallocated in reset(), so the hot path is
 * allocation-free.
 */

#ifndef GLIDER_POLICIES_FRD_HH
#define GLIDER_POLICIES_FRD_HH

#include <vector>

#include "cachesim/replacement.hh"
#include "common/hash.hh"

namespace glider {
namespace policies {

/** Forward-reuse-distance regression replacement. */
class FrdPolicy : public sim::ReplacementPolicy
{
  public:
    std::string name() const override { return "FRD"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        geom_ = geom;
        clock_ = 0;
        pred_.assign(kTableEntries, kInitialDistance);
        std::size_t lines = geom.sets * geom.ways;
        next_use_.assign(lines, 0);
        last_touch_.assign(lines, 0);
        line_sig_.assign(lines, 0);
        line_reused_.assign(lines, 1);
    }

    std::uint32_t
    victimWay(const sim::ReplacementAccess &access,
              sim::SetView lines) noexcept override
    {
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (!lines[w].valid)
                return w;
        }
        // Belady over predictions: furthest predicted next use goes
        // first. A line overdue for its predicted reuse was
        // mispredicted — rank it even further out (dead), breaking
        // ties toward the most overdue.
        std::size_t base = access.set * geom_.ways;
        std::uint32_t victim = 0;
        std::uint64_t worst = 0;
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            std::uint64_t expect = next_use_[base + w];
            std::uint64_t score = expect > clock_
                ? expect
                : kDeadScore + (clock_ - expect);
            if (score > worst) {
                worst = score;
                victim = w;
            }
        }
        return victim;
    }

    void
    onHit(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        ++clock_;
        std::size_t idx = access.set * geom_.ways + way;
        // Observed forward reuse distance of the previous touch
        // trains the PC that made it (EWMA, 1/8 gain).
        std::uint64_t observed = clock_ - last_touch_[idx];
        std::uint64_t &p = pred_[line_sig_[idx]];
        std::int64_t delta = static_cast<std::int64_t>(observed)
            - static_cast<std::int64_t>(p);
        p = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(p) + delta / 8);
        if (p > kMaxDistance)
            p = kMaxDistance;
        line_reused_[idx] = 1;
        rearm(idx, access.pc);
    }

    void
    onEvict(const sim::ReplacementAccess &, std::uint32_t,
            const sim::LineView &) noexcept override
    {
        // Dead-on-eviction training happens in onInsert, which sees
        // the same way with line_reused_ still reflecting the victim.
    }

    void
    onInsert(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        ++clock_;
        std::size_t idx = access.set * geom_.ways + way;
        if (!line_reused_[idx]) {
            std::uint64_t &p = pred_[line_sig_[idx]];
            p += p / 4 + 64;
            if (p > kMaxDistance)
                p = kMaxDistance;
        }
        line_reused_[idx] = 0;
        rearm(idx, access.pc);
    }

  private:
    static constexpr std::size_t kTableEntries = 4096;
    static constexpr std::uint64_t kInitialDistance = 4096;
    static constexpr std::uint64_t kMaxDistance = 1u << 20;
    /** Scores above this mark mispredicted (overdue) lines. */
    static constexpr std::uint64_t kDeadScore = 1ull << 62;

    static std::size_t
    sigOf(std::uint64_t pc)
    {
        return static_cast<std::size_t>(hashInto(pc, kTableEntries));
    }

    /** Stamp a line's owner and predicted next use at touch time. */
    void
    rearm(std::size_t idx, std::uint64_t pc)
    {
        std::size_t sig = sigOf(pc);
        line_sig_[idx] = static_cast<std::uint32_t>(sig);
        last_touch_[idx] = clock_;
        next_use_[idx] = clock_ + pred_[sig];
    }

    sim::CacheGeometry geom_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> pred_;       //!< per-PC EWMA distance
    std::vector<std::uint64_t> next_use_;   //!< per-line prediction
    std::vector<std::uint64_t> last_touch_; //!< per-line touch time
    std::vector<std::uint32_t> line_sig_;   //!< per-line PC signature
    std::vector<std::uint8_t> line_reused_; //!< reuse seen since insert
};

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_FRD_HH
