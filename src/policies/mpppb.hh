/**
 * @file
 * MPPPB-style multiperspective perceptron reuse predictor (Jiménez &
 * Teran, MICRO'17) — the CRC2 fourth-place finisher the paper
 * compares against. A set of hand-crafted features (the current PC,
 * an ordered history of recent PCs, and address-derived bits) each
 * index a private table of small signed weights; the weights are
 * summed to predict whether an incoming line will be reused, and are
 * trained by observed reuse/eviction outcomes. This captures the two
 * defining traits the paper contrasts Glider with: multiple
 * perspectives and an *ordered* (duplicated) PC history.
 */

#ifndef GLIDER_POLICIES_MPPPB_HH
#define GLIDER_POLICIES_MPPPB_HH

#include <array>
#include <vector>

#include "common/hash.hh"
#include "rrip.hh"

namespace glider {
namespace policies {

/** Multiperspective perceptron replacement. */
class MpppbPolicy : public RrpvBase
{
  public:
    std::string name() const override { return "MPPPB"; }

    void
    reset(const sim::CacheGeometry &geom) override
    {
        RrpvBase::reset(geom);
        for (auto &table : weights_)
            table.assign(kTableEntries, 0);
        line_feat_.assign(geom.sets * geom.ways,
                          std::array<std::uint16_t, kFeatures>{});
        line_reused_.assign(geom.sets * geom.ways, 0);
        line_sum_.assign(geom.sets * geom.ways, 0);
        pc_history_.assign(geom.cores, {});
    }

    void
    onHit(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        std::size_t idx = access.set * geom_.ways + way;
        // Reuse observed: train toward "friendly" if the decision was
        // weak or wrong (perceptron update rule with threshold).
        if (!line_reused_[idx]) {
            line_reused_[idx] = 1;
            if (line_sum_[idx] < kTrainTheta)
                adjust(line_feat_[idx], +1);
        }
        pushHistory(access);
        RrpvBase::onHit(access, way);
    }

    void
    onEvict(const sim::ReplacementAccess &access, std::uint32_t way,
            const sim::LineView &) noexcept override
    {
        std::size_t idx = access.set * geom_.ways + way;
        // Dead on eviction: train toward "averse" symmetrically.
        if (!line_reused_[idx] && line_sum_[idx] > -kTrainTheta)
            adjust(line_feat_[idx], -1);
    }

    void
    onInsert(const sim::ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        auto feats = features(access);
        int sum = 0;
        for (std::size_t f = 0; f < kFeatures; ++f)
            sum += weights_[f][feats[f]];

        std::size_t idx = access.set * geom_.ways + way;
        line_feat_[idx] = feats;
        line_reused_[idx] = 0;
        line_sum_[idx] = sum;

        std::uint8_t insert;
        if (sum < -kAverseTheta)
            insert = kMaxRrpv; // predicted dead on arrival
        else if (sum > kFriendlyTheta)
            insert = 0;
        else
            insert = 2;
        rowFor(access.set)[way] = insert;
        pushHistory(access);
    }

  private:
    static constexpr std::size_t kFeatures = 6;
    static constexpr std::size_t kTableEntries = 256;
    static constexpr int kWeightMax = 31;  //!< 6-bit signed weights
    static constexpr int kWeightMin = -32;
    static constexpr int kTrainTheta = 30;
    static constexpr int kFriendlyTheta = 60;
    static constexpr int kAverseTheta = 0;

    /** Ordered PC history depth (3, per Teran et al. / MPPPB). */
    static constexpr std::size_t kHistoryDepth = 3;

    /**
     * Fixed-capacity ordered PC history. A std::deque would allocate
     * chunk nodes from the onHit/onInsert path; at depth 3 a shift-
     * down array is both allocation-free and faster.
     */
    struct PcQueue
    {
        std::array<std::uint64_t, kHistoryDepth> pc{};
        std::size_t size = 0;

        void
        pushFront(std::uint64_t p) noexcept
        {
            for (std::size_t i = kHistoryDepth - 1; i > 0; --i)
                pc[i] = pc[i - 1];
            pc[0] = p;
            if (size < kHistoryDepth)
                ++size;
        }
    };

    void
    pushHistory(const sim::ReplacementAccess &access) noexcept
    {
        pc_history_[access.core].pushFront(access.pc);
    }

    std::array<std::uint16_t, kFeatures>
    features(const sim::ReplacementAccess &access) const
    {
        const auto &h = pc_history_[access.core];
        auto fold = [](std::uint64_t x) {
            return static_cast<std::uint16_t>(hashInto(x, kTableEntries));
        };
        std::array<std::uint16_t, kFeatures> f{};
        f[0] = fold(access.pc);
        // Ordered history features: position matters, so position is
        // folded into the hash (this is exactly the representation
        // Glider's unordered k-sparse feature abandons).
        for (std::size_t i = 0; i < kHistoryDepth; ++i) {
            std::uint64_t pc_i = i < h.size ? h.pc[i] : 0;
            f[1 + i] = fold(hashCombine(pc_i, i + 1));
        }
        f[4] = fold(access.block_addr >> 4);  // region bits
        f[5] = fold(access.pc ^ (access.block_addr >> 10)); // pc x page
        return f;
    }

    void
    adjust(const std::array<std::uint16_t, kFeatures> &feats, int dir)
    {
        for (std::size_t f = 0; f < kFeatures; ++f) {
            int w = weights_[f][feats[f]] + dir;
            if (w > kWeightMax)
                w = kWeightMax;
            if (w < kWeightMin)
                w = kWeightMin;
            weights_[f][feats[f]] = static_cast<std::int8_t>(w);
        }
    }

    std::array<std::vector<std::int8_t>, kFeatures> weights_;
    std::vector<std::array<std::uint16_t, kFeatures>> line_feat_;
    std::vector<std::uint8_t> line_reused_;
    std::vector<int> line_sum_;
    std::vector<PcQueue> pc_history_;
};

} // namespace policies
} // namespace glider

#endif // GLIDER_POLICIES_MPPPB_HH
