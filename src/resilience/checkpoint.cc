#include "checkpoint.hh"

#include <cstdio>
#include <utility>

#include "common/logging.hh"

namespace glider {
namespace resilience {

namespace json = obs::json;

json::Value
encodeResult(const sim::SingleCoreResult &row)
{
    json::Value v = json::Value::object();
    v["workload"] = row.workload;
    v["policy"] = row.policy;
    v["instructions"] = row.instructions;
    v["cycles"] = row.cycles;
    v["ipc"] = row.ipc;
    v["accesses_simulated"] = row.accesses_simulated;
    json::Value llc = json::Value::object();
    llc["accesses"] = row.llc.accesses;
    llc["hits"] = row.llc.hits;
    llc["misses"] = row.llc.misses;
    llc["bypasses"] = row.llc.bypasses;
    llc["evictions"] = row.llc.evictions;
    v["llc"] = std::move(llc);
    return v;
}

sim::SingleCoreResult
decodeResult(const json::Value &v)
{
    auto u64 = [](const json::Value &field) {
        return static_cast<std::uint64_t>(field.integer());
    };
    sim::SingleCoreResult row;
    row.workload = v.find("workload")->str();
    row.policy = v.find("policy")->str();
    row.instructions = u64(*v.find("instructions"));
    row.cycles = v.find("cycles")->number();
    row.ipc = v.find("ipc")->number();
    row.accesses_simulated = u64(*v.find("accesses_simulated"));
    const json::Value &llc = *v.find("llc");
    row.llc.accesses = u64(*llc.find("accesses"));
    row.llc.hits = u64(*llc.find("hits"));
    row.llc.misses = u64(*llc.find("misses"));
    row.llc.bypasses = u64(*llc.find("bypasses"));
    row.llc.evictions = u64(*llc.find("evictions"));
    return row;
}

SweepCheckpoint::SweepCheckpoint(std::string path, std::string sweep,
                                 json::Value config)
    : path_(std::move(path)), sweep_(std::move(sweep)),
      config_(std::move(config))
{
}

std::size_t
SweepCheckpoint::load()
{
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    if (!f)
        return 0; // nothing to resume from
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    json::Value doc;
    try {
        doc = json::Value::parse(text);
    } catch (const std::exception &e) {
        GLIDER_WARN("checkpoint " + path_
                    + ": unparseable, starting fresh (" + e.what()
                    + ")");
        return 0;
    }
    const json::Value *schema = doc.find("schema");
    const json::Value *version = doc.find("schema_version");
    if (!schema || !schema->isString()
        || schema->str() != "glider-sweep-ckpt" || !version
        || version->integer() != kSchemaVersion) {
        GLIDER_WARN("checkpoint " + path_
                    + ": wrong schema, starting fresh");
        return 0;
    }
    const json::Value *config = doc.find("config");
    if (!config || *config != config_) {
        GLIDER_WARN("checkpoint " + path_
                    + ": config fingerprint differs (harness knobs "
                      "changed?), starting fresh");
        return 0;
    }
    const json::Value *cells = doc.find("cells");
    if (!cells || !cells->isObject())
        return 0;

    std::lock_guard<std::mutex> lock(mutex_);
    rows_.clear();
    for (const auto &[key, row] : cells->members())
        rows_[key] = row;
    return rows_.size();
}

const obs::json::Value *
SweepCheckpoint::find(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = rows_.find(key);
    return it == rows_.end() ? nullptr : &it->second;
}

void
SweepCheckpoint::record(const std::string &key, json::Value row)
{
    std::lock_guard<std::mutex> lock(mutex_);
    rows_[key] = std::move(row);
    save();
}

std::size_t
SweepCheckpoint::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rows_.size();
}

obs::json::Value
SweepCheckpoint::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return toJsonLocked();
}

obs::json::Value
SweepCheckpoint::toJsonLocked() const
{
    json::Value out = json::Value::object();
    out["schema"] = "glider-sweep-ckpt";
    out["schema_version"] = kSchemaVersion;
    out["sweep"] = sweep_;
    out["config"] = config_;
    // std::map iterates sorted by key: the file's cell order depends
    // only on the cell set, never on completion order, which is what
    // makes interrupted-then-resumed output byte-identical.
    json::Value cells = json::Value::object();
    for (const auto &[key, row] : rows_)
        cells[key] = row;
    out["cells"] = std::move(cells);
    return out;
}

void
SweepCheckpoint::save() const
{
    std::string tmp = path_ + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        GLIDER_WARN("checkpoint: cannot open " + tmp + " for writing");
        return;
    }
    std::string doc = toJsonLocked().dump();
    doc += '\n';
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    bool closed = std::fclose(f) == 0;
    if (n != doc.size() || !closed) {
        GLIDER_WARN("checkpoint: short write to " + tmp);
        std::remove(tmp.c_str());
        return;
    }
    // Atomic replace: a kill at any point leaves either the old or
    // the new complete file, never a torn one.
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        GLIDER_WARN("checkpoint: rename to " + path_ + " failed");
}

} // namespace resilience
} // namespace glider
