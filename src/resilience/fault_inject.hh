/**
 * @file
 * Deterministic fault injection for the experiment harness.
 *
 * GLIDER_FAULT_INJECT selects faults by cell key so that every
 * recovery path — quarantine, retry, deadline cancellation, and
 * checkpoint resume after a hard kill — can be exercised from tests
 * and CI without touching simulator code. The spec is a semicolon-
 * separated list of clauses:
 *
 *   throw@KEY        throw FaultInjected on every attempt of KEY
 *   flaky:N@KEY      throw on the first N attempts, then succeed
 *   hang@KEY         spin (sleeping) until the cell's cancel token
 *                    fires, then unwind with CancelledError
 *   abort@KEY        std::abort() — simulates a hard process kill
 *   random:P:SEED    every cell fails its first attempt with
 *                    probability P, drawn deterministically per key
 *                    from Rng(seed ^ hash(key)) (common/rng.hh)
 *
 * All draws are per-(key, attempt) deterministic, so a failing run
 * reproduces exactly.
 */

#ifndef GLIDER_RESILIENCE_FAULT_INJECT_HH
#define GLIDER_RESILIENCE_FAULT_INJECT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cancellation.hh"

namespace glider {
namespace resilience {

/** Thrown by an injected throw/flaky fault. */
class FaultInjected : public std::runtime_error
{
  public:
    explicit FaultInjected(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Parsed GLIDER_FAULT_INJECT specification. */
class FaultPlan
{
  public:
    /** Kinds of injectable faults (see file comment for semantics). */
    enum class Kind { Throw, Flaky, Hang, Abort, Random };

    /** One spec clause. */
    struct Clause
    {
        Kind kind = Kind::Throw;
        std::string key;              //!< target cell; empty for Random
        int flaky_attempts = 0;       //!< Flaky: attempts that fail
        double probability = 0.0;     //!< Random: per-cell fail chance
        std::uint64_t seed = 0;       //!< Random: draw seed
    };

    FaultPlan() = default;

    /**
     * Parse a spec string. Malformed clauses throw
     * std::invalid_argument with the offending clause.
     */
    static FaultPlan parse(const std::string &spec);

    /** Plan from $GLIDER_FAULT_INJECT (empty plan when unset). */
    static FaultPlan fromEnv();

    bool empty() const { return clauses_.empty(); }
    const std::vector<Clause> &clauses() const { return clauses_; }

    /**
     * Fire any fault this plan holds for (@p key, @p attempt); called
     * at the top of every cell attempt. May throw FaultInjected,
     * sleep until @p token cancels (then throw CancelledError), or
     * abort the process. Returns normally when no fault matches.
     */
    void apply(const std::string &key, int attempt,
               const CancelToken &token) const;

  private:
    std::vector<Clause> clauses_;
};

} // namespace resilience
} // namespace glider

#endif // GLIDER_RESILIENCE_FAULT_INJECT_HH
