#include "fault_inject.hh"

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "common/env_registry.hh"
#include "common/hash.hh"
#include "common/rng.hh"

namespace glider {
namespace resilience {

namespace {

/**
 * FNV-1a over the key bytes, finished with mix64. std::hash would do
 * within one process, but its value is implementation-defined and
 * fault draws must reproduce across toolchains.
 */
std::uint64_t
hashKey(const std::string &key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return mix64(h);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(sep, start);
        if (end == std::string::npos)
            end = s.size();
        if (end > start)
            out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

[[noreturn]] void
badClause(const std::string &clause)
{
    throw std::invalid_argument("GLIDER_FAULT_INJECT: bad clause '"
                                + clause + "'");
}

} // namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    for (const auto &clause : split(spec, ';')) {
        Clause c;
        std::size_t at = clause.find('@');
        std::string head =
            at == std::string::npos ? clause : clause.substr(0, at);
        if (at != std::string::npos)
            c.key = clause.substr(at + 1);
        auto parts = split(head, ':');
        if (parts.empty())
            badClause(clause);
        const std::string &name = parts[0];
        if (name == "throw" && parts.size() == 1 && !c.key.empty()) {
            c.kind = Kind::Throw;
        } else if (name == "flaky" && parts.size() == 2
                   && !c.key.empty()) {
            c.kind = Kind::Flaky;
            c.flaky_attempts = std::atoi(parts[1].c_str());
            if (c.flaky_attempts <= 0)
                badClause(clause);
        } else if (name == "hang" && parts.size() == 1
                   && !c.key.empty()) {
            c.kind = Kind::Hang;
        } else if (name == "abort" && parts.size() == 1
                   && !c.key.empty()) {
            c.kind = Kind::Abort;
        } else if (name == "random" && parts.size() == 3
                   && c.key.empty()) {
            c.kind = Kind::Random;
            c.probability = std::atof(parts[1].c_str());
            c.seed = std::strtoull(parts[2].c_str(), nullptr, 10);
            if (c.probability < 0.0 || c.probability > 1.0)
                badClause(clause);
        } else {
            badClause(clause);
        }
        plan.clauses_.push_back(std::move(c));
    }
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    std::string spec = env::str(env::Knob::FaultInject);
    return !spec.empty() ? parse(spec) : FaultPlan();
}

void
FaultPlan::apply(const std::string &key, int attempt,
                 const CancelToken &token) const
{
    for (const auto &c : clauses_) {
        switch (c.kind) {
          case Kind::Throw:
            if (c.key == key)
                throw FaultInjected("injected throw at " + key);
            break;
          case Kind::Flaky:
            if (c.key == key && attempt <= c.flaky_attempts)
                throw FaultInjected("injected flaky fault at " + key
                                    + " (attempt "
                                    + std::to_string(attempt) + ")");
            break;
          case Kind::Hang:
            if (c.key == key) {
                // Cooperative hang: the cell makes no progress until
                // its deadline (or an external cancel) fires.
                while (!token.cancelled()) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                }
                token.throwIfCancelled();
            }
            break;
          case Kind::Abort:
            if (c.key == key)
                std::abort(); // simulated hard kill mid-sweep
            break;
          case Kind::Random: {
            Rng rng(c.seed ^ hashKey(key));
            if (attempt == 1 && rng.chance(c.probability))
                throw FaultInjected("injected random fault at " + key);
            break;
          }
        }
    }
}

} // namespace resilience
} // namespace glider
