/**
 * @file
 * Per-cell fault containment for the experiment harness.
 *
 * runCell() is the boundary between one sweep cell and the rest of a
 * fan-out: any exception the cell throws — including
 * verify::InvariantViolation from a checked policy and CancelledError
 * from a blown soft deadline — is caught here, the cell is retried
 * with exponential backoff up to a bounded attempt budget, and a cell
 * that exhausts its budget is returned as Quarantined with the error
 * string instead of aborting sibling cells. Each attempt runs under a
 * fresh CancelToken chained to the sweep-wide token, so a pool-level
 * cancel stops retries immediately and is never retried away.
 */

#ifndef GLIDER_RESILIENCE_RECOVERY_HH
#define GLIDER_RESILIENCE_RECOVERY_HH

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/cancellation.hh"
#include "common/env_registry.hh"
#include "fault_inject.hh"

namespace glider {
namespace resilience {

/** How a cell's row was obtained (or not). */
enum class CellStatus {
    Ok,         //!< computed this run
    Resumed,    //!< replayed from a sweep checkpoint
    Quarantined //!< every attempt failed; row is absent
};

inline const char *
cellStatusName(CellStatus s)
{
    switch (s) {
      case CellStatus::Ok:
        return "ok";
      case CellStatus::Resumed:
        return "resumed";
      case CellStatus::Quarantined:
        break;
    }
    return "quarantined";
}

/** Retry/deadline budget for one cell. */
struct RecoveryOptions
{
    int max_attempts = 3;                //!< 1 = no retry
    std::uint64_t deadline_ms = 0;       //!< per-attempt; 0 = none
    std::uint64_t backoff_initial_ms = 10;
    std::uint64_t backoff_max_ms = 1000;

    /**
     * Env-tuned budget: GLIDER_CELL_RETRIES (extra attempts after the
     * first, default 2) and GLIDER_CELL_DEADLINE_MS (default 0, off).
     */
    static RecoveryOptions
    fromEnv()
    {
        RecoveryOptions opts;
        opts.max_attempts =
            1 + static_cast<int>(env::u64(env::Knob::CellRetries));
        if (opts.max_attempts < 1)
            opts.max_attempts = 1;
        opts.deadline_ms = env::u64(env::Knob::CellDeadlineMs);
        return opts;
    }
};

/** Outcome of running one cell under fault containment. */
template <typename R>
struct CellResult
{
    std::optional<R> value;  //!< present unless Quarantined
    CellStatus status = CellStatus::Quarantined;
    std::string error;       //!< last failure (what()), if any
    int attempts = 0;        //!< attempts actually made
};

/**
 * Run @p fn (signature R(const CancelToken &)) as one isolated cell.
 *
 * @param key    Cell identity, used by @p faults to target clauses.
 * @param faults Optional fault-injection plan applied per attempt.
 * @param parent Optional sweep-wide token; its cancellation stops the
 *               attempt loop (a cancelled sweep is not retryable).
 */
template <typename R, typename Fn>
CellResult<R>
runCell(const std::string &key, Fn &&fn,
        const RecoveryOptions &opts = RecoveryOptions(),
        const FaultPlan *faults = nullptr,
        const CancelToken *parent = nullptr)
{
    CellResult<R> out;
    std::uint64_t backoff_ms = opts.backoff_initial_ms;
    int max_attempts = opts.max_attempts < 1 ? 1 : opts.max_attempts;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        out.attempts = attempt;
        CancelToken token(parent);
        if (opts.deadline_ms > 0)
            token.setDeadlineMs(opts.deadline_ms);
        try {
            if (faults)
                faults->apply(key, attempt, token);
            out.value = fn(static_cast<const CancelToken &>(token));
            out.status = CellStatus::Ok;
            return out;
        } catch (const std::exception &e) {
            // Covers verify::InvariantViolation, CancelledError,
            // FaultInjected, and anything std-derived the cell threw.
            out.error = e.what();
        } catch (...) {
            out.error = "non-standard exception";
        }
        if (parent && parent->cancelled())
            break; // sweep-wide cancel: do not retry
        if (attempt < max_attempts) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
            backoff_ms *= 2;
            if (backoff_ms > opts.backoff_max_ms)
                backoff_ms = opts.backoff_max_ms;
        }
    }
    out.status = CellStatus::Quarantined;
    return out;
}

} // namespace resilience
} // namespace glider

#endif // GLIDER_RESILIENCE_RECOVERY_HH
