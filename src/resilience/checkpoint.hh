/**
 * @file
 * Sweep checkpointing: every completed cell's result row is persisted
 * through obs::json so an interrupted or killed sweep resumes by
 * replaying only the missing cells.
 *
 * Schema (glider-sweep-ckpt, version 1):
 * {
 *   "schema": "glider-sweep-ckpt",
 *   "schema_version": 1,
 *   "sweep": "<sweep name>",
 *   "config": { <harness knobs the rows depend on> },
 *   "cells": { "<cell key>": { <encoded row> }, ... }
 * }
 *
 * Byte-identity contract: cells serialize sorted by key (not in
 * completion order), rows exclude wall-clock fields, and obs::json
 * prints doubles in shortest round-trippable form — so the checkpoint
 * written by an interrupted-then-resumed sweep is byte-identical to
 * one from an uninterrupted run. A config fingerprint mismatch (e.g.
 * a different GLIDER_ACCESSES) discards the file rather than mixing
 * rows computed under different settings.
 */

#ifndef GLIDER_RESILIENCE_CHECKPOINT_HH
#define GLIDER_RESILIENCE_CHECKPOINT_HH

#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "cachesim/simulator.hh"
#include "obs/json.hh"

namespace glider {
namespace resilience {

/** A resumed row failed its determinism recomputation check. */
class CheckpointMismatch : public std::runtime_error
{
  public:
    explicit CheckpointMismatch(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * Encode one result row for checkpointing. sim_seconds (wall time) is
 * deliberately dropped: it is nondeterministic and would break both
 * the resume determinism check and checkpoint byte-identity.
 */
obs::json::Value encodeResult(const sim::SingleCoreResult &row);

/** Inverse of encodeResult (sim_seconds restored as 0). */
sim::SingleCoreResult decodeResult(const obs::json::Value &v);

/** One sweep's checkpoint file. Thread-safe; record() persists. */
class SweepCheckpoint
{
  public:
    static constexpr int kSchemaVersion = 1;

    /**
     * @param path   Checkpoint file path.
     * @param sweep  Sweep name stamped into the file.
     * @param config Fingerprint of everything the rows depend on.
     */
    SweepCheckpoint(std::string path, std::string sweep,
                    obs::json::Value config);

    /**
     * Read rows from an existing file. Returns the number of rows
     * recovered; a missing file, wrong schema, or config-fingerprint
     * mismatch recovers nothing (the stale file is superseded on the
     * next record()).
     */
    std::size_t load();

    /** Encoded row for @p key, or nullptr when not checkpointed. */
    const obs::json::Value *find(const std::string &key) const;

    /** Add @p row under @p key and atomically rewrite the file. */
    void record(const std::string &key, obs::json::Value row);

    std::size_t size() const;
    const std::string &path() const { return path_; }

    /** Serialize the full document (schema above). */
    obs::json::Value toJson() const;

  private:
    void save() const;                    //!< callers hold mutex_
    obs::json::Value toJsonLocked() const; //!< callers hold mutex_

    std::string path_;
    std::string sweep_;
    obs::json::Value config_;
    std::map<std::string, obs::json::Value> rows_;
    mutable std::mutex mutex_;
};

} // namespace resilience
} // namespace glider

#endif // GLIDER_RESILIENCE_CHECKPOINT_HH
