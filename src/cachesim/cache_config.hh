/**
 * @file
 * Cache and hierarchy configuration. Defaults follow the paper's
 * Table 1: 32KB/8-way L1, 256KB/8-way L2, 2MB/16-way LLC per core,
 * with the CRC2 latencies.
 */

#ifndef GLIDER_CACHESIM_CACHE_CONFIG_HH
#define GLIDER_CACHESIM_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"
#include "traces/access.hh"

namespace glider {
namespace sim {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t size_bytes = 32 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t latency = 4; //!< access latency in core cycles

    /** Number of sets implied by size/ways/64B blocks. */
    std::uint64_t
    sets() const
    {
        std::uint64_t block = 1ull << traces::kBlockBits;
        GLIDER_ASSERT(size_bytes % (block * ways) == 0);
        return size_bytes / (block * ways);
    }
};

/** Full hierarchy parameters (Table 1). */
struct HierarchyConfig
{
    CacheConfig l1{"L1D", 32 * 1024, 8, 4};
    CacheConfig l2{"L2", 256 * 1024, 8, 12};
    CacheConfig llc{"LLC", 2 * 1024 * 1024, 16, 26};
    std::uint32_t dram_latency = 200; //!< core cycles to DRAM

    /**
     * Scale the LLC to @p cores x 2MB (the paper's multi-core runs
     * share an 8MB LLC among 4 cores).
     */
    static HierarchyConfig
    forCores(unsigned cores)
    {
        HierarchyConfig cfg;
        cfg.llc.size_bytes = 2ull * 1024 * 1024 * cores;
        return cfg;
    }
};

} // namespace sim
} // namespace glider

#endif // GLIDER_CACHESIM_CACHE_CONFIG_HH
