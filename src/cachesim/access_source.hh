/**
 * @file
 * Chunked access-record sources for the simulation drivers.
 *
 * The simulator replays records through an AccessSource instead of a
 * concrete Trace, so the same loop serves both the in-memory path
 * (TraceSource: the whole vector as one zero-copy chunk) and the
 * billion-access streaming path (StreamingSource: one decoded gtrace
 * chunk resident at a time, consumed pages dropped behind the cursor).
 * Both deliver identical record sequences, so streamed results are
 * bit-identical to in-memory ones by construction.
 */

#ifndef GLIDER_CACHESIM_ACCESS_SOURCE_HH
#define GLIDER_CACHESIM_ACCESS_SOURCE_HH

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "traces/gtrace.hh"
#include "traces/trace.hh"

namespace glider {
namespace sim {

/**
 * An ordered stream of access records delivered in chunks. Callers
 * iterate nextChunk() until it returns an empty span, and may rewind()
 * to replay from the start (the multi-core early-finisher rule).
 * Returned spans stay valid until the next nextChunk()/rewind() call
 * on the same source.
 */
class AccessSource
{
  public:
    virtual ~AccessSource() = default;

    /** Workload name carried into result rows. */
    virtual const std::string &name() const = 0;

    /** Total records one full pass delivers. */
    virtual std::uint64_t size() const = 0;

    /** Next chunk of records; empty span once exhausted. */
    virtual std::span<const traces::AccessRecord> nextChunk() = 0;

    /** Restart delivery from the first record. */
    virtual void rewind() = 0;
};

/** In-memory source: the whole trace as one zero-copy chunk. */
class TraceSource final : public AccessSource
{
  public:
    explicit TraceSource(const traces::Trace &trace) : trace_(&trace) {}

    const std::string &name() const override { return trace_->name(); }
    std::uint64_t size() const override { return trace_->size(); }

    std::span<const traces::AccessRecord>
    nextChunk() override
    {
        if (delivered_)
            return {};
        delivered_ = true;
        return {trace_->records().data(), trace_->records().size()};
    }

    void rewind() override { delivered_ = false; }

  private:
    const traces::Trace *trace_;
    bool delivered_ = false;
};

/**
 * Streaming source over an open gtrace file. Memory use is one decode
 * buffer (the file's largest chunk), independent of trace length; with
 * @p drop_pages set (the default) consumed file pages are released as
 * the cursor passes them, so resident set stays O(1) too. Dropped
 * pages transparently refault on rewind().
 */
class StreamingSource final : public AccessSource
{
  public:
    explicit StreamingSource(traces::StreamingTrace trace,
                             bool drop_pages = true)
        : trace_(std::move(trace)), drop_pages_(drop_pages)
    {
        GLIDER_ASSERT(trace_.isOpen());
        // glider-lint: allow(hotpath-alloc) decode buffer sized once
        buf_.resize(trace_.maxChunkRecords());
    }

    const std::string &name() const override { return trace_.name(); }
    std::uint64_t size() const override { return trace_.size(); }

    std::span<const traces::AccessRecord>
    nextChunk() override
    {
        if (next_ >= trace_.chunkCount())
            return {};
        std::size_t idx = next_++;
        std::size_t n = trace_.readChunk(idx, buf_.data(), buf_.size());
        if (drop_pages_)
            trace_.dropChunkPages(idx);
        return {buf_.data(), n};
    }

    void rewind() override { next_ = 0; }

    const traces::StreamingTrace &trace() const { return trace_; }

  private:
    traces::StreamingTrace trace_;
    std::vector<traces::AccessRecord> buf_;
    std::size_t next_ = 0;
    bool drop_pages_;
};

} // namespace sim
} // namespace glider

#endif // GLIDER_CACHESIM_ACCESS_SOURCE_HH
