/**
 * @file
 * Three-level cache hierarchy: private L1D and L2 per core, shared
 * LLC running the replacement policy under study (Table 1 shapes).
 */

#ifndef GLIDER_CACHESIM_HIERARCHY_HH
#define GLIDER_CACHESIM_HIERARCHY_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache.hh"
#include "cache_config.hh"

namespace glider {
namespace sim {

/** Deepest level an access had to travel to. */
enum class AccessDepth { L1, L2, Llc, Dram };

/** Factory for the LLC policy under study. */
using PolicyFactory = std::function<std::unique_ptr<ReplacementPolicy>()>;

/** Private L1/L2 per core plus a shared LLC. */
class Hierarchy
{
  public:
    /**
     * @param config Level shapes and latencies.
     * @param cores Number of cores (private L1/L2 each).
     * @param llc_policy LLC replacement policy instance.
     */
    Hierarchy(const HierarchyConfig &config, unsigned cores,
              std::unique_ptr<ReplacementPolicy> llc_policy);

    /**
     * Walk one access down the hierarchy, filling on the way back.
     * @return deepest level reached.
     */
    AccessDepth access(std::uint8_t core, std::uint64_t pc,
                       std::uint64_t byte_addr, bool is_write);

    /** Round-trip latency (core cycles) for a given depth. */
    std::uint32_t latency(AccessDepth depth) const;

    Cache &l1(unsigned core) { return *l1_[core]; }
    Cache &l2(unsigned core) { return *l2_[core]; }
    Cache &llc() { return *llc_; }
    const Cache &llc() const { return *llc_; }
    const HierarchyConfig &config() const { return config_; }
    unsigned cores() const { return cores_; }

    /** LLC accesses/misses observed for a given core. */
    std::uint64_t llcAccessesFor(unsigned core) const
    {
        return llc_core_accesses_[core];
    }
    std::uint64_t llcMissesFor(unsigned core) const
    {
        return llc_core_misses_[core];
    }

    /** Zero all per-level and per-core counters (cache state kept). */
    void clearStatsCounters();

    /**
     * Snapshot every level's stats — l1.core<N>/l2.core<N>/llc
     * subtrees, per-core LLC traffic, the LLC policy's telemetry, and
     * (in GLIDER_METRICS builds) the access-latency histogram — into
     * @p registry under @p prefix. Use a fresh registry per export.
     */
    void exportMetrics(obs::Registry &registry,
                       const std::string &prefix) const;

  private:
    HierarchyConfig config_;
    unsigned cores_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> llc_;
    std::vector<std::uint64_t> llc_core_accesses_;
    std::vector<std::uint64_t> llc_core_misses_;
    //! Round-trip latency of each access; no-op unless GLIDER_METRICS.
    obs::HotHistogram access_latency_;
};

} // namespace sim
} // namespace glider

#endif // GLIDER_CACHESIM_HIERARCHY_HH
