/**
 * @file
 * Single-core and multi-core simulation drivers implementing the
 * paper's §5.1 methodology: warmup then measurement for single-core
 * runs; simultaneous execution with trace rewind and weighted-speedup
 * reporting for 4-core mixes.
 */

#ifndef GLIDER_CACHESIM_SIMULATOR_HH
#define GLIDER_CACHESIM_SIMULATOR_HH

#include <span>
#include <string>
#include <vector>

#include "access_source.hh"
#include "common/cancellation.hh"
#include "core_model.hh"
#include "hierarchy.hh"
#include "traces/trace.hh"

namespace glider {
namespace sim {

/** Result of one single-core run. */
struct SingleCoreResult
{
    std::string workload;
    std::string policy;
    std::uint64_t instructions = 0;
    double cycles = 0.0;
    double ipc = 0.0;
    CacheStats llc; //!< measured-phase LLC stats
    std::uint64_t accesses_simulated = 0; //!< trace records replayed
    double sim_seconds = 0.0; //!< wall time of the replay loop

    double llcMissRate() const { return llc.missRate(); }

    /** Harness throughput: trace accesses replayed per wall second. */
    double
    accessesPerSec() const
    {
        return sim_seconds > 0.0
            ? static_cast<double>(accesses_simulated) / sim_seconds
            : 0.0;
    }

    /** LLC misses per kilo-instruction. */
    double
    mpki() const
    {
        return instructions
            ? 1000.0 * static_cast<double>(llc.misses)
                / static_cast<double>(instructions)
            : 0.0;
    }
};

/** Result of one multi-core mix run. */
struct MultiCoreResult
{
    std::vector<std::string> workloads;
    std::string policy;
    std::vector<double> ipc_shared; //!< per-core shared-mode IPC
    CacheStats llc;
    // Batched-advice probe tallies (zero unless
    // SimOptions::advice_batch enabled it and the policy implements
    // BatchAdviceProvider).
    std::uint64_t advice_queries = 0;  //!< queries answered
    std::uint64_t advice_batches = 0;  //!< batches served
    std::uint64_t advice_friendly = 0; //!< non-Averse answers
};

/** Options shared by the drivers. */
struct SimOptions
{
    HierarchyConfig hierarchy;
    CoreParams core;
    double warmup_fraction = 0.2; //!< accesses before stats reset
    /**
     * Optional cooperative cancellation: when set, the replay loops
     * poll the token every few thousand accesses and unwind with
     * CancelledError once it fires (soft deadline or stop request).
     * The token must outlive the run; nullptr disables polling.
     */
    const CancelToken *cancel = nullptr;
    /**
     * Opt-in batched-advice probe (multi-core runs only): when > 0
     * and the LLC policy implements sim::BatchAdviceProvider, every
     * advice_batch-th access flushes the accumulated (pc, core)
     * window through serveAdviceBatch against the policy's live
     * state. Pure observation — replacement decisions and cache
     * statistics are unchanged; tallies land in MultiCoreResult.
     */
    std::size_t advice_batch = 0;
};

/**
 * Run @p source on a single core with @p llc_policy in the LLC.
 * The first warmup_fraction of accesses prime the caches, then all
 * counters reset and the remainder is measured (the paper warms 200M
 * instructions and measures 1B). This is the one replay loop — the
 * Trace overload delegates here, so streamed and in-memory runs are
 * bit-identical by construction.
 */
SingleCoreResult runSingleCore(AccessSource &source,
                               std::unique_ptr<ReplacementPolicy>
                                   llc_policy,
                               const SimOptions &opts = SimOptions());

/** In-memory convenience overload of the AccessSource driver. */
SingleCoreResult runSingleCore(const traces::Trace &trace,
                               std::unique_ptr<ReplacementPolicy>
                                   llc_policy,
                               const SimOptions &opts = SimOptions());

/**
 * Run one source per core simultaneously against a shared LLC.
 * Cores proceed in timing order; a core whose stream is exhausted
 * rewinds until every core has executed @p min_accesses_per_core
 * measured accesses (the paper's 250M-instruction rule).
 */
MultiCoreResult runMultiCore(std::span<AccessSource *const> sources,
                             std::unique_ptr<ReplacementPolicy>
                                 llc_policy,
                             std::uint64_t min_accesses_per_core,
                             const SimOptions &opts);

/** In-memory convenience overload of the AccessSource driver. */
MultiCoreResult runMultiCore(const std::vector<const traces::Trace *>
                                 &traces,
                             std::unique_ptr<ReplacementPolicy>
                                 llc_policy,
                             std::uint64_t min_accesses_per_core,
                             const SimOptions &opts);

} // namespace sim
} // namespace glider

#endif // GLIDER_CACHESIM_SIMULATOR_HH
