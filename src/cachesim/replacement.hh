/**
 * @file
 * The replacement-policy plugin interface, modelled on the API of the
 * 2nd Cache Replacement Championship (CRC2): a policy is asked for a
 * victim way on each miss and notified on every access so it can
 * update its internal state. Policies own all replacement metadata
 * (RRPVs, predictor tables, samplers); the cache owns only tags.
 */

#ifndef GLIDER_CACHESIM_REPLACEMENT_HH
#define GLIDER_CACHESIM_REPLACEMENT_HH

#include <cstdint>
#include <string>

namespace glider {

namespace obs {
class Registry; // metrics.hh; kept out of the hot-path header
}

namespace sim {

class BatchAdviceProvider; // advice.hh; kept out of this header

/** Static shape of the cache a policy is driving. */
struct CacheGeometry
{
    std::uint64_t sets = 0;
    std::uint32_t ways = 0;
    std::uint32_t cores = 1; //!< cores sharing this cache
};

/** Tag-array view of one line, passed to victim selection. */
struct LineView
{
    bool valid = false;
    std::uint64_t block_addr = 0;
};

/**
 * Non-owning view of one set's ways in the cache's tag array, passed
 * to victim selection. Cheap to copy (pointer + count): the cache
 * hands out its own storage, so the miss path never allocates. The
 * view is only valid for the duration of the victimWay call.
 */
struct SetView
{
    const LineView *lines = nullptr;
    std::uint32_t ways = 0;

    const LineView &operator[](std::uint32_t way) const
    {
        return lines[way];
    }
    std::uint32_t size() const { return ways; }
    const LineView *begin() const { return lines; }
    const LineView *end() const { return lines + ways; }
};

/** One access as seen by the replacement policy. */
struct ReplacementAccess
{
    std::uint64_t set = 0;
    std::uint64_t pc = 0;
    std::uint64_t block_addr = 0;
    std::uint8_t core = 0;
    bool is_write = false;
};

/**
 * Abstract replacement policy (CRC2-style).
 *
 * Call protocol, per LLC access:
 *  - hit:  onHit(access, way)
 *  - miss: victimWay(access, lines) -> way to evict, or ways (the
 *          bypass sentinel) to skip insertion; if a way was returned,
 *          onEvict(access, way, evicted_view) for a valid victim, then
 *          onInsert(access, way).
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Policy name used in experiment tables. */
    virtual std::string name() const = 0;

    /** (Re)initialise all metadata for a cache of shape @p geom. */
    virtual void reset(const CacheGeometry &geom) = 0;

    /**
     * Choose a victim for a miss in @p access.set.
     * @param lines Zero-copy view of the set's ways in way order;
     *              valid only for the duration of the call.
     * @return way index in [0, ways), or ways to bypass the cache.
     */
    virtual std::uint32_t victimWay(const ReplacementAccess &access,
                                    SetView lines) = 0;

    /** The access hit in @p way. */
    virtual void onHit(const ReplacementAccess &access,
                       std::uint32_t way) = 0;

    /** A valid victim in @p way is being evicted for @p access. */
    virtual void onEvict(const ReplacementAccess &access,
                         std::uint32_t way, const LineView &victim) = 0;

    /** The missing line is inserted into @p way. */
    virtual void onInsert(const ReplacementAccess &access,
                          std::uint32_t way) = 0;

    /**
     * Export policy telemetry (predictor accuracy, training counters,
     * sampler occupancy, ...) into @p registry under @p prefix.
     * Off the hot path; the default exports nothing.
     */
    virtual void exportMetrics(obs::Registry &registry,
                               const std::string &prefix) const
    {
        (void)registry;
        (void)prefix;
    }

    /**
     * Batched-advice capability probe: the provider whose
     * serveAdviceBatch answers for this policy, or nullptr when the
     * policy has no batched path. Wrapper policies (the checked
     * build's invariant checker) forward to the wrapped policy so
     * the capability stays visible through them.
     */
    virtual const BatchAdviceProvider *
    adviceProvider() const
    {
        return nullptr;
    }
};

} // namespace sim
} // namespace glider

#endif // GLIDER_CACHESIM_REPLACEMENT_HH
