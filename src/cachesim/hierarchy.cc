#include "hierarchy.hh"

#include "basic_lru.hh"
#include "common/logging.hh"
#include "traces/access.hh"

namespace glider {
namespace sim {

Hierarchy::Hierarchy(const HierarchyConfig &config, unsigned cores,
                     std::unique_ptr<ReplacementPolicy> llc_policy)
    : config_(config), cores_(cores),
      llc_core_accesses_(cores, 0), llc_core_misses_(cores, 0)
{
    GLIDER_ASSERT(cores >= 1);
    for (unsigned c = 0; c < cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(
            config.l1, std::make_unique<BasicLruPolicy>()));
        l2_.push_back(std::make_unique<Cache>(
            config.l2, std::make_unique<BasicLruPolicy>()));
    }
    llc_ = std::make_unique<Cache>(config.llc, std::move(llc_policy),
                                   cores);
}

AccessDepth
Hierarchy::access(std::uint8_t core, std::uint64_t pc,
                  std::uint64_t byte_addr, bool is_write)
{
    GLIDER_ASSERT(core < cores_);
    std::uint64_t block = traces::blockAddr(byte_addr);

    if (l1_[core]->access(core, pc, block, is_write))
        return AccessDepth::L1;
    if (l2_[core]->access(core, pc, block, is_write))
        return AccessDepth::L2;

    ++llc_core_accesses_[core];
    if (llc_->access(core, pc, block, is_write))
        return AccessDepth::Llc;
    ++llc_core_misses_[core];
    return AccessDepth::Dram;
}

std::uint32_t
Hierarchy::latency(AccessDepth depth) const
{
    switch (depth) {
      case AccessDepth::L1:
        return config_.l1.latency;
      case AccessDepth::L2:
        return config_.l1.latency + config_.l2.latency;
      case AccessDepth::Llc:
        return config_.l1.latency + config_.l2.latency
            + config_.llc.latency;
      case AccessDepth::Dram:
        return config_.l1.latency + config_.l2.latency
            + config_.llc.latency + config_.dram_latency;
    }
    GLIDER_PANIC("bad AccessDepth");
}

void
Hierarchy::clearStatsCounters()
{
    for (auto &c : l1_)
        c->clearStats();
    for (auto &c : l2_)
        c->clearStats();
    llc_->clearStats();
    llc_core_accesses_.assign(cores_, 0);
    llc_core_misses_.assign(cores_, 0);
}

} // namespace sim
} // namespace glider
