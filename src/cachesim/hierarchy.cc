#include "hierarchy.hh"

#include "basic_lru.hh"
#include "common/logging.hh"
#include "traces/access.hh"

namespace glider {
namespace sim {

Hierarchy::Hierarchy(const HierarchyConfig &config, unsigned cores,
                     std::unique_ptr<ReplacementPolicy> llc_policy)
    : config_(config), cores_(cores),
      llc_core_accesses_(cores, 0), llc_core_misses_(cores, 0),
      access_latency_(0.0,
                      config.l1.latency + config.l2.latency
                          + config.llc.latency + config.dram_latency
                          + 1.0,
                      64)
{
    GLIDER_ASSERT(cores >= 1);
    for (unsigned c = 0; c < cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(
            config.l1, std::make_unique<BasicLruPolicy>()));
        l2_.push_back(std::make_unique<Cache>(
            config.l2, std::make_unique<BasicLruPolicy>()));
    }
    llc_ = std::make_unique<Cache>(config.llc, std::move(llc_policy),
                                   cores);
}

AccessDepth
Hierarchy::access(std::uint8_t core, std::uint64_t pc,
                  std::uint64_t byte_addr, bool is_write)
{
    GLIDER_ASSERT(core < cores_);
    std::uint64_t block = traces::blockAddr(byte_addr);

    AccessDepth depth = AccessDepth::Dram;
    if (l1_[core]->access(core, pc, block, is_write)) {
        depth = AccessDepth::L1;
    } else if (l2_[core]->access(core, pc, block, is_write)) {
        depth = AccessDepth::L2;
    } else {
        ++llc_core_accesses_[core];
        if (llc_->access(core, pc, block, is_write))
            depth = AccessDepth::Llc;
        else
            ++llc_core_misses_[core];
    }
#if defined(GLIDER_METRICS) && GLIDER_METRICS
    access_latency_.record(static_cast<double>(latency(depth)));
#endif
    return depth;
}

std::uint32_t
Hierarchy::latency(AccessDepth depth) const
{
    switch (depth) {
      case AccessDepth::L1:
        return config_.l1.latency;
      case AccessDepth::L2:
        return config_.l1.latency + config_.l2.latency;
      case AccessDepth::Llc:
        return config_.l1.latency + config_.l2.latency
            + config_.llc.latency;
      case AccessDepth::Dram:
        return config_.l1.latency + config_.l2.latency
            + config_.llc.latency + config_.dram_latency;
    }
    GLIDER_PANIC("bad AccessDepth");
}

void
Hierarchy::exportMetrics(obs::Registry &registry,
                         const std::string &prefix) const
{
    for (unsigned c = 0; c < cores_; ++c) {
        std::string core = "core" + std::to_string(c);
        l1_[c]->exportMetrics(registry, prefix + ".l1." + core);
        l2_[c]->exportMetrics(registry, prefix + ".l2." + core);
        registry.setCounter(prefix + ".llc." + core + ".accesses",
                            llc_core_accesses_[c]);
        registry.setCounter(prefix + ".llc." + core + ".misses",
                            llc_core_misses_[c]);
    }
    llc_->exportMetrics(registry, prefix + ".llc.shared");
    llc_->policy().exportMetrics(registry, prefix + ".llc.policy");
#if defined(GLIDER_METRICS) && GLIDER_METRICS
    if (access_latency_.count() > 0) {
        obs::Histogram &h = registry.histogram(
            prefix + ".access_latency_cycles", access_latency_.lo(),
            access_latency_.hi(), access_latency_.buckets());
        h.merge(access_latency_);
    }
#endif
}

void
Hierarchy::clearStatsCounters()
{
    for (auto &c : l1_)
        c->clearStats();
    for (auto &c : l2_)
        c->clearStats();
    llc_->clearStats();
    llc_core_accesses_.assign(cores_, 0);
    llc_core_misses_.assign(cores_, 0);
}

} // namespace sim
} // namespace glider
