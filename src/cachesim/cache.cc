#include "cache.hh"

#include "common/logging.hh"

namespace glider {
namespace sim {

Cache::Cache(const CacheConfig &config,
             std::unique_ptr<ReplacementPolicy> policy, unsigned cores)
    : config_(config), policy_(std::move(policy)),
      num_sets_(config.sets()), cores_(cores),
      occ_at_miss_(0.0, config.ways + 1.0, config.ways + 1)
{
    GLIDER_ASSERT(policy_ != nullptr);
    GLIDER_ASSERT((num_sets_ & (num_sets_ - 1)) == 0);
    reset();
}

void
Cache::reset()
{
    lines_.assign(num_sets_ * config_.ways, LineView{});
    stats_ = CacheStats{};
    CacheGeometry geom;
    geom.sets = num_sets_;
    geom.ways = config_.ways;
    geom.cores = cores_;
    policy_->reset(geom);
}

bool
Cache::access(std::uint8_t core, std::uint64_t pc,
              std::uint64_t block_addr, bool is_write)
{
    ++stats_.accesses;
    std::uint64_t set = setIndex(block_addr);
    LineView *base = &lines_[set * config_.ways];

    ReplacementAccess acc;
    acc.set = set;
    acc.pc = pc;
    acc.block_addr = block_addr;
    acc.core = core;
    acc.is_write = is_write;

    for (std::uint32_t way = 0; way < config_.ways; ++way) {
        if (base[way].valid && base[way].block_addr == block_addr) {
            ++stats_.hits;
            policy_->onHit(acc, way);
            return true;
        }
    }

    ++stats_.misses;
#if defined(GLIDER_METRICS) && GLIDER_METRICS
    {
        std::uint32_t occupied = 0;
        for (std::uint32_t way = 0; way < config_.ways; ++way)
            occupied += base[way].valid ? 1 : 0;
        occ_at_miss_.record(static_cast<double>(occupied));
    }
#endif
    std::uint32_t victim =
        policy_->victimWay(acc, SetView{base, config_.ways});
    if (victim >= config_.ways) {
        // Bypass: the line is forwarded without being cached.
        ++stats_.bypasses;
        return false;
    }
    if (base[victim].valid) {
        ++stats_.evictions;
        policy_->onEvict(acc, victim, base[victim]);
    }
    base[victim].valid = true;
    base[victim].block_addr = block_addr;
    policy_->onInsert(acc, victim);
    return false;
}

void
Cache::exportMetrics(obs::Registry &registry,
                     const std::string &prefix) const
{
    registry.setCounter(prefix + ".accesses", stats_.accesses);
    registry.setCounter(prefix + ".hits", stats_.hits);
    registry.setCounter(prefix + ".misses", stats_.misses);
    registry.setCounter(prefix + ".bypasses", stats_.bypasses);
    registry.setCounter(prefix + ".evictions", stats_.evictions);
    registry.setGauge(prefix + ".miss_rate", stats_.missRate());
#if defined(GLIDER_METRICS) && GLIDER_METRICS
    // Merge assumes a fresh registry: exporting the same cache twice
    // into one registry would double the histogram's samples.
    if (occ_at_miss_.count() > 0) {
        obs::Histogram &h = registry.histogram(
            prefix + ".occupancy_at_miss", occ_at_miss_.lo(),
            occ_at_miss_.hi(), occ_at_miss_.buckets());
        h.merge(occ_at_miss_);
    }
#endif
}

bool
Cache::probe(std::uint64_t block_addr) const
{
    std::uint64_t set = setIndex(block_addr);
    const LineView *base = &lines_[set * config_.ways];
    for (std::uint32_t way = 0; way < config_.ways; ++way) {
        if (base[way].valid && base[way].block_addr == block_addr)
            return true;
    }
    return false;
}

} // namespace sim
} // namespace glider
