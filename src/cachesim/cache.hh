/**
 * @file
 * A set-associative cache with pluggable replacement.
 *
 * Tag state lives here; all replacement metadata lives in the policy.
 * The model is access-atomic (lookup and fill happen in one step, no
 * MSHRs): for replacement-policy studies what matters is the access
 * and eviction stream each level observes, which this preserves.
 */

#ifndef GLIDER_CACHESIM_CACHE_HH
#define GLIDER_CACHESIM_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache_config.hh"
#include "obs/metrics.hh"
#include "replacement.hh"

namespace glider {
namespace sim {

/** Hit/miss statistics for one cache. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t evictions = 0; //!< misses that displaced a valid line

    double
    missRate() const
    {
        return accesses
            ? static_cast<double>(misses) / static_cast<double>(accesses)
            : 0.0;
    }
};

/** One set-associative cache level. */
class Cache
{
  public:
    /**
     * @param config Geometry and latency.
     * @param policy Replacement policy; the cache takes ownership.
     * @param cores Number of cores sharing this cache.
     */
    Cache(const CacheConfig &config,
          std::unique_ptr<ReplacementPolicy> policy, unsigned cores = 1);

    /**
     * Perform one access: on a hit the policy's onHit fires; on a
     * miss the policy chooses a victim (or bypasses) and the line is
     * filled.
     * @return true on hit.
     */
    bool access(std::uint8_t core, std::uint64_t pc,
                std::uint64_t block_addr, bool is_write);

    /** True if @p block_addr is currently resident (no side effects). */
    bool probe(std::uint64_t block_addr) const;

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }
    ReplacementPolicy &policy() { return *policy_; }
    const ReplacementPolicy &policy() const { return *policy_; }

    /** Clear tags and stats and reset the policy. */
    void reset();

    /** Zero the hit/miss counters without disturbing cache state. */
    void clearStats() { stats_ = CacheStats{}; }

    /**
     * Snapshot stats (and, in GLIDER_METRICS builds, the occupancy-
     * at-miss histogram) into @p registry under @p prefix. Safe to
     * call repeatedly; counters are overwritten, not accumulated.
     */
    void exportMetrics(obs::Registry &registry,
                       const std::string &prefix) const;

  private:
    std::uint64_t setIndex(std::uint64_t block_addr) const
    {
        return block_addr & (num_sets_ - 1);
    }

    CacheConfig config_;
    std::unique_ptr<ReplacementPolicy> policy_;
    std::uint64_t num_sets_;
    unsigned cores_;
    std::vector<LineView> lines_; //!< sets x ways, row-major
    CacheStats stats_;
    //! Valid lines in the set at each miss; no-op unless GLIDER_METRICS.
    obs::HotHistogram occ_at_miss_;
};

} // namespace sim
} // namespace glider

#endif // GLIDER_CACHESIM_CACHE_HH
