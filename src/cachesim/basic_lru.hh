/**
 * @file
 * Built-in true-LRU replacement, used for the private L1/L2 levels
 * (and as the paper's LLC baseline via policies::LruPolicy, which is
 * an alias of this mechanism).
 */

#ifndef GLIDER_CACHESIM_BASIC_LRU_HH
#define GLIDER_CACHESIM_BASIC_LRU_HH

#include <vector>

#include "replacement.hh"

namespace glider {
namespace sim {

/** True-LRU: per-line 64-bit timestamps, oldest way evicted. */
class BasicLruPolicy : public ReplacementPolicy
{
  public:
    std::string name() const override { return "LRU"; }

    void
    reset(const CacheGeometry &geom) override
    {
        geom_ = geom;
        stamps_.assign(geom.sets * geom.ways, 0);
        clock_ = 0;
    }

    std::uint32_t
    victimWay(const ReplacementAccess &access, SetView lines)
        noexcept override
    {
        const std::uint64_t *row = &stamps_[access.set * geom_.ways];
        std::uint32_t victim = 0;
        for (std::uint32_t w = 0; w < geom_.ways; ++w) {
            if (!lines[w].valid)
                return w;
            if (row[w] < row[victim])
                victim = w;
        }
        return victim;
    }

    void
    onHit(const ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        touch(access.set, way);
    }

    void
    onEvict(const ReplacementAccess &, std::uint32_t,
            const LineView &) noexcept override
    {
    }

    void
    onInsert(const ReplacementAccess &access, std::uint32_t way)
        noexcept override
    {
        touch(access.set, way);
    }

  private:
    void
    touch(std::uint64_t set, std::uint32_t way) noexcept
    {
        stamps_[set * geom_.ways + way] = ++clock_;
    }

    CacheGeometry geom_;
    std::vector<std::uint64_t> stamps_;
    std::uint64_t clock_ = 0;
};

} // namespace sim
} // namespace glider

#endif // GLIDER_CACHESIM_BASIC_LRU_HH
