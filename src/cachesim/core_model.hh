/**
 * @file
 * OoO-lite core timing model.
 *
 * The paper's ChampSim core is a 4-wide, 8-stage, 128-entry-ROB
 * out-of-order processor. Cycle-exact pipeline modelling is neither
 * feasible from a memory trace nor necessary for replacement studies;
 * what the IPC comparison needs is that (a) miss penalties dominate,
 * (b) independent misses overlap within the ROB/MSHR limits, so
 * speedups track miss reductions sub-linearly. This model charges
 * issue bandwidth (width-wide), lets memory operations overlap in a
 * bounded outstanding-miss window (MSHRs), and stalls retirement when
 * an incomplete access falls more than a ROB's worth of instructions
 * behind — the three first-order effects.
 */

#ifndef GLIDER_CACHESIM_CORE_MODEL_HH
#define GLIDER_CACHESIM_CORE_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "hierarchy.hh"

namespace glider {
namespace sim {

/** Core-model parameters (ChampSim-inspired defaults). */
struct CoreParams
{
    unsigned width = 4;            //!< issue width
    unsigned rob_entries = 128;    //!< reorder-buffer window
    unsigned mshrs = 16;           //!< max overlapping memory ops
    unsigned instr_per_access = 4; //!< non-memory work per memory op
};

/** Accumulates cycles and instructions for one simulated core. */
class CoreModel
{
  public:
    explicit CoreModel(const CoreParams &params = CoreParams())
        : params_(params), ring_(params.mshrs)
    {
        GLIDER_ASSERT(params.mshrs >= 1);
    }

    /**
     * Account one memory access that resolved at @p depth with
     * round-trip @p latency cycles (including the instr_per_access
     * instructions of surrounding non-memory work).
     */
    void
    step(AccessDepth depth, std::uint32_t latency) noexcept
    {
        instructions_ += params_.instr_per_access;
        cycles_ += static_cast<double>(params_.instr_per_access)
            / params_.width;

        if (depth == AccessDepth::L1)
            return; // fully pipelined

        // Retire completed operations.
        while (count_ > 0 && front().completion <= cycles_)
            popFront();
        // MSHR limit: a new memory op cannot issue until a slot frees.
        // The ring holds exactly mshrs entries, so at most one pop.
        if (count_ >= params_.mshrs) {
            stallUntil(front().completion);
            popFront();
        }
        // ROB limit: cannot run further ahead than the window allows
        // past the oldest incomplete memory op.
        while (count_ > 0
               && static_cast<std::int64_t>(instructions_)
                       - front().issued_instr
                   >= static_cast<std::int64_t>(params_.rob_entries)) {
            stallUntil(front().completion);
            popFront();
        }
        pushBack(
            {cycles_ + latency, static_cast<std::int64_t>(instructions_)});
    }

    /** Drain outstanding operations at end of simulation. */
    void
    finish() noexcept
    {
        if (count_ > 0) {
            stallUntil(back().completion);
            head_ = 0;
            count_ = 0;
        }
    }

    std::uint64_t instructions() const { return instructions_; }
    double cycles() const { return cycles_; }

    double
    ipc() const
    {
        return cycles_ > 0.0
            ? static_cast<double>(instructions_) / cycles_
            : 0.0;
    }

    /**
     * Zero the counters at the warmup boundary, keeping the
     * outstanding window: in-flight operations are rebased to the new
     * time origin (completion times shifted by the cleared cycle
     * count, issue instruction counts by the cleared instruction
     * count, going negative for ops issued before the boundary), so
     * their ROB/MSHR stalls still land in the measured phase instead
     * of being silently dropped.
     */
    void
    clearCounters()
    {
        for (std::size_t i = 0; i < count_; ++i) {
            Outstanding &op = ring_[(head_ + i) % ring_.size()];
            op.completion -= cycles_;
            if (op.completion < 0.0)
                op.completion = 0.0;
            op.issued_instr -= static_cast<std::int64_t>(instructions_);
        }
        instructions_ = 0;
        cycles_ = 0.0;
    }

    const CoreParams &params() const { return params_; }

  private:
    struct Outstanding
    {
        double completion;
        // Signed: clearCounters() rebases issue points against the
        // new origin, so ops issued before the warmup boundary sit at
        // negative instruction counts.
        std::int64_t issued_instr;
    };

    // Fixed ring buffer over the MSHR window. A std::deque here cost
    // a chunk allocation/free every ~few hundred accesses on the per-
    // access path; the window is hard-bounded at mshrs entries, so
    // capacity is allocated once in the constructor.
    const Outstanding &
    front() const noexcept
    {
        return ring_[head_];
    }

    const Outstanding &
    back() const noexcept
    {
        return ring_[(head_ + count_ - 1) % ring_.size()];
    }

    void
    popFront() noexcept
    {
        head_ = (head_ + 1) % ring_.size();
        --count_;
    }

    void
    pushBack(Outstanding op) noexcept
    {
        ring_[(head_ + count_) % ring_.size()] = op;
        ++count_;
    }

    void
    stallUntil(double when) noexcept
    {
        if (when > cycles_)
            cycles_ = when;
    }

    CoreParams params_;
    std::uint64_t instructions_ = 0;
    double cycles_ = 0.0;
    std::vector<Outstanding> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace sim
} // namespace glider

#endif // GLIDER_CACHESIM_CORE_MODEL_HH
