/**
 * @file
 * OoO-lite core timing model.
 *
 * The paper's ChampSim core is a 4-wide, 8-stage, 128-entry-ROB
 * out-of-order processor. Cycle-exact pipeline modelling is neither
 * feasible from a memory trace nor necessary for replacement studies;
 * what the IPC comparison needs is that (a) miss penalties dominate,
 * (b) independent misses overlap within the ROB/MSHR limits, so
 * speedups track miss reductions sub-linearly. This model charges
 * issue bandwidth (width-wide), lets memory operations overlap in a
 * bounded outstanding-miss window (MSHRs), and stalls retirement when
 * an incomplete access falls more than a ROB's worth of instructions
 * behind — the three first-order effects.
 */

#ifndef GLIDER_CACHESIM_CORE_MODEL_HH
#define GLIDER_CACHESIM_CORE_MODEL_HH

#include <cstdint>
#include <deque>

#include "hierarchy.hh"

namespace glider {
namespace sim {

/** Core-model parameters (ChampSim-inspired defaults). */
struct CoreParams
{
    unsigned width = 4;            //!< issue width
    unsigned rob_entries = 128;    //!< reorder-buffer window
    unsigned mshrs = 16;           //!< max overlapping memory ops
    unsigned instr_per_access = 4; //!< non-memory work per memory op
};

/** Accumulates cycles and instructions for one simulated core. */
class CoreModel
{
  public:
    explicit CoreModel(const CoreParams &params = CoreParams())
        : params_(params)
    {
    }

    /**
     * Account one memory access that resolved at @p depth with
     * round-trip @p latency cycles (including the instr_per_access
     * instructions of surrounding non-memory work).
     */
    void
    step(AccessDepth depth, std::uint32_t latency)
    {
        instructions_ += params_.instr_per_access;
        cycles_ += static_cast<double>(params_.instr_per_access)
            / params_.width;

        if (depth == AccessDepth::L1)
            return; // fully pipelined

        // Retire completed operations.
        while (!outstanding_.empty()
               && outstanding_.front().completion <= cycles_) {
            outstanding_.pop_front();
        }
        // MSHR limit: a new memory op cannot issue until a slot frees.
        while (outstanding_.size() >= params_.mshrs) {
            stallUntil(outstanding_.front().completion);
            outstanding_.pop_front();
        }
        // ROB limit: cannot run further ahead than the window allows
        // past the oldest incomplete memory op.
        while (!outstanding_.empty()
               && instructions_ - outstanding_.front().issued_instr
                   >= params_.rob_entries) {
            stallUntil(outstanding_.front().completion);
            outstanding_.pop_front();
        }
        outstanding_.push_back({cycles_ + latency, instructions_});
    }

    /** Drain outstanding operations at end of simulation. */
    void
    finish()
    {
        if (!outstanding_.empty()) {
            stallUntil(outstanding_.back().completion);
            outstanding_.clear();
        }
    }

    std::uint64_t instructions() const { return instructions_; }
    double cycles() const { return cycles_; }

    double
    ipc() const
    {
        return cycles_ > 0.0
            ? static_cast<double>(instructions_) / cycles_
            : 0.0;
    }

    /** Zero the counters (the outstanding window is kept). */
    void
    clearCounters()
    {
        instructions_ = 0;
        cycles_ = 0.0;
        outstanding_.clear();
    }

    const CoreParams &params() const { return params_; }

  private:
    struct Outstanding
    {
        double completion;
        std::uint64_t issued_instr;
    };

    void
    stallUntil(double when)
    {
        if (when > cycles_)
            cycles_ = when;
    }

    CoreParams params_;
    std::uint64_t instructions_ = 0;
    double cycles_ = 0.0;
    std::deque<Outstanding> outstanding_;
};

} // namespace sim
} // namespace glider

#endif // GLIDER_CACHESIM_CORE_MODEL_HH
