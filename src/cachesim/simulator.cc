#include "simulator.hh"

#include <chrono>

#include "advice.hh"
#include "common/logging.hh"

namespace glider {
namespace sim {

namespace {

/**
 * Poll interval for the cooperative cancellation token: frequent
 * enough that a soft deadline lands within milliseconds, coarse
 * enough that the check is invisible next to the access itself.
 */
constexpr std::uint64_t kCancelCheckMask = 4095;

/**
 * Per-core read cursor over an AccessSource: a position inside the
 * current chunk. Refilling walks to the next chunk and wraps (rewind)
 * at end-of-stream, which is exactly the old in-memory
 * `cursor = (cursor + 1) % size` early-finisher rule.
 */
struct ChunkCursor
{
    std::span<const traces::AccessRecord> chunk;
    std::size_t pos = 0;
};

} // namespace

SingleCoreResult
runSingleCore(AccessSource &source,
              std::unique_ptr<ReplacementPolicy> llc_policy,
              const SimOptions &opts)
{
    GLIDER_ASSERT(source.size() > 0);
    Hierarchy hier(opts.hierarchy, 1, std::move(llc_policy));
    CoreModel core(opts.core);

    SingleCoreResult res;
    res.workload = source.name();
    res.policy = hier.llc().policy().name();

    auto warmup_end = static_cast<std::uint64_t>(
        opts.warmup_fraction * static_cast<double>(source.size()));
    auto start = std::chrono::steady_clock::now();
    source.rewind();
    std::uint64_t i = 0;
    for (auto chunk = source.nextChunk(); !chunk.empty();
         chunk = source.nextChunk()) {
        for (const auto &rec : chunk) {
            if (opts.cancel && (i & kCancelCheckMask) == 0)
                opts.cancel->throwIfCancelled();
            AccessDepth depth =
                hier.access(0, rec.pc, rec.address, rec.is_write);
            core.step(depth, hier.latency(depth));
            if (++i == warmup_end) {
                hier.clearStatsCounters();
                core.clearCounters();
            }
        }
    }
    core.finish();
    res.sim_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    res.accesses_simulated = i;

    res.instructions = core.instructions();
    res.cycles = core.cycles();
    res.ipc = core.ipc();
    res.llc = hier.llc().stats();
    return res;
}

SingleCoreResult
runSingleCore(const traces::Trace &trace,
              std::unique_ptr<ReplacementPolicy> llc_policy,
              const SimOptions &opts)
{
    GLIDER_ASSERT(!trace.empty());
    TraceSource source(trace);
    return runSingleCore(source, std::move(llc_policy), opts);
}

MultiCoreResult
runMultiCore(std::span<AccessSource *const> sources,
             std::unique_ptr<ReplacementPolicy> llc_policy,
             std::uint64_t min_accesses_per_core, const SimOptions &opts)
{
    auto cores = static_cast<unsigned>(sources.size());
    GLIDER_ASSERT(cores >= 1);
    for (auto *s : sources)
        GLIDER_ASSERT(s && s->size() > 0);

    Hierarchy hier(opts.hierarchy, cores, std::move(llc_policy));
    std::vector<CoreModel> models(cores, CoreModel(opts.core));
    std::vector<ChunkCursor> cursor(cores);
    std::vector<std::uint64_t> executed(cores, 0);

    MultiCoreResult res;
    res.policy = hier.llc().policy().name();
    for (auto *s : sources) {
        s->rewind();
        res.workloads.push_back(s->name()); // glider-lint: allow(hotpath-alloc) per-run setup
    }

    // Optional batched-advice probe: accumulate a window of recent
    // accesses and replay it through the policy's batch interface
    // against live state. Observation only — nothing about the
    // simulation depends on the answers. Buffers are reserved once
    // per run and reused per batch.
    const BatchAdviceProvider *advisor = opts.advice_batch > 0
        ? hier.llc().policy().adviceProvider()
        : nullptr;
    std::vector<AdviceQuery> advice_window;
    std::vector<Advice> advice_answers;
    if (advisor) {
        // glider-lint: allow(hotpath-alloc) per-run setup
        advice_window.reserve(opts.advice_batch);
        // glider-lint: allow(hotpath-alloc) per-run setup
        advice_answers.resize(opts.advice_batch);
    }

    std::uint64_t warmup = static_cast<std::uint64_t>(
        opts.warmup_fraction * static_cast<double>(min_accesses_per_core));
    bool warm = warmup == 0;
    // Countdown bookkeeping: per-core counters only ever cross their
    // quota once (increments are +1 and only reset at the warm
    // transition), so a count of not-yet-there cores replaces the
    // O(cores) rescan of every `executed` entry on every access.
    unsigned cold_cores = warm ? 0 : cores;
    unsigned pending_cores = min_accesses_per_core > 0 ? cores : 0;

    // Timing-ordered interleave: always advance the core with the
    // lowest accumulated cycle count, which is how simultaneous
    // execution serialises onto the shared LLC. All cores keep
    // running (with stream rewind) until every core has executed its
    // measured quota — the paper's early-finisher rewind rule.
    std::uint64_t iterations = 0;
    while (!warm || pending_cores > 0) {
        if (opts.cancel && (iterations++ & kCancelCheckMask) == 0)
            opts.cancel->throwIfCancelled();
        unsigned next = 0;
        for (unsigned c = 1; c < cores; ++c) {
            if (models[c].cycles() < models[next].cycles())
                next = c;
        }
        ChunkCursor &cur = cursor[next];
        while (cur.pos >= cur.chunk.size()) {
            cur.chunk = sources[next]->nextChunk();
            cur.pos = 0;
            if (cur.chunk.empty())
                sources[next]->rewind();
        }
        const auto &rec = cur.chunk[cur.pos++];
        // Each core runs its own process: disambiguate the virtual
        // address spaces (workload kernels all allocate from the
        // same base) by folding the core id into the high bits.
        std::uint64_t addr =
            rec.address | (static_cast<std::uint64_t>(next) << 44);
        AccessDepth depth = hier.access(static_cast<std::uint8_t>(next),
                                        rec.pc, addr, rec.is_write);
        models[next].step(depth, hier.latency(depth));
        ++executed[next];

        if (advisor) {
            // Window capacity is reserved once and the vector is
            // cleared at batch size, so the warmed loop never grows.
            // glider-lint: allow(hotpath-alloc) reserved in setup
            advice_window.push_back(
                {rec.pc, static_cast<std::uint8_t>(next)});
            if (advice_window.size() == opts.advice_batch) {
                advisor->serveAdviceBatch(
                    advice_window,
                    std::span<Advice>(advice_answers.data(),
                                      advice_window.size()));
                res.advice_queries += advice_window.size();
                ++res.advice_batches;
                for (std::size_t q = 0; q < advice_window.size(); ++q) {
                    if (advice_answers[q].level != AdviceLevel::Averse)
                        ++res.advice_friendly;
                }
                advice_window.clear();
            }
        }

        if (!warm) {
            if (executed[next] == warmup && --cold_cores == 0) {
                warm = true;
                hier.clearStatsCounters();
                for (auto &m : models)
                    m.clearCounters();
                // glider-lint: allow(hotpath-alloc) once per run, at
                // the warm transition; assign reuses capacity
                executed.assign(cores, 0);
            }
        } else if (executed[next] == min_accesses_per_core) {
            --pending_cores;
        }
    }

    for (unsigned c = 0; c < cores; ++c) {
        models[c].finish();
        // glider-lint: allow(hotpath-alloc) per-run result assembly
        res.ipc_shared.push_back(models[c].ipc());
    }
    res.llc = hier.llc().stats();
    return res;
}

MultiCoreResult
runMultiCore(const std::vector<const traces::Trace *> &traces,
             std::unique_ptr<ReplacementPolicy> llc_policy,
             std::uint64_t min_accesses_per_core, const SimOptions &opts)
{
    for (auto *t : traces)
        GLIDER_ASSERT(t && !t->empty());
    std::vector<TraceSource> wrapped;
    // glider-lint: allow(hotpath-alloc) per-run setup
    wrapped.reserve(traces.size());
    for (auto *t : traces)
        wrapped.emplace_back(*t); // glider-lint: allow(hotpath-alloc) per-run setup
    std::vector<AccessSource *> sources;
    // glider-lint: allow(hotpath-alloc) per-run setup
    sources.reserve(wrapped.size());
    for (auto &w : wrapped)
        sources.push_back(&w); // glider-lint: allow(hotpath-alloc) per-run setup
    return runMultiCore(sources, std::move(llc_policy),
                        min_accesses_per_core, opts);
}

} // namespace sim
} // namespace glider
