/**
 * @file
 * Batched caching-advice probe.
 *
 * A replacement policy that can answer "would this (pc, core) be
 * cache-friendly right now?" for a whole batch at once implements
 * BatchAdviceProvider. The multi-core harness uses it as an opt-in
 * probe (SimOptions::advice_batch): while replaying a trace it
 * periodically re-queries recent accesses in batches against the
 * policy's live state, exercising exactly the query shape a
 * standalone serving layer (ROADMAP: src/serve) issues — spans in,
 * spans out, no per-call allocation — without altering any
 * replacement decision or statistic of the simulation proper.
 */

#ifndef GLIDER_CACHESIM_ADVICE_HH
#define GLIDER_CACHESIM_ADVICE_HH

#include <cstdint>
#include <span>

namespace glider {
namespace sim {

/** Coarse caching advice (mirrors the three insertion priorities). */
enum class AdviceLevel { FriendlyHigh, FriendlyLow, Averse };

/** One advice query: an access identified by its PC and core. */
struct AdviceQuery
{
    std::uint64_t pc = 0;
    std::uint8_t core = 0;
};

/** One advice answer: raw score plus its coarse level. */
struct Advice
{
    int score = 0;
    AdviceLevel level = AdviceLevel::FriendlyLow;
};

/**
 * Implemented by policies whose predictor can serve batched advice
 * queries against live state. Must not mutate predictor or policy
 * state and must not allocate (it runs between timed accesses of a
 * measured replay).
 */
class BatchAdviceProvider
{
  public:
    virtual ~BatchAdviceProvider() = default;

    /**
     * Answer @p queries against current state into @p out, which
     * holds at least queries.size() elements.
     */
    virtual void serveAdviceBatch(std::span<const AdviceQuery> queries,
                                  std::span<Advice> out) const = 0;
};

} // namespace sim
} // namespace glider

#endif // GLIDER_CACHESIM_ADVICE_HH
