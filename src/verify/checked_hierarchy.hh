/**
 * @file
 * Invariant-checking wrapper around the three-level hierarchy.
 *
 * CheckedHierarchy owns a sim::Hierarchy whose LLC policy is wrapped
 * in a CheckedPolicy, and after every access cross-checks state that
 * no single module can see on its own:
 *
 *  - counter coherence at every level (hits + misses == accesses,
 *    bypasses and evictions bounded by misses/insertions);
 *  - access-flow conservation (per-core L1 misses == L2 accesses;
 *    summed L2 misses == LLC accesses; per-core LLC counters sum to
 *    the LLC's own stats);
 *  - depth consistency (the depth returned by access() matches which
 *    level's counters moved);
 *  - warmup accounting (clearStatsCounters() re-baselines every
 *    counter consistently, so post-warmup totals still reconcile
 *    against the protocol-derived event counts).
 *
 * Violations throw verify::InvariantViolation.
 */

#ifndef GLIDER_VERIFY_CHECKED_HIERARCHY_HH
#define GLIDER_VERIFY_CHECKED_HIERARCHY_HH

#include <memory>

#include "cachesim/hierarchy.hh"
#include "checked_policy.hh"

namespace glider {
namespace verify {

/** Hierarchy wrapper running a full invariant sweep per access. */
class CheckedHierarchy
{
  public:
    /**
     * @param config Level shapes and latencies.
     * @param cores Number of cores (private L1/L2 each).
     * @param llc_policy LLC policy under test; wrapped in a
     *        CheckedPolicy (with @p options) before installation.
     */
    CheckedHierarchy(const sim::HierarchyConfig &config, unsigned cores,
                     std::unique_ptr<sim::ReplacementPolicy> llc_policy,
                     CheckedPolicy::Options options
                     = CheckedPolicy::Options());

    /** Forward one access, then verify all structural invariants. */
    sim::AccessDepth access(std::uint8_t core, std::uint64_t pc,
                            std::uint64_t byte_addr, bool is_write);

    /** Forward a warmup reset, keeping the baselines reconciled. */
    void clearStatsCounters();

    /** Run the full invariant sweep on demand (e.g. end of run). */
    void check() const;

    sim::Hierarchy &hierarchy() { return *hier_; }
    const CheckedPolicy &llcChecker() const { return *checker_; }

  private:
    static void checkCacheCounters(const sim::Cache &cache,
                                   const char *level);

    std::unique_ptr<sim::Hierarchy> hier_;
    CheckedPolicy *checker_; //!< owned by the hierarchy's LLC
    unsigned cores_;
    /** CheckedPolicy event counts at the last stats reset. */
    std::uint64_t base_hits_ = 0;
    std::uint64_t base_misses_ = 0;
    std::uint64_t base_evictions_ = 0;
    std::uint64_t base_bypasses_ = 0;
};

} // namespace verify
} // namespace glider

#endif // GLIDER_VERIFY_CHECKED_HIERARCHY_HH
