#include "checked_hierarchy.hh"

#include <string>

#include "invariants.hh"

namespace glider {
namespace verify {

CheckedHierarchy::CheckedHierarchy(
    const sim::HierarchyConfig &config, unsigned cores,
    std::unique_ptr<sim::ReplacementPolicy> llc_policy,
    CheckedPolicy::Options options)
    : cores_(cores)
{
    auto checked = std::make_unique<CheckedPolicy>(std::move(llc_policy),
                                                   options);
    checker_ = checked.get();
    hier_ = std::make_unique<sim::Hierarchy>(config, cores,
                                             std::move(checked));
}

void
CheckedHierarchy::checkCacheCounters(const sim::Cache &cache,
                                     const char *level)
{
    const sim::CacheStats &s = cache.stats();
    std::string at = std::string(" at ") + level;
    require(s.hits + s.misses == s.accesses,
            "counter coherence: hits + misses != accesses" + at);
    require(s.bypasses <= s.misses,
            "counter coherence: more bypasses than misses" + at);
    require(s.evictions + s.bypasses <= s.misses,
            "counter coherence: more evictions than insertions" + at);
}

sim::AccessDepth
CheckedHierarchy::access(std::uint8_t core, std::uint64_t pc,
                         std::uint64_t byte_addr, bool is_write)
{
    const sim::CacheStats &llc = hier_->llc().stats();
    std::uint64_t prev_accesses = llc.accesses;
    std::uint64_t prev_hits = llc.hits;
    std::uint64_t prev_misses = llc.misses;

    sim::AccessDepth depth = hier_->access(core, pc, byte_addr, is_write);

    // Depth consistency: the reported depth must match which LLC
    // counters moved during this access.
    switch (depth) {
      case sim::AccessDepth::L1:
      case sim::AccessDepth::L2:
        require(llc.accesses == prev_accesses,
                "depth consistency: private-level hit reached the LLC");
        break;
      case sim::AccessDepth::Llc:
        require(llc.hits == prev_hits + 1,
                "depth consistency: Llc depth without an LLC hit");
        break;
      case sim::AccessDepth::Dram:
        require(llc.misses == prev_misses + 1,
                "depth consistency: Dram depth without an LLC miss");
        break;
    }

    check();
    return depth;
}

void
CheckedHierarchy::check() const
{
    const sim::CacheStats &llc = hier_->llc().stats();

    // Per-level counter coherence.
    for (unsigned c = 0; c < cores_; ++c) {
        checkCacheCounters(hier_->l1(c), "L1");
        checkCacheCounters(hier_->l2(c), "L2");
    }
    checkCacheCounters(hier_->llc(), "LLC");

    // Access-flow conservation: every miss at one level is exactly
    // one access at the next (the model is access-atomic).
    std::uint64_t l2_misses = 0;
    for (unsigned c = 0; c < cores_; ++c) {
        require(hier_->l1(c).stats().misses
                    == hier_->l2(c).stats().accesses,
                "flow conservation: L1 misses != L2 accesses");
        require(hier_->l1(c).stats().bypasses == 0
                    && hier_->l2(c).stats().bypasses == 0,
                "flow conservation: private LRU level bypassed");
        l2_misses += hier_->l2(c).stats().misses;
    }
    require(l2_misses == llc.accesses,
            "flow conservation: summed L2 misses != LLC accesses");

    // Per-core LLC attribution sums to the LLC's own counters.
    std::uint64_t core_accesses = 0, core_misses = 0;
    for (unsigned c = 0; c < cores_; ++c) {
        core_accesses += hier_->llcAccessesFor(c);
        core_misses += hier_->llcMissesFor(c);
    }
    require(core_accesses == llc.accesses,
            "attribution: per-core LLC accesses do not sum to the "
            "LLC access count");
    require(core_misses == llc.misses,
            "attribution: per-core LLC misses do not sum to the "
            "LLC miss count");

    // Warmup accounting: the cache's (resettable) counters must equal
    // the protocol-derived event counts accumulated since the last
    // clearStatsCounters().
    require(llc.hits == checker_->hits() - base_hits_,
            "warmup accounting: LLC hit counter diverged from the "
            "policy-observed hit events");
    require(llc.misses == checker_->misses() - base_misses_,
            "warmup accounting: LLC miss counter diverged from the "
            "policy-observed miss events");
    require(llc.evictions == checker_->evictions() - base_evictions_,
            "warmup accounting: LLC eviction counter diverged from "
            "the policy-observed evictions");
    require(llc.bypasses == checker_->bypasses() - base_bypasses_,
            "warmup accounting: LLC bypass counter diverged from the "
            "policy-observed bypasses");
}

void
CheckedHierarchy::clearStatsCounters()
{
    hier_->clearStatsCounters();
    base_hits_ = checker_->hits();
    base_misses_ = checker_->misses();
    base_evictions_ = checker_->evictions();
    base_bypasses_ = checker_->bypasses();
    check();
}

} // namespace verify
} // namespace glider
