#include "checked_policy.hh"

#include <sstream>

#include "invariants.hh"

namespace glider {
namespace verify {

namespace {

std::string
describe(const char *event, const sim::ReplacementAccess &access,
         const std::string &what)
{
    std::ostringstream os;
    os << event << ": " << what << " (set=" << access.set << " block=0x"
       << std::hex << access.block_addr << std::dec
       << " pc=0x" << std::hex << access.pc << std::dec
       << " core=" << static_cast<unsigned>(access.core) << ")";
    return os.str();
}

} // namespace

CheckedPolicy::CheckedPolicy(
    std::unique_ptr<sim::ReplacementPolicy> inner)
    : CheckedPolicy(std::move(inner), Options())
{
}

CheckedPolicy::CheckedPolicy(
    std::unique_ptr<sim::ReplacementPolicy> inner, Options options)
    : inner_(std::move(inner)), options_(options)
{
    require(inner_ != nullptr, "CheckedPolicy: null inner policy");
}

void
CheckedPolicy::reset(const sim::CacheGeometry &geom)
{
    require(geom.sets > 0 && (geom.sets & (geom.sets - 1)) == 0,
            "reset: sets must be a nonzero power of two");
    require(geom.ways > 0, "reset: ways must be nonzero");
    require(geom.cores >= 1, "reset: cores must be >= 1");
    geom_ = geom;
    shadow_.assign(geom.sets * geom.ways, ShadowLine{});
    clock_ = 0;
    phase_ = Phase::Idle;
    evict_seen_ = false;
    hits_ = misses_ = evictions_ = bypasses_ = 0;
    inner_->reset(geom);
}

void
CheckedPolicy::checkSetIndex(const sim::ReplacementAccess &access,
                             const char *event) const
{
    require(access.set < geom_.sets,
            describe(event, access, "set index out of range"));
    require(access.core < geom_.cores,
            describe(event, access, "core id out of range"));
}

std::uint32_t
CheckedPolicy::findBlock(std::uint64_t set, std::uint64_t block)
{
    ShadowLine *r = row(set);
    for (std::uint32_t w = 0; w < ways(); ++w) {
        if (r[w].valid && r[w].block == block)
            return w;
    }
    return ways();
}

std::uint32_t
CheckedPolicy::victimWay(const sim::ReplacementAccess &access,
                         sim::SetView lines)
{
    require(phase_ == Phase::Idle,
            describe("victimWay", access,
                     "previous miss sequence still open (onInsert "
                     "never arrived)"));
    checkSetIndex(access, "victimWay");
    require(lines.lines != nullptr && lines.ways == ways(),
            describe("victimWay", access,
                     "SetView shape does not match the geometry"));

    // The cache's tag array must agree with the protocol-derived
    // shadow, way for way; any drift means tag state was corrupted.
    ShadowLine *r = row(access.set);
    for (std::uint32_t w = 0; w < ways(); ++w) {
        require(lines[w].valid == r[w].valid,
                describe("victimWay", access,
                         "tag-array valid bit disagrees with the "
                         "event-derived shadow state"));
        require(!lines[w].valid || lines[w].block_addr == r[w].block,
                describe("victimWay", access,
                         "tag-array block disagrees with the "
                         "event-derived shadow state"));
    }
    require(findBlock(access.set, access.block_addr) == ways(),
            describe("victimWay", access,
                     "miss reported for a block that is resident"));

    ++misses_;
    std::uint32_t victim = inner_->victimWay(access, lines);
    require(victim <= ways(),
            describe("victimWay", access,
                     "victim way out of bounds (beyond the bypass "
                     "sentinel)"));

    if (victim == ways()) {
        ++bypasses_;
        return victim; // bypass: no insertion sequence opens
    }

    if (options_.verify_lru) {
        // True-LRU reference: fill an invalid way if one exists,
        // otherwise evict the least recently touched way.
        bool victim_valid = r[victim].valid;
        bool any_invalid = false;
        for (std::uint32_t w = 0; w < ways(); ++w)
            any_invalid = any_invalid || !r[w].valid;
        if (any_invalid) {
            require(!victim_valid,
                    describe("victimWay", access,
                             "LRU coherence: valid way evicted while "
                             "an invalid way was available"));
        } else {
            for (std::uint32_t w = 0; w < ways(); ++w) {
                require(r[victim].last_touch <= r[w].last_touch,
                        describe("victimWay", access,
                                 "LRU coherence: victim is not the "
                                 "least recently used way"));
            }
        }
    }

    phase_ = Phase::AfterVictim;
    pending_set_ = access.set;
    pending_block_ = access.block_addr;
    pending_way_ = victim;
    pending_evict_needed_ = r[victim].valid;
    evict_seen_ = false;
    return victim;
}

void
CheckedPolicy::onHit(const sim::ReplacementAccess &access,
                     std::uint32_t way)
{
    require(phase_ == Phase::Idle,
            describe("onHit", access,
                     "hit delivered inside an open miss sequence"));
    checkSetIndex(access, "onHit");
    require(way < ways(),
            describe("onHit", access, "hit way out of bounds"));

    ShadowLine *r = row(access.set);
    require(r[way].valid && r[way].block == access.block_addr,
            describe("onHit", access,
                     "hit on a way that does not hold the block"));
    for (std::uint32_t w = 0; w < ways(); ++w) {
        require(w == way || !r[w].valid
                    || r[w].block != access.block_addr,
                describe("onHit", access,
                         "duplicate tag: block resident in two ways "
                         "of one set"));
    }

    ++hits_;
    r[way].last_touch = ++clock_;
    inner_->onHit(access, way);
}

void
CheckedPolicy::onEvict(const sim::ReplacementAccess &access,
                       std::uint32_t way, const sim::LineView &victim)
{
    require(phase_ == Phase::AfterVictim,
            describe("onEvict", access,
                     "eviction outside a miss sequence"));
    require(access.set == pending_set_ && way == pending_way_,
            describe("onEvict", access,
                     "eviction does not match the chosen victim"));
    require(pending_evict_needed_,
            describe("onEvict", access,
                     "eviction reported for an invalid way"));
    require(!evict_seen_,
            describe("onEvict", access,
                     "duplicate eviction in one miss sequence"));

    const ShadowLine &line = row(access.set)[way];
    require(victim.valid && victim.block_addr == line.block,
            describe("onEvict", access,
                     "evicted LineView disagrees with the "
                     "event-derived shadow state"));

    ++evictions_;
    evict_seen_ = true;
    inner_->onEvict(access, way, victim);
}

void
CheckedPolicy::onInsert(const sim::ReplacementAccess &access,
                        std::uint32_t way)
{
    require(phase_ == Phase::AfterVictim,
            describe("onInsert", access,
                     "insertion outside a miss sequence"));
    require(access.set == pending_set_ && way == pending_way_
                && access.block_addr == pending_block_,
            describe("onInsert", access,
                     "insertion does not match the open miss"));
    require(evict_seen_ == pending_evict_needed_,
            describe("onInsert", access,
                     pending_evict_needed_
                         ? "valid victim overwritten without onEvict"
                         : "spurious onEvict for an invalid way"));
    require(findBlock(access.set, access.block_addr) == ways(),
            describe("onInsert", access,
                     "duplicate tag: inserted block already resident "
                     "in the set"));

    ShadowLine &line = row(access.set)[way];
    line.valid = true;
    line.block = access.block_addr;
    line.last_touch = ++clock_;
    phase_ = Phase::Idle;
    evict_seen_ = false;
    inner_->onInsert(access, way);
}

std::unique_ptr<sim::ReplacementPolicy>
checkedPolicy(std::unique_ptr<sim::ReplacementPolicy> policy,
              CheckedPolicy::Options options)
{
    return std::make_unique<CheckedPolicy>(std::move(policy), options);
}

} // namespace verify
} // namespace glider
