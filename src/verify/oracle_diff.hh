/**
 * @file
 * Differential oracle: exact Belady MIN vs OPTgen on one LLC stream.
 *
 * Glider's training labels come from OPTgen, an online approximation
 * of Belady's decisions (bounded window, bounded tracked entries, set
 * sampling). The whole pipeline silently degrades if the two oracles
 * drift apart, so this module replays the same LLC access stream
 * through both and reports, per PC and in aggregate, how often
 * OPTgen's cache-friendly/cache-averse verdict for an access matches
 * the exact oracle's label for that same access.
 *
 * Exposed as a library call (diffOracles) for tests and as the
 * bench/verify_oracles tool, which emits JSON for CI gating.
 */

#ifndef GLIDER_VERIFY_ORACLE_DIFF_HH
#define GLIDER_VERIFY_ORACLE_DIFF_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/json.hh"
#include "traces/trace.hh"

namespace glider {
namespace verify {

/** Geometry and OPTgen budgets for a differential run. */
struct OracleDiffConfig
{
    std::uint64_t sets = 2048; //!< LLC sets (Table 1 default)
    std::uint32_t ways = 16;   //!< LLC associativity
    /** Sampled sets, chosen hash-ranked as the Hawkeye sampler does. */
    std::uint64_t sampled_sets = 64;
    /** OPTgen sliding window, in quanta per way (Hawkeye uses 8x). */
    std::size_t window_quanta_per_way = 8;
    /** Tracked-address budget per sampled set, in entries per way. */
    std::size_t entries_per_way = 8;
};

/** Agreement tally for one PC. */
struct PcAgreement
{
    std::uint64_t pc = 0;
    std::uint64_t events = 0; //!< OPTgen-labelled accesses at this PC
    std::uint64_t agree = 0;  //!< labels matching exact Belady

    double
    rate() const
    {
        return events ? static_cast<double>(agree)
                / static_cast<double>(events)
                      : 1.0;
    }
};

/** Outcome of one differential run over an LLC stream. */
struct OracleDiffResult
{
    std::uint64_t stream_accesses = 0;  //!< LLC stream length
    std::uint64_t sampled_accesses = 0; //!< accesses on sampled sets
    std::uint64_t events = 0;      //!< labels OPTgen committed to
    std::uint64_t agreements = 0;  //!< labels matching exact Belady
    /** Among labelled events: positives under each oracle. */
    std::uint64_t belady_friendly = 0;
    std::uint64_t optgen_friendly = 0;
    double belady_hit_rate = 0.0; //!< exact MIN hit rate on the stream
    std::unordered_map<std::uint64_t, PcAgreement> per_pc;

    /** Fraction of labelled events where the oracles agree. */
    double
    agreement() const
    {
        return events ? static_cast<double>(agreements)
                / static_cast<double>(events)
                      : 1.0;
    }

    /**
     * The @p n lowest-agreement PCs with at least @p min_events
     * labelled events, worst first.
     */
    std::vector<PcAgreement> worstPcs(std::size_t n,
                                      std::uint64_t min_events = 8) const;
};

/**
 * Replay @p llc_stream through exact Belady MIN and through OPTgen
 * (on sampled sets) and tally per-access label agreement.
 */
OracleDiffResult diffOracles(const traces::Trace &llc_stream,
                             const OracleDiffConfig &config
                             = OracleDiffConfig());

/** One workload's differential run, for suite-level reporting. */
struct OracleSuiteEntry
{
    std::string workload;
    std::uint64_t llc_accesses = 0;
    OracleDiffResult diff;
};

/** Mean of per-workload agreement rates (1.0 on an empty suite). */
double suiteMeanAgreement(const std::vector<OracleSuiteEntry> &suite);

/** Event-weighted agreement pooled across the suite. */
double suitePooledAgreement(const std::vector<OracleSuiteEntry> &suite);

/**
 * The verify_oracles JSON document: per-workload rows (agreement,
 * Belady hit rate, friendly rates, five worst-agreement PCs) plus
 * mean/pooled agreement and the pass verdict against @p gate.
 */
obs::json::Value
oracleSuiteJson(const std::vector<OracleSuiteEntry> &suite, double gate);

} // namespace verify
} // namespace glider

#endif // GLIDER_VERIFY_ORACLE_DIFF_HH
