#include "oracle_diff.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/hash.hh"
#include "common/logging.hh"
#include "opt/belady.hh"
#include "opt/optgen.hh"
#include "traces/access.hh"

namespace glider {
namespace verify {

std::vector<PcAgreement>
OracleDiffResult::worstPcs(std::size_t n, std::uint64_t min_events) const
{
    std::vector<PcAgreement> rows;
    rows.reserve(per_pc.size());
    for (const auto &kv : per_pc) {
        if (kv.second.events >= min_events)
            rows.push_back(kv.second);
    }
    std::sort(rows.begin(), rows.end(),
              [](const PcAgreement &a, const PcAgreement &b) {
                  if (a.rate() != b.rate())
                      return a.rate() < b.rate();
                  if (a.events != b.events)
                      return a.events > b.events;
                  return a.pc < b.pc;
              });
    if (rows.size() > n)
        rows.resize(n);
    return rows;
}

OracleDiffResult
diffOracles(const traces::Trace &llc_stream,
            const OracleDiffConfig &config)
{
    GLIDER_ASSERT(config.sets > 0
                  && (config.sets & (config.sets - 1)) == 0);
    GLIDER_ASSERT(config.ways > 0);

    OracleDiffResult res;
    res.stream_accesses = llc_stream.size();
    if (llc_stream.empty())
        return res;

    // Ground truth: exact MIN labels for every access of the stream.
    opt::BeladyResult exact =
        opt::simulateBelady(llc_stream, config.sets, config.ways);
    res.belady_hit_rate = exact.hitRate();

    // Sampled sets, hash-ranked exactly like opt::OptGenSampler so the
    // differential sees the same sets the live policies train on.
    std::uint64_t sampled_sets =
        std::min<std::uint64_t>(config.sampled_sets, config.sets);
    std::vector<std::uint64_t> order(config.sets);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [](std::uint64_t a, std::uint64_t b) {
                  return mix64(a) < mix64(b);
              });
    std::vector<std::int32_t> slot_of(config.sets, -1);
    std::vector<opt::OptGenSet> slots;
    slots.reserve(sampled_sets);
    for (std::uint64_t i = 0; i < sampled_sets; ++i) {
        slot_of[order[i]] = static_cast<std::int32_t>(i);
        slots.emplace_back(config.ways,
                           config.window_quanta_per_way * config.ways,
                           config.entries_per_way * config.ways);
    }

    // OPTgen events name only (pc, block); to line them up with the
    // exact oracle's per-access labels we track, per block, the index
    // of its most recent access — the access an event labels.
    std::unordered_map<std::uint64_t, std::size_t> last_index;
    last_index.reserve(1024);

    auto tally = [&](const opt::TrainingEvent &ev) {
        auto it = last_index.find(ev.block);
        if (it == last_index.end())
            return; // tracked entry predates our bookkeeping; skip
        bool exact_friendly = exact.labels[it->second] != 0;
        ++res.events;
        res.belady_friendly += exact_friendly;
        res.optgen_friendly += ev.opt_hit;
        bool agree = ev.opt_hit == exact_friendly;
        res.agreements += agree;
        PcAgreement &pc = res.per_pc[ev.pc];
        pc.pc = ev.pc;
        ++pc.events;
        pc.agree += agree;
    };

    for (std::size_t i = 0; i < llc_stream.size(); ++i) {
        const auto &rec = llc_stream[i];
        std::uint64_t block = traces::blockAddr(rec.address);
        std::uint64_t set = block & (config.sets - 1);
        if (slot_of[set] < 0)
            continue;
        ++res.sampled_accesses;
        opt::OptGenSet &og =
            slots[static_cast<std::size_t>(slot_of[set])];

        // An interval-closing event labels this block's previous
        // access, so consume it before updating last_index.
        if (auto ev = og.access(block, rec.pc, rec.core, {}, false,
                                false)) {
            tally(*ev);
        }
        // Aged-out / displaced entries were labelled cache-averse;
        // their last_index entries are dead once tallied.
        while (auto ev = og.popExpired()) {
            tally(*ev);
            last_index.erase(ev->block);
        }
        last_index[block] = i;
    }
    return res;
}

double
suiteMeanAgreement(const std::vector<OracleSuiteEntry> &suite)
{
    if (suite.empty())
        return 1.0;
    double sum = 0.0;
    for (const auto &entry : suite)
        sum += entry.diff.agreement();
    return sum / static_cast<double>(suite.size());
}

double
suitePooledAgreement(const std::vector<OracleSuiteEntry> &suite)
{
    std::uint64_t events = 0, agree = 0;
    for (const auto &entry : suite) {
        events += entry.diff.events;
        agree += entry.diff.agreements;
    }
    return events ? static_cast<double>(agree)
            / static_cast<double>(events)
                  : 1.0;
}

obs::json::Value
oracleSuiteJson(const std::vector<OracleSuiteEntry> &suite, double gate)
{
    auto rate = [](std::uint64_t num, std::uint64_t den) {
        return den
            ? static_cast<double>(num) / static_cast<double>(den)
            : 0.0;
    };

    auto rows = obs::json::Value::array();
    for (const auto &entry : suite) {
        const OracleDiffResult &d = entry.diff;
        auto row = obs::json::Value::object();
        row["workload"] = obs::json::Value(entry.workload);
        row["llc_accesses"] = obs::json::Value(entry.llc_accesses);
        row["sampled_accesses"] = obs::json::Value(d.sampled_accesses);
        row["labelled_events"] = obs::json::Value(d.events);
        row["agreement"] = obs::json::Value(d.agreement());
        row["belady_hit_rate"] = obs::json::Value(d.belady_hit_rate);
        row["belady_friendly_rate"] =
            obs::json::Value(rate(d.belady_friendly, d.events));
        row["optgen_friendly_rate"] =
            obs::json::Value(rate(d.optgen_friendly, d.events));
        auto worst = obs::json::Value::array();
        for (const PcAgreement &pc : d.worstPcs(5)) {
            auto w = obs::json::Value::object();
            char hex[2 + 16 + 1];
            std::snprintf(hex, sizeof hex, "0x%llx",
                          static_cast<unsigned long long>(pc.pc));
            w["pc"] = obs::json::Value(hex);
            w["events"] = obs::json::Value(pc.events);
            w["agreement"] = obs::json::Value(pc.rate());
            worst.push(std::move(w));
        }
        row["worst_pcs"] = std::move(worst);
        rows.push(std::move(row));
    }

    double mean = suiteMeanAgreement(suite);
    auto doc = obs::json::Value::object();
    doc["suite"] = std::move(rows);
    doc["mean_agreement"] = obs::json::Value(mean);
    doc["pooled_agreement"] =
        obs::json::Value(suitePooledAgreement(suite));
    doc["gate"] = obs::json::Value(gate);
    doc["pass"] = obs::json::Value(mean >= gate);
    return doc;
}

} // namespace verify
} // namespace glider
