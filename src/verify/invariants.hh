/**
 * @file
 * Failure type and check helper for the verification layer.
 *
 * Unlike GLIDER_ASSERT (which aborts), verification checks throw, so
 * harnesses like the fuzzer can catch a violation, shrink the failing
 * input, and keep running. An uncaught InvariantViolation still
 * terminates the process with the message, so in ordinary runs a
 * violated invariant is as loud as a panic.
 */

#ifndef GLIDER_VERIFY_INVARIANTS_HH
#define GLIDER_VERIFY_INVARIANTS_HH

#include <stdexcept>
#include <string>

namespace glider {
namespace verify {

/** A structural invariant of the simulator was violated. */
class InvariantViolation : public std::runtime_error
{
  public:
    explicit InvariantViolation(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Throw InvariantViolation with @p msg unless @p cond holds. */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        throw InvariantViolation(msg);
}

} // namespace verify
} // namespace glider

#endif // GLIDER_VERIFY_INVARIANTS_HH
