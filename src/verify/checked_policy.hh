/**
 * @file
 * Invariant-checking decorator for replacement policies.
 *
 * CheckedPolicy wraps any ReplacementPolicy and mirrors the cache's
 * tag array from the event protocol alone (victimWay / onHit /
 * onEvict / onInsert). Because the shadow state is derived
 * independently of the cache's own tag array, any disagreement
 * between the two — duplicate tags in a set, a hit reported for a
 * way that does not hold the block, an out-of-bounds victim, a
 * missing or spurious onEvict — is caught on the exact access that
 * introduces it, with an InvariantViolation naming the failure.
 *
 * The wrapper is behaviour-transparent: every event is forwarded to
 * the inner policy unchanged and name() forwards too, so result
 * tables are byte-identical with and without checking. A build
 * configured with -DGLIDER_CHECKED=ON wraps every factory-created
 * policy (see core::makePolicy); default builds pay nothing.
 */

#ifndef GLIDER_VERIFY_CHECKED_POLICY_HH
#define GLIDER_VERIFY_CHECKED_POLICY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cachesim/replacement.hh"

namespace glider {
namespace verify {

/** Replacement-policy decorator asserting protocol invariants. */
class CheckedPolicy : public sim::ReplacementPolicy
{
  public:
    struct Options
    {
        /**
         * Additionally verify victim selection against a true-LRU
         * reference model (valid only when wrapping an LRU policy):
         * the victim must be an invalid way if one exists, otherwise
         * the least recently touched way.
         */
        bool verify_lru = false;
    };

    explicit CheckedPolicy(std::unique_ptr<sim::ReplacementPolicy> inner);
    CheckedPolicy(std::unique_ptr<sim::ReplacementPolicy> inner,
                  Options options);

    /** Forwarded so experiment tables are unchanged by wrapping. */
    std::string name() const override { return inner_->name(); }

    /** Forwarded so telemetry is unchanged by wrapping. */
    void
    exportMetrics(obs::Registry &registry,
                  const std::string &prefix) const override
    {
        inner_->exportMetrics(registry, prefix);
    }

    /** Forwarded so the batched-advice probe sees through the
     * checker (checked builds keep the capability). */
    const sim::BatchAdviceProvider *
    adviceProvider() const override
    {
        return inner_->adviceProvider();
    }

    void reset(const sim::CacheGeometry &geom) override;
    std::uint32_t victimWay(const sim::ReplacementAccess &access,
                            sim::SetView lines) override;
    void onHit(const sim::ReplacementAccess &access,
               std::uint32_t way) override;
    void onEvict(const sim::ReplacementAccess &access, std::uint32_t way,
                 const sim::LineView &victim) override;
    void onInsert(const sim::ReplacementAccess &access,
                  std::uint32_t way) override;

    /** Event counters, for cross-checking against CacheStats. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t bypasses() const { return bypasses_; }

    sim::ReplacementPolicy &inner() { return *inner_; }

  private:
    /** Shadow copy of one tag-array line, plus an LRU stamp. */
    struct ShadowLine
    {
        bool valid = false;
        std::uint64_t block = 0;
        std::uint64_t last_touch = 0;
    };

    /** Where in the miss protocol the current access stands. */
    enum class Phase { Idle, AfterVictim };

    ShadowLine *row(std::uint64_t set) { return &shadow_[set * ways()]; }
    std::uint32_t ways() const { return geom_.ways; }
    void checkSetIndex(const sim::ReplacementAccess &access,
                       const char *event) const;
    /** Way (if any) of @p set's shadow row holding @p block. */
    std::uint32_t findBlock(std::uint64_t set, std::uint64_t block);

    std::unique_ptr<sim::ReplacementPolicy> inner_;
    Options options_;
    sim::CacheGeometry geom_;
    std::vector<ShadowLine> shadow_;
    std::uint64_t clock_ = 0;

    Phase phase_ = Phase::Idle;
    std::uint64_t pending_set_ = 0;
    std::uint64_t pending_block_ = 0;
    std::uint32_t pending_way_ = 0;
    bool pending_evict_needed_ = false;
    bool evict_seen_ = false;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t bypasses_ = 0;
};

/** Wrap @p policy in a CheckedPolicy (convenience for harnesses). */
std::unique_ptr<sim::ReplacementPolicy>
checkedPolicy(std::unique_ptr<sim::ReplacementPolicy> policy,
              CheckedPolicy::Options options = CheckedPolicy::Options());

} // namespace verify
} // namespace glider

#endif // GLIDER_VERIFY_CHECKED_POLICY_HH
