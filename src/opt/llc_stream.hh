/**
 * @file
 * LLC access-stream extraction.
 *
 * The paper trains and labels on traces of *LLC* accesses generated
 * by running applications through ChampSim (§5.1). Because the
 * private L1/L2 levels use a fixed LRU policy and the hierarchy is
 * non-inclusive, the LLC access stream is identical regardless of
 * the LLC replacement policy under study — so it can be extracted
 * once per workload and reused by every offline model and by the
 * BeladyPolicy oracle rows.
 */

#ifndef GLIDER_OPT_LLC_STREAM_HH
#define GLIDER_OPT_LLC_STREAM_HH

#include "cachesim/cache_config.hh"
#include "traces/trace.hh"

namespace glider {
namespace opt {

/**
 * Filter @p cpu_trace through L1 and L2 (per Table 1, LRU) and return
 * the stream of accesses that reach the LLC.
 */
traces::Trace extractLlcStream(const traces::Trace &cpu_trace,
                               const sim::HierarchyConfig &config
                               = sim::HierarchyConfig());

} // namespace opt
} // namespace glider

#endif // GLIDER_OPT_LLC_STREAM_HH
