#include "llc_stream.hh"

#include <memory>

#include "cachesim/basic_lru.hh"
#include "cachesim/cache.hh"

namespace glider {
namespace opt {

traces::Trace
extractLlcStream(const traces::Trace &cpu_trace,
                 const sim::HierarchyConfig &config)
{
    // glider-lint: allow(hotpath-alloc) offline stream extraction
    // runs once per trace before simulation; not the access path.
    sim::Cache l1(config.l1, std::make_unique<sim::BasicLruPolicy>());
    // glider-lint: allow(hotpath-alloc) same setup pass as above.
    sim::Cache l2(config.l2, std::make_unique<sim::BasicLruPolicy>());

    traces::Trace out(cpu_trace.name() + ".llc");
    for (const auto &rec : cpu_trace) {
        std::uint64_t block = traces::blockAddr(rec.address);
        if (l1.access(rec.core, rec.pc, block, rec.is_write))
            continue;
        if (l2.access(rec.core, rec.pc, block, rec.is_write))
            continue;
        out.push(rec);
    }
    return out;
}

} // namespace opt
} // namespace glider
