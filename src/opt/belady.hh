/**
 * @file
 * Exact Belady MIN for a set-associative cache.
 *
 * Used two ways: (1) to produce per-access oracle labels for offline
 * training — the paper's "cache-friendly / cache-averse" supervision
 * (§4) — and (2) as the MIN replacement rows of the evaluation.
 */

#ifndef GLIDER_OPT_BELADY_HH
#define GLIDER_OPT_BELADY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cachesim/replacement.hh"
#include "traces/trace.hh"

namespace glider {
namespace opt {

/** Outcome of an exact MIN simulation over an LLC access stream. */
struct BeladyResult
{
    /**
     * labels[i] == 1 iff the block touched by access i is still
     * resident at its next use (so OPT "caches" access i). The last
     * occurrence of every block is labelled 0 (no future reuse).
     */
    std::vector<std::uint8_t> labels;
    /** hits[i] == 1 iff access i itself hit under MIN. */
    std::vector<std::uint8_t> hits;
    std::uint64_t hit_count = 0;

    double
    hitRate() const
    {
        return hits.empty()
            ? 0.0
            : static_cast<double>(hit_count)
                / static_cast<double>(hits.size());
    }
};

/**
 * For each access, the index of the next access to the same block
 * (or SIZE_MAX when there is none). The backbone of MIN.
 */
std::vector<std::size_t> computeNextUse(const traces::Trace &stream);

/**
 * Run exact Belady MIN (with bypass, which is optimal for a
 * non-inclusive cache) over @p stream with the given geometry.
 */
BeladyResult simulateBelady(const traces::Trace &stream,
                            std::uint64_t sets, std::uint32_t ways);

/**
 * Oracle replacement policy: replays MIN decisions for a known
 * future. The driver must present exactly the @p stream accesses, in
 * order, that the policy was constructed with (asserted).
 */
class BeladyPolicy : public sim::ReplacementPolicy
{
  public:
    explicit BeladyPolicy(const traces::Trace &stream);

    std::string name() const override { return "MIN"; }
    void reset(const sim::CacheGeometry &geom) override;
    std::uint32_t victimWay(const sim::ReplacementAccess &access,
                            sim::SetView lines) noexcept override;
    void onHit(const sim::ReplacementAccess &access,
               std::uint32_t way) noexcept override;
    void onEvict(const sim::ReplacementAccess &access, std::uint32_t way,
                 const sim::LineView &victim) noexcept override;
    void onInsert(const sim::ReplacementAccess &access,
                  std::uint32_t way) noexcept override;

  private:
    /** Advance the stream cursor, checking the caller stays in sync. */
    std::size_t advance(const sim::ReplacementAccess &access) noexcept;

    const traces::Trace *stream_;
    std::vector<std::size_t> next_use_;
    std::size_t cursor_ = 0;
    sim::CacheGeometry geom_;
    /** Next-use time of the line in each (set, way); SIZE_MAX = never. */
    std::vector<std::size_t> line_next_use_;
};

} // namespace opt
} // namespace glider

#endif // GLIDER_OPT_BELADY_HH
