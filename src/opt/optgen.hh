/**
 * @file
 * OPTgen: Hawkeye's online reconstruction of Belady's decisions for
 * past accesses (Jain & Lin, ISCA'16), extended to carry the
 * control-flow context Glider needs.
 *
 * For each sampled cache set, OPTgen keeps an occupancy vector over a
 * sliding window of recent accesses ("time quanta"). When an access
 * closes a usage interval [t_prev, t) for a block, the interval is an
 * OPT hit iff every quantum in it still has spare capacity; OPT hits
 * reserve their interval by incrementing it. The closing of an
 * interval yields a training event for the predictor that observed
 * the access at t_prev.
 */

#ifndef GLIDER_OPT_OPTGEN_HH
#define GLIDER_OPT_OPTGEN_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace glider {
namespace opt {

/** PCHR snapshot captured with each sampled access (Glider feature). */
using PcHistory = std::vector<std::uint64_t>;

/** Emitted when OPTgen decides the fate of a past access. */
struct TrainingEvent
{
    bool opt_hit = false;       //!< OPT would have cached the access
    std::uint64_t pc = 0;       //!< PC of the access being labelled
    std::uint64_t block = 0;
    std::uint8_t core = 0;      //!< core that issued the access
    PcHistory history;          //!< PCHR contents at that access
    bool predicted_friendly = false; //!< what the predictor said then
    bool prediction_valid = false;   //!< was a prediction recorded
};

/** OPTgen state for one sampled set. */
class OptGenSet
{
  public:
    /** Label and churn telemetry, accumulated since construction. */
    struct Stats
    {
        std::uint64_t hit_intervals = 0;  //!< closed intervals OPT kept
        std::uint64_t miss_intervals = 0; //!< closed intervals OPT shed
        std::uint64_t expired_negatives = 0;  //!< aged out of window
        std::uint64_t capacity_evictions = 0; //!< sampler slot stolen
    };

    /**
     * @param ways Modelled associativity (OPT capacity per quantum).
     * @param history_quanta Sliding-window length; the Hawkeye
     *        default is 8x the associativity.
     * @param max_entries Tracked-address budget (sampler capacity).
     */
    OptGenSet(std::uint32_t ways, std::size_t history_quanta,
              std::size_t max_entries);

    /**
     * Record an access to @p block by @p pc.
     *
     * @param history PCHR snapshot at this access (may be empty).
     * @param predicted_friendly The predictor's verdict for this
     *        access (used later to score online accuracy).
     * @param prediction_valid False when no prediction was made.
     * @return a TrainingEvent if this access closed a usage interval.
     */
    std::optional<TrainingEvent> access(std::uint64_t block,
                                        std::uint64_t pc,
                                        std::uint8_t core,
                                        const PcHistory &history,
                                        bool predicted_friendly,
                                        bool prediction_valid);

    /**
     * Pop an eviction-driven negative training event, if any: a
     * tracked address aged out of the window without reuse, which
     * means OPT did not cache it. Call until empty after access().
     */
    std::optional<TrainingEvent> popExpired();

    std::uint64_t clock() const { return clock_; }

    const Stats &stats() const { return stats_; }

    /**
     * Mean occupancy of the sliding window's quanta as a fraction of
     * OPT capacity (0 when no access has been seen). An on-demand
     * scan; not part of the access hot path.
     */
    double occupancyUtilization() const;

  private:
    struct Entry
    {
        std::uint64_t block = 0;
        std::uint64_t last_time = 0;
        std::uint64_t pc = 0;
        std::uint8_t core = 0;
        PcHistory history;
        bool predicted_friendly = false;
        bool prediction_valid = false;
        bool valid = false;
    };

    /** Quantum index -> occupancy slot in the ring. */
    std::uint8_t &occupancyAt(std::uint64_t time);

    std::uint32_t ways_;
    std::size_t history_quanta_;
    std::size_t max_entries_;
    std::uint64_t clock_ = 0;     //!< accesses to this set so far
    std::uint64_t base_time_ = 0; //!< oldest quantum still in window
    std::vector<std::uint8_t> occupancy_; //!< ring of history_quanta_
    std::vector<Entry> entries_;
    std::vector<TrainingEvent> expired_;
    Stats stats_;
};

/**
 * Set-sampled OPTgen front end: routes accesses of sampled LLC sets
 * to per-set OptGen state, as Hawkeye's sampler does (64 sampled
 * sets by default). Sampled sets are chosen by hashing the set index
 * rather than by stride, so that regular address-layout strides in
 * the workload (e.g. multi-line objects) cannot alias with the
 * sample and starve some PCs of training.
 */
class OptGenSampler
{
  public:
    /**
     * @param sets Total LLC sets.
     * @param ways LLC associativity.
     * @param sampled_sets How many sets to sample (spread evenly).
     */
    OptGenSampler(std::uint64_t sets, std::uint32_t ways,
                  std::uint64_t sampled_sets = 64);

    /** @return true if @p set is sampled. */
    bool isSampled(std::uint64_t set) const;

    /** Forward an access on a sampled set (see OptGenSet::access). */
    std::optional<TrainingEvent> access(std::uint64_t set,
                                        std::uint64_t block,
                                        std::uint64_t pc,
                                        std::uint8_t core,
                                        const PcHistory &history,
                                        bool predicted_friendly,
                                        bool prediction_valid);

    /** Drain expired-entry negative events across all sampled sets. */
    std::optional<TrainingEvent> popExpired();

    std::size_t sampledSets() const { return sampled_.size(); }

    /** Sum of per-set label/churn counters across all sampled sets. */
    OptGenSet::Stats stats() const;

    /** Mean of per-set occupancyUtilization over sampled sets. */
    double occupancyUtilization() const;

  private:
    std::uint64_t sets_;
    std::vector<std::int32_t> sample_index_; //!< set -> slot or -1
    std::vector<OptGenSet> sampled_;
    std::size_t drain_cursor_ = 0;
};

} // namespace opt
} // namespace glider

#endif // GLIDER_OPT_OPTGEN_HH
