#include "optgen.hh"

#include <algorithm>
#include <numeric>

#include "common/hash.hh"
#include "common/logging.hh"

namespace glider {
namespace opt {

OptGenSet::OptGenSet(std::uint32_t ways, std::size_t history_quanta,
                     std::size_t max_entries)
    : ways_(ways), history_quanta_(history_quanta),
      max_entries_(max_entries), occupancy_(history_quanta, 0),
      entries_(max_entries)
{
    GLIDER_ASSERT(ways >= 1);
    GLIDER_ASSERT(history_quanta >= 1);
    GLIDER_ASSERT(max_entries >= 1);
    // The expired queue is drained after every access, so it never
    // holds more than one batch of aged-out entries; reserving the
    // entry budget keeps the access-path push_backs allocation-free.
    expired_.reserve(max_entries);
}

std::uint8_t &
OptGenSet::occupancyAt(std::uint64_t time)
{
    GLIDER_ASSERT(time >= base_time_ && time < clock_ + 1);
    return occupancy_[time % history_quanta_];
}

std::optional<TrainingEvent>
OptGenSet::access(std::uint64_t block, std::uint64_t pc,
                  std::uint8_t core, const PcHistory &history,
                  bool predicted_friendly, bool prediction_valid)
{
    std::uint64_t now = clock_++;
    // Open the new quantum; slide the window forward if full.
    if (now >= history_quanta_) {
        std::uint64_t new_base = now - history_quanta_ + 1;
        // Entries whose interval start aged out of the window can
        // never be proven OPT hits: emit negative training for them.
        for (auto &e : entries_) {
            if (e.valid && e.last_time < new_base) {
                TrainingEvent ev;
                ev.opt_hit = false;
                ev.pc = e.pc;
                ev.block = e.block;
                ev.core = e.core;
                ev.history = e.history;
                ev.predicted_friendly = e.predicted_friendly;
                ev.prediction_valid = e.prediction_valid;
                // glider-lint: allow(hotpath-alloc) reserved to
                // max_entries in the constructor
                expired_.push_back(std::move(ev));
                e.valid = false;
                ++stats_.expired_negatives;
            }
        }
        base_time_ = new_base;
    }
    occupancy_[now % history_quanta_] = 0;

    std::optional<TrainingEvent> result;
    Entry *entry = nullptr;
    Entry *free_slot = nullptr;
    Entry *oldest = nullptr;
    for (auto &e : entries_) {
        if (e.valid && e.block == block) {
            entry = &e;
            break;
        }
        if (!e.valid && !free_slot)
            free_slot = &e;
        if (e.valid && (!oldest || e.last_time < oldest->last_time))
            oldest = &e;
    }

    if (entry) {
        // Usage interval [entry->last_time, now): an OPT hit iff all
        // its quanta still have spare capacity.
        bool fits = true;
        for (std::uint64_t t = entry->last_time; t < now; ++t) {
            if (occupancyAt(t) >= ways_) {
                fits = false;
                break;
            }
        }
        if (fits) {
            for (std::uint64_t t = entry->last_time; t < now; ++t)
                ++occupancyAt(t);
            ++stats_.hit_intervals;
        } else {
            ++stats_.miss_intervals;
        }
        TrainingEvent ev;
        ev.opt_hit = fits;
        ev.pc = entry->pc;
        ev.block = entry->block;
        ev.core = entry->core;
        ev.history = entry->history;
        ev.predicted_friendly = entry->predicted_friendly;
        ev.prediction_valid = entry->prediction_valid;
        result = std::move(ev);
    } else {
        // New tracked address; steal the oldest entry if at capacity.
        entry = free_slot;
        if (!entry) {
            GLIDER_ASSERT(oldest != nullptr);
            // The displaced address never got labelled: negative.
            TrainingEvent ev;
            ev.opt_hit = false;
            ev.pc = oldest->pc;
            ev.block = oldest->block;
            ev.core = oldest->core;
            ev.history = oldest->history;
            ev.predicted_friendly = oldest->predicted_friendly;
            ev.prediction_valid = oldest->prediction_valid;
            // glider-lint: allow(hotpath-alloc) reserved to
            // max_entries in the constructor
            expired_.push_back(std::move(ev));
            ++stats_.capacity_evictions;
            entry = oldest;
        }
    }

    entry->block = block;
    entry->last_time = now;
    entry->pc = pc;
    entry->core = core;
    entry->history = history;
    entry->predicted_friendly = predicted_friendly;
    entry->prediction_valid = prediction_valid;
    entry->valid = true;
    return result;
}

double
OptGenSet::occupancyUtilization() const
{
    if (clock_ == 0)
        return 0.0;
    std::uint64_t quanta = std::min<std::uint64_t>(
        clock_, static_cast<std::uint64_t>(history_quanta_));
    std::uint64_t total = 0;
    for (std::uint64_t t = clock_ - quanta; t < clock_; ++t)
        total += occupancy_[t % history_quanta_];
    return static_cast<double>(total)
        / (static_cast<double>(quanta) * static_cast<double>(ways_));
}

std::optional<TrainingEvent>
OptGenSet::popExpired()
{
    if (expired_.empty())
        return std::nullopt;
    TrainingEvent ev = std::move(expired_.back());
    expired_.pop_back();
    return ev;
}

OptGenSampler::OptGenSampler(std::uint64_t sets, std::uint32_t ways,
                             std::uint64_t sampled_sets)
{
    GLIDER_ASSERT(sets >= 1);
    sets_ = sets;
    if (sampled_sets > sets)
        sampled_sets = sets;
    // Hash-ranked selection: the sampled_sets sets with the smallest
    // mixed index are chosen. Deterministic, evenly spread, and free
    // of stride aliasing.
    std::vector<std::uint64_t> order(sets);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [](std::uint64_t a, std::uint64_t b) {
                  return mix64(a) < mix64(b);
              });
    sample_index_.assign(sets, -1);
    sampled_.reserve(sampled_sets);
    for (std::uint64_t i = 0; i < sampled_sets; ++i) {
        sample_index_[order[i]] = static_cast<std::int32_t>(i);
        sampled_.emplace_back(ways, 8 * ways,
                              static_cast<std::size_t>(2 * ways));
    }
}

bool
OptGenSampler::isSampled(std::uint64_t set) const
{
    return sample_index_[set] >= 0;
}

std::optional<TrainingEvent>
OptGenSampler::access(std::uint64_t set, std::uint64_t block,
                      std::uint64_t pc, std::uint8_t core,
                      const PcHistory &history,
                      bool predicted_friendly, bool prediction_valid)
{
    GLIDER_ASSERT(isSampled(set));
    return sampled_[static_cast<std::size_t>(sample_index_[set])]
        .access(block, pc, core, history, predicted_friendly,
                prediction_valid);
}

OptGenSet::Stats
OptGenSampler::stats() const
{
    OptGenSet::Stats total;
    for (const auto &s : sampled_) {
        total.hit_intervals += s.stats().hit_intervals;
        total.miss_intervals += s.stats().miss_intervals;
        total.expired_negatives += s.stats().expired_negatives;
        total.capacity_evictions += s.stats().capacity_evictions;
    }
    return total;
}

double
OptGenSampler::occupancyUtilization() const
{
    if (sampled_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : sampled_)
        sum += s.occupancyUtilization();
    return sum / static_cast<double>(sampled_.size());
}

std::optional<TrainingEvent>
OptGenSampler::popExpired()
{
    // Round-robin drain: the cursor advances whether or not the set
    // produced an event, so one hot set cannot drain exhaustively
    // while other sets' expired negatives go stale behind it.
    for (std::size_t n = 0; n < sampled_.size(); ++n) {
        auto ev = sampled_[drain_cursor_].popExpired();
        drain_cursor_ = (drain_cursor_ + 1) % sampled_.size();
        if (ev)
            return ev;
    }
    return std::nullopt;
}

} // namespace opt
} // namespace glider
