#include "belady.hh"

#include "common/logging.hh"
#include "traces/access.hh"

namespace glider {
namespace opt {

std::vector<std::size_t>
computeNextUse(const traces::Trace &stream)
{
    std::vector<std::size_t> next(stream.size(), SIZE_MAX);
    std::unordered_map<std::uint64_t, std::size_t> last_seen;
    last_seen.reserve(stream.size() / 4 + 1);
    for (std::size_t i = stream.size(); i-- > 0;) {
        std::uint64_t block = traces::blockAddr(stream[i].address);
        auto it = last_seen.find(block);
        if (it != last_seen.end())
            next[i] = it->second;
        last_seen[block] = i;
    }
    return next;
}

BeladyResult
simulateBelady(const traces::Trace &stream, std::uint64_t sets,
               std::uint32_t ways)
{
    GLIDER_ASSERT(sets > 0 && (sets & (sets - 1)) == 0);
    GLIDER_ASSERT(ways > 0);

    std::vector<std::size_t> next = computeNextUse(stream);

    BeladyResult res;
    // glider-lint: allow(hotpath-alloc) offline oracle, not the
    // simulator access path
    res.labels.assign(stream.size(), 0);
    // glider-lint: allow(hotpath-alloc) same setup pass as above.
    res.hits.assign(stream.size(), 0);

    struct Line
    {
        std::uint64_t block = 0;
        std::size_t next_use = SIZE_MAX;
        std::size_t brought_by = SIZE_MAX; //!< access index that filled
        bool valid = false;
    };
    std::vector<Line> lines(sets * ways);
    // block -> way slot, per set, for O(1) hit lookup.
    std::unordered_map<std::uint64_t, std::uint32_t> where;
    where.reserve(sets * ways * 2);

    for (std::size_t i = 0; i < stream.size(); ++i) {
        std::uint64_t block = traces::blockAddr(stream[i].address);
        std::uint64_t set = block & (sets - 1);
        Line *row = &lines[set * ways];

        auto it = where.find(block);
        if (it != where.end()) {
            Line &line = row[it->second];
            GLIDER_ASSERT(line.valid && line.block == block);
            res.hits[i] = 1;
            ++res.hit_count;
            // The access that brought/kept this line got its reuse:
            // it is cache-friendly by the oracle's definition.
            if (line.brought_by != SIZE_MAX)
                res.labels[line.brought_by] = 1;
            line.next_use = next[i];
            line.brought_by = i;
            continue;
        }

        // Miss: find the victim with the farthest next use; bypass if
        // the incoming line's next use is farther still.
        std::uint32_t victim = ways; // sentinel: bypass
        std::size_t victim_next = next[i];
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!row[w].valid) {
                victim = w;
                break;
            }
            if (row[w].next_use > victim_next) {
                victim = w;
                victim_next = row[w].next_use;
            }
        }
        if (victim == ways)
            continue; // incoming reused farthest (or never): bypass
        if (row[victim].valid)
            where.erase(row[victim].block);
        row[victim] = Line{block, next[i], i, true};
        where[block] = victim;
    }
    return res;
}

BeladyPolicy::BeladyPolicy(const traces::Trace &stream)
    : stream_(&stream), next_use_(computeNextUse(stream))
{
}

void
BeladyPolicy::reset(const sim::CacheGeometry &geom)
{
    geom_ = geom;
    cursor_ = 0;
    line_next_use_.assign(geom.sets * geom.ways, SIZE_MAX);
}

std::size_t
BeladyPolicy::advance(const sim::ReplacementAccess &access) noexcept
{
    GLIDER_ASSERT(cursor_ < stream_->size());
    std::uint64_t expect =
        traces::blockAddr((*stream_)[cursor_].address);
    if (expect != access.block_addr) {
        GLIDER_PANIC("BeladyPolicy stream desync: the driver must "
                     "replay the construction stream in order");
    }
    return cursor_++;
}

std::uint32_t
BeladyPolicy::victimWay(const sim::ReplacementAccess &access,
                        sim::SetView lines) noexcept
{
    std::size_t i = advance(access);
    std::size_t incoming_next = next_use_[i];

    std::uint32_t victim = geom_.ways;
    std::size_t victim_next = incoming_next;
    std::size_t *row = &line_next_use_[access.set * geom_.ways];
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        if (!lines[w].valid)
            return w;
        if (row[w] > victim_next) {
            victim = w;
            victim_next = row[w];
        }
    }
    return victim; // geom_.ways means bypass (optimal here)
}

void
BeladyPolicy::onHit(const sim::ReplacementAccess &access,
                    std::uint32_t way) noexcept
{
    std::size_t i = advance(access);
    line_next_use_[access.set * geom_.ways + way] = next_use_[i];
}

void
BeladyPolicy::onEvict(const sim::ReplacementAccess &, std::uint32_t,
                      const sim::LineView &) noexcept
{
}

void
BeladyPolicy::onInsert(const sim::ReplacementAccess &access,
                       std::uint32_t way) noexcept
{
    // victimWay() already consumed the stream position for this miss;
    // cursor_ - 1 is the current access.
    line_next_use_[access.set * geom_.ways + way] =
        next_use_[cursor_ - 1];
}

} // namespace opt
} // namespace glider
