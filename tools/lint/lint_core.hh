/**
 * @file
 * Shared core of glider_lint: the light C++ tokenizer, the per-file
 * lint context (tokens, escape-hatch directives, glider-mo contract
 * comments), the finding/report plumbing, and the scope tracker the
 * semantic rules build on. No libclang — a tokenizer plus a scope
 * model good enough for this codebase's style.
 */

#ifndef GLIDER_TOOLS_LINT_LINT_CORE_HH
#define GLIDER_TOOLS_LINT_LINT_CORE_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace glider {
namespace lint {

struct Token
{
    enum class Kind { Ident, Punct, String, CharLit, Number, Pp };
    Kind kind = Kind::Punct;
    std::string text; //!< raw text; literals keep escapes unprocessed
    int line = 0;
};

/** Per-file lint context: source, tokens, and comment directives. */
struct FileCtx
{
    std::string rel;     //!< repo-relative path with '/' separators
    std::string content; //!< raw bytes
    std::vector<std::string> lines; //!< content split at '\n'
    std::vector<Token> toks;        //!< comments stripped
    std::map<int, std::set<std::string>> line_allows;
    std::set<std::string> file_allows;
    /** allow()/allow-file() directives with no trailing reason text,
     *  keyed by line, carrying the rule list for the message. */
    std::map<int, std::vector<std::string>> bare_allows;
    /** `// glider-mo: <role>` contract comments, keyed by line. */
    std::map<int, std::string> mo_contracts;
    std::set<int> code_lines; //!< lines carrying at least one token
};

struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string msg;
};

/** Tokenize ctx.content into ctx.toks, collecting directives. */
void tokenize(FileCtx &ctx);

/** True when an allow() hatch covers (rule, line) in this file. */
bool allowed(const FileCtx &ctx, const std::string &rule, int line);

/** Append a finding unless an escape hatch covers it. */
void report(std::vector<Finding> &out, const FileCtx &ctx,
            const std::string &rule, int line, std::string msg);

bool startsWith(const std::string &s, const char *prefix);
bool endsWith(const std::string &s, const char *suffix);

/** Hot-path file set shared by hotpath-alloc and hotpath-transitive. */
bool isHotPathFile(const std::string &rel);

/** ALL_CAPS idents are macros the tokenizer cannot expand. */
bool looksLikeMacroName(const std::string &name);

/**
 * Direct heap allocation or container growth at token @p i: returns
 * a short description ("operator new", ".push_back() container
 * growth", ...) or "" when token @p i is not an allocation.
 */
std::string allocationAt(const FileCtx &ctx, std::size_t i);

/**
 * Tracks namespace/class/function/block scopes over the token stream,
 * tuned to this repo's style. Good enough to know, at any token, the
 * innermost enclosing function and whether it is a designated
 * cold-path function (setup/teardown/telemetry).
 */
class ScopeTracker
{
  public:
    struct Scope
    {
        enum class Kind { Namespace, Class, Function, Block };
        Kind kind;
        std::string name;
        bool cold = false;
        std::string outer; //!< class qualifier for functions
        int line = 0;      //!< body-brace line for functions
    };

    explicit ScopeTracker(const std::vector<Token> &toks) : toks_(toks)
    {
    }

    /** Feed token @p i; call once per token, in order. */
    void step(std::size_t i);

    /** Innermost enclosing function, or nullptr at type/ns scope. */
    const Scope *enclosingFunction() const;

    /** Innermost scope, or nullptr at translation-unit scope. */
    const Scope *innermost() const;

    /** Number of Function scopes currently open. */
    int functionDepth() const;

    /**
     * Namespace/class path of the innermost function, joined with
     * "::" (including the out-of-class qualifier of a qualified
     * definition), or "" when no function is open.
     */
    std::string functionPath() const;

  private:
    enum class Pending { None, InParams, AfterParams, CtorInit };

    bool innermostIsTypeScope() const;
    static bool isKeyword(const std::string &s);
    std::string qualifiedNameEndingAt(std::size_t i) const;
    void pendingStep(std::size_t i);
    void openBrace(std::size_t i, bool structural);
    void pushFunction();
    void classifyTypeBrace(std::size_t i);

    const std::vector<Token> &toks_;
    std::vector<Scope> stack_;
    Pending pending_ = Pending::None;
    std::string pending_name_;
    int pending_line_ = 0;
    int paren_depth_ = 0;
    int after_parens_ = 0;
    int init_paren_ = 0;
    int init_brace_ = 0;
};

/** allow-reason rule: every escape hatch must state why. */
void ruleAllowReason(const FileCtx &ctx, std::vector<Finding> &out);

} // namespace lint
} // namespace glider

#endif // GLIDER_TOOLS_LINT_LINT_CORE_HH
