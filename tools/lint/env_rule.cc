/**
 * @file
 * env-registry rule implementation. Links against glider_common so
 * the checked-in registry table itself is the oracle — the lint can
 * never drift from the code it polices.
 *
 * glider-lint: allow-file(json-outside-obs) finding messages quote
 * the offending literal, which takes escaped quotes.
 */

#include "lint/env_rule.hh"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>

#include "common/env_registry.hh"

namespace glider {
namespace lint {

namespace {

/** True for a complete GLIDER_* knob name (typo-guard shape). */
bool
looksLikeKnobName(const std::string &s)
{
    if (!startsWith(s, "GLIDER_") || s.size() <= 7)
        return false;
    for (char c : s)
        if (!std::isupper(static_cast<unsigned char>(c)) && c != '_'
            && !std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

std::set<std::string>
registeredNames()
{
    std::set<std::string> names;
    std::size_t count = 0;
    const env::KnobInfo *knobs = env::allKnobs(&count);
    for (std::size_t i = 0; i < count; ++i)
        names.insert(knobs[i].name);
    return names;
}

std::string
joinSet(const std::set<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

} // namespace

void
ruleEnvRegistry(const FileCtx &ctx, std::vector<Finding> &out)
{
    // The registry implementation holds the tree's one getenv and
    // necessarily spells every knob name.
    if (ctx.rel == "src/common/env_registry.cc")
        return;
    std::set<std::size_t> consumed;
    for (std::size_t i = 0; i + 1 < ctx.toks.size(); ++i) {
        const Token &t = ctx.toks[i];
        if (t.kind != Token::Kind::Ident
            || (t.text != "getenv" && t.text != "secure_getenv")
            || ctx.toks[i + 1].text != "(")
            continue;
        // First string argument inside the call's parens.
        int depth = 0;
        for (std::size_t j = i + 1; j < ctx.toks.size(); ++j) {
            if (ctx.toks[j].text == "(")
                ++depth;
            else if (ctx.toks[j].text == ")" && --depth == 0)
                break;
            if (ctx.toks[j].kind != Token::Kind::String)
                continue;
            if (startsWith(ctx.toks[j].text, "GLIDER_")) {
                report(out, ctx, "env-registry", t.line,
                       "getenv(\"" + ctx.toks[j].text
                           + "\") bypasses the env-knob registry; "
                             "read it via env::str/u64/f64/flag("
                             "env::Knob::...) from "
                             "common/env_registry.hh");
                // The bypass is the finding; don't double-report
                // the same literal as an unregistered name.
                consumed.insert(j);
            }
            break;
        }
    }
    for (std::size_t i = 0; i < ctx.toks.size(); ++i) {
        const Token &t = ctx.toks[i];
        if (t.kind != Token::Kind::String || consumed.count(i)
            || !looksLikeKnobName(t.text))
            continue;
        if (env::findByName(t.text) == nullptr)
            report(out, ctx, "env-registry", t.line,
                   "\"" + t.text
                       + "\" is not a registered GLIDER_ knob; add "
                         "it to src/common/env_registry.cc or fix "
                         "the name");
    }
}

void
ruleEnvRegistryReadme(const std::string &readme_rel,
                      const std::string &content,
                      std::vector<Finding> &out)
{
    static const char *kBegin = "<!-- glider-env-knobs:begin -->";
    static const char *kEnd = "<!-- glider-env-knobs:end -->";
    Finding f;
    f.file = readme_rel;
    f.rule = "env-registry";
    std::size_t begin = content.find(kBegin);
    std::size_t end = content.find(kEnd);
    if (begin == std::string::npos || end == std::string::npos
        || end < begin) {
        f.line = 1;
        f.msg = std::string("README is missing the ") + kBegin + " / "
            + kEnd
            + " markers around the env-knob table (regenerate with "
              "glider_lint --print-env-table)";
        out.push_back(f);
        return;
    }
    f.line = 1 + static_cast<int>(std::count(
                content.begin(), content.begin() + begin, '\n'));

    // Collect first-cell names of table rows between the markers.
    std::set<std::string> listed;
    std::size_t pos = begin;
    while (pos < end) {
        std::size_t nl = content.find('\n', pos);
        if (nl == std::string::npos || nl > end)
            nl = end;
        std::string line = content.substr(pos, nl - pos);
        pos = nl + 1;
        std::size_t bar = line.find('|');
        if (bar == std::string::npos)
            continue;
        std::size_t close = line.find('|', bar + 1);
        if (close == std::string::npos)
            continue;
        std::string cell = line.substr(bar + 1, close - bar - 1);
        std::string name;
        for (char c : cell)
            if (!std::isspace(static_cast<unsigned char>(c))
                && c != '`')
                name += c;
        if (looksLikeKnobName(name))
            listed.insert(name);
    }

    std::set<std::string> registered = registeredNames();
    std::set<std::string> missing, unknown;
    for (const std::string &n : registered)
        if (listed.count(n) == 0)
            missing.insert(n);
    for (const std::string &n : listed)
        if (registered.count(n) == 0)
            unknown.insert(n);
    if (missing.empty() && unknown.empty())
        return;
    f.msg = "README env-knob table drifted from "
            "src/common/env_registry.cc";
    if (!missing.empty())
        f.msg += "; missing: " + joinSet(missing);
    if (!unknown.empty())
        f.msg += "; not registered: " + joinSet(unknown);
    f.msg += " (regenerate with glider_lint --print-env-table)";
    out.push_back(f);
}

std::string
envKnobTable()
{
    std::string t = "| Knob | Type | Default | Description |\n"
                    "| --- | --- | --- | --- |\n";
    std::size_t count = 0;
    const env::KnobInfo *knobs = env::allKnobs(&count);
    for (std::size_t i = 0; i < count; ++i) {
        const env::KnobInfo &k = knobs[i];
        std::string def = "(unset)";
        if (k.def != nullptr && k.def[0] != '\0') {
            def = "`";
            def += k.def;
            def += "`";
        }
        t += "| `";
        t += k.name;
        t += "` | ";
        t += k.type;
        t += " | " + def + " | ";
        t += k.doc;
        t += " |\n";
    }
    return t;
}

} // namespace lint
} // namespace glider
