/**
 * @file
 * Function index + transitive reachability for hotpath-transitive.
 *
 * Conservatism rules (also in DESIGN.md):
 *  - Calls resolve by name: a qualified call must match the
 *    callee's immediate class/namespace qualifier; an unqualified
 *    or member call matches every indexed function with that name,
 *    and the union of all matches is traversed (overloads are never
 *    disambiguated).
 *  - Unresolved free calls are findings unless the callee is on the
 *    known-safe list (libc/math/builtin-width casts), is a macro
 *    (ALL_CAPS — the tokenizer cannot expand it), or is qualified
 *    with std:: (safe except the known-allocating std set, which is
 *    an allocation effect at the call site).
 *  - Unresolved *member* calls are treated as safe: repo-type
 *    methods resolve by name, and the std-container residue has its
 *    allocating/growing methods caught as direct effects
 *    (allocationAt) and its blocking ones in the lock set.
 *  - Cold functions (reset, exportMetrics, clear..., ctors, dtors)
 *    are safe traversal boundaries: calling one from hot code is
 *    assumed to be setup-phase by the same convention hotpath-alloc
 *    uses.
 *  - allow(hotpath-alloc) / allow(hotpath-transitive) hatches clear
 *    the effect at its site, so an annotated allocation does not
 *    propagate to callers; a hatch on a function's signature line
 *    exempts it as a root.
 */

#include "lint/call_graph.hh"

#include <cstddef>
#include <map>
#include <optional>

namespace glider {
namespace lint {

namespace {

struct Effect
{
    std::string what;
    int line = 0;
};

struct CallSite
{
    std::string name; //!< last component
    std::string qual; //!< immediate qualifier ("" if none)
    int line = 0;
    bool member = false;
};

struct FnNode
{
    std::string name;
    std::string outer;
    const FileCtx *ctx = nullptr;
    int line = 0;
    bool cold = false;
    bool hot = false;
    bool suppressed = false;
    std::optional<Effect> alloc, thrw, lock;
    std::vector<CallSite> calls;
    std::set<std::string> lambdas; //!< local `auto f = [...]` names
};

/** Callees that never allocate, throw, or block. */
bool
knownSafeCall(const std::string &name)
{
    // Compiler intrinsics and reserved implementation names: the
    // tokenizer cannot see into them, and none of them touch the
    // user heap, throw, or take user-space locks. "_mm*" covers SSE
    // / AVX, "v...q_..." the NEON 128-bit intrinsics, "__*" the
    // builtins (__builtin_cpu_supports, __attribute__ spellings).
    if (startsWith(name, "__") || startsWith(name, "_mm"))
        return true;
    if (name[0] == 'v') {
        if (name.find("q_") != std::string::npos)
            return true;
        // NEON intrinsics end in an element-type suffix: vmull_s16,
        // vget_low_s16, vaddv_u32, ...
        for (const char *sfx :
             {"_s8", "_u8", "_s16", "_u16", "_s32", "_u32", "_s64",
              "_u64", "_f32", "_f64"})
            if (endsWith(name, sfx))
                return true;
    }
    static const std::set<std::string> safe = {
        // libc / builtins
        "memcpy", "memmove", "memset", "memcmp", "strlen", "strcmp",
        "strncmp", "strchr", "snprintf", "abs", "labs", "llabs",
        // syscall entry points: kernel time, not user-heap time
        "mmap", "munmap", "madvise", "msync", "sysconf", "ftruncate",
        "fsync", "pread", "pwrite", "read", "write", "open", "close",
        "lseek", "fstat",
        // <algorithm>/<utility> via ADL or using
        "min", "max", "clamp", "move", "swap", "forward", "get",
        "exchange", "distance", "advance", "fill", "fill_n", "copy",
        "copy_n", "lower_bound", "upper_bound", "sort", "find",
        // math
        "log", "log2", "exp", "sqrt", "pow", "floor", "ceil",
        "round", "lround", "fabs", "isnan", "isinf", "isfinite",
        // width casts spelled as function-style constructions
        "size_t", "ptrdiff_t", "uintptr_t", "intptr_t", "int8_t",
        "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
        "uint32_t", "uint64_t", "int", "unsigned", "long", "short",
        "char", "bool", "float", "double"};
    return safe.count(name) != 0;
}

/** std:: callees that allocate (effect at the call site). */
bool
stdAllocatingCall(const std::string &name)
{
    static const std::set<std::string> alloc = {
        "to_string", "make_unique", "make_shared", "getline", "stoi",
        "stol", "stoll", "stoul", "stoull", "stod", "stof", "string",
        "vector", "map", "unordered_map", "set", "unordered_set",
        "deque", "list", "function", "stringstream",
        "ostringstream", "istringstream"};
    return alloc.count(name) != 0;
}

bool
isCallKeyword(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if", "for", "while", "switch", "catch", "return", "sizeof",
        "alignof", "alignas", "decltype", "noexcept",
        "static_assert", "throw", "new", "delete", "assert",
        "defined", "case", "goto", "co_return", "co_await",
        "co_yield", "__attribute__"};
    return kw.count(s) != 0;
}

/** Blocking primitives: RAII lock types and blocking member calls. */
bool
isLockIdent(const std::string &s)
{
    static const std::set<std::string> locks = {
        "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
        "condition_variable", "condition_variable_any",
        "pthread_mutex_lock", "LockGuard"};
    return locks.count(s) != 0;
}

std::string
qualifiedNameEndingAt(const std::vector<Token> &toks, std::size_t i)
{
    std::string name = toks[i].text;
    std::size_t j = i;
    while (j >= 2 && toks[j - 1].text == "::"
           && toks[j - 2].kind == Token::Kind::Ident) {
        name = toks[j - 2].text + "::" + name;
        j -= 2;
    }
    return name;
}

/**
 * Collect every function defined in @p ctx into @p nodes: direct
 * effects (allocation, throw, lock) and call sites.
 */
void
indexFile(const FileCtx &ctx, std::vector<FnNode> &nodes)
{
    ScopeTracker scopes(ctx.toks);
    std::vector<std::size_t> open; // node index per open function
    const bool hot = isHotPathFile(ctx.rel);
    for (std::size_t i = 0; i < ctx.toks.size(); ++i) {
        scopes.step(i);
        int depth = scopes.functionDepth();
        while (static_cast<int>(open.size()) > depth)
            open.pop_back();
        if (static_cast<int>(open.size()) < depth) {
            const ScopeTracker::Scope *fn =
                scopes.enclosingFunction();
            FnNode node;
            node.name = fn->name;
            node.outer = fn->outer;
            node.ctx = &ctx;
            node.line = fn->line;
            node.cold = fn->cold;
            node.hot = hot;
            // A hatch on the signature line, or in the comment
            // block above the definition (the return type sits on
            // fn->line - 1 in this repo's style), exempts the whole
            // function.
            node.suppressed =
                allowed(ctx, "hotpath-transitive", fn->line)
                || allowed(ctx, "hotpath-transitive", fn->line - 1);
            nodes.push_back(node);
            open.push_back(nodes.size() - 1);
        }
        if (open.empty())
            continue;
        FnNode &cur = nodes[open.back()];
        const Token &t = ctx.toks[i];
        if (t.kind != Token::Kind::Ident)
            continue;
        auto hatched = [&](int line) {
            return allowed(ctx, "hotpath-alloc", line)
                || allowed(ctx, "hotpath-transitive", line);
        };
        std::string alloc_what = allocationAt(ctx, i);
        if (!alloc_what.empty()) {
            if (!cur.alloc && !hatched(t.line))
                cur.alloc = Effect{alloc_what, t.line};
            continue; // an allocation ident is not also a call site
        }
        if (t.text == "throw") {
            if (!cur.thrw && !hatched(t.line))
                cur.thrw = Effect{"throw", t.line};
            continue;
        }
        bool next_is_call = i + 1 < ctx.toks.size()
            && ctx.toks[i + 1].text == "(";
        bool is_member = i > 0
            && (ctx.toks[i - 1].text == "."
                || ctx.toks[i - 1].text == "->");
        if (isLockIdent(t.text)
            || (is_member && next_is_call
                && (t.text == "lock" || t.text == "wait"))) {
            if (!cur.lock && !hatched(t.line))
                cur.lock = Effect{t.text, t.line};
            continue;
        }
        // A local lambda's body already accrues to this node (its
        // braces are plain blocks inside the function), so a call
        // through the lambda's name adds no new reachability.
        if (i + 2 < ctx.toks.size() && ctx.toks[i + 1].text == "="
            && ctx.toks[i + 2].text == "[")
            cur.lambdas.insert(t.text);
        if (!next_is_call || isCallKeyword(t.text)
            || cur.lambdas.count(t.text))
            continue;
        if (is_member) {
            cur.calls.push_back({t.text, "", t.line, true});
            continue;
        }
        // Declaration heuristic: `Type name(args)` — the preceding
        // ident (or template '>' / '*' / '&') marks token i as a
        // variable name, and direct-initialization runs the type's
        // constructor, which is cold by convention. Skip it.
        if (i > 0) {
            const Token &p = ctx.toks[i - 1];
            bool decl = (p.kind == Token::Kind::Ident
                         && !isCallKeyword(p.text)
                         && p.text != "else" && p.text != "operator")
                || p.text == ">" || p.text == "*" || p.text == "&";
            if (decl)
                continue;
        }
        std::string qual = qualifiedNameEndingAt(ctx.toks, i);
        std::string immediate;
        std::size_t pos = qual.rfind("::");
        if (pos != std::string::npos) {
            std::string head = qual.substr(0, pos);
            std::size_t p2 = head.rfind("::");
            immediate = p2 == std::string::npos
                ? head
                : head.substr(p2 + 2);
        }
        cur.calls.push_back({t.text, immediate, t.line, false});
    }
}

class Reachability
{
  public:
    explicit Reachability(const std::vector<FnNode> &nodes)
        : nodes_(nodes), verdicts_(nodes.size())
    {
        for (std::size_t n = 0; n < nodes.size(); ++n)
            by_name_.emplace(nodes[n].name, n);
    }

    /** Violation chain for node @p n, or "" when it is clean. */
    const std::string &
    verdict(std::size_t n)
    {
        Memo &m = verdicts_[n];
        if (m.state == Memo::State::Done)
            return m.chain;
        if (m.state == Memo::State::InProgress)
            return kClean; // cycle: optimistic, matches fixpoint
        m.state = Memo::State::InProgress;
        m.chain = compute(n);
        m.state = Memo::State::Done;
        return verdicts_[n].chain;
    }

  private:
    struct Memo
    {
        enum class State { Unvisited, InProgress, Done };
        State state = State::Unvisited;
        std::string chain;
    };

    static std::string
    at(const FnNode &n, int line)
    {
        return n.ctx->rel + ":" + std::to_string(line);
    }

    std::string
    compute(std::size_t idx)
    {
        const FnNode &n = nodes_[idx];
        if (n.suppressed)
            return "";
        if (n.alloc)
            return "allocates (" + n.alloc->what + ") at "
                + at(n, n.alloc->line);
        if (n.thrw)
            return "throws at " + at(n, n.thrw->line);
        if (n.lock)
            return "blocks (" + n.lock->what + ") at "
                + at(n, n.lock->line);
        for (const CallSite &c : n.calls) {
            if (c.qual == "std") {
                if (stdAllocatingCall(c.name))
                    return "calls allocating std::" + c.name + " at "
                        + at(n, c.line);
                continue;
            }
            auto [lo, hi] = by_name_.equal_range(c.name);
            if (lo == hi) {
                if (c.member || knownSafeCall(c.name)
                    || looksLikeMacroName(c.name)
                    || allowed(*n.ctx, "hotpath-transitive", c.line))
                    continue;
                if (stdAllocatingCall(c.name))
                    return "calls allocating " + c.name + " at "
                        + at(n, c.line);
                return "calls unresolved '" + c.name + "' at "
                    + at(n, c.line)
                    + " (unknown callees are hot-path findings)";
            }
            if (allowed(*n.ctx, "hotpath-transitive", c.line))
                continue;
            // A member call carries no receiver type, so it resolves
            // only when a single class defines that method name.
            // Ubiquitous accessor names (size, empty, ...) defined
            // by many unrelated classes would otherwise union the
            // whole repo into one graph; they stay boundaries, and
            // their direct effects are caught when the owning class
            // is itself hot.
            std::string owner;
            if (c.member) {
                bool unique = true;
                for (auto it = lo; it != hi && unique; ++it) {
                    const FnNode &cn = nodes_[it->second];
                    if (cn.outer.empty())
                        unique = false; // shadowed by a free fn
                    else if (owner.empty())
                        owner = cn.outer;
                    else if (cn.outer != owner)
                        unique = false;
                }
                if (!unique)
                    continue;
            }
            for (auto it = lo; it != hi; ++it) {
                std::size_t callee = it->second;
                const FnNode &cn = nodes_[callee];
                if (cn.cold)
                    continue;
                if (!c.qual.empty()) {
                    if (cn.outer != c.qual)
                        continue;
                } else if (!c.member && !cn.outer.empty()
                           && cn.outer != n.outer) {
                    // Unqualified non-member call: same-class method
                    // or free function, never another class's.
                    continue;
                }
                const std::string &v = verdict(callee);
                if (!v.empty())
                    return "calls " + c.name + " ("
                        + at(cn, cn.line) + ") which " + v;
            }
        }
        return "";
    }

    const std::vector<FnNode> &nodes_;
    std::vector<Memo> verdicts_;
    std::multimap<std::string, std::size_t> by_name_;
    const std::string kClean;
};

} // namespace

void
ruleHotpathTransitive(const std::vector<FileCtx> &files,
                      std::vector<Finding> &out)
{
    std::vector<FnNode> nodes;
    for (const FileCtx &ctx : files)
        indexFile(ctx, nodes);
    Reachability reach(nodes);
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const FnNode &node = nodes[n];
        if (!node.hot || node.cold || node.suppressed)
            continue;
        const std::string &v = reach.verdict(n);
        if (v.empty())
            continue;
        report(out, *node.ctx, "hotpath-transitive", node.line,
               "hot function '" + node.name + "' " + v
                   + " — the hot path must stay allocation-, throw-, "
                     "and lock-free transitively");
    }
}

} // namespace lint
} // namespace glider
