/**
 * @file
 * atomic-order rule: every std::atomic operation in the concurrency
 * core must name an explicit std::memory_order, and every atomic
 * data member must carry a machine-checked `// glider-mo: <role>`
 * contract comment whose role admits the orders actually used. The
 * role vocabulary is documented in DESIGN.md ("Static analysis").
 */

#ifndef GLIDER_TOOLS_LINT_ATOMIC_ORDER_HH
#define GLIDER_TOOLS_LINT_ATOMIC_ORDER_HH

#include <vector>

#include "lint/lint_core.hh"

namespace glider {
namespace lint {

/**
 * Runs over every scanned file but only inspects the rule's scope
 * (src/serve/, src/common/thread_pool.hh,
 * src/common/cancellation.hh). Global because contracts declared in
 * a header govern operations in other translation units.
 */
void ruleAtomicOrder(const std::vector<FileCtx> &files,
                     std::vector<Finding> &out);

} // namespace lint
} // namespace glider

#endif // GLIDER_TOOLS_LINT_ATOMIC_ORDER_HH
