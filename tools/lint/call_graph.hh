/**
 * @file
 * Cross-TU call-graph analysis for the hotpath-transitive rule: a
 * function index over every scanned file, name-based call
 * resolution (conservative on overloads), and transitive
 * reachability of allocation/throw/lock effects from the hot-path
 * roots. The model and its conservatism rules are documented in
 * DESIGN.md ("Static analysis").
 */

#ifndef GLIDER_TOOLS_LINT_CALL_GRAPH_HH
#define GLIDER_TOOLS_LINT_CALL_GRAPH_HH

#include <vector>

#include "lint/lint_core.hh"

namespace glider {
namespace lint {

/**
 * hotpath-transitive: every non-cold function defined in a hot-path
 * file must reach only allocation-free, throw-free, and lock-free
 * functions through the call graph built over @p files. Reports at
 * most one finding per hot root, naming the offending call chain.
 */
void ruleHotpathTransitive(const std::vector<FileCtx> &files,
                           std::vector<Finding> &out);

} // namespace lint
} // namespace glider

#endif // GLIDER_TOOLS_LINT_CALL_GRAPH_HH
