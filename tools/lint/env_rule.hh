/**
 * @file
 * env-registry rule: src/common/env_registry.{hh,cc} is the single
 * source of truth for GLIDER_* environment knobs. The lint rejects
 * `getenv("GLIDER_…")` anywhere else, rejects string literals that
 * name unregistered GLIDER_* knobs (typo guard), and cross-checks
 * that README.md's knob table lists exactly the registered names.
 */

#ifndef GLIDER_TOOLS_LINT_ENV_RULE_HH
#define GLIDER_TOOLS_LINT_ENV_RULE_HH

#include <string>
#include <vector>

#include "lint/lint_core.hh"

namespace glider {
namespace lint {

/** Per-file pass: getenv bypasses and unregistered knob literals. */
void ruleEnvRegistry(const FileCtx &ctx, std::vector<Finding> &out);

/**
 * README cross-check: the table between the
 * `<!-- glider-env-knobs:begin -->` / `:end` markers must list
 * exactly the registered knob names. Emits at most one summary
 * finding (drift lists every missing/unknown name in one message).
 */
void ruleEnvRegistryReadme(const std::string &readme_rel,
                           const std::string &content,
                           std::vector<Finding> &out);

/** The generated markdown knob table (for --print-env-table). */
std::string envKnobTable();

} // namespace lint
} // namespace glider

#endif // GLIDER_TOOLS_LINT_ENV_RULE_HH
