/**
 * @file
 * Implementation of the lint core: tokenizer, directive parsing
 * (allow hatches, glider-mo contracts), finding plumbing, and the
 * scope tracker.
 *
 * glider-lint: allow-file(json-outside-obs) the tokenizer and the
 * directive tests spell out escaped-quote literals.
 */

#include "lint/lint_core.hh"

#include <cctype>
#include <cstdint>
#include <cstring>
#include <sstream>

namespace glider {
namespace lint {

namespace {

/** True when @p s contains any alphanumeric character. */
bool
hasWords(const std::string &s)
{
    for (char c : s)
        if (std::isalnum(static_cast<unsigned char>(c)))
            return true;
    return false;
}

/**
 * Parse every "allow(a, b)" / "allow-file(a)" out of one comment (a
 * block comment may hold several directives). Rule names that are
 * not plain kebab-case idents are ignored, so prose *describing* the
 * directive syntax never registers a hatch. Directives in a block
 * comment attach to its last line. A directive with no reason text
 * after the closing paren is recorded in bare_allows for the
 * allow-reason rule.
 */
void
parseDirective(const std::string &comment, int first_line,
               int last_line, FileCtx &ctx)
{
    std::size_t at = 0;
    while ((at = comment.find("glider-lint:", at))
           != std::string::npos) {
        at += std::strlen("glider-lint:");
        std::size_t open = comment.find('(', at);
        if (open == std::string::npos)
            return;
        std::size_t kw = comment.find_first_not_of(" \t", at);
        std::string keyword = comment.substr(kw, open - kw);
        bool file_wide = keyword == "allow-file";
        if (!file_wide && keyword != "allow")
            continue;
        std::size_t close = comment.find(')', open);
        if (close == std::string::npos)
            return;
        std::string list = comment.substr(open + 1, close - open - 1);
        std::vector<std::string> names;
        std::stringstream ss(list);
        std::string rule;
        while (std::getline(ss, rule, ',')) {
            rule.erase(0, rule.find_first_not_of(" \t"));
            rule.erase(rule.find_last_not_of(" \t") + 1);
            bool ident = !rule.empty();
            for (char c : rule) {
                if (!std::isalnum(static_cast<unsigned char>(c))
                    && c != '-')
                    ident = false;
            }
            if (!ident)
                continue;
            names.push_back(rule);
            if (file_wide)
                ctx.file_allows.insert(rule);
            else
                ctx.line_allows[last_line].insert(rule);
        }
        // Reason text: everything after ')' up to the next directive
        // (or the end of the comment), ignoring comment furniture.
        std::size_t stop = comment.find("glider-lint:", close);
        std::string reason = comment.substr(
            close + 1,
            (stop == std::string::npos ? comment.size() : stop)
                - (close + 1));
        std::size_t term = reason.find("*/");
        if (term != std::string::npos)
            reason = reason.substr(0, term);
        if (!names.empty() && !hasWords(reason))
            ctx.bare_allows[last_line] = names;
        at = close;
    }
    // glider-mo contract comments attach to the line they appear on.
    at = 0;
    while ((at = comment.find("glider-mo:", at)) != std::string::npos) {
        int line = first_line;
        for (std::size_t k = 0; k < at; ++k)
            if (comment[k] == '\n')
                ++line;
        std::size_t start = at + std::strlen("glider-mo:");
        start = comment.find_first_not_of(" \t", start);
        if (start == std::string::npos)
            return;
        std::size_t end = start;
        while (end < comment.size()
               && !std::isspace(
                   static_cast<unsigned char>(comment[end])))
            ++end;
        ctx.mo_contracts[line] = comment.substr(start, end - start);
        at = end;
    }
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool
looksLikeMacroName(const std::string &name)
{
    bool has_alpha = false;
    for (char c : name) {
        if (std::isupper(static_cast<unsigned char>(c)))
            has_alpha = true;
        else if (c != '_'
                 && !std::isdigit(static_cast<unsigned char>(c)))
            return false;
    }
    return has_alpha;
}

void
tokenize(FileCtx &ctx)
{
    const std::string &s = ctx.content;
    std::size_t i = 0;
    int line = 1;
    auto advance = [&](std::size_t to) {
        for (; i < to && i < s.size(); ++i) {
            if (s[i] == '\n')
                ++line;
        }
    };
    while (i < s.size()) {
        char c = s[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment.
        if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
            std::size_t end = s.find('\n', i);
            if (end == std::string::npos)
                end = s.size();
            parseDirective(s.substr(i, end - i), line, line, ctx);
            i = end;
            continue;
        }
        // Block comment (directives attach to its last line).
        if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
            std::size_t end = s.find("*/", i + 2);
            if (end == std::string::npos)
                end = s.size();
            else
                end += 2;
            std::string body = s.substr(i, end - i);
            int end_line = line;
            for (char b : body) {
                if (b == '\n')
                    ++end_line;
            }
            parseDirective(body, line, end_line, ctx);
            advance(end);
            continue;
        }
        // Preprocessor directive: one token per logical line.
        if (c == '#'
            && (ctx.toks.empty() || ctx.toks.back().line != line)) {
            int start_line = line;
            std::size_t end = i;
            for (;;) {
                std::size_t nl = s.find('\n', end);
                if (nl == std::string::npos) {
                    end = s.size();
                    break;
                }
                // Continuation line: keep consuming.
                std::size_t back = nl;
                while (back > end && (s[back - 1] == '\r'))
                    --back;
                if (back > end && s[back - 1] == '\\') {
                    end = nl + 1;
                    continue;
                }
                end = nl;
                break;
            }
            ctx.toks.push_back(
                {Token::Kind::Pp, s.substr(i, end - i), start_line});
            advance(end);
            continue;
        }
        // Raw string literal (minimal: R"delim(...)delim").
        if (c == 'R' && i + 1 < s.size() && s[i + 1] == '"') {
            std::size_t open = s.find('(', i + 2);
            if (open != std::string::npos) {
                std::string delim = s.substr(i + 2, open - (i + 2));
                std::string closer = ")" + delim + "\"";
                std::size_t end = s.find(closer, open + 1);
                if (end == std::string::npos)
                    end = s.size();
                else
                    end += closer.size();
                ctx.toks.push_back({Token::Kind::String,
                                    s.substr(i, end - i), line});
                advance(end);
                continue;
            }
        }
        if (c == '"' || c == '\'') {
            char quote = c;
            std::size_t j = i + 1;
            while (j < s.size() && s[j] != quote) {
                if (s[j] == '\\')
                    ++j;
                ++j;
            }
            std::size_t end = j < s.size() ? j + 1 : s.size();
            ctx.toks.push_back({quote == '"' ? Token::Kind::String
                                             : Token::Kind::CharLit,
                                s.substr(i + 1, end - i - 2), line});
            advance(end);
            continue;
        }
        if (identChar(c)
            && !std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < s.size() && identChar(s[j]))
                ++j;
            ctx.toks.push_back(
                {Token::Kind::Ident, s.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < s.size()
                   && (identChar(s[j]) || s[j] == '.' || s[j] == '\''))
                ++j;
            ctx.toks.push_back(
                {Token::Kind::Number, s.substr(i, j - i), line});
            i = j;
            continue;
        }
        // Multi-char operators the scope tracker needs as units.
        if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
            ctx.toks.push_back({Token::Kind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
            ctx.toks.push_back({Token::Kind::Punct, "->", line});
            i += 2;
            continue;
        }
        ctx.toks.push_back(
            {Token::Kind::Punct, std::string(1, c), line});
        ++i;
    }
    for (const Token &t : ctx.toks)
        ctx.code_lines.insert(t.line);
}

bool
allowed(const FileCtx &ctx, const std::string &rule, int line)
{
    if (ctx.file_allows.count(rule))
        return true;
    auto hit = [&](int l) {
        auto it = ctx.line_allows.find(l);
        return it != ctx.line_allows.end() && it->second.count(rule);
    };
    if (hit(line))
        return true;
    // A directive in the comment block directly above the offending
    // line covers it: walk up through lines that carry no code
    // tokens (comments, blanks); the first code line breaks the
    // chain so a hatch never leaks past the statement it annotates.
    for (int l = line - 1; l >= 1; --l) {
        if (hit(l))
            return true;
        if (ctx.code_lines.count(l))
            break;
    }
    return false;
}

void
report(std::vector<Finding> &out, const FileCtx &ctx,
       const std::string &rule, int line, std::string msg)
{
    if (allowed(ctx, rule, line))
        return;
    out.push_back({ctx.rel, line, rule, std::move(msg)});
}

bool
isHotPathFile(const std::string &rel)
{
    // The vectorized prediction stack (PCHR feature maintenance, the
    // SoA ISVM table, predictMany, and the SIMD kernels) is as hot as
    // the simulator proper: every LLC access runs through it. The
    // serving layer's ingest ring carries every advice request, so
    // its push/pop path is held to the same no-allocation rule. The
    // gtrace codec sits under every streamed access (the writer's
    // push/flush path and the reader's chunk decode both run per
    // record at billion-access scale), so it is hot too; the
    // AccessSource replay loop lives under src/cachesim/ and is
    // already covered by the directory rule.
    static const std::set<std::string> hot_files = {
        "src/common/simd.hh",
        "src/core/glider_policy.hh",
        "src/core/glider_predictor.hh",
        "src/core/isvm.hh",
        "src/core/pc_history_register.hh",
        "src/serve/mpsc_queue.hh",
        "src/traces/gtrace.cc",
        "src/traces/gtrace.hh",
    };
    return startsWith(rel, "src/cachesim/")
        || startsWith(rel, "src/policies/")
        || startsWith(rel, "src/opt/") || hot_files.count(rel) != 0;
}

std::string
allocationAt(const FileCtx &ctx, std::size_t i)
{
    static const std::set<std::string> alloc_fns = {
        "malloc", "calloc", "realloc", "strdup", "aligned_alloc"};
    static const std::set<std::string> smart_ptr = {"make_unique",
                                                    "make_shared"};
    static const std::set<std::string> growth = {
        "push_back", "emplace_back", "push_front", "emplace_front",
        "resize",    "assign",       "insert",     "emplace",
        "append"};
    const Token &t = ctx.toks[i];
    if (t.kind != Token::Kind::Ident)
        return "";
    auto next_is_call = [&] {
        return i + 1 < ctx.toks.size() && ctx.toks[i + 1].text == "(";
    };
    auto is_member_call = [&] {
        return i > 0
            && (ctx.toks[i - 1].text == "."
                || ctx.toks[i - 1].text == "->")
            && next_is_call();
    };
    if (t.text == "new" && (i == 0 || ctx.toks[i - 1].text != "::"))
        return "operator new";
    if (alloc_fns.count(t.text) && next_is_call())
        return t.text + "()";
    if (smart_ptr.count(t.text))
        return "std::" + t.text;
    if (growth.count(t.text) && is_member_call())
        return "." + t.text + "() container growth";
    return "";
}

// --------------------------------------------------------- scope tracker

void
ScopeTracker::step(std::size_t i)
{
    const Token &t = toks_[i];
    if (t.kind == Token::Kind::Pp)
        return;
    bool structural = innermostIsTypeScope();
    if (structural)
        pendingStep(i);
    if (t.kind == Token::Kind::Punct && t.text == "{") {
        openBrace(i, structural);
        return;
    }
    if (t.kind == Token::Kind::Punct && t.text == "}") {
        if (init_brace_ > 0) {
            --init_brace_;
            return;
        }
        if (!stack_.empty())
            stack_.pop_back();
        return;
    }
}

const ScopeTracker::Scope *
ScopeTracker::enclosingFunction() const
{
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
        if (it->kind == Scope::Kind::Function)
            return &*it;
    }
    return nullptr;
}

const ScopeTracker::Scope *
ScopeTracker::innermost() const
{
    return stack_.empty() ? nullptr : &stack_.back();
}

int
ScopeTracker::functionDepth() const
{
    int depth = 0;
    for (const Scope &s : stack_)
        if (s.kind == Scope::Kind::Function)
            ++depth;
    return depth;
}

std::string
ScopeTracker::functionPath() const
{
    const Scope *fn = enclosingFunction();
    if (fn == nullptr)
        return "";
    std::string path;
    for (const Scope &s : stack_) {
        if (&s == fn)
            break;
        if ((s.kind == Scope::Kind::Namespace
             || s.kind == Scope::Kind::Class)
            && !s.name.empty()) {
            if (!path.empty())
                path += "::";
            path += s.name;
        }
    }
    if (!fn->outer.empty()
        && (path.empty() || !endsWith(path, fn->outer.c_str()))) {
        if (!path.empty())
            path += "::";
        path += fn->outer;
    }
    return path;
}

bool
ScopeTracker::innermostIsTypeScope() const
{
    if (init_brace_ > 0)
        return false;
    if (stack_.empty())
        return true;
    Scope::Kind k = stack_.back().kind;
    return k == Scope::Kind::Namespace || k == Scope::Kind::Class;
}

bool
ScopeTracker::isKeyword(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if",     "for",    "while",   "switch",        "catch",
        "return", "sizeof", "alignof", "static_assert", "decltype",
        "noexcept", "alignas", "__attribute__"};
    return kw.count(s) != 0;
}

std::string
ScopeTracker::qualifiedNameEndingAt(std::size_t i) const
{
    std::string name = toks_[i].text;
    std::size_t j = i;
    // ~Dtor
    if (j > 0 && toks_[j - 1].text == "~")
        name = "~" + name;
    while (j >= 2 && toks_[j - 1].text == "::"
           && toks_[j - 2].kind == Token::Kind::Ident) {
        name = toks_[j - 2].text + "::" + name;
        j -= 2;
    }
    return name;
}

void
ScopeTracker::pendingStep(std::size_t i)
{
    const Token &t = toks_[i];
    switch (pending_) {
      case Pending::None:
        if (t.text == "(" && i > 0) {
            const Token &p = toks_[i - 1];
            // An identifier directly preceded by '(' is an argument
            // of something else — `__attribute__((target("avx2")))`
            // — never a definition's name: real signatures follow a
            // type, '::', '>', '*', '&', or a statement boundary.
            // ALL_CAPS names are unexpandable macro invocations
            // (GLIDER_GUARDED_BY(m_), ...), never definitions.
            bool arg_pos = i >= 2 && toks_[i - 2].text == "(";
            if (p.kind == Token::Kind::Ident && !isKeyword(p.text)
                && !arg_pos && !looksLikeMacroName(p.text)) {
                pending_name_ = qualifiedNameEndingAt(i - 1);
                pending_line_ = p.line;
                pending_ = Pending::InParams;
                paren_depth_ = 1;
            } else if (p.text == "]") {
                // operator[] definition.
                if (i >= 3 && toks_[i - 3].text == "operator") {
                    pending_name_ = "operator[]";
                    pending_line_ = p.line;
                    pending_ = Pending::InParams;
                    paren_depth_ = 1;
                }
            } else if (p.text == "operator") {
                // operator()(params): this '(' is part of the
                // name; the parameter list is scanned by the
                // AfterParams paren-skipping below.
                pending_name_ = "operator()";
                pending_line_ = p.line;
                pending_ = Pending::InParams;
                paren_depth_ = 1;
            }
        }
        break;
      case Pending::InParams:
        if (t.text == "(")
            ++paren_depth_;
        else if (t.text == ")" && --paren_depth_ == 0)
            pending_ = Pending::AfterParams;
        break;
      case Pending::AfterParams:
        if (t.text == "(") {
            ++after_parens_;
        } else if (t.text == ")") {
            if (after_parens_ > 0)
                --after_parens_;
        } else if (after_parens_ == 0) {
            if (t.text == ";" || t.text == "=")
                pending_ = Pending::None;
            else if (t.text == ":")
                pending_ = Pending::CtorInit;
            // "{" handled by openBrace(); other tokens (const,
            // noexcept, override, ->, type names) keep waiting.
        }
        break;
      case Pending::CtorInit:
        if (t.text == "(")
            ++init_paren_;
        else if (t.text == ")" && init_paren_ > 0)
            --init_paren_;
        // Braces are resolved in openBrace()/step("}").
        break;
    }
}

void
ScopeTracker::openBrace(std::size_t i, bool structural)
{
    if (!structural) {
        if (init_brace_ > 0)
            ++init_brace_;
        else
            stack_.push_back({Scope::Kind::Block, "", false, "", 0});
        return;
    }
    if (pending_ == Pending::AfterParams && after_parens_ == 0) {
        pushFunction();
        return;
    }
    if (pending_ == Pending::CtorInit && init_paren_ == 0) {
        // `Member{...}` brace-init vs the constructor body: the
        // body brace follows ')', '}' or the init-list comma
        // context; a brace directly after an identifier or
        // template-close is a member initializer.
        const std::string &p = i > 0 ? toks_[i - 1].text : "";
        bool member_init = i > 0
            && (toks_[i - 1].kind == Token::Kind::Ident || p == ">");
        if (member_init) {
            ++init_brace_;
            return;
        }
        pushFunction();
        return;
    }
    // Not a function body: namespace / class / aggregate.
    classifyTypeBrace(i);
}

void
ScopeTracker::pushFunction()
{
    std::string last = pending_name_;
    std::string outer;
    std::size_t pos = last.rfind("::");
    if (pos != std::string::npos) {
        outer = last.substr(0, pos);
        std::size_t p2 = outer.rfind("::");
        if (p2 != std::string::npos)
            outer = outer.substr(p2 + 2);
        last = last.substr(pos + 2);
    } else if (!stack_.empty()
               && stack_.back().kind == Scope::Kind::Class) {
        outer = stack_.back().name;
    }
    static const std::set<std::string> cold_names = {
        "reset", "exportMetrics", "clearStats", "clearStatsCounters",
        "clearCounters"};
    bool cold = cold_names.count(last) != 0 || last == outer
        || (!last.empty() && last[0] == '~');
    stack_.push_back(
        {Scope::Kind::Function, last, cold, outer, pending_line_});
    pending_ = Pending::None;
    after_parens_ = 0;
    init_paren_ = 0;
}

void
ScopeTracker::classifyTypeBrace(std::size_t i)
{
    // Scan back to the previous structural boundary.
    std::size_t j = i;
    std::size_t limit = i > 64 ? i - 64 : 0;
    std::size_t type_kw = SIZE_MAX;
    bool saw_paren = false;
    bool saw_namespace = false;
    int pdepth = 0;
    while (j > limit) {
        --j;
        const std::string &x = toks_[j].text;
        if (x == ";" || x == "}" || x == "{")
            break;
        if (x == ")") {
            ++pdepth;
            continue;
        }
        if (x == "(") {
            if (pdepth > 0)
                --pdepth;
            // A paren group that is an ALL_CAPS macro invocation —
            // `class GLIDER_CAPABILITY("mutex") Mutex {` — is an
            // attribute, not a signature; it must not veto the
            // class-scope classification below.
            bool macro = pdepth == 0 && j > 0
                && toks_[j - 1].kind == Token::Kind::Ident
                && looksLikeMacroName(toks_[j - 1].text);
            if (!macro)
                saw_paren = true;
            continue;
        }
        if (toks_[j].kind == Token::Kind::Ident) {
            if (x == "namespace") {
                saw_namespace = true;
                type_kw = j;
                break;
            }
            if (x == "class" || x == "struct" || x == "union"
                || x == "enum") {
                type_kw = j;
            }
        }
    }
    if (saw_namespace) {
        std::string name;
        if (type_kw + 1 < i
            && toks_[type_kw + 1].kind == Token::Kind::Ident)
            name = toks_[type_kw + 1].text;
        stack_.push_back({Scope::Kind::Namespace, name, false, "", 0});
        return;
    }
    if (type_kw != SIZE_MAX && !saw_paren) {
        std::size_t n = type_kw + 1;
        while (n < i
               && (toks_[n].text == "class"
                   || toks_[n].text == "struct"
                   || toks_[n].kind != Token::Kind::Ident
                   || looksLikeMacroName(toks_[n].text)))
            ++n;
        std::string name = n < i
                && toks_[n].kind == Token::Kind::Ident
            ? toks_[n].text
            : "";
        stack_.push_back({Scope::Kind::Class, name, false, "", 0});
        return;
    }
    // Aggregate initializer or unrecognized: treat as a block so
    // brace matching stays balanced.
    stack_.push_back({Scope::Kind::Block, "", false, "", 0});
}

// ------------------------------------------------------------ allow rule

void
ruleAllowReason(const FileCtx &ctx, std::vector<Finding> &out)
{
    // The offending directive is itself the hatch, so this rule
    // bypasses allowed(): the only way to silence it is to write the
    // reason.
    for (const auto &[line, rules] : ctx.bare_allows) {
        std::string list;
        for (const std::string &r : rules) {
            if (!list.empty())
                list += ", ";
            list += r;
        }
        out.push_back(
            {ctx.rel, line, "allow-reason",
             "escape hatch allow(" + list
                 + ") has no reason — every hatch must say why the "
                   "exemption is sound"});
    }
}

} // namespace lint
} // namespace glider
