/**
 * @file
 * atomic-order: explicit memory_order on every atomic operation in
 * the concurrency core, plus machine-checked `// glider-mo: <role>`
 * contracts on atomic data members. Two phases:
 *
 *  A. Walk class bodies in the in-scope files and collect every
 *     `std::atomic<...>` / `std::atomic_flag` data member. Each must
 *     carry a glider-mo contract comment (trailing, or on the line
 *     above) naming a role from the vocabulary below.
 *  B. Walk every in-scope file's uses: explicit member operations
 *     (.load, .store, .fetch_add, ...) must pass at least one
 *     std::memory_order argument, and every order passed must be in
 *     the role's admissible set. Bare uses of a contracted member
 *     inside its own class's methods (`stop_ = true`, `++ctr_`,
 *     `while (!stop_)`) route through the implicit seq_cst
 *     operators and are findings too.
 *
 * Role vocabulary (DESIGN.md "Static analysis"):
 *   counter-relaxed  monotonic statistic, never synchronizes-with
 *   flag-relaxed     poll-only flag, no data published under it
 *   publish          release-store / acquire-load handoff of data
 *   seqlock          sequence word of a seqlock (acq/rel + relaxed)
 *   gate-seqcst      flag needing a total order across threads
 */

#include "lint/atomic_order.hh"

#include <cstddef>
#include <map>

namespace glider {
namespace lint {

namespace {

struct Member
{
    std::string name;
    std::string cls;  //!< owning class
    std::string role; //!< "" when the contract is missing/unknown
};

const std::map<std::string, std::set<std::string>> &
roleVocabulary()
{
    static const std::map<std::string, std::set<std::string>> roles =
        {{"counter-relaxed", {"relaxed"}},
         {"flag-relaxed", {"relaxed"}},
         {"publish",
          {"relaxed", "acquire", "release", "acq_rel", "consume"}},
         {"seqlock", {"relaxed", "acquire", "release", "acq_rel"}},
         {"gate-seqcst", {"seq_cst", "relaxed"}}};
    return roles;
}

bool
inScope(const std::string &rel)
{
    return startsWith(rel, "src/serve/")
        || rel == "src/common/thread_pool.hh"
        || rel == "src/common/cancellation.hh";
}

bool
isAtomicOp(const std::string &s)
{
    static const std::set<std::string> ops = {
        "load", "store", "exchange", "fetch_add", "fetch_sub",
        "fetch_and", "fetch_or", "fetch_xor",
        "compare_exchange_weak", "compare_exchange_strong",
        "test_and_set", "clear"};
    return ops.count(s) != 0;
}

/** Orders named in the balanced parens opening at @p open. */
std::vector<std::string>
ordersInArgs(const FileCtx &ctx, std::size_t open)
{
    std::vector<std::string> orders;
    int depth = 0;
    for (std::size_t j = open; j < ctx.toks.size(); ++j) {
        const Token &t = ctx.toks[j];
        if (t.text == "(")
            ++depth;
        else if (t.text == ")" && --depth == 0)
            break;
        if (t.kind != Token::Kind::Ident)
            continue;
        if (startsWith(t.text, "memory_order_"))
            orders.push_back(t.text.substr(13));
        else if (t.text == "memory_order" && j + 2 < ctx.toks.size()
                 && ctx.toks[j + 1].text == "::"
                 && ctx.toks[j + 2].kind == Token::Kind::Ident)
            orders.push_back(ctx.toks[j + 2].text);
    }
    return orders;
}

std::string
joinRoles()
{
    std::string out;
    for (const auto &kv : roleVocabulary()) {
        if (!out.empty())
            out += ", ";
        out += kv.first;
    }
    return out;
}

/**
 * Contract on the member's own lines, or in the comment block
 * directly above the declaration (the walk stops at the first line
 * carrying code, so a contract never leaks past one member).
 */
std::string
contractNear(const FileCtx &ctx, int name_line, int decl_line)
{
    auto at = [&](int line) -> const std::string * {
        auto it = ctx.mo_contracts.find(line);
        return it != ctx.mo_contracts.end() ? &it->second : nullptr;
    };
    for (int line : {name_line, decl_line})
        if (const std::string *r = at(line))
            return *r;
    for (int l = decl_line - 1; l >= 1; --l) {
        if (const std::string *r = at(l))
            return *r;
        if (ctx.code_lines.count(l))
            break;
    }
    return "";
}

/** Phase A: collect contracted atomic members of @p ctx. */
void
collectMembers(const FileCtx &ctx,
               std::map<std::string, Member> &members,
               std::vector<Finding> &out)
{
    ScopeTracker scopes(ctx.toks);
    int paren = 0; // parameter lists at class scope are not members
    for (std::size_t i = 0; i < ctx.toks.size(); ++i) {
        scopes.step(i);
        const Token &t = ctx.toks[i];
        if (t.text == "(")
            ++paren;
        else if (t.text == ")" && paren > 0)
            --paren;
        if (paren > 0 || t.kind != Token::Kind::Ident
            || (t.text != "atomic" && t.text != "atomic_flag"))
            continue;
        const ScopeTracker::Scope *in = scopes.innermost();
        if (in == nullptr
            || in->kind != ScopeTracker::Scope::Kind::Class)
            continue;
        // `using X = std::atomic<...>` is a type alias, not a member.
        std::size_t head = i;
        if (head >= 2 && ctx.toks[head - 1].text == "::"
            && ctx.toks[head - 2].text == "std")
            head -= 2;
        if (head > 0 && ctx.toks[head - 1].text == "=")
            continue;
        std::size_t j = i + 1;
        if (j < ctx.toks.size() && ctx.toks[j].text == "<") {
            int angle = 0;
            for (; j < ctx.toks.size(); ++j) {
                if (ctx.toks[j].text == "<")
                    ++angle;
                else if (ctx.toks[j].text == ">" && --angle == 0) {
                    ++j;
                    break;
                }
            }
        }
        std::string name;
        int name_line = t.line;
        std::string stop;
        for (; j < ctx.toks.size(); ++j) {
            const std::string &s = ctx.toks[j].text;
            if (s == ";" || s == "=" || s == "{" || s == "(") {
                stop = s;
                break;
            }
            if (ctx.toks[j].kind == Token::Kind::Ident) {
                name = s;
                name_line = ctx.toks[j].line;
            }
        }
        if (name.empty() || stop == "(") // member function decl
            continue;
        std::string role = contractNear(ctx, name_line, t.line);
        if (role.empty()) {
            report(out, ctx, "atomic-order", name_line,
                   "atomic member '" + name
                       + "' has no '// glider-mo: <role>' contract "
                         "comment (roles: "
                       + joinRoles() + ")");
        } else if (roleVocabulary().count(role) == 0) {
            report(out, ctx, "atomic-order", name_line,
                   "glider-mo role '" + role + "' on '" + name
                       + "' is not in the contract vocabulary ("
                       + joinRoles() + ")");
            role.clear();
        }
        members.emplace(name,
                        Member{name, in->name, role});
    }
}

/** Phase B: check every use in @p ctx against the contract table. */
void
checkUses(const FileCtx &ctx,
          const std::map<std::string, Member> &members,
          std::vector<Finding> &out)
{
    ScopeTracker scopes(ctx.toks);
    for (std::size_t i = 0; i < ctx.toks.size(); ++i) {
        scopes.step(i);
        const Token &t = ctx.toks[i];
        if (t.kind != Token::Kind::Ident)
            continue;

        // Explicit member operation: recv . op ( ... )
        if (isAtomicOp(t.text) && i >= 2 && i + 1 < ctx.toks.size()
            && ctx.toks[i + 1].text == "("
            && (ctx.toks[i - 1].text == "."
                || ctx.toks[i - 1].text == "->")) {
            // Receiver: the ident before '.'/'->', skipping one
            // balanced subscript (done_ptr_[j]->fetch_add).
            std::size_t r = i - 2;
            if (ctx.toks[r].text == "]") {
                int depth = 0;
                while (r > 0) {
                    if (ctx.toks[r].text == "]")
                        ++depth;
                    else if (ctx.toks[r].text == "["
                             && --depth == 0)
                        break;
                    --r;
                }
                if (r == 0)
                    continue;
                --r;
            }
            if (ctx.toks[r].kind != Token::Kind::Ident)
                continue;
            auto mi = members.find(ctx.toks[r].text);
            if (mi == members.end())
                continue;
            const Member &m = mi->second;
            std::vector<std::string> orders =
                ordersInArgs(ctx, i + 1);
            if (orders.empty()) {
                report(out, ctx, "atomic-order", t.line,
                       "'" + m.name + "." + t.text
                           + "()' has no explicit std::memory_order "
                             "argument (implicit seq_cst)");
                continue;
            }
            if (m.role.empty())
                continue;
            const std::set<std::string> &ok =
                roleVocabulary().at(m.role);
            for (const std::string &o : orders) {
                if (ok.count(o) == 0)
                    report(out, ctx, "atomic-order", t.line,
                           "memory_order_" + o + " on '" + m.name
                               + "' violates its glider-mo contract "
                                 "'"
                               + m.role + "'");
            }
            continue;
        }

        // Bare use of a contracted member inside its own class's
        // methods: routes through the implicit seq_cst operators.
        auto mi = members.find(t.text);
        if (mi == members.end())
            continue;
        const ScopeTracker::Scope *fn = scopes.enclosingFunction();
        if (fn == nullptr || fn->outer != mi->second.cls)
            continue;
        const std::string &nxt =
            i + 1 < ctx.toks.size() ? ctx.toks[i + 1].text : "";
        const std::string &nxt2 =
            i + 2 < ctx.toks.size() ? ctx.toks[i + 2].text : "";
        const Token *prev = i > 0 ? &ctx.toks[i - 1] : nullptr;
        if (nxt == "." || nxt == "->" || nxt == "(" || nxt == "{"
            || nxt == "[")
            continue; // declaration, init, or explicit member op
        if (prev != nullptr
            && (prev->text == "." || prev->text == "->"
                || prev->text == "::" || prev->text == "&"
                || prev->text == ">"
                || prev->kind == Token::Kind::Ident))
            continue; // other object's member, address-of, or decl
        const std::string &name = mi->second.name;
        if (nxt == "=" && nxt2 != "=") {
            report(out, ctx, "atomic-order", t.line,
                   "'" + name
                       + " = ...' stores through the implicit "
                         "seq_cst operator=; use .store() with an "
                         "explicit order");
        } else if ((nxt == "+" && nxt2 == "+")
                   || (nxt == "-" && nxt2 == "-")
                   || (prev != nullptr && i >= 2
                       && ((prev->text == "+"
                            && ctx.toks[i - 2].text == "+")
                           || (prev->text == "-"
                               && ctx.toks[i - 2].text == "-")))
                   || ((nxt == "+" || nxt == "-" || nxt == "|"
                        || nxt == "&" || nxt == "^")
                       && nxt2 == "=")) {
            report(out, ctx, "atomic-order", t.line,
                   "'" + name
                       + "' read-modify-write through an implicit "
                         "seq_cst operator; use fetch_add/fetch_sub "
                         "with an explicit order");
        } else {
            report(out, ctx, "atomic-order", t.line,
                   "'" + name
                       + "' read through the implicit seq_cst "
                         "conversion; use .load() with an explicit "
                         "order");
        }
    }
}

} // namespace

void
ruleAtomicOrder(const std::vector<FileCtx> &files,
                std::vector<Finding> &out)
{
    std::map<std::string, Member> members;
    for (const FileCtx &ctx : files)
        if (inScope(ctx.rel))
            collectMembers(ctx, members, out);
    for (const FileCtx &ctx : files)
        if (inScope(ctx.rel))
            checkUses(ctx, members, out);
}

} // namespace lint
} // namespace glider
