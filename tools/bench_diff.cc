/**
 * @file
 * CLI perf-regression gate over two BENCH_*.json artifacts.
 *
 *   bench_diff [--tolerance F] [--allow-missing] BASELINE CURRENT
 *
 * Prints a per-metric delta table and exits 0 when every gated
 * metric is within tolerance, 1 on a regression (or a gated metric
 * missing from the current run), 2 on usage/IO/schema errors.
 * Per-metric "tolerance" fields in the baseline override the global
 * --tolerance (default 10%); "info" metrics are reported only.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_diff.hh"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: bench_diff [--tolerance F] [--allow-missing] "
                 "BASELINE.json CURRENT.json\n");
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace glider;

    obs::DiffOptions opts;
    std::string paths[2];
    int npaths = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0) {
            if (++i >= argc)
                return usage();
            char *end = nullptr;
            opts.default_tolerance = std::strtod(argv[i], &end);
            if (end == argv[i] || opts.default_tolerance < 0.0)
                return usage();
        } else if (std::strcmp(argv[i], "--allow-missing") == 0) {
            opts.fail_on_missing = false;
        } else if (argv[i][0] == '-') {
            return usage();
        } else if (npaths < 2) {
            paths[npaths++] = argv[i];
        } else {
            return usage();
        }
    }
    if (npaths != 2)
        return usage();

    std::string base_text, cur_text;
    if (!readFile(paths[0], base_text)) {
        std::fprintf(stderr, "bench_diff: cannot read %s\n",
                     paths[0].c_str());
        return 2;
    }
    if (!readFile(paths[1], cur_text)) {
        std::fprintf(stderr, "bench_diff: cannot read %s\n",
                     paths[1].c_str());
        return 2;
    }

    try {
        obs::json::Value baseline = obs::json::Value::parse(base_text);
        obs::json::Value current = obs::json::Value::parse(cur_text);
        obs::DiffResult result =
            obs::diffReports(baseline, current, opts);
        std::printf("bench_diff: %s vs %s\n%s", paths[0].c_str(),
                    paths[1].c_str(),
                    obs::formatDiff(result).c_str());
        return result.pass ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_diff: %s\n", e.what());
        return 2;
    }
}
