/**
 * @file
 * glider_lint: repo-specific static analysis for the Glider codebase.
 *
 * The perf harness (PR 1), the invariant layer (PR 2), and the
 * metrics gate (PR 3) all enforce their rules at *runtime*. This tool
 * turns the implicit repo conventions those layers rely on into
 * compile-time-adjacent checks that run in seconds, with no libclang
 * dependency: a light C++ tokenizer plus a scope tracker good enough
 * for this codebase's style (tools/lint/lint_core.*).
 *
 * Per-file rules (ids as printed and as accepted by allow()):
 *
 *   hotpath-alloc   No heap allocation or container growth inside hot
 *                   functions of the simulator hot-path directories
 *                   (src/cachesim, src/policies, src/opt). Functions
 *                   named reset, exportMetrics, clearStats,
 *                   clearStatsCounters or clearCounters, plus
 *                   constructors and destructors, are cold.
 *   json-outside-obs
 *                   No hand-rolled JSON: string/char literals with
 *                   embedded quotes outside src/obs (obs::json is the
 *                   one serializer in the repo).
 *   bench-report    Every bench .cc binary must emit a machine-
 *                   readable artifact via bench::makeReport or
 *                   obs::BenchReport.
 *   unseeded-rng    No std::rand/random_device/mt19937/...; all
 *                   randomness flows through common/rng.hh's
 *                   explicitly seeded Rng.
 *   header-guard    .hh files carry the canonical include guard
 *                   derived from their path (mechanical; --fix).
 *   include-hygiene No parent-relative ("../") includes, no bits/
 *                   internals, no using-namespace in headers.
 *   whitespace      No trailing whitespace, no tabs, files end with
 *                   exactly one newline (mechanical; --fix).
 *   allow-reason    Every allow()/allow-file() escape hatch carries
 *                   trailing prose saying why the exemption is sound.
 *   env-registry    getenv("GLIDER_*") only inside the env-knob
 *                   registry; GLIDER_* string literals must name
 *                   registered knobs; README's knob table must match
 *                   the registry exactly (tools/lint/env_rule.*).
 *
 * Whole-tree rules (run over every scanned file at once):
 *
 *   hotpath-transitive
 *                   Cross-TU call-graph reachability: every hot-path
 *                   function must reach only allocation-free,
 *                   throw-free, lock-free functions
 *                   (tools/lint/call_graph.*).
 *   atomic-order    Explicit std::memory_order on every atomic op in
 *                   src/serve/ + the thread-pool/cancellation
 *                   headers, and machine-checked `// glider-mo:`
 *                   contracts on atomic members
 *                   (tools/lint/atomic_order.*).
 *
 * Escape hatches, checked per finding:
 *   // glider-lint: allow(rule-id[, rule-id...]) <reason>
 *     on the offending line or the line directly above it.
 *   // glider-lint: allow-file(rule-id) <reason>
 *     anywhere in the file disables the rule for the whole file.
 *
 * Usage:
 *   glider_lint [--root DIR] [--rule ID]... [--treat-as RELPATH]
 *               [--readme PATH] [--fix | --diff] [--list-rules]
 *               [--print-env-table] [PATH...]
 * With no PATH arguments the default tree (src bench tools tests
 * examples under --root) is scanned; build trees and the lint
 * fixture corpus under tests/lint/fixtures are always skipped.
 * Exit status: 0 clean, 1 findings, 2 usage/IO.
 *
 * glider-lint: allow-file(json-outside-obs) the linter's own rule
 * implementations and raw-string handling spell out escaped-quote
 * literals.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/atomic_order.hh"
#include "lint/call_graph.hh"
#include "lint/env_rule.hh"
#include "lint/lint_core.hh"

namespace fs = std::filesystem;

namespace glider {
namespace lint {
namespace {

// ----------------------------------------------------- per-file rules

void
ruleHotpathAlloc(const FileCtx &ctx, std::vector<Finding> &out)
{
    if (!isHotPathFile(ctx.rel))
        return;
    ScopeTracker scopes(ctx.toks);
    for (std::size_t i = 0; i < ctx.toks.size(); ++i) {
        scopes.step(i);
        const ScopeTracker::Scope *fn = scopes.enclosingFunction();
        if (!fn || fn->cold)
            continue;
        std::string what = allocationAt(ctx, i);
        if (what.empty())
            continue;
        report(out, ctx, "hotpath-alloc", ctx.toks[i].line,
               what + " in hot function '" + fn->name
                   + "' — the simulator access/victim path must not "
                     "allocate (reserve in reset() or annotate)");
    }
}

void
ruleJsonOutsideObs(const FileCtx &ctx, std::vector<Finding> &out)
{
    if (startsWith(ctx.rel, "src/obs/"))
        return;
    for (const Token &t : ctx.toks) {
        if (t.kind == Token::Kind::String) {
            if (t.text.find("\\\"") != std::string::npos) {
                report(out, ctx, "json-outside-obs", t.line,
                       "string literal with embedded quotes — build "
                       "machine-readable output with obs::json, not "
                       "by hand");
            }
        } else if (t.kind == Token::Kind::CharLit
                   && t.text == "\\\"") {
            report(out, ctx, "json-outside-obs", t.line,
                   "quote character literal printed directly — use "
                   "obs::json for quoted output");
        }
    }
}

void
ruleBenchReport(const FileCtx &ctx, std::vector<Finding> &out)
{
    if (!startsWith(ctx.rel, "bench/") || !endsWith(ctx.rel, ".cc"))
        return;
    int main_line = 0;
    bool has_report = false;
    for (const Token &t : ctx.toks) {
        if (t.kind != Token::Kind::Ident)
            continue;
        if (t.text == "main" && main_line == 0)
            main_line = t.line;
        if (t.text == "makeReport" || t.text == "BenchReport")
            has_report = true;
    }
    if (main_line != 0 && !has_report) {
        report(out, ctx, "bench-report", main_line,
               "bench binary never builds a BenchReport — every "
               "harness must emit BENCH_<name>.json via "
               "bench::makeReport");
    }
}

void
ruleUnseededRng(const FileCtx &ctx, std::vector<Finding> &out)
{
    if (ctx.rel == "src/common/rng.hh")
        return;
    static const std::set<std::string> banned = {
        "rand",          "srand",        "rand_r",
        "drand48",       "lrand48",      "mrand48",
        "random_device", "mt19937",      "mt19937_64",
        "minstd_rand",   "minstd_rand0", "default_random_engine",
        "knuth_b",       "ranlux24",     "ranlux48",
        "random_shuffle"};
    for (const Token &t : ctx.toks) {
        if (t.kind == Token::Kind::Ident && banned.count(t.text)) {
            report(out, ctx, "unseeded-rng", t.line,
                   "'" + t.text
                       + "' — all randomness must flow through the "
                         "explicitly seeded glider::Rng "
                         "(common/rng.hh) for reproducibility");
        }
    }
}

/** Canonical guard name for a header path. */
std::string
expectedGuard(std::string rel)
{
    if (startsWith(rel, "src/"))
        rel = rel.substr(4);
    std::string g = "GLIDER_";
    for (char c : rel) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            g += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            g += '_';
    }
    return g;
}

/** The three guard directives of a header, if present. */
struct GuardLines
{
    int ifndef_line = 0, define_line = 0, endif_line = 0;
    std::string ifndef_text, define_text, endif_text;
};

GuardLines
findGuard(const FileCtx &ctx)
{
    GuardLines g;
    for (const Token &t : ctx.toks) {
        if (t.kind != Token::Kind::Pp)
            continue;
        if (g.ifndef_line == 0 && startsWith(t.text, "#ifndef")) {
            g.ifndef_line = t.line;
            g.ifndef_text = t.text;
        } else if (g.ifndef_line != 0 && g.define_line == 0
                   && startsWith(t.text, "#define")) {
            g.define_line = t.line;
            g.define_text = t.text;
        }
        if (startsWith(t.text, "#endif")) {
            g.endif_line = t.line; // last one wins
            g.endif_text = t.text;
        }
    }
    return g;
}

void
ruleHeaderGuard(const FileCtx &ctx, std::vector<Finding> &out)
{
    if (!endsWith(ctx.rel, ".hh") && !endsWith(ctx.rel, ".h"))
        return;
    std::string want = expectedGuard(ctx.rel);
    GuardLines g = findGuard(ctx);
    if (g.ifndef_line == 0 || g.define_line == 0
        || g.endif_line == 0) {
        report(out, ctx, "header-guard", 1,
               "missing include guard; expected #ifndef " + want);
        return;
    }
    auto second_word = [](const std::string &s) {
        std::stringstream ss(s);
        std::string a, b;
        ss >> a >> b;
        return b;
    };
    if (second_word(g.ifndef_text) != want
        || second_word(g.define_text) != want) {
        report(out, ctx, "header-guard", g.ifndef_line,
               "include guard is '" + second_word(g.ifndef_text)
                   + "', expected '" + want
                   + "' (derived from path)");
    } else if (g.endif_text.find("// " + want)
               == std::string::npos) {
        report(out, ctx, "header-guard", g.endif_line,
               "closing #endif should carry the guard comment '// "
                   + want + "'");
    }
}

/** Mechanical fix for header-guard: returns fixed content or none. */
std::optional<std::string>
fixHeaderGuard(const FileCtx &ctx)
{
    if (!endsWith(ctx.rel, ".hh") && !endsWith(ctx.rel, ".h"))
        return std::nullopt;
    std::string want = expectedGuard(ctx.rel);
    GuardLines g = findGuard(ctx);
    if (g.ifndef_line == 0 || g.define_line == 0
        || g.endif_line == 0)
        return std::nullopt; // structural surgery is not mechanical
    std::vector<std::string> lines = ctx.lines;
    auto set_line = [&](int ln, const std::string &text) {
        if (ln >= 1 && ln <= static_cast<int>(lines.size()))
            lines[static_cast<std::size_t>(ln - 1)] = text;
    };
    set_line(g.ifndef_line, "#ifndef " + want);
    set_line(g.define_line, "#define " + want);
    set_line(g.endif_line, "#endif // " + want);
    std::string fixed;
    for (const auto &l : lines)
        fixed += l + "\n";
    return fixed;
}

void
ruleIncludeHygiene(const FileCtx &ctx, std::vector<Finding> &out)
{
    bool is_header =
        endsWith(ctx.rel, ".hh") || endsWith(ctx.rel, ".h");
    for (std::size_t i = 0; i < ctx.toks.size(); ++i) {
        const Token &t = ctx.toks[i];
        if (t.kind == Token::Kind::Pp
            && startsWith(t.text, "#include")) {
            if (t.text.find("\"..") != std::string::npos) {
                report(out, ctx, "include-hygiene", t.line,
                       "parent-relative #include — include repo-"
                       "root-relative paths (target include dirs "
                       "cover src/)");
            }
            if (t.text.find("<bits/") != std::string::npos) {
                report(out, ctx, "include-hygiene", t.line,
                       "#include <bits/...> is libstdc++-internal "
                       "and non-portable");
            }
        }
        if (is_header && t.kind == Token::Kind::Ident
            && t.text == "using" && i + 1 < ctx.toks.size()
            && ctx.toks[i + 1].text == "namespace") {
            report(out, ctx, "include-hygiene", t.line,
                   "using-namespace in a header leaks into every "
                   "includer");
        }
    }
}

void
ruleWhitespace(const FileCtx &ctx, std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
        const std::string &l = ctx.lines[i];
        int line = static_cast<int>(i) + 1;
        if (!l.empty()
            && (l.back() == ' ' || l.back() == '\t'
                || l.back() == '\r')) {
            report(out, ctx, "whitespace", line,
                   "trailing whitespace");
        }
        if (l.find('\t') != std::string::npos)
            report(out, ctx, "whitespace", line,
                   "tab character (the tree is space-indented)");
    }
    if (!ctx.content.empty() && ctx.content.back() != '\n')
        report(out, ctx, "whitespace",
               static_cast<int>(ctx.lines.size()),
               "file does not end with a newline");
    if (ctx.content.size() >= 2
        && ctx.content[ctx.content.size() - 1] == '\n'
        && ctx.content[ctx.content.size() - 2] == '\n')
        report(out, ctx, "whitespace",
               static_cast<int>(ctx.lines.size()),
               "multiple trailing newlines");
}

std::optional<std::string>
fixWhitespace(const FileCtx &ctx)
{
    std::string fixed;
    for (const std::string &raw : ctx.lines) {
        std::string l = raw;
        std::size_t end = l.find_last_not_of(" \t\r");
        l = end == std::string::npos ? "" : l.substr(0, end + 1);
        // Tabs inside the line become four spaces (alignment is the
        // author's problem; the rule keeps tabs out of the tree).
        std::string detabbed;
        for (char c : l) {
            if (c == '\t')
                detabbed += "    ";
            else
                detabbed += c;
        }
        fixed += detabbed + "\n";
    }
    while (fixed.size() >= 2 && fixed[fixed.size() - 1] == '\n'
           && fixed[fixed.size() - 2] == '\n')
        fixed.pop_back();
    if (fixed == ctx.content)
        return std::nullopt;
    return fixed;
}

// -------------------------------------------------------------- driver

const std::vector<std::string> kAllRules = {
    "hotpath-alloc",   "hotpath-transitive", "atomic-order",
    "env-registry",    "allow-reason",       "json-outside-obs",
    "bench-report",    "unseeded-rng",       "header-guard",
    "include-hygiene", "whitespace"};

struct Options
{
    fs::path root = fs::current_path();
    std::set<std::string> rules; //!< empty = all
    std::vector<std::string> paths;
    std::string treat_as; //!< lint single files under this rel path
    std::string readme;   //!< override README.md for env-registry
    bool fix = false;
    bool diff = false;
};

bool
ruleEnabled(const Options &opt, const std::string &rule)
{
    return opt.rules.empty() || opt.rules.count(rule) != 0;
}

void
runPerFileRules(const Options &opt, const FileCtx &ctx,
                std::vector<Finding> &out)
{
    if (ruleEnabled(opt, "hotpath-alloc"))
        ruleHotpathAlloc(ctx, out);
    if (ruleEnabled(opt, "json-outside-obs"))
        ruleJsonOutsideObs(ctx, out);
    if (ruleEnabled(opt, "bench-report"))
        ruleBenchReport(ctx, out);
    if (ruleEnabled(opt, "unseeded-rng"))
        ruleUnseededRng(ctx, out);
    if (ruleEnabled(opt, "header-guard"))
        ruleHeaderGuard(ctx, out);
    if (ruleEnabled(opt, "include-hygiene"))
        ruleIncludeHygiene(ctx, out);
    if (ruleEnabled(opt, "whitespace"))
        ruleWhitespace(ctx, out);
    if (ruleEnabled(opt, "allow-reason"))
        ruleAllowReason(ctx, out);
    if (ruleEnabled(opt, "env-registry"))
        ruleEnvRegistry(ctx, out);
}

/** Line-based diff between @p before and @p after (minimal hunks). */
void
printDiff(const std::string &rel, const std::string &before,
          const std::string &after)
{
    auto split = [](const std::string &s) {
        std::vector<std::string> lines;
        std::stringstream ss(s);
        std::string l;
        while (std::getline(ss, l))
            lines.push_back(l);
        return lines;
    };
    std::vector<std::string> a = split(before), b = split(after);
    std::printf("--- a/%s\n+++ b/%s\n", rel.c_str(), rel.c_str());
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        if (i < a.size() && j < b.size() && a[i] == b[j]) {
            ++i;
            ++j;
            continue;
        }
        // Emit one minimal replace/delete/insert hunk: scan forward
        // for the next resync point.
        std::size_t ri = i, rj = j;
        bool synced = false;
        for (std::size_t look = 1; look < 50 && !synced; ++look) {
            if (i + look <= a.size() && j + look <= b.size()) {
                for (std::size_t di = 0; di <= look && !synced;
                     ++di) {
                    std::size_t dj = look - di;
                    if (i + di < a.size() && j + dj < b.size()
                        && a[i + di] == b[j + dj]) {
                        ri = i + di;
                        rj = j + dj;
                        synced = true;
                    }
                }
            }
        }
        if (!synced) {
            ri = a.size();
            rj = b.size();
        }
        std::printf("@@ -%zu +%zu @@\n", i + 1, j + 1);
        for (; i < ri; ++i)
            std::printf("-%s\n", a[i].c_str());
        for (; j < rj; ++j)
            std::printf("+%s\n", b[j].c_str());
    }
}

/**
 * Load and tokenize one file (applying/printing mechanical fixes when
 * asked) and append its context to @p files. Per-file and whole-tree
 * rules run later, over the collected set.
 */
void
loadFile(const Options &opt, const fs::path &abs,
         const std::string &rel, std::vector<FileCtx> &files,
         std::vector<Finding> &findings, int *fixed_files)
{
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
        findings.push_back({rel, 0, "io", "cannot read file"});
        return;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    FileCtx ctx;
    ctx.rel = rel;
    ctx.content = buf.str();
    std::stringstream ls(ctx.content);
    std::string l;
    while (std::getline(ls, l))
        ctx.lines.push_back(l);
    tokenize(ctx);

    if (opt.fix || opt.diff) {
        std::string current = ctx.content;
        // Whitespace first so guard fixes land on clean lines.
        for (int pass = 0; pass < 2; ++pass) {
            FileCtx staged;
            staged.rel = ctx.rel;
            staged.content = current;
            std::stringstream ss(current);
            std::string line;
            while (std::getline(ss, line))
                staged.lines.push_back(line);
            std::optional<std::string> next;
            if (pass == 0 && ruleEnabled(opt, "whitespace"))
                next = fixWhitespace(staged);
            if (pass == 1 && ruleEnabled(opt, "header-guard")) {
                tokenize(staged);
                // Only rewrite when the rule actually fires.
                std::vector<Finding> probe;
                ruleHeaderGuard(staged, probe);
                if (!probe.empty())
                    next = fixHeaderGuard(staged);
            }
            if (next)
                current = *next;
        }
        if (current != ctx.content) {
            if (opt.diff) {
                printDiff(rel, ctx.content, current);
            } else {
                std::ofstream outf(abs, std::ios::binary);
                outf << current;
                ++*fixed_files;
                // Re-lint the fixed content below.
                FileCtx fresh;
                fresh.rel = rel;
                fresh.content = current;
                std::stringstream ss(current);
                std::string line;
                while (std::getline(ss, line))
                    fresh.lines.push_back(line);
                tokenize(fresh);
                ctx = std::move(fresh);
            }
        }
    }
    files.push_back(std::move(ctx));
}

bool
lintableExtension(const fs::path &p)
{
    std::string e = p.extension().string();
    return e == ".cc" || e == ".hh" || e == ".cpp" || e == ".h";
}

bool
skippedDir(const fs::path &p)
{
    std::string name = p.filename().string();
    if (startsWith(name, "build"))
        return true;
    // The lint self-test corpus deliberately violates every rule.
    return p.parent_path().filename() == "lint" && name == "fixtures";
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: glider_lint [--root DIR] [--rule ID]... "
        "[--treat-as RELPATH] [--readme PATH] [--fix|--diff] "
        "[--list-rules] [--print-env-table] [PATH...]\n");
    return 2;
}

} // namespace
} // namespace lint
} // namespace glider

int
main(int argc, char **argv)
{
    using namespace glider::lint;
    Options opt;
    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--root" && i + 1 < args.size()) {
            opt.root = fs::path(args[++i]);
        } else if (a == "--rule" && i + 1 < args.size()) {
            std::string r = args[++i];
            if (std::find(kAllRules.begin(), kAllRules.end(), r)
                == kAllRules.end()) {
                std::fprintf(stderr,
                             "glider_lint: unknown rule '%s'\n",
                             r.c_str());
                return 2;
            }
            opt.rules.insert(r);
        } else if (a == "--treat-as" && i + 1 < args.size()) {
            opt.treat_as = args[++i];
        } else if (a == "--readme" && i + 1 < args.size()) {
            opt.readme = args[++i];
        } else if (a == "--fix") {
            opt.fix = true;
        } else if (a == "--diff") {
            opt.diff = true;
        } else if (a == "--list-rules") {
            for (const auto &r : kAllRules)
                std::printf("%s\n", r.c_str());
            return 0;
        } else if (a == "--print-env-table") {
            std::printf("%s", envKnobTable().c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (startsWith(a, "--")) {
            return usage();
        } else {
            opt.paths.push_back(a);
        }
    }
    if (opt.fix && opt.diff) {
        std::fprintf(stderr,
                     "glider_lint: --fix and --diff are exclusive\n");
        return 2;
    }

    bool default_tree = opt.paths.empty();
    if (default_tree)
        opt.paths = {"src", "bench", "tools", "tests", "examples"};

    // Phase 1: load every file in scope.
    std::vector<FileCtx> files;
    std::vector<Finding> findings;
    int fixed_files = 0;
    for (const std::string &p : opt.paths) {
        fs::path abs =
            fs::path(p).is_absolute() ? fs::path(p) : opt.root / p;
        std::error_code ec;
        if (fs::is_directory(abs, ec)) {
            std::vector<fs::path> batch;
            fs::recursive_directory_iterator it(
                abs, fs::directory_options::skip_permission_denied,
                ec),
                end;
            for (; it != end; it.increment(ec)) {
                if (it->is_directory(ec) && skippedDir(it->path())) {
                    it.disable_recursion_pending();
                    continue;
                }
                if (it->is_regular_file(ec)
                    && lintableExtension(it->path()))
                    batch.push_back(it->path());
            }
            std::sort(batch.begin(), batch.end());
            for (const fs::path &f : batch) {
                std::string rel =
                    fs::relative(f, opt.root, ec).generic_string();
                loadFile(opt, f, rel, files, findings, &fixed_files);
            }
        } else if (fs::is_regular_file(abs, ec)) {
            std::string rel = !opt.treat_as.empty()
                ? opt.treat_as
                : fs::relative(abs, opt.root, ec).generic_string();
            loadFile(opt, abs, rel, files, findings, &fixed_files);
        } else {
            std::fprintf(stderr, "glider_lint: no such path: %s\n",
                         abs.string().c_str());
            return 2;
        }
    }

    // Phase 2: per-file rules, then whole-tree rules over the
    // collected set. With --treat-as the set is exactly the files
    // named on the command line, so fixture runs stay hermetic.
    for (const FileCtx &ctx : files)
        runPerFileRules(opt, ctx, findings);
    if (ruleEnabled(opt, "hotpath-transitive"))
        ruleHotpathTransitive(files, findings);
    if (ruleEnabled(opt, "atomic-order"))
        ruleAtomicOrder(files, findings);
    if (ruleEnabled(opt, "env-registry")) {
        fs::path readme = !opt.readme.empty()
            ? (fs::path(opt.readme).is_absolute()
                   ? fs::path(opt.readme)
                   : opt.root / opt.readme)
            : opt.root / "README.md";
        // Single-file --treat-as runs only check the README when one
        // was named explicitly: fixture invocations stay hermetic.
        bool check_readme = !opt.readme.empty()
            || (default_tree && fs::exists(readme));
        if (check_readme) {
            std::ifstream in(readme, std::ios::binary);
            if (!in) {
                findings.push_back({readme.generic_string(), 0, "io",
                                    "cannot read README"});
            } else {
                std::stringstream buf;
                buf << in.rdbuf();
                std::error_code ec;
                std::string rel = fs::relative(readme, opt.root, ec)
                                      .generic_string();
                ruleEnvRegistryReadme(
                    rel.empty() ? readme.generic_string() : rel,
                    buf.str(), findings);
            }
        }
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    for (const Finding &f : findings) {
        std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.msg.c_str());
    }
    if (fixed_files > 0)
        std::fprintf(stderr, "glider_lint: fixed %d file(s)\n",
                     fixed_files);
    if (!findings.empty()) {
        std::fprintf(stderr,
                     "glider_lint: %zu finding(s) in %zu file(s) "
                     "scanned\n",
                     findings.size(), files.size());
        return 1;
    }
    return 0;
}
